/**
 * @file
 * Auto-tuning demo (§3.4): build a Fig. 6-style polygon search space of
 * micro-batch size x checkpoint ratio for OPT on 8 simulated GPUs,
 * prune it with a domain-knowledge constraint, and compare exhaustive
 * search against randomized coordinate descent.
 */
#include <cstdio>
#include <map>

#include "baselines/baselines.h"
#include "models/registry.h"
#include "tuner/tuner.h"

using namespace slapo;

int
main()
{
    const auto cluster = sim::ClusterSpec::p3_16xlarge();
    sim::TrainingSimulator simulator(cluster, 2.0);
    auto shapes = baselines::modelShapeFn("opt", 0);

    // Symbolic variables with candidates, as a developer would declare.
    tuner::SearchSpace space;
    space.addVar("batch", {2, 4, 8, 16, 32});
    space.addVar("ckpt", {0.0, 0.25, 0.5, 0.75, 1.0});
    // Domain knowledge (the gray region of Fig. 6): very large batches
    // cannot possibly fit without checkpointing — prune before running.
    space.addConstraint([](const tuner::Config& c) {
        return c.at("batch") <= 16 || c.at("ckpt") >= 0.5;
    });
    std::printf("search space: %zu of %zu cartesian configs survive "
                "pruning\n",
                space.enumerate().size(), space.cartesianSize());

    std::map<double, core::SchedulePtr> schedules;
    for (double ratio : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        schedules[ratio] = baselines::applyRecipe(
            models::buildModel("opt", 0),
            baselines::ScheduleRecipe::kernelOptimized(ratio));
    }

    int launches = 0;
    auto evaluate = [&](const tuner::Config& config) {
        ++launches;
        sim::ParallelConfig pc;
        pc.dp = 8;
        pc.zero_stage = 3;
        pc.micro_batch = static_cast<int>(config.at("batch"));
        sim::StepStats stats = simulator.simulate(
            *schedules.at(config.at("ckpt"))->module(), shapes, pc);
        return stats.oom ? 0.0 : stats.throughput;
    };

    tuner::TuneResult exhaustive = tuner::exhaustiveSearch(space, evaluate);
    std::printf("exhaustive: best %.1f samples/s at batch %.0f, ratio "
                "%.0f%% (%d evaluations)\n",
                exhaustive.best_value, exhaustive.best.at("batch"),
                exhaustive.best.at("ckpt") * 100, exhaustive.evaluated);

    launches = 0;
    tuner::TuneResult cd = tuner::coordinateDescent(space, evaluate,
                                                    {.seed = 7, .restarts = 2});
    std::printf("coordinate descent: best %.1f samples/s at batch %.0f, "
                "ratio %.0f%% (%d evaluations, %.0f%% of the space)\n",
                cd.best_value, cd.best.at("batch"), cd.best.at("ckpt") * 100,
                cd.evaluated,
                100.0 * cd.evaluated / space.enumerate().size());
    std::printf("coordinate descent found the optimum: %s\n",
                cd.best_value >= exhaustive.best_value - 1e-9 ? "yes" : "no");
    return 0;
}
