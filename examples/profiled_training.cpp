/**
 * @file
 * Observability tour (docs/OBSERVABILITY.md): train a small Transformer
 * with Chrome-trace recording and the per-op profiler enabled, print the
 * aggregate profile table, and write the timeline to trace.json — load
 * it in chrome://tracing or https://ui.perfetto.dev to see trainer step
 * phases, autograd forward/backward, and every executed node.
 */
#include <cstdio>

#include "models/registry.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "runtime/autograd.h"
#include "runtime/trainer.h"

using namespace slapo;
using runtime::Trainer;
using runtime::TrainStepStats;

int
main()
{
    auto model = runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(/*seed=*/42);
    std::printf("model: %s with %lld parameters\n",
                model->typeName().c_str(),
                static_cast<long long>(model->numParams()));

    // Start the timeline recorder and install an aggregate profiler for
    // the duration of training. Everything the runtime executes from here
    // on — trainer phases, autograd ops, kernel-pool jobs — is recorded.
    obs::startTracing("trace.json");
    obs::OpProfiler profiler;
    {
        obs::OpProfilerGuard guard(&profiler);

        AdamWConfig config;
        config.lr = 1e-3f;
        Trainer trainer(model, config);

        std::vector<std::vector<Tensor>> micros;
        for (int m = 0; m < 2; ++m) {
            micros.push_back({Tensor::randint({2, 8}, 64, 7 + m),
                              Tensor::randint({2, 8}, 64, 17 + m)});
        }
        for (int step = 0; step < 3; ++step) {
            TrainStepStats stats = trainer.step(micros);
            std::printf("step %d  loss %.4f\n", step, stats.loss);
        }
    }
    const int64_t events = obs::stopTracing();

    // Where did the time go, in aggregate?
    std::printf("\nper-op profile (forward ops plain, backward ops .bwd):\n%s",
                profiler.table().c_str());

    // Always-on runtime metrics (recorded with or without tracing).
    std::printf("\nmetrics: %s\n", obs::metrics().toJson().c_str());

    std::printf("\nwrote trace.json (%lld events) — open in chrome://tracing\n",
                static_cast<long long>(events));
    return 0;
}
