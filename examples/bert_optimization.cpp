/**
 * @file
 * The paper's §2.2 motivating example, end to end: progressively
 * optimize HuggingFace-style BERT training with schedule primitives and
 * watch the simulated single-V100 throughput improve at every step —
 * without ever editing the model definition.
 *
 *   ① fuse QKV           ② efficient kernels (flash attention,
 *   bias+GeLU fusion)    ③ tensor parallelism (8 GPUs)
 *   ④ activation checkpointing (tuned ratio)
 */
#include <cstdio>

#include "baselines/baselines.h"
#include "core/verify.h"
#include "models/registry.h"

using namespace slapo;

namespace {

/** Simulated throughput of the scheduled model, micro-batch tuned. */
double
throughputOf(core::Schedule& sch, int gpus, int tp)
{
    sim::ClusterSpec cluster = sim::ClusterSpec::p3_16xlarge();
    cluster.gpus_per_node = gpus;
    sim::TrainingSimulator simulator(cluster, 2.0);
    sim::ParallelConfig config;
    config.tp = tp;
    config.dp = gpus / tp;
    sim::StepStats stats = simulator.tuneMicroBatch(
        *sch.module(), baselines::modelShapeFn("bert", 0), config, 256);
    return stats.oom ? 0.0 : stats.throughput;
}

} // namespace

int
main()
{
    using baselines::ScheduleRecipe;

    std::printf("Progressive optimization of BERT-335M (simulated V100s)\n");
    std::printf("%-52s %12s\n", "schedule", "samples/s");

    // Step 0: the vanilla model, out of the box on one GPU.
    {
        auto sch = baselines::applyRecipe(models::buildModel("bert", 0),
                                          ScheduleRecipe::vanilla());
        std::printf("%-52s %12.1f\n", "vanilla (1 GPU)",
                    throughputOf(*sch, 1, 1));
    }

    // Step ①: fuse the three q/k/v projections into one kernel.
    {
        ScheduleRecipe recipe;
        recipe.fuse_qkv = true;
        auto sch =
            baselines::applyRecipe(models::buildModel("bert", 0), recipe);
        std::printf("%-52s %12.1f\n", "+ (1) fuse QKV", throughputOf(*sch, 1, 1));
    }

    // Step ②: flash attention + fused bias-GeLU via trace/find/fuse.
    {
        auto sch = baselines::applyRecipe(models::buildModel("bert", 0),
                                          ScheduleRecipe::kernelOptimized());
        std::printf("%-52s %12.1f\n",
                    "+ (2) flash attention & bias+GeLU fusion",
                    throughputOf(*sch, 1, 1));
    }

    // Step ④ (single device): tuned activation checkpointing.
    {
        double best = 0;
        double best_ratio = 0;
        for (double ratio : baselines::checkpointRatioCandidates()) {
            auto sch = baselines::applyRecipe(
                models::buildModel("bert", 0),
                ScheduleRecipe::kernelOptimized(ratio));
            const double thr = throughputOf(*sch, 1, 1);
            if (thr > best) {
                best = thr;
                best_ratio = ratio;
            }
        }
        std::printf("%-52s %12.1f  (ratio %.0f%%)\n",
                    "+ (4) tuned activation checkpointing", best,
                    best_ratio * 100);
    }

    // Step ③: shard attention/FFN across 8 GPUs, Fig. 3 sync points.
    {
        auto sch = baselines::applyRecipe(
            models::buildModel("bert", 0),
            ScheduleRecipe::tensorParallel(8, 0.25));
        std::printf("%-52s %12.1f\n",
                    "+ (3) tensor parallelism on 8 GPUs",
                    throughputOf(*sch, 8, 8));
    }

    // The same schedule at test scale is *numerically verified* against
    // the unscheduled model — the §3.5 pipeline in action.
    {
        auto model = models::buildTinyModel("bert");
        model->initializeParams(1);
        nn::ModulePtr reference = model->clone();
        auto sch = baselines::applyRecipe(
            model, ScheduleRecipe::tensorParallel(2, 0.5));
        core::VerifyOptions vopts;
        vopts.input_gen = [](int trial) {
            return std::vector<Tensor>{Tensor::randint({2, 8}, 64, trial + 1)};
        };
        core::verifyEndToEnd(*reference, *sch, vopts);
        std::printf("\nverifier: the full recipe (fused QKV + flash attention "
                    "+ bias+GeLU fusion\n+ 2-way sharding + checkpointing) is "
                    "numerically exact at test scale\n");
    }
    return 0;
}
