/**
 * @file
 * Static lint walkthrough (docs/VERIFICATION.md, stage one): write a
 * deliberately broken schedule, let the static verifier catch every
 * mistake *before a single tensor exists*, read the report, then fix
 * the schedule and watch it pass the same gate.
 *
 * The model stays on the meta device throughout — no parameter is ever
 * materialized, no kernel runs. Everything the lint reports comes from
 * shapes and schedule state alone, which is what makes it cheap enough
 * to gate every materialization and every tuner trial.
 *
 * Run with SLAPO_LINT=<path> to additionally append each gate's JSON
 * report to <path> (the `lint_smoke` ctest does exactly that).
 */
#include <cstdio>

#include "analysis/lint.h"
#include "core/auto_shard.h"
#include "core/schedule.h"
#include "models/registry.h"
#include "runtime/dist_executor.h"

using namespace slapo;

int
main()
{
    constexpr int kWorld = 2;

    // ------------------------------------------------------------------
    // Part 1: a hand-written tensor-parallel schedule with three bugs.
    // ------------------------------------------------------------------
    nn::ModulePtr broken = models::buildTinyModel("bert");
    core::SchedulePtr sch = core::Schedule::create(broken, kWorld);

    // Bug 1 — the classic: Megatron-style FFN sharding (fc1 column-
    // parallel, fc2 row-parallel) but the closing all-reduce is
    // forgotten. Each rank now holds a *partial sum* of the FFN output
    // and silently trains on garbage.
    (*sch)["encoder.layer.0.ffn.fc1"].shard("weight", 0);
    (*sch)["encoder.layer.0.ffn.fc1"].shard("bias", 0);
    (*sch)["encoder.layer.0.ffn.fc2"].shard("weight", 1);
    // ...missing: (*sch)["encoder.layer.0.ffn.fc2"].sync(Forward);

    // Bug 2 — a shard spec that never went through the primitive's own
    // precondition check (think: a recipe deserialized from a run tuned
    // for a different interleave factor). 3 interleave groups x 2 ranks
    // = 6 must divide the fc1 row count, and it does not.
    for (auto& [path, m] : broken->namedModules()) {
        if (path == "encoder.layer.1.ffn.fc1") {
            nn::ShardSpec stale;
            stale.axis = 0;
            stale.world_size = kWorld;
            stale.interleave = 3;
            m->meta().sharded_params["weight"] = stale;
        }
    }

    // Bug 3 — more pipeline stages than the world has ranks: two cuts
    // make three stages, but only two ranks exist to run them.
    (*sch)["embeddings"].pipelineSplit();
    (*sch)["encoder.layer.0"].pipelineSplit();

    // The lint sees all three at once, with stable codes and the dotted
    // module path the schedule language itself addresses.
    analysis::Diagnostics diags = analysis::lintModule(*broken, kWorld);
    std::printf("lint of the broken schedule (%zu findings, %zu errors):\n%s\n",
                diags.all().size(), diags.errorCount(),
                diags.toString().c_str());

    // The same analyses run as a mandatory gate inside every path that
    // would execute the schedule. Replication refuses to even clone a
    // parameter:
    try {
        runtime::DistExecutor executor(kWorld);
        executor.replicate(*broken);
        std::printf("unreachable: the gate should have fired\n");
        return 1;
    } catch (const analysis::StaticLintError& e) {
        std::printf("gate '%s' rejected the schedule: %s\n\n",
                    e.site().c_str(),
                    e.diagnostics().errorCodes().c_str());
    }

    // ------------------------------------------------------------------
    // Part 2: the fixed schedule — auto-sharded, one clean all-reduce
    // per region — passes the identical gate.
    // ------------------------------------------------------------------
    nn::ModulePtr fixed = models::buildTinyModel("bert");
    core::SchedulePtr good = core::Schedule::create(fixed, kWorld);
    core::AutoShardReport report = core::autoShard(*good);
    std::printf("auto-sharded %zu linear pairs, %zu embeddings\n",
                report.sharded_pairs.size(),
                report.sharded_embeddings.size());

    analysis::Diagnostics clean =
        analysis::enforceLint(*fixed, kWorld, "example.lint_schedule");
    std::printf("fixed schedule passed the gate "
                "(%zu errors, %zu warnings, %zu notes)\n",
                clean.errorCount(),
                clean.count(analysis::Severity::Warning),
                clean.count(analysis::Severity::Note));
    std::printf("lint_schedule done\n");
    return 0;
}
