/**
 * @file
 * "Where did my memory go?" walkthrough (docs/OBSERVABILITY.md): train a
 * checkpointed tiny transformer under the live-tensor registry, print
 * the peak attribution by category/module/primitive, and run a small
 * tuner search whose trials record *measured* peak memory next to the
 * simulator's prediction. Honors SLAPO_MEM_PROFILE, SLAPO_MEM_BUDGET,
 * SLAPO_MEM_BUDGET_ACTION, SLAPO_MEM_DUMP, and SLAPO_RUN_LOG, so
 * bench/run_memreport.sh can drive it as the `memreport_smoke` ctest.
 */
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/schedule.h"
#include "models/registry.h"
#include "obs/mem_profiler.h"
#include "obs/run_log.h"
#include "runtime/trainer.h"
#include "sim/training_sim.h"
#include "tuner/tuner.h"

using namespace slapo;

int
main()
{
    // Probe the SLAPO_MEM_* environment first — a budget or a dump path
    // auto-enables the profiler — then force it on for the walkthrough.
    if (!obs::memProfilingEnabled()) {
        obs::setMemProfilingEnabled(true);
    }
    if (std::getenv("SLAPO_RUN_LOG") == nullptr) {
        obs::openRunLog("run.jsonl");
    }
    const long long budget = static_cast<long long>(obs::memBudgetBytes());
    if (budget >= 0) {
        std::printf("memory budget: %lld bytes (SLAPO_MEM_BUDGET)\n", budget);
    }

    // A scheduled model: checkpoint both encoder layers so the peak
    // report shows .checkpoint() holding activation bytes down.
    auto inner = models::buildTinyModel("bert");
    auto model = runtime::withCrossEntropyLoss(inner);
    model->initializeParams(/*seed=*/42);
    auto sch = core::Schedule::create(model);
    (*sch)["model.encoder.layer.0"].checkpoint();
    (*sch)["model.encoder.layer.1"].checkpoint();

    runtime::Trainer trainer(model);
    for (int64_t step = 0; step < 3; ++step) {
        std::vector<std::vector<Tensor>> micros = {
            {Tensor::randint({2, 8}, 64, 10 * step),
             Tensor::randint({2, 8}, 64, 10 * step + 5)}};
        runtime::TrainStepStats stats = trainer.step(micros);
        std::printf("step %lld: loss %.4f, live %lld bytes\n",
                    static_cast<long long>(step), stats.loss,
                    static_cast<long long>(obs::memLiveBytes()));
    }

    // The peak report: who held the bytes when memory peaked.
    obs::MemPeakReport report = obs::memPeakReport();
    std::printf("\npeak %lld bytes, %.1f%% attributed "
                "(retained-but-idle in the pool: %lld bytes)\n",
                static_cast<long long>(report.peak_bytes),
                100.0 * report.attributedFraction(),
                static_cast<long long>(report.retained_bytes));
    for (int c = 0; c < obs::kNumMemCategories; ++c) {
        std::printf("  %-16s %8lld bytes\n",
                    obs::memCategoryName(static_cast<obs::MemCategory>(c)),
                    static_cast<long long>(report.category_bytes[c]));
    }
    const size_t shown = report.rows.size() < 5 ? report.rows.size() : 5;
    std::printf("top rows (of %zu):\n", report.rows.size());
    for (size_t i = 0; i < shown; ++i) {
        const obs::MemRow& row = report.rows[i];
        std::printf("  %8lld bytes  %-10s %-10s %s\n",
                    static_cast<long long>(row.bytes),
                    obs::memCategoryName(row.category), row.primitive.c_str(),
                    row.module_path.empty() ? "(root)"
                                            : row.module_path.c_str());
    }
    // Tuner loop: every trial's run-log record carries the measured
    // peak (from the live-tensor registry) next to the simulator's
    // prediction and their relative error; configs whose measured peak
    // exceeds SLAPO_MEM_BUDGET are pruned to infeasible.
    sim::TrainingSimulator simulator(sim::ClusterSpec::p3_16xlarge(), 2.0);
    sim::ShapeFn shapes = [](int mb) {
        return std::vector<Shape>{{mb, 8}}; // token ids, tiny seq len
    };
    tuner::SearchSpace space;
    space.addVar("micro_batch", {1, 2, 4});
    auto evaluate = [&](const tuner::Config& config) {
        const int64_t mb = static_cast<int64_t>(config.at("micro_batch"));
        sim::ParallelConfig pc;
        pc.dp = 8; // fill the simulated 8-GPU node
        pc.micro_batch = static_cast<int>(mb);
        sim::StepStats predicted = simulator.simulate(*inner, shapes, pc);
        // The measured side: one real step at this micro-batch.
        runtime::Trainer trial_trainer(model->clone());
        trial_trainer.step({{Tensor::randint({mb, 8}, 64, 7 * mb),
                             Tensor::randint({mb, 8}, 64, 7 * mb + 3)}});
        return predicted.oom ? 0.0 : predicted.throughput;
    };
    tuner::TuneResult best = tuner::exhaustiveSearch(space, evaluate);
    if (best.best.count("micro_batch") != 0) {
        std::printf("\ntuner: best micro_batch %.0f (%d trials; each "
                    "tuner.trial record logs measured vs predicted peak)\n",
                    best.best.at("micro_batch"), best.evaluated);
    } else {
        std::printf("\ntuner: every config's measured peak exceeded the "
                    "budget (%d trials pruned)\n",
                    best.evaluated);
    }

    // Persist the final forensics report when SLAPO_MEM_DUMP is set —
    // written last so it covers the run's true high watermark (budget
    // crossings overwrite the file with point-in-time snapshots).
    if (const char* dump = std::getenv("SLAPO_MEM_DUMP")) {
        obs::writeMemDump(dump);
    }
    obs::closeRunLog();
    std::printf("wrote run log (step, mem.budget, tuner.trial records)\n");
    return 0;
}
