/**
 * @file
 * Distributed telemetry tour (docs/OBSERVABILITY.md): train a 4-rank
 * data-parallel model with the structured run log open, checkpoint every
 * other step, then aggregate per-rank collective/memory counters into a
 * skew report and dump the collective flight recorder. Produces
 * run.jsonl — one JSON object per line: `step` records (loss, global
 * grad norm, tokens/s, anomaly flags), `checkpoint.save` records, and a
 * final `dist_metrics` record. `bench/run_runlog.sh` validates this
 * output against the documented schema.
 */
#include <cstdio>

#include "models/registry.h"
#include "obs/flight_recorder.h"
#include "obs/run_log.h"
#include "runtime/autograd.h"
#include "runtime/trainer.h"

using namespace slapo;
using runtime::DataParallelTrainer;
using runtime::TrainRunStats;

int
main()
{
    constexpr int kWorldSize = 4;
    constexpr int64_t kSteps = 4;

    auto model = runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(/*seed=*/42);
    std::printf("model: %s with %lld parameters, %d data-parallel ranks\n",
                model->typeName().c_str(),
                static_cast<long long>(model->numParams()), kWorldSize);

    // Open the structured run log (SLAPO_RUN_LOG=run.jsonl would do the
    // same from the environment). Every step, checkpoint, and metric
    // aggregation below appends one JSON line.
    obs::openRunLog("run.jsonl");

    AdamWConfig config;
    config.lr = 1e-3f;
    runtime::RecoveryOptions recovery;
    recovery.checkpoint_every = 2;
    recovery.checkpoint_dir = "ckpt";
    DataParallelTrainer trainer(*model, kWorldSize, config, recovery);

    // Deterministic per-rank batches: rank r trains on its own shard.
    runtime::BatchProvider batches = [](int64_t step) {
        std::vector<std::vector<Tensor>> per_rank;
        for (int rank = 0; rank < kWorldSize; ++rank) {
            const uint64_t seed = 1000 * step + rank;
            per_rank.push_back({Tensor::randint({2, 8}, 64, seed),
                                Tensor::randint({2, 8}, 64, seed + 500)});
        }
        return per_rank;
    };

    TrainRunStats run = trainer.trainSteps(batches, kSteps);
    std::printf("ran %lld steps, final loss %.4f, grad norm %.4f\n",
                static_cast<long long>(run.steps_run), run.last.loss,
                run.last.grad_norm);

    // Cross-rank aggregation: each rank packs its collective and memory
    // counters, the group all-gathers them, rank 0 reports the skew.
    obs::DistMetricsReport report = trainer.gatherMetrics();
    std::printf("\nper-rank metric skew (min/max/mean across %d ranks):\n%s",
                report.world_size, report.table().c_str());

    // The flight recorder's view of the healthiest possible run: no
    // stall, every rank's last started collective is also completed.
    // On a hang or CollectiveError this same dump names the stuck site
    // and the ranks that never arrived.
    std::printf("\nflight recorder (healthy run): %s\n",
                trainer.group().flightRecorder().dumpJson().c_str());

    obs::closeRunLog();
    std::printf("\nwrote run.jsonl — one JSON record per line\n");
    return 0;
}
