/**
 * @file
 * Scheduling a *vision* model — the generality claim of Table 2's
 * WideResNet row: the same primitives that optimize transformers apply
 * to conv nets. The example (1) fuses every BN+ReLU pair via
 * decompose/trace/find/fuse, (2) checkpoints the widest block group,
 * (3) verifies numerical equivalence at test scale, and (4) compares
 * simulated FP32 training throughput on a V100 before/after, including
 * 8-GPU data parallelism.
 */
#include <cstdio>

#include "baselines/baselines.h"
#include "core/schedule.h"
#include "core/verify.h"
#include "models/registry.h"
#include "models/wideresnet.h"

using namespace slapo;

namespace {

sim::StepStats
simulated(nn::Module& model, int dp)
{
    sim::ClusterSpec cluster = sim::ClusterSpec::p3_16xlarge();
    cluster.gpus_per_node = dp;
    sim::TrainingSimulator simulator(cluster, /*fp32*/ 4.0);
    sim::ParallelConfig config;
    config.dp = dp;
    return simulator.tuneMicroBatch(
        model, baselines::modelShapeFn("wideresnet", 0), config, 256);
}

void
report(const char* label, const sim::StepStats& stats)
{
    std::printf("%-34s %6.1f samples/s  (mb %3d, activations %4.1f GB, "
                "recompute %4.2f s)\n",
                label, stats.throughput, stats.config.micro_batch,
                stats.memory.activations / 1e9, stats.phases.recompute);
}

} // namespace

int
main()
{
    // --- schedule the paper-scale WRN-28-26 (~250M params) ----------------
    auto model = models::buildModel("wideresnet", 0);
    std::printf("WideResNet-28-26: %.0fM parameters (Table 2: 250M)\n",
                static_cast<double>(model->numParams()) / 1e6);
    report("vanilla (1 GPU)", simulated(*model, 1));

    core::SchedulePtr sch = core::Schedule::create(model);
    // Fuse BN+ReLU in every residual block (decompose -> trace -> find
    // -> fuse, exactly the transformer bias+GeLU flow).
    int fused = 0;
    for (auto& [path, m] : model->namedModules()) {
        if (m->typeName() != "WideResNetBlock") {
            continue;
        }
        core::Schedule& block = (*sch)[path];
        auto* wrn_block = static_cast<models::WideResNetBlock*>(m);
        block["bn1"].decompose();
        block["bn2"].decompose();
        nn::TraceOptions options;
        options.flatten = true;
        block.trace({{1, wrn_block->inChannels(), 16, 16}}, options);
        for (const auto& match :
             block.find(graph::Pattern::chain({"batch_norm", "relu"}))) {
            block.fuse(match, "TorchScript");
            ++fused;
        }
    }
    std::printf("fused %d BN+ReLU pairs via .decompose/.trace/.find/.fuse\n",
                fused);
    report("+ BN+ReLU fusion (1 GPU)", simulated(*model, 1));

    // Checkpoint the widest group (group3 holds most of the activations)
    // and show the memory/recompute trade the ratio tuner navigates.
    for (const auto& [name, child] :
         model->findByPath("group3")->children()) {
        (*sch)["group3." + name].checkpoint();
    }
    report("+ checkpoint group3 (1 GPU)", simulated(*model, 1));
    report("+ data parallel x 8", simulated(*model, 8));
    std::printf("(checkpointing trades recompute for activation memory; the "
                "auto-tuner\n keeps it only when the freed memory buys a "
                "better batch — Fig. 11)\n");

    // --- verify the same schedule numerically at test scale ----------------
    auto tiny = models::buildTinyModel("wideresnet");
    tiny->initializeParams(5);
    nn::ModulePtr reference = tiny->clone();
    auto tiny_sch = core::Schedule::create(tiny);
    for (auto& [path, m] : tiny->namedModules()) {
        if (m->typeName() != "WideResNetBlock") {
            continue;
        }
        core::Schedule& block = (*tiny_sch)[path];
        auto* wrn_block = static_cast<models::WideResNetBlock*>(m);
        block["bn1"].decompose();
        block["bn2"].decompose();
        nn::TraceOptions options;
        options.flatten = true;
        block.trace({{1, wrn_block->inChannels(), 8, 8}}, options);
        for (const auto& match :
             block.find(graph::Pattern::chain({"batch_norm", "relu"}))) {
            block.fuse(match, "TorchScript");
        }
    }
    core::VerifyOptions vopts;
    vopts.input_gen = [](int trial) {
        return std::vector<Tensor>{
            Tensor::uniform({2, 3, 16, 16}, 1.0f, 40 + trial)};
    };
    core::verifyEndToEnd(*reference, *tiny_sch, vopts);
    std::printf("verifier: fused vision schedule matches the reference\n");
    return 0;
}
