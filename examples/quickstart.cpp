/**
 * @file
 * Quickstart: define a model, create its schedule, progressively apply
 * primitives, verify correctness, and train a few numeric steps.
 *
 * Mirrors the paper's Fig. 3 flow:
 *     model = BertModel(...)
 *     sch = slapo.create_schedule(model)
 *     sch["encoder.layer.0.attention.self"].replace(FusedQKV)
 *     sch["encoder.layer.0"].checkpoint()
 *     ...
 *     slapo.verify(sch); train(sch.module())
 */
#include <cstdio>

#include "core/schedule.h"
#include "core/verify.h"
#include "models/registry.h"
#include "runtime/autograd.h"
#include "tensor/optim.h"

using namespace slapo;

int
main()
{
    // 1. A model is defined once, with no optimization concerns: a small
    //    BERT from the model zoo (materialized for numeric execution).
    nn::ModulePtr model = models::buildTinyModel("bert");
    model->initializeParams(/*seed=*/42);
    nn::ModulePtr reference = model->clone(); // for verification later

    std::printf("model: %s with %lld parameters\n",
                model->typeName().c_str(),
                static_cast<long long>(model->numParams()));

    // 2. Create the default schedule. It mirrors the module hierarchy,
    //    so optimization targets are located by the same paths used when
    //    debugging the model.
    core::SchedulePtr sch = core::Schedule::create(model);

    // 3. Progressively apply primitives — the model definition never
    //    changes, only its execution strategy does.

    // 3a. Replace the q/k/v projections of layer 0 with a fused QKV
    //     (optimization ① of the paper's motivating example).
    {
        core::Schedule& self = (*sch)["encoder.layer.0.attention.self"];
        auto attn = std::static_pointer_cast<nn::SelfAttention>(self.module());
        self.replace(nn::FusedSelfAttention::fromSelfAttention(*attn));
        std::printf("replaced layer 0 self-attention with FusedSelfAttention\n");
    }

    // 3b. Swap the core attention for the flash-attention kernel (②).
    {
        core::Schedule& core_attn =
            (*sch)["encoder.layer.0.attention.self.core"];
        auto core_module =
            std::static_pointer_cast<nn::CoreAttention>(core_attn.module());
        core_attn.replace(nn::EfficientAttention::fromCore(*core_module));
        std::printf("replaced core attention with EfficientAttention\n");
    }

    // 3c. Trace layer 1's FFN, find the bias+GeLU chain, and fuse it.
    {
        core::Schedule& ffn = (*sch)["encoder.layer.1.ffn"];
        ffn["fc1"].decompose();
        nn::TraceOptions options;
        options.flatten = true;
        ffn.trace({{2, 8, 16}}, options);
        auto matches = ffn.find(graph::Pattern::chain({"add", "gelu"}));
        ffn.fuse(matches.front(), "TorchScript");
        std::printf("fused bias+gelu in layer 1 FFN; graph now:\n%s",
                    ffn.graph().toString().c_str());
    }

    // 3d. Checkpoint layer 0 (activation recomputation in backward).
    (*sch)["encoder.layer.0"].checkpoint();

    // The schedule is inspectable independently of the (unchanged) model
    // definition — Challenge 4's debuggability story.
    std::printf("\napplied schedule:\n%s\n", sch->toString().c_str());

    // 4. Verify: the scheduled model must compute the same function.
    core::VerifyOptions vopts;
    vopts.input_gen = [](int trial) {
        return std::vector<Tensor>{Tensor::randint({2, 8}, 64, 7 + trial)};
    };
    core::verifyEndToEnd(*reference, *sch, vopts);
    std::printf("verifier: scheduled model matches the reference\n");

    // 5. Train a few steps with AdamW — checkpointing changes memory,
    //    not math.
    nn::ModulePtr train_model =
        runtime::withCrossEntropyLoss(sch->module());
    AdamWConfig opt_config;
    opt_config.lr = 5e-3f;
    AdamW optimizer(opt_config);
    auto params = train_model->namedParams();
    for (auto& [path, tensor] : params) {
        optimizer.addParam(*tensor);
    }

    Tensor ids = Tensor::randint({2, 8}, 64, 101);
    Tensor targets = Tensor::randint({2, 8}, 64, 102);
    for (int step = 0; step < 5; ++step) {
        runtime::AutogradEngine engine;
        runtime::GradResult result = engine.run(*train_model, {ids, targets});
        std::vector<Tensor> grads;
        grads.reserve(params.size());
        for (auto& [path, tensor] : params) {
            grads.push_back(runtime::AutogradEngine::gradFor(result, *tensor));
        }
        optimizer.step(grads);
        std::printf("step %d: loss = %.4f (stored activations: %lld bytes, "
                    "recomputed nodes: %lld)\n",
                    step, result.outputs[0].at(0),
                    static_cast<long long>(result.stored_activation_bytes),
                    static_cast<long long>(result.recomputed_nodes));
    }
    std::printf("quickstart done\n");
    return 0;
}
