/**
 * Fault-tolerant data-parallel training (docs/ROBUSTNESS.md).
 *
 * Trains a tiny BERT on two simulated ranks with per-step checkpoints,
 * kills rank 1 *inside* a gradient all-reduce at step 2, and lets the
 * trainer restore + replay. The run then repeats without any fault and
 * prints whether the two final parameter sets are bitwise identical —
 * the headline guarantee of the recovery path.
 *
 * Faults can also be injected from the environment, e.g.:
 *   SLAPO_FAILPOINTS="trainer.step@1:throw" build/examples/fault_tolerant_training
 */
#include <cstring>
#include <filesystem>
#include <iostream>

#include "models/registry.h"
#include "runtime/trainer.h"
#include "support/failpoint.h"

using namespace slapo;
namespace fp = support::failpoint;

namespace {

nn::ModulePtr
buildModel()
{
    auto model = runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(42);
    return model;
}

/** Deterministic per-rank batches: same step index => same data, which
 * is what makes replay after a restore bit-exact. */
std::vector<std::vector<Tensor>>
rankBatches(int64_t step)
{
    std::vector<std::vector<Tensor>> per_rank;
    for (int64_t r = 0; r < 2; ++r) {
        per_rank.push_back(
            {Tensor::randint({1, 8}, 64, 1000 + 10 * step + r),
             Tensor::randint({1, 8}, 64, 2000 + 10 * step + r)});
    }
    return per_rank;
}

bool
bitwiseEqualParams(nn::Module& a, nn::Module& b)
{
    auto pa = a.namedParams();
    auto pb = b.namedParams();
    if (pa.size() != pb.size()) return false;
    for (size_t i = 0; i < pa.size(); ++i) {
        const Tensor& ta = *pa[i].second;
        const Tensor& tb = *pb[i].second;
        if (ta.shape() != tb.shape() ||
            std::memcmp(ta.data(), tb.data(),
                        sizeof(float) * static_cast<size_t>(ta.numel())) != 0) {
            return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    const int64_t steps = 4;
    AdamWConfig config;
    config.lr = 5e-3f;

    // Reference: an uninterrupted run.
    auto ref_model = buildModel();
    runtime::DataParallelTrainer reference(*ref_model, 2, config);
    for (int64_t s = 0; s < steps; ++s) {
        auto stats = reference.step(rankBatches(s));
        std::cout << "reference step " << s << ": loss = " << stats.loss
                  << "\n";
    }

    // Faulty run: checkpoint every step, kill rank 1 mid all-reduce.
    runtime::RecoveryOptions recovery;
    recovery.checkpoint_every = 1;
    recovery.checkpoint_dir =
        (std::filesystem::temp_directory_path() / "slapo_ft_example").string();
    std::filesystem::remove_all(recovery.checkpoint_dir);
    recovery.max_retries = 2;

    auto model = buildModel();
    runtime::DataParallelTrainer trainer(*model, 2, config, recovery);

    const int64_t grads_per_step =
        static_cast<int64_t>(model->namedParams().size());
    fp::Spec kill;
    kill.at = 2 * grads_per_step + 1; // second gradient exchange of step 2
    kill.action = fp::Action::Kill;
    kill.rank = 1;
    fp::enable("pg.allreduce", kill);

    runtime::TrainRunStats run = trainer.trainSteps(rankBatches, steps);
    fp::clearAll();

    std::cout << "faulty run: " << run.steps_run << " steps, "
              << run.recoveries << " recovery (rank 1 killed in all-reduce"
              << " at step 2, restored from "
              << recovery.checkpoint_dir << ")\n";
    std::cout << "final loss = " << run.last.loss << "\n";
    const bool identical =
        bitwiseEqualParams(trainer.replica(0), reference.replica(0));
    std::cout << "params bitwise identical to uninterrupted run: "
              << (identical ? "yes" : "NO") << "\n";
    return identical ? 0 : 1;
}
