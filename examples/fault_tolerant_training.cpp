/**
 * Fault-tolerant data-parallel training (docs/ROBUSTNESS.md).
 *
 * Act 1 — transient crash: trains a tiny BERT on two simulated ranks
 * with per-step checkpoints, kills rank 1 *inside* the bucketed
 * gradient all-reduce at step 2, and lets the trainer restore + replay.
 * The run then repeats without any fault and prints whether the two
 * final parameter sets are bitwise identical — the headline guarantee
 * of the recovery path.
 *
 * Act 2 — permanent loss: a 4-rank elastic run where rank 2 *dies*
 * (never comes back) in the first gradient exchange. The survivors
 * rebuild the group, inherit the orphaned data shard, restore the last
 * checkpoint, and finish the run at world size 3; the structured run
 * log records the rebuild.
 *
 * Faults can also be injected from the environment; when
 * SLAPO_FAILPOINTS is set it replaces act 2's built-in spec, e.g.:
 *   SLAPO_FAILPOINTS="pg.allreduce.bucket@1:die:r2" \
 *       build/examples/fault_tolerant_training
 */
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "models/registry.h"
#include "obs/run_log.h"
#include "runtime/trainer.h"
#include "support/failpoint.h"

using namespace slapo;
namespace fp = support::failpoint;

namespace {

nn::ModulePtr
buildModel()
{
    auto model = runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(42);
    return model;
}

/** Deterministic per-shard batches: same step index => same data, which
 * is what makes replay after a restore bit-exact. The shard count stays
 * fixed even when the world shrinks — survivors absorb orphan shards. */
runtime::BatchProvider
shardBatches(int64_t shards)
{
    return [shards](int64_t step) {
        std::vector<std::vector<Tensor>> per_shard;
        for (int64_t s = 0; s < shards; ++s) {
            per_shard.push_back(
                {Tensor::randint({1, 8}, 64, 1000 + 10 * step + s),
                 Tensor::randint({1, 8}, 64, 2000 + 10 * step + s)});
        }
        return per_shard;
    };
}

bool
bitwiseEqualParams(nn::Module& a, nn::Module& b)
{
    auto pa = a.namedParams();
    auto pb = b.namedParams();
    if (pa.size() != pb.size()) return false;
    for (size_t i = 0; i < pa.size(); ++i) {
        const Tensor& ta = *pa[i].second;
        const Tensor& tb = *pb[i].second;
        if (ta.shape() != tb.shape() ||
            std::memcmp(ta.data(), tb.data(),
                        sizeof(float) * static_cast<size_t>(ta.numel())) != 0) {
            return false;
        }
    }
    return true;
}

std::string
scratchDir(const char* leaf)
{
    const auto dir = std::filesystem::temp_directory_path() / leaf;
    std::filesystem::remove_all(dir);
    return dir.string();
}

/** Act 1: kill (transient) — restore and replay at the same world size. */
bool
transientCrashAct(const AdamWConfig& config, int64_t steps)
{
    auto provider = shardBatches(2);

    // Reference: an uninterrupted run.
    auto ref_model = buildModel();
    runtime::DataParallelTrainer reference(*ref_model, 2, config);
    for (int64_t s = 0; s < steps; ++s) {
        auto stats = reference.step(provider(s));
        std::cout << "reference step " << s << ": loss = " << stats.loss
                  << "\n";
    }

    // Faulty run: checkpoint every step, kill rank 1 mid exchange. The
    // tiny model fits one gradient bucket, so each rank enters
    // pg.allreduce.bucket once per step: invocation 2 = step 2.
    runtime::RecoveryOptions recovery;
    recovery.checkpoint_every = 1;
    recovery.checkpoint_dir = scratchDir("slapo_ft_example");
    recovery.max_retries = 2;

    auto model = buildModel();
    runtime::DataParallelTrainer trainer(*model, 2, config, recovery);

    fp::Spec kill;
    kill.at = 2;
    kill.action = fp::Action::Kill;
    kill.rank = 1;
    fp::enable("pg.allreduce.bucket", kill);

    runtime::TrainRunStats run = trainer.trainSteps(provider, steps);
    fp::clearAll();

    std::cout << "faulty run: " << run.steps_run << " steps, "
              << run.recoveries << " recovery (rank 1 killed in the step-2"
              << " all-reduce, restored from " << recovery.checkpoint_dir
              << ")\n";
    std::cout << "final loss = " << run.last.loss << "\n";
    const bool identical =
        bitwiseEqualParams(trainer.replica(0), reference.replica(0));
    std::cout << "params bitwise identical to uninterrupted run: "
              << (identical ? "yes" : "NO") << "\n";
    return run.recoveries == 1 && identical;
}

/** Act 2: die (permanent) — shrink the world and keep training. */
bool
elasticLossAct(const AdamWConfig& config, int64_t steps)
{
    runtime::RecoveryOptions recovery;
    recovery.checkpoint_every = 1;
    recovery.checkpoint_dir = scratchDir("slapo_elastic_example");
    recovery.max_retries = 2;
    recovery.elastic = true;

    // SLAPO_FAILPOINTS in the environment wins; otherwise arm the
    // canonical scenario. Applied explicitly (not via the lazy
    // configureFromEnv) because act 1's clearAll() already consumed the
    // one-shot environment arming.
    const char* env_spec = std::getenv("SLAPO_FAILPOINTS");
    fp::configureFromString(env_spec != nullptr
                                ? env_spec
                                : "pg.allreduce.bucket@1:die:r2");

    const std::string log_path =
        (std::filesystem::path(recovery.checkpoint_dir) / "run.jsonl")
            .string();
    std::filesystem::create_directories(recovery.checkpoint_dir);
    obs::openRunLog(log_path);

    auto model = buildModel();
    runtime::DataParallelTrainer trainer(*model, 4, config, recovery);
    runtime::TrainRunStats run = trainer.trainSteps(shardBatches(4), steps);
    obs::closeRunLog();
    fp::clearAll();

    std::cout << "elastic run: " << run.steps_run << " steps, "
              << run.elastic_rebuilds << " rebuild, finished at world size "
              << trainer.worldSize() << " (of " << trainer.baseWorldSize()
              << "), final loss = " << run.last.loss << "\n";
    std::cout << "surviving original ranks:";
    for (int r : trainer.origRanks()) std::cout << " " << r;
    std::cout << "\n";

    std::ifstream log(log_path);
    std::string line;
    std::string rebuild_record;
    while (std::getline(log, line)) {
        if (line.find("\"kind\":\"elastic.rebuild\"") != std::string::npos) {
            rebuild_record = line;
        }
    }
    std::cout << "run-log rebuild record: "
              << (rebuild_record.empty() ? "MISSING" : rebuild_record)
              << "\n";
    return run.steps_run == steps && run.elastic_rebuilds >= 1 &&
           trainer.worldSize() < trainer.baseWorldSize() &&
           !rebuild_record.empty();
}

} // namespace

int
main()
{
    const int64_t steps = 4;
    AdamWConfig config;
    config.lr = 5e-3f;

    // Consume the one-shot environment arming up front and start act 1
    // from a clean registry; act 2 re-applies SLAPO_FAILPOINTS itself.
    fp::configureFromEnv();
    fp::clearAll();

    const bool transient_ok = transientCrashAct(config, steps);
    std::cout << "\n";
    const bool elastic_ok = elasticLossAct(config, steps);
    return (transient_ok && elastic_ok) ? 0 : 1;
}
