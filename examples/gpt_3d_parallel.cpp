/**
 * @file
 * 3D parallelism for a GPT-family model (§3.3.2, Fig. 5): tensor
 * parallelism via .shard()/.sync(), pipeline stages via
 * .pipeline_split() + the partition-propagation algorithm, executed
 * through the DeepSpeed dialect, and data parallelism on top — then the
 * whole strategy evaluated on a simulated two-node V100 cluster.
 */
#include <cstdio>

#include "baselines/baselines.h"
#include "core/auto_shard.h"
#include "core/pipeline.h"
#include "dialects/deepspeed_dialect.h"
#include "dialects/megatron_dialect.h"
#include "models/registry.h"
#include "runtime/pipeline_runtime.h"

using namespace slapo;

int
main()
{
    // --- pipeline partitioning demonstrated numerically (test scale) ----
    // OPT shares GPT's architecture with a traceable top module.
    {
        nn::ModulePtr model = models::buildTinyModel("opt");
        model->initializeParams(3);
        nn::ModulePtr reference = model->clone();

        core::SchedulePtr sch = core::Schedule::create(model, /*world=*/4);
        (*sch)["decoder.layer.0"].pipelineSplit();
        auto stages = core::partitionPipeline(*sch, {{1, 8}});
        std::printf("pipeline stages after propagation:\n");
        for (size_t i = 0; i < stages.size(); ++i) {
            std::printf("  stage %zu:", i);
            for (const auto& [path, m] : stages[i].modules) {
                std::printf(" %s", path.c_str());
            }
            std::printf("\n");
        }

        // DeepSpeed dialect + the threaded pipeline runtime: stream four
        // micro-batches through one worker thread per stage.
        auto wrapped = dialects::wrapForDeepSpeedPipeline(stages);
        runtime::PipelineRuntime pipeline(wrapped);
        std::vector<std::vector<Tensor>> micros;
        for (int m = 0; m < 4; ++m) {
            micros.push_back({Tensor::randint({1, 8}, 64, 5 + m)});
        }
        runtime::PipelineRunResult result = pipeline.forward(micros);
        bool all_match = true;
        for (size_t m = 0; m < micros.size(); ++m) {
            std::vector<nn::Value> expected =
                reference->call({nn::Value(micros[m][0])});
            all_match &= Tensor::allClose(expected[0].tensor(),
                                          result.outputs[m][0], 1e-4f);
        }
        std::printf("pipelined outputs match reference: %s "
                    "(peak micro-batches in flight: %d)\n",
                    all_match ? "yes" : "NO", result.peak_in_flight);

        // Auto-scheduler (the paper's future work): generate the
        // shard/sync primitives instead of writing them by hand.
        nn::ModulePtr auto_model = models::buildTinyModel("opt");
        auto_model->initializeParams(3);
        auto auto_sch = core::Schedule::create(auto_model, 2);
        core::AutoShardReport report = core::autoShard(*auto_sch);
        std::printf("auto-scheduler: %zu column/row pairs, %zu embeddings, "
                    "%zu sync points generated\n",
                    report.sharded_pairs.size(),
                    report.sharded_embeddings.size(),
                    report.forward_syncs.size() + report.backward_syncs.size());
    }

    // --- the full 3D strategy on GPT-10B, simulated ---------------------
    {
        const auto cluster = sim::ClusterSpec::p3dn_24xlarge(2); // 16 GPUs
        baselines::ScheduleRecipe recipe =
            baselines::ScheduleRecipe::tensorParallel(8, 0.5);
        recipe.pipeline_stages = 2; // real .pipeline_split() annotations
        auto sch = baselines::applyRecipe(models::buildGpt10B(), recipe);

        // Hand the tensor-parallel schedule to the Megatron dialect: it
        // validates column/row pairs and sync points (§4).
        dialects::MegatronLaunchConfig launch =
            dialects::toMegatron(*sch->module(), /*tp=*/8, /*pp=*/2);
        std::printf("\nMegatron dialect accepted the schedule: "
                    "%zu column-parallel, %zu row-parallel, "
                    "%zu vocab-parallel modules\n",
                    launch.column_parallel.size(), launch.row_parallel.size(),
                    launch.vocab_parallel.size());

        sim::TrainingSimulator simulator(cluster, 2.0);
        sim::ParallelConfig config;
        config.tp = 8;
        config.pp = 2;
        config.dp = 1;
        sim::StepStats stats = simulator.tuneMicroBatch(
            *sch->module(), baselines::modelShapeFn("gpt-10b", 0), config,
            64, /*fixed_global_batch=*/256);
        std::printf("GPT-10B on 16 simulated V100-32GB (TP=8, PP=2, global "
                    "batch 256):\n");
        std::printf("  throughput %.2f samples/s, step %.2f s, micro-batch "
                    "%d x %d accumulations\n",
                    stats.throughput, stats.step_time,
                    stats.config.micro_batch, stats.config.grad_accum);
        std::printf("  per-GPU memory: %.1f GB of %.1f GB (weights %.1f, "
                    "optimizer %.1f, activations %.1f)\n",
                    stats.memory.total() / 1e9, stats.capacity / 1e9,
                    stats.memory.weights / 1e9,
                    stats.memory.optimizer_states / 1e9,
                    stats.memory.activations / 1e9);
        std::printf("  phases: fwd %.2fs, bwd %.2fs (recompute %.2fs), "
                    "TP comm %.2fs, DP comm %.2fs\n",
                    stats.phases.forward, stats.phases.backward,
                    stats.phases.recompute, stats.phases.tp_comm,
                    stats.phases.dp_comm);
    }
    return 0;
}
