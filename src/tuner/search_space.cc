#include "tuner/search_space.h"

#include <algorithm>

namespace slapo {
namespace tuner {

void
SearchSpace::addVar(const std::string& name, std::vector<double> candidates)
{
    SLAPO_CHECK(!candidates.empty(),
                "search space: variable '" << name << "' has no candidates");
    for (const SymbolicVar& v : vars_) {
        SLAPO_CHECK(v.name != name,
                    "search space: duplicate variable '" << name << "'");
    }
    vars_.push_back({name, std::move(candidates)});
}

void
SearchSpace::addConstraint(Constraint constraint)
{
    constraints_.push_back(std::move(constraint));
}

bool
SearchSpace::valid(const Config& config) const
{
    for (const SymbolicVar& v : vars_) {
        auto it = config.find(v.name);
        if (it == config.end()) {
            return false;
        }
        if (std::find(v.candidates.begin(), v.candidates.end(), it->second) ==
            v.candidates.end()) {
            return false;
        }
    }
    for (const Constraint& c : constraints_) {
        if (!c(config)) {
            return false;
        }
    }
    return true;
}

std::vector<Config>
SearchSpace::enumerate() const
{
    std::vector<Config> result;
    Config current;
    std::function<void(size_t)> recurse = [&](size_t i) {
        if (i == vars_.size()) {
            for (const Constraint& c : constraints_) {
                if (!c(current)) {
                    return;
                }
            }
            result.push_back(current);
            return;
        }
        for (double value : vars_[i].candidates) {
            current[vars_[i].name] = value;
            recurse(i + 1);
        }
        current.erase(vars_[i].name);
    };
    recurse(0);
    return result;
}

size_t
SearchSpace::cartesianSize() const
{
    size_t size = 1;
    for (const SymbolicVar& v : vars_) {
        size *= v.candidates.size();
    }
    return size;
}

} // namespace tuner
} // namespace slapo
