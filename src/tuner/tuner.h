/**
 * @file
 * The Slapo auto-tuner (§3.4): explores a SearchSpace by launching the
 * developer-provided evaluation function (in the paper, a training
 * benchmark script; here, typically sim::TrainingSimulator) for each
 * candidate schedule configuration.
 *
 * Two algorithms, as in the paper:
 *  - ExhaustiveSearch (the default): evaluates every valid config.
 *  - CoordinateDescent: randomized coordinate descent that explores a
 *    small fraction of the space (Fig. 11: 17 of 91 configs) while
 *    still finding the optimum on well-behaved spaces.
 */
#pragma once

#include "tuner/search_space.h"

namespace slapo {
namespace tuner {

/**
 * Objective: higher is better; return <= 0 for infeasible configurations
 * (OOM). The tuner memoizes, so repeated configs cost nothing.
 */
using EvalFn = std::function<double(const Config&)>;

/** Outcome of a tuning run. */
struct TuneResult
{
    Config best;
    double best_value = 0;
    /** Unique configurations actually evaluated. */
    int evaluated = 0;
    /** Evaluation trajectory in call order (the purple stars of Fig. 11). */
    std::vector<std::pair<Config, double>> history;

    bool found() const { return best_value > 0; }
};

/** Evaluate every valid configuration. */
TuneResult exhaustiveSearch(const SearchSpace& space, const EvalFn& eval);

/** Options of the randomized coordinate-descent tuner. */
struct CoordinateDescentOptions
{
    uint64_t seed = 1;
    /** Random restarts (fresh start point after convergence). */
    int restarts = 2;
    /** Max coordinate sweeps per start. */
    int max_sweeps = 8;
};

/**
 * Randomized coordinate descent over the valid-config grid: from a
 * random valid start, repeatedly pick a coordinate order at random and
 * move each coordinate to its best valid candidate (holding the others
 * fixed) until a full sweep makes no progress.
 */
TuneResult coordinateDescent(const SearchSpace& space, const EvalFn& eval,
                             const CoordinateDescentOptions& options = {});

} // namespace tuner
} // namespace slapo
