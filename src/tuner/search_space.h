/**
 * @file
 * Symbolic search-space construction (§3.4, Fig. 6).
 *
 * Developers declare tunable variables with candidate values and add
 * constraints encoding domain knowledge — e.g. "checkpoint ratio
 * candidates depend on the batch size", which prunes the gray/white
 * regions of Fig. 6 and leaves a polygon instead of a rectangle. The
 * tuner algorithms (tuner.h) then explore only valid configurations.
 */
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "support/error.h"

namespace slapo {
namespace tuner {

/** One point of the search space: variable name -> chosen value. */
using Config = std::map<std::string, double>;

/** A tunable variable with its ordered candidate values. */
struct SymbolicVar
{
    std::string name;
    std::vector<double> candidates;
};

/** Predicate over a (complete) assignment; false prunes the config. */
using Constraint = std::function<bool(const Config&)>;

/** Declarative space of tunable schedule hyper-parameters. */
class SearchSpace
{
  public:
    /** Declare a variable with explicit candidates (kept in order). */
    void addVar(const std::string& name, std::vector<double> candidates);

    /** Add a validity constraint (evaluated on complete assignments). */
    void addConstraint(Constraint constraint);

    const std::vector<SymbolicVar>& vars() const { return vars_; }

    /** True if `config` assigns every variable a candidate value and
     * satisfies all constraints. */
    bool valid(const Config& config) const;

    /** All valid configurations (cartesian product minus pruned). */
    std::vector<Config> enumerate() const;

    /** Total cartesian size before pruning (Fig. 6 "rectangle"). */
    size_t cartesianSize() const;

  private:
    std::vector<SymbolicVar> vars_;
    std::vector<Constraint> constraints_;
};

} // namespace tuner
} // namespace slapo
