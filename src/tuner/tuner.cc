#include "tuner/tuner.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>

#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/run_log.h"
#include "obs/step_report.h"
#include "tensor/tensor.h"

namespace slapo {
namespace tuner {

namespace {

/** A Config rendered as a flat JSON object (for run-log records). */
std::string
configJson(const Config& config)
{
    std::string out = "{";
    bool first = true;
    for (const auto& [name, value] : config) {
        if (!first) out += ",";
        first = false;
        out += obs::json::quoted(name) + ":" + obs::json::number(value);
    }
    return out + "}";
}

/** Memoizing evaluation wrapper shared by both algorithms. */
class Evaluator
{
  public:
    explicit Evaluator(const EvalFn& eval) : eval_(eval) {}

    double
    operator()(const Config& config, TuneResult& result)
    {
        auto it = cache_.find(config);
        if (it != cache_.end()) {
            return it->second;
        }
        // Scoped metric window + wall clock per trial: trials see their
        // own contribution, not the accumulated run.
        const obs::MetricsDelta window;
        // With step reports enabled, profile the trial so the trial
        // record carries the same per-primitive breakdown a training
        // step would — "which primitive did this config spend its time
        // in" is exactly what the tuner's value number can't tell you.
        std::optional<obs::StepReportBuilder> report_builder;
        if (obs::stepReportsEnabled()) {
            report_builder.emplace(1);
        }
        const auto t0 = std::chrono::steady_clock::now();
        const double value = eval_(config);
        std::optional<obs::StepReport> report;
        if (report_builder) {
            report = report_builder->finish(
                static_cast<int64_t>(result.evaluated));
        }
        cache_.emplace(config, value);
        ++result.evaluated;
        result.history.emplace_back(config, value);
        const bool is_best = value > result.best_value;
        if (is_best) {
            result.best_value = value;
            result.best = config;
        }
        if (obs::RunLog* log = obs::runLog()) {
            const double eval_ms =
                std::chrono::duration_cast<
                    std::chrono::duration<double, std::milli>>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            obs::RunLogRecord record("tuner.trial");
            record.num("trial", static_cast<int64_t>(result.evaluated))
                .raw("config", configJson(config))
                .num("value", value)
                .flag("is_best", is_best)
                .num("eval_ms", eval_ms)
                .num("pg_wait_ns", window.get("pg.wait_ns"))
                .num("mem_peak_bytes", window.get("tensor.peak_bytes"));
            if (report) {
                record.raw("breakdown", report->primitivesJson());
            }
            log->write(record);
        }
        return value;
    }

  private:
    const EvalFn& eval_;
    std::map<Config, double> cache_;
};

} // namespace

TuneResult
exhaustiveSearch(const SearchSpace& space, const EvalFn& eval)
{
    TuneResult result;
    Evaluator evaluate(eval);
    for (const Config& config : space.enumerate()) {
        evaluate(config, result);
    }
    return result;
}

TuneResult
coordinateDescent(const SearchSpace& space, const EvalFn& eval,
                  const CoordinateDescentOptions& options)
{
    const std::vector<Config> valid = space.enumerate();
    TuneResult result;
    if (valid.empty()) {
        return result;
    }
    Evaluator evaluate(eval);
    Rng rng(options.seed);

    for (int restart = 0; restart < options.restarts; ++restart) {
        Config current = valid[rng.next() % valid.size()];
        double current_value = evaluate(current, result);

        for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
            bool improved = false;
            // Random coordinate order each sweep.
            std::vector<size_t> order(space.vars().size());
            for (size_t i = 0; i < order.size(); ++i) order[i] = i;
            for (size_t i = order.size(); i > 1; --i) {
                std::swap(order[i - 1], order[rng.next() % i]);
            }
            for (size_t coord : order) {
                const SymbolicVar& var = space.vars()[coord];
                Config best_move = current;
                double best_value = current_value;
                for (double candidate : var.candidates) {
                    if (candidate == current.at(var.name)) {
                        continue;
                    }
                    Config trial = current;
                    trial[var.name] = candidate;
                    if (!space.valid(trial)) {
                        continue;
                    }
                    const double value = evaluate(trial, result);
                    if (value > best_value) {
                        best_value = value;
                        best_move = std::move(trial);
                    }
                }
                if (best_value > current_value) {
                    current = std::move(best_move);
                    current_value = best_value;
                    improved = true;
                }
            }
            if (!improved) {
                break;
            }
        }
    }
    return result;
}

} // namespace tuner
} // namespace slapo
