#include "tuner/tuner.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>

#include "analysis/diagnostic.h"
#include "obs/json_util.h"
#include "obs/mem_profiler.h"
#include "obs/metrics.h"
#include "obs/run_log.h"
#include "obs/step_report.h"
#include "tensor/tensor.h"

namespace slapo {
namespace tuner {

namespace {

/** A Config rendered as a flat JSON object (for run-log records). */
std::string
configJson(const Config& config)
{
    std::string out = "{";
    bool first = true;
    for (const auto& [name, value] : config) {
        if (!first) out += ",";
        first = false;
        out += obs::json::quoted(name) + ":" + obs::json::number(value);
    }
    return out + "}";
}

/** Memoizing evaluation wrapper shared by both algorithms. */
class Evaluator
{
  public:
    explicit Evaluator(const EvalFn& eval) : eval_(eval) {}

    double
    operator()(const Config& config, TuneResult& result)
    {
        auto it = cache_.find(config);
        if (it != cache_.end()) {
            return it->second;
        }
        // Scoped metric window + wall clock per trial: trials see their
        // own contribution, not the accumulated run.
        const obs::MetricsDelta window;
        // With step reports enabled, profile the trial so the trial
        // record carries the same per-primitive breakdown a training
        // step would — "which primitive did this config spend its time
        // in" is exactly what the tuner's value number can't tell you.
        std::optional<obs::StepReportBuilder> report_builder;
        if (obs::stepReportsEnabled()) {
            report_builder.emplace(1);
        }
        // Measured memory per trial: an attribution window over the
        // eval, plus the sim's predicted peak when the eval ran the
        // performance model (obs::reportSimPeakBytes side channel).
        std::optional<obs::MemWindow> mem_window;
        if (obs::memProfilingEnabled()) {
            mem_window.emplace();
        }
        (void)obs::takeSimPeakBytes(); // drop any stale prediction
        const auto t0 = std::chrono::steady_clock::now();
        // Trial admission: a config whose schedule fails the static lint
        // is pruned for free — the gate fires before any tensor math, so
        // the trial costs microseconds and scores like any other
        // infeasible config (non-positive value).
        double value = 0.0;
        bool pruned_static = false;
        std::string lint_codes;
        try {
            value = eval_(config);
        } catch (const analysis::StaticLintError& e) {
            pruned_static = true;
            lint_codes = e.diagnostics().errorCodes();
        }
        const double sim_peak = obs::takeSimPeakBytes();
        std::optional<obs::StepReport> report;
        if (report_builder) {
            report = report_builder->finish(
                static_cast<int64_t>(result.evaluated));
        }
        const bool mem_measured = mem_window && mem_window->active();
        const int64_t mem_peak = mem_measured
                                     ? mem_window->peakBytes()
                                     : window.get("tensor.peak_bytes");
        // Budget pruning on *measured* peak: a config that exceeds the
        // memory budget is infeasible regardless of its throughput —
        // same contract as an EvalFn returning a non-positive value.
        const int64_t budget = obs::memBudgetBytes();
        const bool over_budget =
            mem_measured && budget >= 0 && mem_peak > budget;
        if (over_budget && value > 0) {
            value = 0;
        }
        cache_.emplace(config, value);
        ++result.evaluated;
        result.history.emplace_back(config, value);
        const bool is_best = value > result.best_value;
        if (is_best) {
            result.best_value = value;
            result.best = config;
        }
        if (obs::RunLog* log = obs::runLog()) {
            const double eval_ms =
                std::chrono::duration_cast<
                    std::chrono::duration<double, std::milli>>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            obs::RunLogRecord record("tuner.trial");
            record.num("trial", static_cast<int64_t>(result.evaluated))
                .raw("config", configJson(config))
                .num("value", value)
                .flag("is_best", is_best)
                .num("eval_ms", eval_ms)
                .num("pg_wait_ns", window.get("pg.wait_ns"))
                .num("mem_peak_bytes", mem_peak);
            if (mem_measured) {
                record.raw("mem_categories", mem_window->categoriesJson());
            }
            if (sim_peak >= 0) {
                // Close the loop with the paper's performance model:
                // predicted peak next to the measured one, and the
                // relative error of the prediction.
                record.num("mem_sim_peak_bytes", sim_peak);
                if (sim_peak > 0) {
                    record.num("mem_rel_error",
                               (static_cast<double>(mem_peak) - sim_peak) /
                                   sim_peak);
                }
            }
            if (over_budget) {
                record.flag("pruned_over_budget", true);
            }
            if (pruned_static) {
                record.flag("pruned_static", true)
                    .str("lint_codes", lint_codes);
            }
            if (report) {
                record.raw("breakdown", report->primitivesJson());
            }
            log->write(record);
        }
        return value;
    }

  private:
    const EvalFn& eval_;
    std::map<Config, double> cache_;
};

} // namespace

TuneResult
exhaustiveSearch(const SearchSpace& space, const EvalFn& eval)
{
    TuneResult result;
    Evaluator evaluate(eval);
    for (const Config& config : space.enumerate()) {
        evaluate(config, result);
    }
    return result;
}

TuneResult
coordinateDescent(const SearchSpace& space, const EvalFn& eval,
                  const CoordinateDescentOptions& options)
{
    const std::vector<Config> valid = space.enumerate();
    TuneResult result;
    if (valid.empty()) {
        return result;
    }
    Evaluator evaluate(eval);
    Rng rng(options.seed);

    for (int restart = 0; restart < options.restarts; ++restart) {
        Config current = valid[rng.next() % valid.size()];
        double current_value = evaluate(current, result);

        for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
            bool improved = false;
            // Random coordinate order each sweep.
            std::vector<size_t> order(space.vars().size());
            for (size_t i = 0; i < order.size(); ++i) order[i] = i;
            for (size_t i = order.size(); i > 1; --i) {
                std::swap(order[i - 1], order[rng.next() % i]);
            }
            for (size_t coord : order) {
                const SymbolicVar& var = space.vars()[coord];
                Config best_move = current;
                double best_value = current_value;
                for (double candidate : var.candidates) {
                    if (candidate == current.at(var.name)) {
                        continue;
                    }
                    Config trial = current;
                    trial[var.name] = candidate;
                    if (!space.valid(trial)) {
                        continue;
                    }
                    const double value = evaluate(trial, result);
                    if (value > best_value) {
                        best_value = value;
                        best_move = std::move(trial);
                    }
                }
                if (best_value > current_value) {
                    current = std::move(best_move);
                    current_value = best_value;
                    improved = true;
                }
            }
            if (!improved) {
                break;
            }
        }
    }
    return result;
}

} // namespace tuner
} // namespace slapo
