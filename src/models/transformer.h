/**
 * @file
 * Transformer model zoo mirroring the HuggingFace implementations the
 * paper evaluates (Table 2): encoder models (BERT, RoBERTa, ALBERT),
 * decoder models (GPT-Neo, OPT), and the encoder-decoder T5. All are
 * built from the nn building blocks so the same schedules the paper
 * applies (fused QKV, flash attention, sharding, checkpointing, pipeline
 * splits) apply here unchanged.
 */
#pragma once

#include <string>

#include "nn/layers.h"

namespace slapo {
namespace models {

/** Architecture hyper-parameters of one transformer model. */
struct TransformerConfig
{
    std::string name = "bert";
    int64_t vocab = 30522;
    int64_t hidden = 1024;
    int64_t layers = 24;
    int64_t heads = 16;
    int64_t intermediate = 4096;
    int64_t max_positions = 512;
    int64_t seq_len = 512;       ///< evaluation sequence length (Table 2)
    double dropout = 0.1;
    bool causal = false;         ///< decoder-style masked attention
    bool pre_norm = false;       ///< GPT/OPT pre-LN blocks
    int64_t embedding_size = 0;  ///< ALBERT factorized embedding (0 = hidden)
    int64_t decoder_layers = 0;  ///< T5 only
    int64_t decoder_seq_len = 0; ///< T5 only
    /**
     * T5-style relative position bias in self-attention (> 0 = bucket
     * count). The HF implementation detail that makes Megatron's
     * fixed-embedding T5 intrinsically faster (§5.2).
     */
    int64_t relative_buckets = 0;

    /** Scale all width/depth dims down by `factor` for numeric tests. */
    TransformerConfig scaled(int64_t hidden_, int64_t layers_, int64_t heads_,
                             int64_t vocab_, int64_t seq_) const;
};

/** BERT word+position embeddings (+LN +dropout). */
class BertEmbeddings : public nn::Module
{
  public:
    explicit BertEmbeddings(const TransformerConfig& config);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

  private:
    TransformerConfig config_;
};

/** GPT-style embeddings: word + position + dropout, no LN. */
class GptEmbeddings : public nn::Module
{
  public:
    explicit GptEmbeddings(const TransformerConfig& config);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

  private:
    TransformerConfig config_;
};

/** Post-norm encoder block: attention(self+output) then FFN (Fig. 1). */
class TransformerLayer : public nn::Module
{
  public:
    explicit TransformerLayer(const TransformerConfig& config);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

  private:
    TransformerConfig config_;
};

/** The attention sub-block: SelfAttention + Projection (HF layout). */
class AttentionBlock : public nn::Module
{
  public:
    AttentionBlock(const TransformerConfig& config, bool causal);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

  private:
    TransformerConfig config_;
    bool causal_;
};

/** Pre-LN decoder block (GPT-Neo / OPT style). */
class PreNormLayer : public nn::Module
{
  public:
    explicit PreNormLayer(const TransformerConfig& config);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

  private:
    TransformerConfig config_;
};

/** Stack container holding the "layer" Sequential (HF encoder). */
class Encoder : public nn::Module
{
  public:
    /** @param pre_norm build PreNormLayer blocks instead of post-norm. */
    Encoder(const TransformerConfig& config, bool pre_norm);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

  private:
    TransformerConfig config_;
    bool pre_norm_;
};

/** BERT head ("pooler" stage of Fig. 5): dense+tanh then vocab decoder. */
class PoolerHead : public nn::Module
{
  public:
    explicit PoolerHead(const TransformerConfig& config);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

  private:
    TransformerConfig config_;
};

/** GPT head: final LN + LM projection. */
class GptHead : public nn::Module
{
  public:
    explicit GptHead(const TransformerConfig& config);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

  private:
    TransformerConfig config_;
};

/**
 * Encoder-only MLM model (BERT / RoBERTa): embeddings → encoder → pooler,
 * a pure linear chain of children so `.pipeline_split()` partitioning
 * works exactly as in Fig. 5. Input: token ids [B, S]; output: logits
 * [B, S, vocab].
 */
class BertModel : public nn::Module
{
  public:
    explicit BertModel(const TransformerConfig& config,
                       const std::string& type_name = "BertModel");
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

    const TransformerConfig& config() const { return config_; }

  private:
    TransformerConfig config_;
};

/**
 * Decoder-only CLM model (GPT-Neo / OPT). The GPT-Neo *top module* is
 * flagged untraceable, reproducing the §5.1 observation that TorchScript
 * cannot capture it while Slapo still schedules its submodules.
 */
class GptModel : public nn::Module
{
  public:
    GptModel(const TransformerConfig& config,
             const std::string& type_name = "GptModel",
             bool top_traceable = false);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

    const TransformerConfig& config() const { return config_; }

  private:
    TransformerConfig config_;
    bool top_traceable_;
};

/** ALBERT: factorized embedding + a single *shared* layer applied
 * `layers` times — scheduling the shared layer once schedules them all. */
class AlbertModel : public nn::Module
{
  public:
    explicit AlbertModel(const TransformerConfig& config);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

    const TransformerConfig& config() const { return config_; }

  private:
    TransformerConfig config_;
};

/** Cross-attention block of the T5 decoder: q from x, k/v from memory. */
class CrossAttentionBlock : public nn::Module
{
  public:
    explicit CrossAttentionBlock(const TransformerConfig& config);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

  private:
    TransformerConfig config_;
};

/** T5 decoder block: causal self-attention, cross-attention, FFN. */
class T5DecoderLayer : public nn::Module
{
  public:
    explicit T5DecoderLayer(const TransformerConfig& config);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

  private:
    TransformerConfig config_;
};

/** Seq2Seq model (T5). Inputs: (src_ids, tgt_ids); output: logits. */
class T5Model : public nn::Module
{
  public:
    explicit T5Model(const TransformerConfig& config);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

    const TransformerConfig& config() const { return config_; }

  private:
    TransformerConfig config_;
};

} // namespace models
} // namespace slapo
