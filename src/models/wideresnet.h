/**
 * @file
 * WideResNet (Zagoruyko & Komodakis) — the image-classification entry of
 * Table 2 (~250M params, 3x224x224, FP32). Built from Conv2d/BatchNorm2d
 * leaves so module-level schedule primitives (replace, checkpoint, shard)
 * apply; vision kernels are forward/simulation-only in this repo.
 */
#pragma once

#include "nn/layers.h"

namespace slapo {
namespace models {

/** WRN configuration: depth = 6n + 4, width multiplier k. */
struct WideResNetConfig
{
    std::string name = "wideresnet";
    int64_t depth = 28;       ///< total conv depth (28 -> n = 4 per group)
    int64_t width = 26;       ///< widening factor k (~250M params)
    int64_t num_classes = 1000;
    int64_t image_size = 224; ///< Table 2 input resolution
    int64_t batch_image_size = 224;
};

/** One pre-activation residual block: BN-ReLU-Conv x2 (+1x1 shortcut). */
class WideResNetBlock : public nn::Module
{
  public:
    WideResNetBlock(int64_t in_channels, int64_t out_channels, int64_t stride);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

    int64_t inChannels() const { return in_channels_; }

  private:
    int64_t in_channels_;
    int64_t out_channels_;
    int64_t stride_;
};

/** The full WRN-depth-width model: stem conv, 3 groups, GAP + classifier. */
class WideResNet : public nn::Module
{
  public:
    explicit WideResNet(const WideResNetConfig& config);
    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

    const WideResNetConfig& config() const { return config_; }

  private:
    WideResNetConfig config_;
};

} // namespace models
} // namespace slapo
