#include "models/transformer.h"

namespace slapo {
namespace models {

using nn::Module;
using nn::ModulePtr;
using nn::Value;

TransformerConfig
TransformerConfig::scaled(int64_t hidden_, int64_t layers_, int64_t heads_,
                          int64_t vocab_, int64_t seq_) const
{
    TransformerConfig c = *this;
    c.hidden = hidden_;
    c.layers = layers_;
    c.heads = heads_;
    c.vocab = vocab_;
    c.seq_len = seq_;
    c.max_positions = std::max<int64_t>(c.max_positions, seq_);
    c.intermediate = 4 * hidden_;
    if (c.embedding_size > 0) {
        c.embedding_size = std::min<int64_t>(c.embedding_size, hidden_);
    }
    if (c.decoder_layers > 0) {
        c.decoder_layers = layers_;
        c.decoder_seq_len = seq_;
    }
    return c;
}

// --- embeddings ---------------------------------------------------------------

BertEmbeddings::BertEmbeddings(const TransformerConfig& config)
    : Module("BertEmbeddings"), config_(config)
{
    registerChild("word", std::make_shared<nn::Embedding>(config.vocab,
                                                          config.hidden));
    registerChild("pos", std::make_shared<nn::PositionalEmbedding>(
                             config.max_positions, config.hidden));
    registerChild("norm", std::make_shared<nn::LayerNorm>(config.hidden));
    registerChild("dropout", std::make_shared<nn::Dropout>(config.dropout));
}

std::vector<Value>
BertEmbeddings::forward(const std::vector<Value>& inputs)
{
    Value h = callChildOne("word", {inputs[0]});
    h = callChildOne("pos", {h});
    h = callChildOne("norm", {h});
    return {callChildOne("dropout", {h})};
}

ModulePtr
BertEmbeddings::clone() const
{
    auto m = std::make_shared<BertEmbeddings>(config_);
    cloneInto(m.get());
    return m;
}

GptEmbeddings::GptEmbeddings(const TransformerConfig& config)
    : Module("GptEmbeddings"), config_(config)
{
    registerChild("word", std::make_shared<nn::Embedding>(config.vocab,
                                                          config.hidden));
    registerChild("pos", std::make_shared<nn::PositionalEmbedding>(
                             config.max_positions, config.hidden));
    registerChild("dropout", std::make_shared<nn::Dropout>(config.dropout));
}

std::vector<Value>
GptEmbeddings::forward(const std::vector<Value>& inputs)
{
    Value h = callChildOne("word", {inputs[0]});
    h = callChildOne("pos", {h});
    return {callChildOne("dropout", {h})};
}

ModulePtr
GptEmbeddings::clone() const
{
    auto m = std::make_shared<GptEmbeddings>(config_);
    cloneInto(m.get());
    return m;
}

// --- blocks ---------------------------------------------------------------

AttentionBlock::AttentionBlock(const TransformerConfig& config, bool causal)
    : Module("AttentionBlock"), config_(config), causal_(causal)
{
    registerChild("self", std::make_shared<nn::SelfAttention>(
                              config.hidden, config.heads, config.dropout,
                              causal, config.relative_buckets));
    registerChild("output", std::make_shared<nn::Projection>(
                                config.hidden, config.dropout,
                                config.pre_norm));
}

std::vector<Value>
AttentionBlock::forward(const std::vector<Value>& inputs)
{
    const Value& x = inputs[0];
    // Pre-norm callers pass (normed_x, residual); post-norm pass (x).
    const Value& residual = inputs.size() > 1 ? inputs[1] : x;
    Value context = callChildOne("self", {x});
    return {callChildOne("output", {context, residual})};
}

ModulePtr
AttentionBlock::clone() const
{
    auto m = std::make_shared<AttentionBlock>(config_, causal_);
    cloneInto(m.get());
    return m;
}

TransformerLayer::TransformerLayer(const TransformerConfig& config)
    : Module("TransformerLayer"), config_(config)
{
    registerChild("attention",
                  std::make_shared<AttentionBlock>(config, config.causal));
    registerChild("ffn", std::make_shared<nn::FFN>(config.hidden,
                                                   config.intermediate,
                                                   config.dropout, false));
}

std::vector<Value>
TransformerLayer::forward(const std::vector<Value>& inputs)
{
    Value h = callChildOne("attention", {inputs[0]});
    return {callChildOne("ffn", {h})};
}

ModulePtr
TransformerLayer::clone() const
{
    auto m = std::make_shared<TransformerLayer>(config_);
    cloneInto(m.get());
    return m;
}

PreNormLayer::PreNormLayer(const TransformerConfig& config)
    : Module("PreNormLayer"), config_(config)
{
    registerChild("ln1", std::make_shared<nn::LayerNorm>(config.hidden));
    registerChild("attention", std::make_shared<AttentionBlock>(config, true));
    registerChild("ln2", std::make_shared<nn::LayerNorm>(config.hidden));
    registerChild("ffn", std::make_shared<nn::FFN>(config.hidden,
                                                   config.intermediate,
                                                   config.dropout,
                                                   /*pre_norm=*/true));
}

std::vector<Value>
PreNormLayer::forward(const std::vector<Value>& inputs)
{
    const Value& x = inputs[0];
    Value a = callChildOne("ln1", {x});
    Value h = callChildOne("attention", {a, x});
    Value f = callChildOne("ln2", {h});
    return {callChildOne("ffn", {f, h})};
}

ModulePtr
PreNormLayer::clone() const
{
    auto m = std::make_shared<PreNormLayer>(config_);
    cloneInto(m.get());
    return m;
}

Encoder::Encoder(const TransformerConfig& config, bool pre_norm)
    : Module("Encoder"), config_(config), pre_norm_(pre_norm)
{
    auto layers = std::make_shared<nn::Sequential>();
    for (int64_t i = 0; i < config.layers; ++i) {
        if (pre_norm) {
            layers->append(std::make_shared<PreNormLayer>(config));
        } else {
            layers->append(std::make_shared<TransformerLayer>(config));
        }
    }
    registerChild("layer", layers);
}

std::vector<Value>
Encoder::forward(const std::vector<Value>& inputs)
{
    return callChild("layer", inputs);
}

ModulePtr
Encoder::clone() const
{
    auto m = std::make_shared<Encoder>(config_, pre_norm_);
    cloneInto(m.get());
    return m;
}

// --- heads ---------------------------------------------------------------

PoolerHead::PoolerHead(const TransformerConfig& config)
    : Module("Pooler"), config_(config)
{
    registerChild("dense", std::make_shared<nn::Linear>(config.hidden,
                                                        config.hidden));
    registerChild("act",
                  std::make_shared<nn::Activation>(nn::Activation::Kind::Tanh));
    registerChild("decoder", std::make_shared<nn::Linear>(config.hidden,
                                                          config.vocab));
}

std::vector<Value>
PoolerHead::forward(const std::vector<Value>& inputs)
{
    Value h = callChildOne("dense", {inputs[0]});
    h = callChildOne("act", {h});
    return {callChildOne("decoder", {h})};
}

ModulePtr
PoolerHead::clone() const
{
    auto m = std::make_shared<PoolerHead>(config_);
    cloneInto(m.get());
    return m;
}

GptHead::GptHead(const TransformerConfig& config)
    : Module("GptHead"), config_(config)
{
    registerChild("ln_f", std::make_shared<nn::LayerNorm>(config.hidden));
    registerChild("lm_head", std::make_shared<nn::Linear>(config.hidden,
                                                          config.vocab,
                                                          /*bias=*/false));
}

std::vector<Value>
GptHead::forward(const std::vector<Value>& inputs)
{
    Value h = callChildOne("ln_f", {inputs[0]});
    return {callChildOne("lm_head", {h})};
}

ModulePtr
GptHead::clone() const
{
    auto m = std::make_shared<GptHead>(config_);
    cloneInto(m.get());
    return m;
}

// --- models ---------------------------------------------------------------

BertModel::BertModel(const TransformerConfig& config,
                     const std::string& type_name)
    : Module(type_name), config_(config)
{
    registerChild("embeddings", std::make_shared<BertEmbeddings>(config));
    registerChild("encoder", std::make_shared<Encoder>(config, false));
    registerChild("pooler", std::make_shared<PoolerHead>(config));
}

std::vector<Value>
BertModel::forward(const std::vector<Value>& inputs)
{
    Value h = callChildOne("embeddings", {inputs[0]});
    h = callChildOne("encoder", {h});
    return {callChildOne("pooler", {h})};
}

ModulePtr
BertModel::clone() const
{
    auto m = std::make_shared<BertModel>(config_, typeName());
    cloneInto(m.get());
    return m;
}

GptModel::GptModel(const TransformerConfig& config,
                   const std::string& type_name, bool top_traceable)
    : Module(type_name), config_(config), top_traceable_(top_traceable)
{
    registerChild("embeddings", std::make_shared<GptEmbeddings>(config));
    registerChild("decoder", std::make_shared<Encoder>(config, true));
    registerChild("head", std::make_shared<GptHead>(config));
    // GPT-Neo's HF implementation cannot be captured by whole-model
    // tracers (§5.1); submodules remain individually traceable.
    setTraceable(top_traceable);
}

std::vector<Value>
GptModel::forward(const std::vector<Value>& inputs)
{
    Value h = callChildOne("embeddings", {inputs[0]});
    h = callChildOne("decoder", {h});
    return {callChildOne("head", {h})};
}

ModulePtr
GptModel::clone() const
{
    auto m = std::make_shared<GptModel>(config_, typeName(), top_traceable_);
    cloneInto(m.get());
    return m;
}

AlbertModel::AlbertModel(const TransformerConfig& config)
    : Module("AlbertModel"), config_(config)
{
    SLAPO_CHECK(config.embedding_size > 0,
                "AlbertModel requires a factorized embedding_size");
    TransformerConfig emb_config = config;
    emb_config.hidden = config.embedding_size;
    registerChild("embeddings", std::make_shared<BertEmbeddings>(emb_config));
    registerChild("proj", std::make_shared<nn::Linear>(config.embedding_size,
                                                       config.hidden));
    registerChild("shared_layer", std::make_shared<TransformerLayer>(config));
    registerChild("head_proj", std::make_shared<nn::Linear>(
                                   config.hidden, config.embedding_size));
    registerChild("decoder", std::make_shared<nn::Linear>(
                                 config.embedding_size, config.vocab));
}

std::vector<Value>
AlbertModel::forward(const std::vector<Value>& inputs)
{
    Value h = callChildOne("embeddings", {inputs[0]});
    h = callChildOne("proj", {h});
    for (int64_t i = 0; i < config_.layers; ++i) {
        h = callChildOne("shared_layer", {h});
    }
    h = callChildOne("head_proj", {h});
    return {callChildOne("decoder", {h})};
}

ModulePtr
AlbertModel::clone() const
{
    auto m = std::make_shared<AlbertModel>(config_);
    cloneInto(m.get());
    return m;
}

CrossAttentionBlock::CrossAttentionBlock(const TransformerConfig& config)
    : Module("CrossAttentionBlock"), config_(config)
{
    registerChild("query", std::make_shared<nn::Linear>(config.hidden,
                                                        config.hidden));
    registerChild("key", std::make_shared<nn::Linear>(config.hidden,
                                                      config.hidden));
    registerChild("value", std::make_shared<nn::Linear>(config.hidden,
                                                        config.hidden));
    registerChild("core", std::make_shared<nn::CoreAttention>(
                              config.hidden / config.heads, config.dropout,
                              /*causal=*/false));
    registerChild("output", std::make_shared<nn::Projection>(config.hidden,
                                                             config.dropout));
}

std::vector<Value>
CrossAttentionBlock::forward(const std::vector<Value>& inputs)
{
    SLAPO_CHECK(inputs.size() == 2,
                "CrossAttentionBlock: expects (x, memory), got "
                    << inputs.size() << " inputs");
    const Value& x = inputs[0];
    const Value& memory = inputs[1];
    Value q = callChildOne("query", {x});
    Value k = callChildOne("key", {memory});
    Value v = callChildOne("value", {memory});
    Value context = callChildOne("core", {q, k, v});
    return {callChildOne("output", {context, x})};
}

ModulePtr
CrossAttentionBlock::clone() const
{
    auto m = std::make_shared<CrossAttentionBlock>(config_);
    cloneInto(m.get());
    return m;
}

T5DecoderLayer::T5DecoderLayer(const TransformerConfig& config)
    : Module("T5DecoderLayer"), config_(config)
{
    registerChild("self_attention",
                  std::make_shared<AttentionBlock>(config, /*causal=*/true));
    registerChild("cross_attention",
                  std::make_shared<CrossAttentionBlock>(config));
    registerChild("ffn", std::make_shared<nn::FFN>(config.hidden,
                                                   config.intermediate,
                                                   config.dropout, false));
}

std::vector<Value>
T5DecoderLayer::forward(const std::vector<Value>& inputs)
{
    SLAPO_CHECK(inputs.size() == 2,
                "T5DecoderLayer: expects (x, memory), got " << inputs.size()
                                                            << " inputs");
    Value h = callChildOne("self_attention", {inputs[0]});
    h = callChildOne("cross_attention", {h, inputs[1]});
    return {callChildOne("ffn", {h})};
}

ModulePtr
T5DecoderLayer::clone() const
{
    auto m = std::make_shared<T5DecoderLayer>(config_);
    cloneInto(m.get());
    return m;
}

namespace {

/** Decoder stack threading the encoder memory into every layer. */
class T5DecoderStack : public Module
{
  public:
    explicit T5DecoderStack(const TransformerConfig& config)
        : Module("T5DecoderStack"), layers_(config.decoder_layers)
    {
        for (int64_t i = 0; i < layers_; ++i) {
            registerChild(std::to_string(i),
                          std::make_shared<T5DecoderLayer>(config));
        }
    }

    std::vector<Value>
    forward(const std::vector<Value>& inputs) override
    {
        SLAPO_CHECK(inputs.size() == 2,
                    "T5DecoderStack: expects (x, memory), got "
                        << inputs.size() << " inputs");
        Value h = inputs[0];
        const Value& memory = inputs[1];
        for (int64_t i = 0; i < layers_; ++i) {
            h = callChildOne(std::to_string(i), {h, memory});
        }
        return {h};
    }

    ModulePtr
    clone() const override
    {
        TransformerConfig dummy;
        dummy.decoder_layers = 0; // children restored by cloneInto
        auto m = std::shared_ptr<T5DecoderStack>(new T5DecoderStack(dummy));
        m->layers_ = layers_;
        cloneInto(m.get());
        return m;
    }

  private:
    int64_t layers_;
};

} // namespace

T5Model::T5Model(const TransformerConfig& config)
    : Module("T5Model"), config_(config)
{
    SLAPO_CHECK(config.decoder_layers > 0, "T5Model needs decoder_layers");
    registerChild("enc_embeddings", std::make_shared<BertEmbeddings>(config));
    registerChild("encoder", std::make_shared<Encoder>(config, false));
    registerChild("dec_embeddings", std::make_shared<BertEmbeddings>(config));
    registerChild("decoder", std::make_shared<T5DecoderStack>(config));
    registerChild("head", std::make_shared<nn::Linear>(config.hidden,
                                                       config.vocab,
                                                       /*bias=*/false));
}

std::vector<Value>
T5Model::forward(const std::vector<Value>& inputs)
{
    SLAPO_CHECK(inputs.size() == 2,
                "T5Model: expects (src_ids, tgt_ids), got " << inputs.size()
                                                            << " inputs");
    Value memory = callChildOne("encoder",
                                {callChildOne("enc_embeddings", {inputs[0]})});
    Value h = callChildOne("dec_embeddings", {inputs[1]});
    h = callChildOne("decoder", {h, memory});
    return {callChildOne("head", {h})};
}

ModulePtr
T5Model::clone() const
{
    auto m = std::make_shared<T5Model>(config_);
    cloneInto(m.get());
    return m;
}

} // namespace models
} // namespace slapo
