#include "models/dataset.h"

#include <cmath>

#include "models/registry.h"

namespace slapo {
namespace models {

std::vector<Tensor>
Batch::withTargets() const
{
    std::vector<Tensor> all = inputs;
    all.push_back(targets);
    return all;
}

SyntheticDataset::SyntheticDataset(std::string task, int64_t vocab,
                                   int64_t seq_len, uint64_t seed)
    : task_(std::move(task)), vocab_(vocab), seq_len_(seq_len), seed_(seed)
{
    SLAPO_CHECK(task_ == "MLM" || task_ == "CLM" || task_ == "Seq2Seq" ||
                    task_ == "IC",
                "SyntheticDataset: unknown task '" << task_ << "'");
    SLAPO_CHECK(vocab_ >= 4 && seq_len_ >= 2,
                "SyntheticDataset: degenerate vocab/seq");
}

int64_t
SyntheticDataset::sampleToken(Rng& rng) const
{
    // Inverse-CDF sample of a Zipf(s=1) distribution over the vocabulary
    // via the approximation rank = exp(u * ln V): heavily favors small
    // ids, like natural-language unigram frequencies.
    const double u = rng.uniform();
    const double rank =
        std::exp(u * std::log(static_cast<double>(vocab_ - 1)));
    const int64_t token = static_cast<int64_t>(rank) - 1;
    return std::min(std::max<int64_t>(token, 0), vocab_ - 2);
}

Batch
SyntheticDataset::batch(int64_t batch_size, int64_t index) const
{
    Rng rng(seed_ * 0x9e3779b9ULL + static_cast<uint64_t>(index) * 2654435761ULL + 1);
    Batch out;

    if (task_ == "IC") {
        Tensor pixels = Tensor::zeros({batch_size, 3, seq_len_, seq_len_});
        float* p = pixels.data();
        for (int64_t i = 0; i < pixels.numel(); ++i) {
            p[i] = rng.uniform(-1.0f, 1.0f);
        }
        Tensor labels = Tensor::zeros({batch_size});
        for (int64_t b = 0; b < batch_size; ++b) {
            labels.set(b, static_cast<float>(
                              rng.next() % static_cast<uint64_t>(vocab_)));
        }
        out.inputs = {pixels};
        out.targets = labels;
        return out;
    }

    auto sample_stream = [&](int64_t len) {
        Tensor ids = Tensor::zeros({batch_size, len});
        for (int64_t i = 0; i < ids.numel(); ++i) {
            ids.set(i, static_cast<float>(sampleToken(rng)));
        }
        return ids;
    };

    if (task_ == "MLM") {
        Tensor ids = sample_stream(seq_len_);
        Tensor labels = ids.clone();
        // Mask 15% of positions; the model must reconstruct the original.
        for (int64_t i = 0; i < ids.numel(); ++i) {
            if (rng.uniform() < 0.15f) {
                ids.set(i, static_cast<float>(maskToken()));
            }
        }
        out.inputs = {ids};
        out.targets = labels;
        return out;
    }

    if (task_ == "CLM") {
        Tensor ids = sample_stream(seq_len_ + 1);
        out.inputs = {sliceSeq(ids, 0)};
        out.targets = sliceSeq(ids, 1);
        return out;
    }

    // Seq2Seq: independent source; labels = target shifted left.
    Tensor src = sample_stream(seq_len_);
    Tensor tgt = sample_stream(seq_len_ + 1);
    out.inputs = {src, sliceSeq(tgt, 0)};
    out.targets = sliceSeq(tgt, 1);
    return out;
}

Tensor
SyntheticDataset::sliceSeq(const Tensor& ids, int64_t offset) const
{
    // Slice [offset, offset + seq_len) along the sequence axis.
    Tensor out = Tensor::zeros({ids.size(0), seq_len_});
    const int64_t full = ids.size(1);
    for (int64_t b = 0; b < ids.size(0); ++b) {
        for (int64_t s = 0; s < seq_len_; ++s) {
            out.set(b * seq_len_ + s, ids.at(b * full + offset + s));
        }
    }
    return out;
}

std::string
taskOf(const std::string& model_name)
{
    return modelInfo(model_name).task;
}

} // namespace models
} // namespace slapo
