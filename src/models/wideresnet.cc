#include "models/wideresnet.h"

namespace slapo {
namespace models {

using nn::ModulePtr;
using nn::Value;

WideResNetBlock::WideResNetBlock(int64_t in_channels, int64_t out_channels,
                                 int64_t stride)
    : Module("WideResNetBlock"),
      in_channels_(in_channels),
      out_channels_(out_channels),
      stride_(stride)
{
    registerChild("bn1", std::make_shared<nn::BatchNorm2d>(in_channels));
    registerChild("relu1",
                  std::make_shared<nn::Activation>(nn::Activation::Kind::Relu));
    registerChild("conv1", std::make_shared<nn::Conv2d>(in_channels,
                                                        out_channels, 3,
                                                        stride, 1));
    registerChild("bn2", std::make_shared<nn::BatchNorm2d>(out_channels));
    registerChild("relu2",
                  std::make_shared<nn::Activation>(nn::Activation::Kind::Relu));
    registerChild("conv2", std::make_shared<nn::Conv2d>(out_channels,
                                                        out_channels, 3, 1, 1));
    if (in_channels != out_channels || stride != 1) {
        registerChild("shortcut", std::make_shared<nn::Conv2d>(
                                      in_channels, out_channels, 1, stride, 0));
    }
}

std::vector<Value>
WideResNetBlock::forward(const std::vector<Value>& inputs)
{
    const Value& x = inputs[0];
    Value h = callChildOne("bn1", {x});
    h = callChildOne("relu1", {h});
    Value pre = h; // pre-activation feeds the projection shortcut
    h = callChildOne("conv1", {h});
    h = callChildOne("bn2", {h});
    h = callChildOne("relu2", {h});
    h = callChildOne("conv2", {h});
    Value skip = hasChild("shortcut") ? callChildOne("shortcut", {pre}) : x;
    return {nn::F::add(h, skip)};
}

ModulePtr
WideResNetBlock::clone() const
{
    auto m = std::make_shared<WideResNetBlock>(in_channels_, out_channels_,
                                               stride_);
    cloneInto(m.get());
    return m;
}

WideResNet::WideResNet(const WideResNetConfig& config)
    : Module("WideResNet"), config_(config)
{
    SLAPO_CHECK((config.depth - 4) % 6 == 0,
                "WideResNet: depth must be 6n + 4, got " << config.depth);
    const int64_t n = (config.depth - 4) / 6;
    const int64_t widths[3] = {16 * config.width, 32 * config.width,
                               64 * config.width};

    registerChild("stem", std::make_shared<nn::Conv2d>(3, 16, 3, 2, 1));
    int64_t channels = 16;
    for (int g = 0; g < 3; ++g) {
        auto group = std::make_shared<nn::Sequential>();
        for (int64_t b = 0; b < n; ++b) {
            const int64_t stride = b == 0 ? 2 : 1;
            group->append(std::make_shared<WideResNetBlock>(channels,
                                                            widths[g], stride));
            channels = widths[g];
        }
        registerChild("group" + std::to_string(g + 1), group);
    }
    registerChild("bn_final", std::make_shared<nn::BatchNorm2d>(channels));
    registerChild("relu_final",
                  std::make_shared<nn::Activation>(nn::Activation::Kind::Relu));
    registerChild("classifier", std::make_shared<nn::Linear>(
                                    channels, config.num_classes));
}

std::vector<Value>
WideResNet::forward(const std::vector<Value>& inputs)
{
    Value h = callChildOne("stem", {inputs[0]});
    h = callChildOne("group1", {h});
    h = callChildOne("group2", {h});
    h = callChildOne("group3", {h});
    h = callChildOne("bn_final", {h});
    h = callChildOne("relu_final", {h});
    h = nn::F::globalAvgPool(h);
    return {callChildOne("classifier", {h})};
}

ModulePtr
WideResNet::clone() const
{
    auto m = std::make_shared<WideResNet>(config_);
    cloneInto(m.get());
    return m;
}

} // namespace models
} // namespace slapo
