/**
 * @file
 * Model registry implementing Table 2 of the paper: the seven evaluated
 * models with their parameter counts, sequence lengths, and precisions,
 * at both the single-device and the multi-node scales, plus the GPT-10B
 * configuration of Fig. 9 and tiny variants for numeric tests.
 */
#pragma once

#include <string>
#include <vector>

#include "models/transformer.h"
#include "models/wideresnet.h"

namespace slapo {
namespace models {

/** One Table 2 row. */
struct ModelInfo
{
    std::string name;       ///< "bert", "roberta", "albert", "gpt", "opt",
                            ///< "t5", "wideresnet"
    std::string task;       ///< MLM / CLM / Seq2Seq / IC
    double paper_params_m[2] = {0, 0}; ///< Table 2 "# of params (Million)"
    int64_t seq_len = 0;    ///< sequence length / image size
    std::string precision;  ///< "FP16" or "FP32"
    bool megatron_supported = false; ///< Megatron-LM implements it (§5.2)
    bool torchscript_supported = true; ///< TorchScript can trace it (§5.1)
};

/** All Table 2 rows in paper order. */
const std::vector<ModelInfo>& table2();

/** Info row for a model name (throws on unknown name). */
const ModelInfo& modelInfo(const std::string& name);

/**
 * Build a paper-scale model (meta parameters). `variant` selects the
 * Table 2 size column: 0 = single-device/node size, 1 = the larger size
 * where the paper lists one (GPT 1.3B, T5 770M).
 */
nn::ModulePtr buildModel(const std::string& name, int variant = 0);

/** The Table 2 transformer config (throws for "wideresnet"). */
TransformerConfig modelConfig(const std::string& name, int variant = 0);

/** The GPT-10B configuration used by the Fig. 9 multi-machine study. */
TransformerConfig gpt10BConfig();
nn::ModulePtr buildGpt10B();

/**
 * A tiny, numerically-runnable variant of a model (materialized-friendly
 * sizes) for tests and examples; dropout disabled so schedules verify
 * exactly.
 */
nn::ModulePtr buildTinyModel(const std::string& name);
TransformerConfig tinyConfig(const std::string& name);

} // namespace models
} // namespace slapo
