/**
 * @file
 * Synthetic training workloads for the Table 2 tasks — the stand-in for
 * the corpora the paper trains on (see DESIGN.md §2: no production data
 * here, so we generate token streams with a Zipfian unigram distribution,
 * which preserves the only property the systems experiments care about:
 * realistic id/label tensors of the right shapes for each task).
 *
 *  - MLM (BERT/RoBERTa/ALBERT): 15% of positions masked; labels carry
 *    the original token there and an ignore-marker elsewhere (we train
 *    on all positions for simplicity — labels equal the input where not
 *    masked).
 *  - CLM (GPT/OPT): labels are the inputs shifted left by one.
 *  - Seq2Seq (T5): independent source and target streams; labels are
 *    the target shifted left.
 *  - IC (WideResNet): uniform pixel tensors + class labels.
 */
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace slapo {
namespace models {

/** One training example batch: model inputs followed by the target. */
struct Batch
{
    /** Inputs in model order (ids; or src_ids, tgt_ids; or pixels). */
    std::vector<Tensor> inputs;
    /** Integer targets, flattened to the model's logit leading dims. */
    Tensor targets;

    /** inputs + targets, the tuple a loss-headed model consumes. */
    std::vector<Tensor> withTargets() const;
};

/** Deterministic synthetic dataset for one Table 2 task. */
class SyntheticDataset
{
  public:
    /**
     * @param task "MLM" | "CLM" | "Seq2Seq" | "IC" (Table 2 names).
     * @param vocab vocabulary size (or class count for IC).
     * @param seq_len sequence length (or image size for IC).
     * @param seed base seed; batch i of two equally-seeded datasets is
     *        identical (data-parallel tests rely on this).
     */
    SyntheticDataset(std::string task, int64_t vocab, int64_t seq_len,
                     uint64_t seed = 1);

    /** The `index`-th batch of the given size (stateless, random access). */
    Batch batch(int64_t batch_size, int64_t index) const;

    const std::string& task() const { return task_; }

    /** Mask token id used by MLM batches (vocab - 1). */
    int64_t maskToken() const { return vocab_ - 1; }

  private:
    /** Zipf-distributed token sample in [0, vocab). */
    int64_t sampleToken(Rng& rng) const;

    /** Slice [offset, offset + seq_len) along the sequence axis. */
    Tensor sliceSeq(const Tensor& ids, int64_t offset) const;

    std::string task_;
    int64_t vocab_;
    int64_t seq_len_;
    uint64_t seed_;
};

/** The Table 2 task name of a registry model ("bert" -> "MLM", ...). */
std::string taskOf(const std::string& model_name);

} // namespace models
} // namespace slapo
