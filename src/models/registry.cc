#include "models/registry.h"

namespace slapo {
namespace models {

const std::vector<ModelInfo>&
table2()
{
    static const std::vector<ModelInfo> kRows = {
        {"bert", "MLM", {335, 335}, 512, "FP16", true, true},
        {"roberta", "MLM", {355, 355}, 512, "FP16", false, true},
        {"albert", "MLM", {177, 177}, 512, "FP16", false, true},
        {"gpt", "CLM", {125, 1300}, 1024, "FP16", true, false},
        {"opt", "CLM", {350, 350}, 1024, "FP16", false, true},
        {"t5", "Seq2Seq", {223, 770}, 1024, "FP16", true, true},
        {"wideresnet", "IC", {250, 250}, 224, "FP32", false, true},
    };
    return kRows;
}

const ModelInfo&
modelInfo(const std::string& name)
{
    for (const ModelInfo& info : table2()) {
        if (info.name == name) {
            return info;
        }
    }
    SLAPO_THROW("unknown model '" << name << "'");
}

TransformerConfig
modelConfig(const std::string& name, int variant)
{
    TransformerConfig c;
    c.name = name;
    if (name == "bert") {
        // bert-large-uncased
        c.vocab = 30522;
        c.hidden = 1024;
        c.layers = 24;
        c.heads = 16;
        c.intermediate = 4096;
        c.max_positions = 512;
        c.seq_len = 512;
    } else if (name == "roberta") {
        // roberta-large
        c.vocab = 50265;
        c.hidden = 1024;
        c.layers = 24;
        c.heads = 16;
        c.intermediate = 4096;
        c.max_positions = 512;
        c.seq_len = 512;
    } else if (name == "albert") {
        // ALBERT with a single shared layer sized to ~177M params
        c.vocab = 30000;
        c.hidden = 3840;
        c.layers = 12; // layer applications, all sharing one module
        c.heads = 16;
        c.intermediate = 15360;
        c.max_positions = 512;
        c.seq_len = 512;
        c.embedding_size = 128;
    } else if (name == "gpt") {
        // GPT-Neo 125M / 1.3B
        c.vocab = 50257;
        c.causal = true;
        c.pre_norm = true;
        c.max_positions = 2048;
        c.seq_len = 1024;
        if (variant == 0) {
            c.hidden = 768;
            c.layers = 12;
            c.heads = 12;
            c.intermediate = 3072;
        } else {
            c.hidden = 2048;
            c.layers = 24;
            c.heads = 16;
            c.intermediate = 8192;
        }
    } else if (name == "opt") {
        // OPT-350M
        c.vocab = 50272;
        c.hidden = 1024;
        c.layers = 24;
        c.heads = 16;
        c.intermediate = 4096;
        c.causal = true;
        c.pre_norm = true;
        c.max_positions = 2048;
        c.seq_len = 1024;
    } else if (name == "t5") {
        // t5-base / t5-large, encoder seq 1024 / decoder seq 512 (Table 2)
        c.vocab = 32128;
        c.max_positions = 1024;
        c.seq_len = 1024;
        c.decoder_seq_len = 512;
        c.relative_buckets = 32; // HF T5's relative position bias
        if (variant == 0) {
            c.hidden = 768;
            c.layers = 12;
            c.decoder_layers = 12;
            c.heads = 12;
            c.intermediate = 3072;
        } else {
            c.hidden = 1024;
            c.layers = 24;
            c.decoder_layers = 24;
            c.heads = 16;
            c.intermediate = 4096;
        }
    } else {
        SLAPO_THROW("modelConfig: '" << name << "' is not a transformer");
    }
    return c;
}

nn::ModulePtr
buildModel(const std::string& name, int variant)
{
    if (name == "wideresnet") {
        WideResNetConfig config; // WRN-28-26 ~= 250M params
        return std::make_shared<WideResNet>(config);
    }
    const TransformerConfig c = modelConfig(name, variant);
    if (name == "bert") {
        return std::make_shared<BertModel>(c, "BertModel");
    }
    if (name == "roberta") {
        return std::make_shared<BertModel>(c, "RobertaModel");
    }
    if (name == "albert") {
        return std::make_shared<AlbertModel>(c);
    }
    if (name == "gpt") {
        return std::make_shared<GptModel>(c, "GptModel",
                                          /*top_traceable=*/false);
    }
    if (name == "opt") {
        return std::make_shared<GptModel>(c, "OptModel",
                                          /*top_traceable=*/true);
    }
    if (name == "t5") {
        return std::make_shared<T5Model>(c);
    }
    SLAPO_THROW("unknown model '" << name << "'");
}

TransformerConfig
gpt10BConfig()
{
    TransformerConfig c;
    c.name = "gpt-10b";
    c.vocab = 50257;
    c.hidden = 4096;
    c.layers = 48;
    c.heads = 32;
    c.intermediate = 16384;
    c.causal = true;
    c.pre_norm = true;
    c.max_positions = 2048;
    c.seq_len = 1024;
    return c;
}

nn::ModulePtr
buildGpt10B()
{
    // The 10B model is a custom configuration (not the HF GPT-Neo hub
    // implementation), written tracer-friendly — so pipeline partitioning
    // can trace its top-level containers (§3.3.2).
    return std::make_shared<GptModel>(gpt10BConfig(), "GptModel",
                                      /*top_traceable=*/true);
}

TransformerConfig
tinyConfig(const std::string& name)
{
    TransformerConfig c = name == "wideresnet"
                              ? TransformerConfig{}
                              : modelConfig(name, 0);
    c = c.scaled(/*hidden=*/16, /*layers=*/2, /*heads=*/2, /*vocab=*/64,
                 /*seq=*/8);
    c.max_positions = 16;
    c.dropout = 0.0; // exact numeric verification
    if (c.decoder_layers > 0) {
        c.decoder_seq_len = 8;
    }
    return c;
}

nn::ModulePtr
buildTinyModel(const std::string& name)
{
    if (name == "wideresnet") {
        WideResNetConfig config;
        config.depth = 10;
        config.width = 1;
        config.num_classes = 10;
        config.image_size = 16;
        return std::make_shared<WideResNet>(config);
    }
    const TransformerConfig c = tinyConfig(name);
    if (name == "bert") {
        return std::make_shared<BertModel>(c, "BertModel");
    }
    if (name == "roberta") {
        return std::make_shared<BertModel>(c, "RobertaModel");
    }
    if (name == "albert") {
        TransformerConfig ac = c;
        ac.embedding_size = 8;
        return std::make_shared<AlbertModel>(ac);
    }
    if (name == "gpt") {
        return std::make_shared<GptModel>(c, "GptModel", false);
    }
    if (name == "opt") {
        return std::make_shared<GptModel>(c, "OptModel", true);
    }
    if (name == "t5") {
        return std::make_shared<T5Model>(c);
    }
    SLAPO_THROW("unknown model '" << name << "'");
}

} // namespace models
} // namespace slapo
