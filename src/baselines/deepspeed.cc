#include "baselines/detail.h"

namespace slapo {
namespace baselines {

BenchResult
runDeepSpeed(const std::string& model_name, int variant,
             const sim::ClusterSpec& cluster, const RunOptions& options)
{
    // DeepSpeed runs the *unmodified* HuggingFace model under ZeRO-3
    // with its default full activation checkpointing — no custom
    // kernels, no fusion, no checkpoint-ratio tuning (§5.2).
    ScheduleRecipe recipe;
    recipe.checkpoint_ratio = 1.0;
    BenchResult result = detail::runRecipe(
        "DeepSpeed", model_name, variant, cluster, options, recipe,
        /*zero_stage=*/3, sim::PipeSchedule::OneFOneB);
    if (result.stats.oom) {
        // Fall back to no checkpointing if that somehow fits better.
        BenchResult no_ckpt = detail::runRecipe(
            "DeepSpeed", model_name, variant, cluster, options,
            ScheduleRecipe::vanilla(), 3, sim::PipeSchedule::OneFOneB);
        if (!no_ckpt.stats.oom) {
            return no_ckpt;
        }
    }
    return result;
}

BenchResult
runSlapoSingleDevice(const std::string& model_name, int variant,
                     const sim::ClusterSpec& cluster,
                     const RunOptions& options)
{
    // Slapo on one GPU: efficient kernels + operator fusion, with the
    // activation-checkpoint ratio tuned by the auto-tuner (§5.1).
    return detail::bestOverCheckpointRatios(
        "Slapo", model_name, variant, cluster, options,
        ScheduleRecipe::kernelOptimized(), /*zero_stage=*/0);
}

BenchResult
runSlapoTP(const std::string& model_name, int variant,
           const sim::ClusterSpec& cluster, const RunOptions& options)
{
    const RunOptions adjusted =
        detail::adjustTpForModel(model_name, variant, options);
    ScheduleRecipe recipe = ScheduleRecipe::tensorParallel(adjusted.tp, 0.0);
    if (adjusted.tp == 1) {
        recipe = ScheduleRecipe::kernelOptimized();
    }
    if (adjusted.pp > 1 && adjusted.tp > 1) {
        // Slapo's pipeline stages come from real .pipeline_split()
        // annotations (partitioned by the Fig. 5 algorithm).
        recipe.pipeline_stages = adjusted.pp;
    }
    return detail::bestOverCheckpointRatios("Slapo-TP", model_name, variant,
                                            cluster, adjusted, recipe,
                                            /*zero_stage=*/0);
}

BenchResult
runSlapoZeRO3(const std::string& model_name, int variant,
              const sim::ClusterSpec& cluster, const RunOptions& options)
{
    return detail::bestOverCheckpointRatios(
        "Slapo-ZeRO3", model_name, variant, cluster, options,
        ScheduleRecipe::kernelOptimized(), /*zero_stage=*/3);
}

} // namespace baselines
} // namespace slapo
