/**
 * @file
 * The Slapo schedule recipes used throughout the evaluation — the §2.2
 * motivating optimizations expressed with real schedule primitives:
 *
 *   ① fuse QKV            -> .replace(FusedSelfAttention)
 *   ② efficient kernels   -> .replace(EfficientAttention) per core;
 *                            .decompose() + .trace() + .find() + .fuse()
 *                            for the bias+GeLU chain in every FFN
 *   ③ tensor parallelism  -> .shard() column/row pairs + .sync() points
 *   ④ activation ckpt     -> .checkpoint() on a tunable layer fraction
 *   word-embedding shard  -> .shard(axis 0) + all-reduce sync (Fig. 10)
 *
 * A recipe applies to *any* registry model by walking the schedule tree
 * for the block types — the generality the paper claims for schedules.
 */
#pragma once

#include <string>

#include "core/schedule.h"

namespace slapo {
namespace baselines {

/** Which optimizations a schedule applies (all off = vanilla model). */
struct ScheduleRecipe
{
    bool fuse_qkv = false;
    bool flash_attention = false;
    bool fuse_bias_gelu = false;
    /** Fraction of transformer layers wrapped in .checkpoint(). */
    double checkpoint_ratio = 0.0;
    /** Tensor-parallel degree; > 1 shards attention + FFN (Fig. 3). */
    int tp = 1;
    /** Also shard the word embedding (the last Fig. 10 step). */
    bool shard_embedding = false;
    /**
     * Megatron's fused scale-mask-softmax kernel: one launch, stores
     * only the probability tensor (weaker than flash attention, which
     * stores nothing quadratic). Used by the Megatron-LM baseline.
     */
    bool megatron_fused_softmax = false;
    /**
     * Pipeline stages: > 1 inserts evenly spaced `.pipeline_split()`
     * annotations across the transformer layer stack, so the simulator
     * partitions with the Fig. 5 algorithm and paces on the real
     * bottleneck stage. Requires tp > 1 (a distributed schedule).
     */
    int pipeline_stages = 1;
    /**
     * Megatron uses fixed position embeddings: strip any T5-style
     * relative attention bias (§5.2's "model implementation difference").
     * Changes the model's function — baseline modeling only.
     */
    bool megatron_fixed_positions = false;

    /** Recipe presets. */
    static ScheduleRecipe vanilla() { return {}; }
    static ScheduleRecipe kernelOptimized(double ckpt_ratio = 0.0);
    static ScheduleRecipe tensorParallel(int tp, double ckpt_ratio,
                                         bool shard_embedding = true);
};

/**
 * Build the schedule of `model` and apply `recipe` through the schedule
 * primitives. Returns the root schedule (its module() is the scheduled
 * model). `sample_seq` sizes the example shapes used by the FFN traces.
 */
core::SchedulePtr applyRecipe(nn::ModulePtr model, const ScheduleRecipe& recipe,
                              int64_t sample_seq = 8);

/**
 * Convenience: build a registry model at paper scale and schedule it.
 */
core::SchedulePtr buildScheduledModel(const std::string& model_name,
                                      int variant,
                                      const ScheduleRecipe& recipe);

} // namespace baselines
} // namespace slapo
