#include "baselines/detail.h"

namespace slapo {
namespace baselines {

BenchResult
runEager(const std::string& model_name, int variant,
         const sim::ClusterSpec& cluster, const RunOptions& options)
{
    // §5.1: "If activation checkpointing is implemented in a model, we
    // evaluate the performance with and without activation checkpointing,
    // and report the better one."
    BenchResult without = detail::runRecipe(
        "Eager", model_name, variant, cluster, options,
        ScheduleRecipe::vanilla(), /*zero_stage=*/0,
        sim::PipeSchedule::OneFOneB);
    ScheduleRecipe full_ckpt;
    full_ckpt.checkpoint_ratio = 1.0;
    BenchResult with = detail::runRecipe("Eager", model_name, variant, cluster,
                                         options, full_ckpt, 0,
                                         sim::PipeSchedule::OneFOneB);
    if (with.stats.oom) return without;
    if (without.stats.oom) return with;
    return with.stats.throughput > without.stats.throughput ? with : without;
}

} // namespace baselines
} // namespace slapo
