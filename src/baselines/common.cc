#include "baselines/detail.h"

#include "models/registry.h"

namespace slapo {
namespace baselines {

sim::ShapeFn
modelShapeFn(const std::string& model_name, int variant)
{
    if (model_name == "wideresnet") {
        return [](int mb) {
            return std::vector<Shape>{{mb, 3, 224, 224}};
        };
    }
    if (model_name == "gpt-10b") {
        const auto config = models::gpt10BConfig();
        const int64_t seq = config.seq_len;
        return [seq](int mb) { return std::vector<Shape>{{mb, seq}}; };
    }
    const auto config = models::modelConfig(model_name, variant);
    const int64_t seq = config.seq_len;
    if (model_name == "t5") {
        const int64_t dec_seq = config.decoder_seq_len;
        return [seq, dec_seq](int mb) {
            return std::vector<Shape>{{mb, seq}, {mb, dec_seq}};
        };
    }
    return [seq](int mb) { return std::vector<Shape>{{mb, seq}}; };
}

double
modelBytesPerElement(const std::string& model_name)
{
    return model_name == "wideresnet" ? 4.0 : 2.0;
}

const std::vector<double>&
checkpointRatioCandidates()
{
    static const std::vector<double> kRatios = {0.0, 0.25, 0.5, 0.75, 1.0};
    return kRatios;
}

namespace detail {

RunOptions
adjustTpForModel(const std::string& model_name, int variant,
                 RunOptions options)
{
    if (options.tp <= 1 || model_name == "wideresnet") {
        return options;
    }
    const models::TransformerConfig config =
        model_name == "gpt-10b" ? models::gpt10BConfig()
                                : models::modelConfig(model_name, variant);
    int tp = options.tp;
    while (tp > 1 && (config.heads % tp != 0 || config.hidden % tp != 0)) {
        tp /= 2;
    }
    if (tp != options.tp) {
        options.dp *= options.tp / tp;
        options.tp = tp;
    }
    return options;
}

namespace {

nn::ModulePtr
buildFor(const std::string& model_name, int variant)
{
    if (model_name == "gpt-10b") {
        return models::buildGpt10B();
    }
    return models::buildModel(model_name, variant);
}

} // namespace

BenchResult
runRecipe(const std::string& system, const std::string& model_name,
          int variant, const sim::ClusterSpec& cluster,
          const RunOptions& options, const ScheduleRecipe& recipe,
          int zero_stage, sim::PipeSchedule pipe_schedule,
          const sim::ProfileTransform& transform, double impl_speedup)
{
    BenchResult result;
    result.system = system;
    result.checkpoint_ratio = recipe.checkpoint_ratio;

    core::SchedulePtr schedule =
        applyRecipe(buildFor(model_name, variant), recipe);

    sim::TrainingSimulator simulator(cluster,
                                     modelBytesPerElement(model_name));
    sim::ParallelConfig config;
    config.tp = options.tp;
    config.pp = options.pp;
    config.dp = options.dp;
    config.zero_stage = zero_stage;
    config.pipe_schedule = pipe_schedule;

    result.stats = simulator.tuneMicroBatch(
        *schedule->module(), modelShapeFn(model_name, variant), config,
        options.max_micro_batch, options.fixed_global_batch, transform);
    if (impl_speedup != 1.0 && !result.stats.oom) {
        result.stats.step_time /= impl_speedup;
        result.stats.throughput *= impl_speedup;
    }
    return result;
}

BenchResult
bestOverCheckpointRatios(const std::string& system,
                         const std::string& model_name, int variant,
                         const sim::ClusterSpec& cluster,
                         const RunOptions& options, ScheduleRecipe recipe,
                         int zero_stage)
{
    BenchResult best;
    best.system = system;
    best.stats.oom = true;
    for (double ratio : checkpointRatioCandidates()) {
        recipe.checkpoint_ratio = ratio;
        BenchResult r = runRecipe(system, model_name, variant, cluster,
                                  options, recipe, zero_stage,
                                  sim::PipeSchedule::OneFOneB);
        if (!r.stats.oom &&
            (best.stats.oom || r.stats.throughput > best.stats.throughput)) {
            best = r;
        }
    }
    return best;
}

} // namespace detail
} // namespace baselines
} // namespace slapo
