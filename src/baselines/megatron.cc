#include "baselines/detail.h"

#include "dialects/megatron_dialect.h"
#include "models/registry.h"

namespace slapo {
namespace baselines {

BenchResult
runMegatron(const std::string& model_name, int variant,
            const sim::ClusterSpec& cluster, const RunOptions& options)
{
    BenchResult result;
    result.system = "Megatron-LM";

    // §5.2: Megatron-LM officially implements only BERT, GPT, and T5.
    const std::string base =
        model_name == "gpt-10b" ? std::string("gpt") : model_name;
    if (base != "bert" && base != "gpt" && base != "t5") {
        result.supported = false;
        result.reason = "model not implemented by Megatron-LM";
        result.stats.oom = true;
        return result;
    }

    // Megatron's hand-written model: fused kernels + tensor parallelism
    // + full recompute of every layer (its default for large models).
    const RunOptions adjusted = detail::adjustTpForModel(
        model_name == "gpt-10b" ? "gpt-10b" : base, variant, options);
    ScheduleRecipe recipe =
        ScheduleRecipe::tensorParallel(adjusted.tp, /*ckpt_ratio=*/1.0);
    if (adjusted.tp == 1) {
        recipe = ScheduleRecipe::kernelOptimized(1.0);
    }
    // Megatron-LM at the evaluated commit (0bb597b) fuses QKV, bias+GeLU,
    // and scale-mask-softmax, but has no flash attention: the (B, h, S, S)
    // probability tensor is still materialized, which is what lets
    // Slapo's xFormers schedule pull ahead on memory-bound configs.
    recipe.flash_attention = false;
    recipe.megatron_fused_softmax = true;
    // Fixed position embeddings instead of HF T5's relative bias: the
    // §5.2 implementation difference, now *measured* rather than assumed.
    recipe.megatron_fixed_positions = true;

    // Its independent (non-HuggingFace) implementation is intrinsically
    // leaner — e.g. fixed instead of relative position embeddings in T5
    // (§5.2). Modeled as a constant per-model efficiency factor.
    // Residual edge of the non-HF implementations (data path, fused
    // optimizers). The T5 relative-position bias is partly structural
    // (stripped above, so its FLOPs/params really disappear) and partly
    // in this factor (its gather/bucket kernels that the flash kernel
    // absorbs on the Slapo side).
    double impl_speedup = 1.0;
    if (base == "bert") impl_speedup = 1.08;
    if (base == "gpt") impl_speedup = 1.10;
    if (base == "t5") impl_speedup = 1.15;
    // The 10B model of Fig. 9 uses the same custom configuration in
    // every system, so the HF-vs-Megatron implementation delta of the
    // hub models does not apply (only the leaner data path remains).
    if (model_name == "gpt-10b") impl_speedup = 1.02;

    // Validate the schedule is in Megatron's accepted form before
    // "handing it to the runtime" (the dialect's job, §4).
    core::SchedulePtr schedule =
        model_name == "gpt-10b"
            ? applyRecipe(models::buildGpt10B(), recipe)
            : buildScheduledModel(base, variant, recipe);
    if (adjusted.tp > 1) {
        dialects::toMegatron(*schedule->module(), adjusted.tp, adjusted.pp);
    }

    // Megatron's recompute flag is binary: evaluate with and without
    // full activation recomputation and keep the better one.
    result = detail::runRecipe("Megatron-LM", model_name, variant, cluster,
                               adjusted, recipe, /*zero_stage=*/0,
                               sim::PipeSchedule::OneFOneB, {}, impl_speedup);
    ScheduleRecipe no_ckpt = recipe;
    no_ckpt.checkpoint_ratio = 0.0;
    BenchResult without = detail::runRecipe(
        "Megatron-LM", model_name, variant, cluster, adjusted, no_ckpt,
        /*zero_stage=*/0, sim::PipeSchedule::OneFOneB, {}, impl_speedup);
    if (!without.stats.oom &&
        (result.stats.oom ||
         without.stats.throughput > result.stats.throughput)) {
        result = without;
    }
    return result;
}

} // namespace baselines
} // namespace slapo
