/**
 * @file
 * Internal helpers shared by the baseline implementations.
 */
#pragma once

#include "baselines/baselines.h"

namespace slapo {
namespace baselines {
namespace detail {

/**
 * Schedule a model with `recipe`, then tune the micro-batch on the
 * simulator. `impl_speedup` models an independent (non-HF) model
 * implementation being intrinsically faster (Megatron's fixed position
 * embeddings etc., §5.2); 1.0 for everything that runs the HF model.
 */
BenchResult runRecipe(const std::string& system, const std::string& model_name,
                      int variant, const sim::ClusterSpec& cluster,
                      const RunOptions& options, const ScheduleRecipe& recipe,
                      int zero_stage, sim::PipeSchedule pipe_schedule,
                      const sim::ProfileTransform& transform = {},
                      double impl_speedup = 1.0);

/**
 * Tensor parallelism requires the head count (and hidden size) to divide
 * by the TP degree — Megatron's constraint. When it does not (GPT-Neo's
 * 12 heads on 8 GPUs), fall back to the largest feasible TP degree and
 * convert the remaining factor into data parallelism.
 */
RunOptions adjustTpForModel(const std::string& model_name, int variant,
                            RunOptions options);

/** Best result over the checkpoint-ratio candidates (the Slapo tuner). */
BenchResult bestOverCheckpointRatios(
    const std::string& system, const std::string& model_name, int variant,
    const sim::ClusterSpec& cluster, const RunOptions& options,
    ScheduleRecipe recipe, int zero_stage);

} // namespace detail
} // namespace baselines
} // namespace slapo
