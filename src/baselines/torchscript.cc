#include "baselines/detail.h"

#include <set>

#include "models/registry.h"

namespace slapo {
namespace baselines {

nn::Profile
fuseElementwiseChains(nn::Profile profile)
{
    static const std::set<std::string> kPointwise = {
        "add",     "sub",  "mul",        "div",   "scale", "add_scalar",
        "gelu",    "relu", "tanh",       "clamp", "range_mask",
        "dropout", "causal_mask", "batch_norm",
    };
    nn::Profile fused;
    fused.checkpoint_boundary_bytes = profile.checkpoint_boundary_bytes;
    fused.comms = profile.comms;

    auto pointwise = [&](const nn::KernelRecord& k) {
        return kPointwise.count(k.name) > 0;
    };
    for (size_t i = 0; i < profile.kernels.size();) {
        if (!pointwise(profile.kernels[i])) {
            fused.kernels.push_back(profile.kernels[i]);
            ++i;
            continue;
        }
        // Collapse the maximal run of adjacent pointwise kernels within
        // one module into one launch: one read, one write, summed math.
        nn::KernelRecord merged = profile.kernels[i];
        merged.name = "nvfuser_pointwise";
        size_t j = i + 1;
        // A whole-graph compiler fuses across module boundaries — the
        // scope Slapo deliberately gives up for structure preservation
        // (§5.1 discusses why that rarely matters in training).
        while (j < profile.kernels.size() && pointwise(profile.kernels[j]) &&
               profile.kernels[j].checkpointed == merged.checkpointed) {
            merged.flops += profile.kernels[j].flops;
            merged.bytes_out = profile.kernels[j].bytes_out;
            merged.activation_bytes = profile.kernels[j].activation_bytes;
            ++j;
        }
        if (j > i + 1) {
            merged.recompute_free = true; // fused chains recompute cheaply
        }
        fused.kernels.push_back(merged);
        i = j;
    }
    return fused;
}

BenchResult
runTorchScript(const std::string& model_name, int variant,
               const sim::ClusterSpec& cluster, const RunOptions& options)
{
    BenchResult result;
    result.system = "TorchScript";

    // Whole-model compilation requires capturing the top module; the
    // GPT-Neo implementation's coding style defeats the tracer (§5.1).
    nn::ModulePtr probe = model_name == "gpt-10b"
                              ? models::buildGpt10B()
                              : models::buildModel(model_name, variant);
    if (!probe->traceable()) {
        result.supported = false;
        result.reason = "model cannot be traced to a whole static graph";
        result.stats.oom = true;
        return result;
    }

    auto run_with = [&](const ScheduleRecipe& recipe) {
        return detail::runRecipe("TorchScript", model_name, variant, cluster,
                                 options, recipe, 0,
                                 sim::PipeSchedule::OneFOneB,
                                 &fuseElementwiseChains);
    };
    BenchResult without = run_with(ScheduleRecipe::vanilla());
    ScheduleRecipe full_ckpt;
    full_ckpt.checkpoint_ratio = 1.0;
    BenchResult with = run_with(full_ckpt);
    if (with.stats.oom) return without;
    if (without.stats.oom) return with;
    return with.stats.throughput > without.stats.throughput ? with : without;
}

} // namespace baselines
} // namespace slapo
