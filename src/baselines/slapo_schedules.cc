#include "baselines/slapo_schedules.h"

#include <cmath>

#include "models/registry.h"
#include "models/wideresnet.h"

namespace slapo {
namespace baselines {

using core::Schedule;
using core::SchedulePtr;
using nn::ModulePtr;

ScheduleRecipe
ScheduleRecipe::kernelOptimized(double ckpt_ratio)
{
    ScheduleRecipe recipe;
    recipe.fuse_qkv = true;
    recipe.flash_attention = true;
    recipe.fuse_bias_gelu = true;
    recipe.checkpoint_ratio = ckpt_ratio;
    return recipe;
}

ScheduleRecipe
ScheduleRecipe::tensorParallel(int tp, double ckpt_ratio, bool shard_embedding)
{
    ScheduleRecipe recipe = kernelOptimized(ckpt_ratio);
    recipe.tp = tp;
    recipe.shard_embedding = shard_embedding;
    return recipe;
}

namespace {

/** Paths of all modules of a given type, in pre-order. */
std::vector<std::string>
pathsOfType(nn::Module& model, const std::string& type_name)
{
    std::vector<std::string> paths;
    for (auto& [path, m] : model.namedModules()) {
        if (m->typeName() == type_name) {
            paths.push_back(path);
        }
    }
    return paths;
}

/** ① Replace every SelfAttention with the fused-QKV variant. */
void
applyFuseQkv(Schedule& root)
{
    for (const std::string& path : pathsOfType(*root.module(), "SelfAttention")) {
        auto attn = std::static_pointer_cast<nn::SelfAttention>(
            root.module()->findByPath(path));
        root[path].replace(nn::FusedSelfAttention::fromSelfAttention(*attn));
    }
}

/** ② Replace every core attention with the flash-attention kernel. */
void
applyFlashAttention(Schedule& root)
{
    for (const std::string& path : pathsOfType(*root.module(), "CoreAttention")) {
        auto core_attn = std::static_pointer_cast<nn::CoreAttention>(
            root.module()->findByPath(path));
        root[path].replace(nn::EfficientAttention::fromCore(*core_attn));
    }
}

/** ② Decompose + trace + find + fuse the bias+GeLU chain in every FFN. */
void
applyBiasGeluFusion(Schedule& root, int64_t sample_seq)
{
    for (const std::string& path : pathsOfType(*root.module(), "FFN")) {
        Schedule& ffn = root[path];
        ffn["fc1"].decompose();
        auto ffn_module = std::static_pointer_cast<nn::FFN>(ffn.module());
        nn::TraceOptions options;
        options.flatten = true;
        std::vector<Shape> shapes = {{1, sample_seq, ffn_module->hidden()}};
        if (ffn_module->preNorm()) {
            shapes.push_back(shapes[0]); // (normed_x, residual)
        }
        ffn.trace(shapes, options);
        const auto matches =
            ffn.find(graph::Pattern::chain({"add", "gelu"}));
        SLAPO_CHECK(matches.size() == 1,
                    "bias+gelu fusion: expected exactly one add->gelu chain "
                    "in FFN '" << path << "', found " << matches.size());
        ffn.fuse(matches.front(), "TorchScript");
    }
}

/** ② (vision) Fuse every BN+ReLU pair inside WideResNet blocks. */
void
applyBnReluFusion(Schedule& root)
{
    for (const std::string& path :
         pathsOfType(*root.module(), "WideResNetBlock")) {
        Schedule& block = root[path];
        auto* block_module =
            static_cast<models::WideResNetBlock*>(block.module().get());
        block["bn1"].decompose();
        block["bn2"].decompose();
        nn::TraceOptions options;
        options.flatten = true;
        // Spatial extent is irrelevant to the graph topology.
        block.trace({{1, block_module->inChannels(), 16, 16}}, options);
        const auto matches =
            block.find(graph::Pattern::chain({"batch_norm", "relu"}));
        SLAPO_CHECK(matches.size() == 2,
                    "bn+relu fusion: expected two chains in block '"
                        << path << "', found " << matches.size());
        for (const auto& match : matches) {
            block.fuse(match, "TorchScript");
        }
    }
}

/** Layer-container types eligible for .checkpoint(). */
bool
isLayerType(const std::string& type_name)
{
    return type_name == "TransformerLayer" || type_name == "PreNormLayer" ||
           type_name == "T5DecoderLayer" || type_name == "WideResNetBlock";
}

/** ④ Checkpoint the first ratio * L layer blocks. */
void
applyCheckpointRatio(Schedule& root, double ratio)
{
    if (ratio <= 0.0) {
        return;
    }
    std::vector<std::string> layers;
    for (auto& [path, m] : root.module()->namedModules()) {
        if (!path.empty() && isLayerType(m->typeName())) {
            layers.push_back(path);
        }
    }
    const auto count = static_cast<size_t>(
        std::llround(ratio * static_cast<double>(layers.size())));
    for (size_t i = 0; i < std::min(count, layers.size()); ++i) {
        root[layers[i]].checkpoint();
    }
}

/** ③ Shard attention + FFN parameters and place the sync points of
 * Fig. 3: column-parallel in, row-parallel out, deferred all-reduce. */
void
applyTensorParallel(Schedule& root)
{
    nn::Module& model = *root.module();

    // The relative-bias table (when present) is indexed by head, so it
    // shards on axis 0 exactly like the head-parallel projections.
    auto shard_rel_bias = [](Schedule& attn) {
        Schedule& core = attn["core"];
        if (core.module()->hasParam("rel_bias")) {
            core.shard("rel_bias", 0);
        }
    };

    for (const std::string& path : pathsOfType(model, "FusedSelfAttention")) {
        Schedule& attn = root[path];
        // Interleaved q/k/v groups keep the fused split correct per rank.
        attn["qkv"].shard("weight", 0, /*interleave=*/3);
        attn["qkv"].shard("bias", 0, /*interleave=*/3);
        shard_rel_bias(attn);
        // Megatron "f": all-reduce the region's input gradient.
        attn.sync(nn::SyncDirection::Backward);
    }
    for (const std::string& path : pathsOfType(model, "SelfAttention")) {
        Schedule& attn = root[path];
        for (const char* proj : {"query", "key", "value"}) {
            attn[proj].shard(std::vector<std::string>{"weight", "bias"}, 0);
        }
        shard_rel_bias(attn);
        attn.sync(nn::SyncDirection::Backward);
    }
    // Row-parallel output projections: weight axis 1, all-reduce after.
    for (const std::string& path : pathsOfType(model, "Projection")) {
        Schedule& proj = root[path];
        proj["dense"].shard("weight", 1);
        proj["dense"].sync(nn::SyncDirection::Forward);
    }
    for (const std::string& path : pathsOfType(model, "FFN")) {
        Schedule& ffn = root[path];
        ffn["fc1"].shard(std::vector<std::string>{"weight", "bias"}, 0);
        ffn["fc1"].sync(nn::SyncDirection::Backward);
        ffn["fc2"].shard("weight", 1);
        ffn["fc2"].sync(nn::SyncDirection::Forward);
    }
    // Cross-attention (T5 decoder): shard projections the same way.
    for (const std::string& path : pathsOfType(model, "CrossAttentionBlock")) {
        Schedule& cross = root[path];
        for (const char* proj : {"query", "key", "value"}) {
            cross[proj].shard(std::vector<std::string>{"weight", "bias"}, 0);
        }
        cross.sync(nn::SyncDirection::Backward);
    }
}

/** ③ Vocabulary-parallel output heads: any linear projecting hidden
 * states to a vocabulary-sized space (>= 8x wider than its input) is
 * replaced with the padded, column-sharded, gather-and-narrow head —
 * Megatron's parallel LM head. Without this the unsharded head would
 * dominate a tensor-parallel rank (it costs about one full layer). */
void
applyVocabHeadShard(Schedule& root, int world_size)
{
    std::vector<std::string> heads;
    for (auto& [path, m] : root.module()->namedModules()) {
        if (m->typeName() != "Linear") {
            continue;
        }
        auto* lin = static_cast<nn::Linear*>(m);
        if (lin->outFeatures() >= 8 * lin->inFeatures()) {
            heads.push_back(path);
        }
    }
    for (const std::string& path : heads) {
        auto* lin = static_cast<nn::Linear*>(
            root.module()->findByPath(path).get());
        root[path].replace(
            nn::VocabParallelLinear::fromLinear(*lin, world_size));
    }
}

/** Insert evenly spaced `.pipeline_split()` annotations (§3.3.2). */
void
applyPipelineSplits(Schedule& root, int stages)
{
    std::vector<std::string> layers;
    for (auto& [path, m] : root.module()->namedModules()) {
        if (!path.empty() && isLayerType(m->typeName())) {
            layers.push_back(path);
        }
    }
    SLAPO_CHECK(static_cast<int>(layers.size()) >= stages,
                "pipeline_stages = " << stages << " exceeds the "
                                     << layers.size() << " layer blocks");
    const size_t per_stage = layers.size() / static_cast<size_t>(stages);
    for (int s = 0; s + 1 < stages; ++s) {
        root[layers[(s + 1) * per_stage - 1]].pipelineSplit();
    }
}

/** Fig. 10 final step: vocab-parallel word embeddings. */
void
applyEmbeddingShard(Schedule& root)
{
    const int ws = root.worldSize();
    for (auto& [path, m] : root.module()->namedModules()) {
        if (m->typeName() == "Embedding" && path.find("word") != std::string::npos) {
            // Megatron-style vocab padding so the shard divides evenly.
            auto* emb_module = static_cast<nn::Embedding*>(m);
            const int64_t padded =
                (emb_module->vocabSize() + ws - 1) / ws * ws;
            emb_module->padVocabTo(padded);
            Schedule& emb = root[path];
            emb.shard("weight", 0);
            emb.sync(nn::SyncDirection::Forward);
        }
    }
}

} // namespace

SchedulePtr
applyRecipe(ModulePtr model, const ScheduleRecipe& recipe, int64_t sample_seq)
{
    SchedulePtr root = Schedule::create(std::move(model), recipe.tp);
    if (recipe.megatron_fixed_positions) {
        for (const std::string& path :
             pathsOfType(*root->module(), "CoreAttention")) {
            static_cast<nn::CoreAttention*>(
                root->module()->findByPath(path).get())
                ->disableRelativeBias();
        }
    }
    if (recipe.fuse_qkv) {
        applyFuseQkv(*root);
    }
    if (recipe.flash_attention) {
        applyFlashAttention(*root);
    } else if (recipe.megatron_fused_softmax) {
        for (const std::string& path :
             pathsOfType(*root->module(), "CoreAttention")) {
            static_cast<nn::CoreAttention*>(
                root->module()->findByPath(path).get())
                ->setFusedSoftmax(true);
        }
    }
    if (recipe.fuse_bias_gelu) {
        applyBiasGeluFusion(*root, sample_seq);
        applyBnReluFusion(*root);
    }
    if (recipe.tp > 1) {
        applyTensorParallel(*root);
        applyVocabHeadShard(*root, recipe.tp);
        if (recipe.shard_embedding) {
            applyEmbeddingShard(*root);
        }
    }
    applyCheckpointRatio(*root, recipe.checkpoint_ratio);
    if (recipe.pipeline_stages > 1) {
        applyPipelineSplits(*root, recipe.pipeline_stages);
    }
    return root;
}

SchedulePtr
buildScheduledModel(const std::string& model_name, int variant,
                    const ScheduleRecipe& recipe)
{
    return applyRecipe(models::buildModel(model_name, variant), recipe);
}

} // namespace baselines
} // namespace slapo
