/**
 * @file
 * The four systems of the evaluation (§5) plus the Slapo configurations,
 * all running on the same training simulator so comparisons isolate the
 * *schedules* each system effectively applies:
 *
 *  - PyTorch Eager: the vanilla model, out-of-the-box (with and without
 *    full activation checkpointing, reporting the better — §5.1).
 *  - TorchScript (nvFuser): whole-model tracing + elementwise-chain
 *    fusion; refuses models whose top module is untraceable (GPT-Neo).
 *  - Megatron-LM v2: hand-optimized kernels + tensor(+pipeline)
 *    parallelism + full recompute; only BERT/GPT/T5; its independent
 *    model implementation is modeled as a per-model efficiency factor.
 *  - DeepSpeed: vanilla HF model + ZeRO-3 + full checkpointing.
 *  - Slapo: the same hand-crafted optimizations *scheduled* on the HF
 *    model, with the checkpoint ratio and micro-batch auto-tuned
 *    (Slapo-TP and Slapo-ZeRO3 flavours for Fig. 8/9).
 */
#pragma once

#include <string>

#include "baselines/slapo_schedules.h"
#include "sim/training_sim.h"

namespace slapo {
namespace baselines {

/** One system's result on one configuration. */
struct BenchResult
{
    std::string system;
    bool supported = true;    ///< false renders as "x" in the figures
    std::string reason;       ///< why unsupported
    double checkpoint_ratio = 0.0; ///< ratio the winning schedule used
    sim::StepStats stats;
};

/** Input-shape builder of a registry model at its Table 2 seq length. */
sim::ShapeFn modelShapeFn(const std::string& model_name, int variant);

/** Bytes per element of a model's Table 2 precision. */
double modelBytesPerElement(const std::string& model_name);

/** Shared knobs of one benchmark run. */
struct RunOptions
{
    int dp = 1;              ///< data-parallel degree
    int tp = 1;              ///< tensor-parallel degree (Megatron/Slapo-TP)
    int pp = 1;              ///< pipeline stages (Fig. 9 Megatron)
    int fixed_global_batch = 0; ///< strong-scaling global batch (Fig. 9)
    int max_micro_batch = 256;
};

BenchResult runEager(const std::string& model_name, int variant,
                     const sim::ClusterSpec& cluster,
                     const RunOptions& options = {});

BenchResult runTorchScript(const std::string& model_name, int variant,
                           const sim::ClusterSpec& cluster,
                           const RunOptions& options = {});

BenchResult runMegatron(const std::string& model_name, int variant,
                        const sim::ClusterSpec& cluster,
                        const RunOptions& options);

BenchResult runDeepSpeed(const std::string& model_name, int variant,
                         const sim::ClusterSpec& cluster,
                         const RunOptions& options);

/** Slapo on a single device: kernel opts + tuned checkpoint ratio. */
BenchResult runSlapoSingleDevice(const std::string& model_name, int variant,
                                 const sim::ClusterSpec& cluster,
                                 const RunOptions& options = {});

/** Slapo-TP: schedules tensor parallelism like Megatron (Fig. 8). */
BenchResult runSlapoTP(const std::string& model_name, int variant,
                       const sim::ClusterSpec& cluster,
                       const RunOptions& options);

/** Slapo-ZeRO3: schedules kernels/ckpt and runs on ZeRO-3 (Fig. 8). */
BenchResult runSlapoZeRO3(const std::string& model_name, int variant,
                          const sim::ClusterSpec& cluster,
                          const RunOptions& options);

/** The checkpoint ratios the Slapo auto-tuner scans. */
const std::vector<double>& checkpointRatioCandidates();

/**
 * nvFuser-style elementwise-chain fusion over a profile: consecutive
 * pointwise kernels in the same module collapse into one launch reading
 * the first input and writing the last output.
 */
nn::Profile fuseElementwiseChains(nn::Profile profile);

} // namespace baselines
} // namespace slapo
