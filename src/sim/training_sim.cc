#include "sim/training_sim.h"

#include <algorithm>

#include "core/pipeline.h"
#include "core/schedule.h"
#include "obs/mem_profiler.h"
#include "runtime/dist_executor.h"

namespace slapo {
namespace sim {

TrainingSimulator::TrainingSimulator(const ClusterSpec& cluster,
                                     double bytes_per_element)
    : cluster_(cluster),
      bytes_per_element_(bytes_per_element),
      cost_model_(cluster, bytes_per_element)
{
}

nn::Profile
TrainingSimulator::profileModel(const nn::Module& model,
                                const std::vector<Shape>& input_shapes,
                                int tp) const
{
    // Rank 0's view of the model: clone and narrow sharded parameters.
    nn::ModulePtr replica = model.clone();
    if (tp > 1) {
        runtime::DistExecutor::shardParamsForRank(*replica, 0, tp);
    }

    nn::DistContext dist;
    dist.rank = 0;
    dist.world_size = tp;
    dist.group = nullptr; // meta profiling: collectives are accounted only

    nn::Profiler profiler(bytes_per_element_);
    {
        nn::DistGuard dist_guard(&dist);
        nn::ProfilerGuard prof_guard(&profiler);
        std::vector<nn::Value> inputs;
        inputs.reserve(input_shapes.size());
        for (const Shape& s : input_shapes) {
            inputs.emplace_back(Tensor::meta(s));
        }
        replica->call(inputs);
    }
    return profiler.takeProfile();
}

StepStats
TrainingSimulator::simulate(const nn::Module& model, const ShapeFn& shapes,
                            const ParallelConfig& config,
                            const ProfileTransform& transform) const
{
    SLAPO_CHECK(config.worldSize() == cluster_.worldSize(),
                "simulate: tp*pp*dp = " << config.worldSize()
                                        << " != cluster world "
                                        << cluster_.worldSize());
    SLAPO_CHECK(config.micro_batch >= 1 && config.grad_accum >= 1,
                "simulate: bad batch configuration");

    // Honor .pipeline_split() annotations when present: the bottleneck
    // stage paces the pipeline instead of an idealized even split.
    if (config.pp > 1) {
        bool annotated = false;
        for (auto& [path, m] :
             const_cast<nn::Module&>(model).namedModules()) {
            annotated |= m->meta().pipeline_split_after;
        }
        if (annotated) {
            return simulateAnnotatedPipeline(model, shapes, config, transform);
        }
    }

    StepStats stats;
    stats.config = config;
    stats.capacity = cluster_.device.mem_capacity;

    nn::Profile profile =
        profileModel(model, shapes(config.micro_batch), config.tp);
    if (transform) {
        profile = transform(std::move(profile));
    }

    // Rank-local parameter count: the TP replica's shapes are already
    // narrowed; pipeline stages take an even 1/pp share.
    nn::ModulePtr replica = model.clone();
    if (config.tp > 1) {
        runtime::DistExecutor::shardParamsForRank(*replica, 0, config.tp);
    }
    const double local_params =
        static_cast<double>(replica->numParams()) / config.pp;

    // --- phase times (per pipeline stage, per micro-batch) -----------------
    const double pp_scale = 1.0 / config.pp;
    double recompute = 0;
    const double fwd_compute =
        cost_model_.forwardComputeTime(profile) * pp_scale;
    const double bwd_compute =
        cost_model_.backwardComputeTime(profile, &recompute) * pp_scale;
    recompute *= pp_scale;

    // TP collectives: the TP group always sits inside one node in the
    // Megatron-style placement unless tp exceeds the node size.
    const bool tp_cross_node = config.tp > cluster_.gpus_per_node;
    const double tp_fwd = cost_model_.commTime(profile, config.tp,
                                               tp_cross_node, false) *
                          pp_scale;
    const double tp_bwd = cost_model_.commTime(profile, config.tp,
                                               tp_cross_node, true) *
                          pp_scale;

    const double f = fwd_compute + tp_fwd;  // one micro-batch forward
    const double b = bwd_compute + tp_bwd;  // one micro-batch backward

    const int m = config.grad_accum;

    // Inter-stage activation sends: one boundary tensor per micro-batch
    // per direction. Use the largest single activation as the boundary
    // size estimate (a [mb, seq, hidden] hidden-state tensor).
    double boundary_bytes = 0;
    for (const nn::KernelRecord& k : profile.kernels) {
        boundary_bytes = std::max(boundary_bytes, k.activation_bytes);
    }
    double p2p_time = 0;
    if (config.pp > 1) {
        // PP neighbours sit gpus-per-node apart when TP fills the node.
        const bool pp_cross_node =
            config.tp * config.pp > cluster_.gpus_per_node;
        const double link = pp_cross_node ? cluster_.inter_node_bw
                                          : cluster_.intra_node_bw;
        p2p_time = 2.0 * boundary_bytes / link + cluster_.comm_latency;
    }

    // Pipeline timing: m micro-batches over pp stages. 1F1B and GPipe
    // share the (m + pp - 1) critical-path bubble term.
    const double per_micro = f + b + p2p_time;
    const double compute_time =
        per_micro * (m + config.pp - 1);

    // --- data-parallel communication --------------------------------------
    // DP ranks are tp*pp apart; they cross nodes once tp*pp fills a node.
    const bool dp_cross_node =
        config.tp * config.pp * config.dp > cluster_.gpus_per_node &&
        config.dp > 1;
    const double param_bytes = local_params * bytes_per_element_;
    double dp_comm = 0;
    if (config.dp > 1) {
        if (config.zero_stage >= 3) {
            // ZeRO-3 gathers weights for every micro-batch's forward and
            // backward, and reduce-scatters gradients once. The forward
            // gathers prefetch against forward compute; a larger micro
            // batch therefore amortizes them — one reason the Fig. 11
            // optimum sits at the largest feasible batch.
            const double ag = cost_model_.collectiveTime(
                "all_gather", param_bytes, config.dp, dp_cross_node);
            const double fwd_comm = m * ag;
            const double bwd_comm =
                m * ag + cost_model_.collectiveTime("reduce_scatter",
                                                    param_bytes, config.dp,
                                                    dp_cross_node);
            dp_comm =
                std::max(fwd_comm - 0.5 * f * m, 0.3 * fwd_comm) +
                std::max(bwd_comm - 0.6 * b * m, 0.15 * bwd_comm);
        } else {
            // DDP / ZeRO-1/2: one gradient all-reduce per step,
            // overlapped with backward by bucketing.
            dp_comm = cost_model_.collectiveTime("all_reduce", param_bytes,
                                                 config.dp, dp_cross_node);
            dp_comm = std::max(dp_comm - 0.6 * b * m, 0.15 * dp_comm);
        }
    }

    // --- optimizer ---------------------------------------------------------
    // AdamW touches 16 B of state per local parameter (ZeRO shards it).
    double opt_params = local_params;
    if (config.zero_stage >= 1) {
        opt_params /= config.dp;
    }
    const double optimizer_time =
        (opt_params * 16.0) /
        (cluster_.device.mem_bandwidth * cluster_.device.bandwidth_efficiency);

    stats.phases.forward = f * m;
    stats.phases.backward = b * m;
    stats.phases.recompute = recompute * m;
    stats.phases.tp_comm = (tp_fwd + tp_bwd) * m;
    stats.phases.dp_comm = dp_comm;
    stats.phases.optimizer = optimizer_time;
    stats.step_time = compute_time + dp_comm + optimizer_time;

    // --- memory ------------------------------------------------------------
    MemoryModel memory_model(bytes_per_element_, config.zero_stage, config.dp);
    MemoryBreakdown mem = memory_model.stateMemory(*replica);
    mem.weights /= config.pp;
    mem.gradients /= config.pp;
    mem.optimizer_states /= config.pp;
    const int in_flight =
        config.pp == 1
            ? 1
            : (config.pipe_schedule == PipeSchedule::GPipe
                   ? m
                   : std::min(m, config.pp));
    mem.activations =
        memory_model.activationMemory(profile, in_flight) / config.pp;
    // CUDA context + framework workspace floor.
    const double workspace = 1.2e9;
    stats.memory = mem;
    stats.oom = mem.total() + workspace > cluster_.device.mem_capacity;
    // Side channel for the tuner's measured-vs-predicted comparison
    // (obs/mem_profiler.h): the model-state + activation prediction,
    // without the fixed workspace floor.
    obs::reportSimPeakBytes(mem.total());

    stats.throughput =
        stats.oom ? 0.0 : config.globalBatch() / stats.step_time;
    return stats;
}

StepStats
TrainingSimulator::simulateAnnotatedPipeline(
    const nn::Module& model, const ShapeFn& shapes,
    const ParallelConfig& config, const ProfileTransform& transform) const
{
    StepStats stats;
    stats.config = config;
    stats.capacity = cluster_.device.mem_capacity;

    // Rank-0 view with TP shards applied, then partition by annotations.
    nn::ModulePtr replica = model.clone();
    if (config.tp > 1) {
        runtime::DistExecutor::shardParamsForRank(*replica, 0, config.tp);
    }
    core::SchedulePtr schedule =
        core::Schedule::create(replica, std::max(2, config.worldSize()));
    nn::DistContext partition_dist;
    partition_dist.rank = 0;
    partition_dist.world_size = config.tp;
    std::vector<core::PipelineStage> stages;
    {
        // The container traces during partitioning must see the TP
        // context: sharded modules shape-propagate per-rank.
        nn::DistGuard guard(&partition_dist);
        stages = core::partitionPipeline(*schedule, shapes(config.micro_batch));
    }
    SLAPO_CHECK(static_cast<int>(stages.size()) == config.pp,
                "simulate: model has " << stages.size()
                                       << " annotated pipeline stages but "
                                          "config.pp = "
                                       << config.pp);

    // Profile each stage, chaining boundary shapes through the pipeline.
    nn::DistContext dist;
    dist.rank = 0;
    dist.world_size = config.tp;
    std::vector<nn::Profile> profiles;
    std::vector<double> stage_params;
    std::vector<Shape> boundary = shapes(config.micro_batch);
    double max_boundary_bytes = 0;
    {
        nn::DistGuard dist_guard(&dist);
        for (const core::PipelineStage& stage : stages) {
            nn::ModulePtr stage_module = stage.toModule();
            stage_params.push_back(
                static_cast<double>(stage_module->numParams()));
            nn::Profiler profiler(bytes_per_element_);
            std::vector<nn::Value> inputs;
            for (const Shape& s : boundary) {
                inputs.emplace_back(Tensor::meta(s));
            }
            std::vector<nn::Value> outputs;
            {
                nn::ProfilerGuard guard(&profiler);
                outputs = stage_module->call(inputs);
            }
            boundary.clear();
            double bytes = 0;
            for (const nn::Value& v : outputs) {
                boundary.push_back(v.shape());
                bytes += static_cast<double>(v.tensor().numel()) *
                         bytes_per_element_;
            }
            max_boundary_bytes = std::max(max_boundary_bytes, bytes);
            nn::Profile profile = profiler.takeProfile();
            if (transform) {
                profile = transform(std::move(profile));
            }
            profiles.push_back(std::move(profile));
        }
    }

    // Per-stage times; the slowest stage paces every micro-batch slot.
    const bool tp_cross_node = config.tp > cluster_.gpus_per_node;
    const bool pp_cross_node = config.tp * config.pp > cluster_.gpus_per_node;
    const double link =
        pp_cross_node ? cluster_.inter_node_bw : cluster_.intra_node_bw;
    const double p2p_time =
        2.0 * max_boundary_bytes / link + cluster_.comm_latency;

    double bottleneck = 0;
    double sum_f = 0;
    double sum_b = 0;
    double sum_recompute = 0;
    double sum_tp = 0;
    for (const nn::Profile& profile : profiles) {
        double recompute = 0;
        const double f = cost_model_.forwardComputeTime(profile) +
                         cost_model_.commTime(profile, config.tp,
                                              tp_cross_node, false);
        const double b = cost_model_.backwardComputeTime(profile, &recompute) +
                         cost_model_.commTime(profile, config.tp,
                                              tp_cross_node, true);
        bottleneck = std::max(bottleneck, f + b + p2p_time);
        sum_f += f;
        sum_b += b;
        sum_recompute += recompute;
        sum_tp += cost_model_.commTime(profile, config.tp, tp_cross_node,
                                       false) +
                  cost_model_.commTime(profile, config.tp, tp_cross_node,
                                       true);
    }

    const int m = config.grad_accum;
    const double compute_time = bottleneck * (m + config.pp - 1);

    // DP communication / optimizer on the *largest* stage's parameters.
    const double max_params =
        *std::max_element(stage_params.begin(), stage_params.end());
    const bool dp_cross_node =
        config.tp * config.pp * config.dp > cluster_.gpus_per_node &&
        config.dp > 1;
    const double param_bytes = max_params * bytes_per_element_;
    double dp_comm = 0;
    if (config.dp > 1) {
        dp_comm = cost_model_.collectiveTime("all_reduce", param_bytes,
                                             config.dp, dp_cross_node);
        dp_comm = std::max(dp_comm - 0.6 * sum_b * m / config.pp,
                           0.15 * dp_comm);
    }
    double opt_params = max_params;
    if (config.zero_stage >= 1) {
        opt_params /= config.dp;
    }
    const double optimizer_time =
        (opt_params * 16.0) /
        (cluster_.device.mem_bandwidth * cluster_.device.bandwidth_efficiency);

    stats.phases.forward = sum_f / config.pp * m;
    stats.phases.backward = sum_b / config.pp * m;
    stats.phases.recompute = sum_recompute / config.pp * m;
    stats.phases.tp_comm = sum_tp / config.pp * m;
    stats.phases.dp_comm = dp_comm;
    stats.phases.optimizer = optimizer_time;
    stats.step_time = compute_time + dp_comm + optimizer_time;

    // Memory: the heaviest stage decides OOM.
    MemoryModel memory_model(bytes_per_element_, config.zero_stage, config.dp);
    double worst_total = 0;
    MemoryBreakdown worst;
    const int in_flight = config.pipe_schedule == PipeSchedule::GPipe
                              ? m
                              : std::min(m, config.pp);
    for (size_t i = 0; i < stages.size(); ++i) {
        MemoryBreakdown mem;
        mem.weights = stage_params[i] * bytes_per_element_;
        mem.gradients = mem.weights;
        mem.optimizer_states = stage_params[i] * 12.0;
        if (config.zero_stage >= 1) mem.optimizer_states /= config.dp;
        if (config.zero_stage >= 2) mem.gradients /= config.dp;
        if (config.zero_stage >= 3) mem.weights /= config.dp;
        mem.activations =
            memory_model.activationMemory(profiles[i], in_flight);
        if (mem.total() > worst_total) {
            worst_total = mem.total();
            worst = mem;
        }
    }
    const double workspace = 1.2e9;
    stats.memory = worst;
    stats.oom = worst_total + workspace > cluster_.device.mem_capacity;
    obs::reportSimPeakBytes(worst_total);
    stats.throughput =
        stats.oom ? 0.0 : config.globalBatch() / stats.step_time;
    return stats;
}

StepStats
TrainingSimulator::tuneMicroBatch(const nn::Module& model, const ShapeFn& shapes,
                                  ParallelConfig config, int max_micro_batch,
                                  int fixed_global_batch,
                                  const ProfileTransform& transform) const
{
    StepStats best;
    best.oom = true;
    best.config = config;
    for (int mb = 1; mb <= max_micro_batch; mb *= 2) {
        ParallelConfig c = config;
        c.micro_batch = mb;
        if (fixed_global_batch > 0) {
            const int per_rank = fixed_global_batch / c.dp;
            if (per_rank <= 0 || per_rank % mb != 0) {
                continue;
            }
            c.grad_accum = per_rank / mb;
        }
        StepStats stats = simulate(model, shapes, c, transform);
        if (stats.oom) {
            // Larger micro-batches only use more memory; stop scanning.
            if (!best.oom) break;
            continue;
        }
        if (best.oom || stats.throughput > best.throughput) {
            best = stats;
        }
    }
    return best;
}

} // namespace sim
} // namespace slapo
