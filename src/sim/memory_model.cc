#include "sim/memory_model.h"

namespace slapo {
namespace sim {

MemoryModel::MemoryModel(double bytes_per_element, int zero_stage, int dp_size)
    : bytes_per_element_(bytes_per_element),
      zero_stage_(zero_stage),
      dp_size_(dp_size)
{
    SLAPO_CHECK(zero_stage >= 0 && zero_stage <= 3,
                "MemoryModel: bad ZeRO stage " << zero_stage);
    SLAPO_CHECK(dp_size >= 1, "MemoryModel: bad dp size " << dp_size);
}

MemoryBreakdown
MemoryModel::stateMemory(const nn::Module& replica) const
{
    const double params = static_cast<double>(replica.numParams());
    const double n = static_cast<double>(dp_size_);

    MemoryBreakdown mem;
    mem.weights = params * bytes_per_element_;
    mem.gradients = params * bytes_per_element_;
    // FP32 master copy + Adam first/second moments.
    mem.optimizer_states = params * 12.0;

    if (zero_stage_ >= 1) {
        mem.optimizer_states /= n;
    }
    if (zero_stage_ >= 2) {
        mem.gradients /= n;
    }
    if (zero_stage_ >= 3) {
        mem.weights /= n;
        // Stage 3 keeps one layer's gathered weights live at a time; a
        // small working set on top of the sharded storage.
        mem.weights += params * bytes_per_element_ * 0.04;
    }
    return mem;
}

double
MemoryModel::activationMemory(const nn::Profile& profile, int in_flight) const
{
    double per_micro = 0;
    for (const nn::KernelRecord& k : profile.kernels) {
        if (!k.checkpointed) {
            per_micro += k.activation_bytes;
        }
    }
    per_micro += profile.checkpoint_boundary_bytes;
    // Caching-allocator fragmentation plus autograd bookkeeping
    // (PyTorch retains dropout masks, attention indices, etc. beyond
    // the op outputs the profiler counts).
    constexpr double kFragmentation = 1.3;
    return per_micro * kFragmentation * static_cast<double>(in_flight);
}

MemoryBreakdown
MemoryModel::trainingMemory(const nn::Module& replica,
                            const nn::Profile& profile, int in_flight) const
{
    MemoryBreakdown mem = stateMemory(replica);
    mem.activations = activationMemory(profile, in_flight);
    return mem;
}

} // namespace sim
} // namespace slapo
