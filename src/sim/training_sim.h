/**
 * @file
 * End-to-end training-step simulator: combines the cost model, the
 * memory model, and the parallelism runtimes (DDP, ZeRO-1/2/3, tensor
 * parallelism, GPipe/1F1B pipelining) into throughput and peak-memory
 * estimates for a *scheduled* model on a cluster — the engine behind
 * every figure reproduction (Figs. 7-11).
 */
#pragma once

#include <functional>

#include "nn/module.h"
#include "sim/cost_model.h"
#include "sim/memory_model.h"

namespace slapo {
namespace sim {

/** Pipeline schedule flavour. */
enum class PipeSchedule
{
    GPipe,   ///< all forwards then all backwards; activations x m
    OneFOneB ///< interleaved; activations x stage count
};

/** Parallelization of one training run. tp * pp * dp must equal the
 * cluster world size; ranks are placed TP-innermost (Megatron layout). */
struct ParallelConfig
{
    int tp = 1;
    int pp = 1;
    int dp = 1;
    int zero_stage = 0; ///< over the DP group; 3 = full ZeRO-3
    int micro_batch = 8;
    int grad_accum = 1; ///< micro-batches per step per DP rank
    PipeSchedule pipe_schedule = PipeSchedule::OneFOneB;

    int worldSize() const { return tp * pp * dp; }
    double globalBatch() const
    {
        return static_cast<double>(micro_batch) * grad_accum * dp;
    }
};

/** Outcome of one simulated training step. */
struct StepStats
{
    bool oom = false;
    double step_time = 0;  ///< seconds
    double throughput = 0; ///< samples / second (global)
    PhaseTimes phases;
    MemoryBreakdown memory;
    double capacity = 0; ///< device memory capacity for reference
    ParallelConfig config;
};

/** Builds the model-input shapes for a given micro-batch size. */
using ShapeFn = std::function<std::vector<Shape>(int micro_batch)>;

/**
 * Optional post-processing of the forward profile before costing — the
 * hook whole-graph compiler baselines use (TorchScript/nvFuser merges
 * elementwise chains it finds in the full graph).
 */
using ProfileTransform = std::function<nn::Profile(nn::Profile)>;

/** The simulator. */
class TrainingSimulator
{
  public:
    /**
     * @param bytes_per_element 2 for the FP16 models of Table 2, 4 for
     *        the FP32 WideResNet.
     */
    TrainingSimulator(const ClusterSpec& cluster, double bytes_per_element);

    /**
     * Meta-profile one forward of the scheduled model at the given input
     * shapes under a tensor-parallel context of size `tp` (rank 0's
     * replica, parameters narrowed per the schedule's shard specs).
     */
    nn::Profile profileModel(const nn::Module& model,
                             const std::vector<Shape>& input_shapes,
                             int tp) const;

    /**
     * Simulate one training step.
     *
     * Pipeline handling: with pp > 1, if the model carries
     * `.pipeline_split()` annotations they are honored — the model is
     * partitioned (core::partitionPipeline), every stage is profiled
     * separately, and the *bottleneck* stage paces the pipeline.
     * Without annotations an even 1/pp split is assumed.
     */
    StepStats simulate(const nn::Module& model, const ShapeFn& shapes,
                       const ParallelConfig& config,
                       const ProfileTransform& transform = {}) const;

    /**
     * Paper methodology (§5): "the micro-batch size is selected based on
     * the memory footprint maximizing the system performance". Scans
     * powers of two up to `max_micro_batch` and returns the best
     * non-OOM configuration (all-OOM -> stats.oom = true).
     *
     * @param fixed_global_batch when > 0, grad_accum is derived so the
     *        global batch stays constant (the strong-scaling setup of
     *        Fig. 9); micro batches that do not divide it are skipped.
     */
    StepStats tuneMicroBatch(const nn::Module& model, const ShapeFn& shapes,
                             ParallelConfig config, int max_micro_batch = 256,
                             int fixed_global_batch = 0,
                             const ProfileTransform& transform = {}) const;

    const CostModel& costModel() const { return cost_model_; }
    const ClusterSpec& cluster() const { return cluster_; }

  private:
    /** Annotation-aware pipeline path (see simulate docs). */
    StepStats simulateAnnotatedPipeline(const nn::Module& model,
                                        const ShapeFn& shapes,
                                        const ParallelConfig& config,
                                        const ProfileTransform& transform) const;

    ClusterSpec cluster_;
    double bytes_per_element_;
    CostModel cost_model_;
};

} // namespace sim
} // namespace slapo
