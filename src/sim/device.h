/**
 * @file
 * Analytical device and cluster models — the substitution for the
 * paper's Amazon EC2 p3 testbed (see DESIGN.md §2).
 *
 * A device is a roofline: kernels cost max(compute, traffic) plus a
 * launch overhead; a cluster adds hierarchical interconnect (NVLink
 * within a node, 100 Gbps across nodes) with ring-collective cost
 * formulas. Constants approximate a V100; absolute numbers are not
 * calibrated to the paper's testbed — only the relative effects
 * (launch overhead, memory traffic, collective volume, capacity limits)
 * that drive every figure's shape.
 */
#pragma once

#include <string>

namespace slapo {
namespace sim {

/** One accelerator (defaults approximate an NVIDIA V100). */
struct DeviceSpec
{
    std::string name = "V100-16GB";
    double peak_flops_fp16 = 112e12;  ///< tensor-core peak, FLOP/s
    double peak_flops_fp32 = 15.7e12; ///< FP32 peak, FLOP/s
    double mem_bandwidth = 900e9;     ///< HBM2, B/s
    double mem_capacity = 16e9;       ///< B
    double kernel_launch_overhead = 8e-6; ///< s per kernel
    /** Achievable fraction of peak for large GEMMs. */
    double compute_efficiency = 0.45;
    /** Achievable fraction of peak memory bandwidth. */
    double bandwidth_efficiency = 0.75;
    /**
     * GEMM-efficiency ramp: a kernel of F FLOPs runs at
     * compute_efficiency * F / (F + gemm_ramp_flops), modeling how small
     * per-kernel work under-utilizes the tensor cores. This is what
     * makes larger micro-batches genuinely faster — the effect the
     * paper's checkpoint-ratio and embedding-sharding tuning exploits.
     */
    double gemm_ramp_flops = 4e9;

    static DeviceSpec v100_16gb();
    static DeviceSpec v100_32gb();
};

/** A homogeneous GPU cluster (p3.16xlarge / p3dn.24xlarge instances). */
struct ClusterSpec
{
    DeviceSpec device;
    int gpus_per_node = 8;
    int num_nodes = 1;
    /** Effective per-GPU NVLink bandwidth within a node, B/s. */
    double intra_node_bw = 130e9;
    /** Effective per-node network bandwidth (100 Gbps), B/s. */
    double inter_node_bw = 10e9;
    /** Per-hop collective latency, s. */
    double comm_latency = 8e-6;

    int worldSize() const { return gpus_per_node * num_nodes; }

    /** p3.16xlarge: 8x V100 16GB, NVLink (single-node evaluations). */
    static ClusterSpec p3_16xlarge();
    /** p3dn.24xlarge x nodes: 8x V100 32GB each, 100 Gbps network. */
    static ClusterSpec p3dn_24xlarge(int nodes);
    /** A single V100 16GB (Fig. 7). */
    static ClusterSpec singleV100();
};

} // namespace sim
} // namespace slapo
