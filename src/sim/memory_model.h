/**
 * @file
 * Per-device memory accounting under mixed-precision AdamW training.
 *
 * Per parameter (FP16 training): 2 B weight + 2 B gradient + 12 B
 * optimizer state (FP32 master weight + Adam m/v) = 16 B — the standard
 * breakdown the ZeRO paper optimizes. ZeRO stages shard the state across
 * the data-parallel group:
 *   stage 1: optimizer states / N;  stage 2: + gradients / N;
 *   stage 3: + weights / N.
 * Activations come from the forward Profile: full activations of
 * non-checkpointed kernels plus the boundary inputs of checkpointed
 * modules — which is exactly what the selective-checkpoint schedules
 * trade against recompute time (Figs. 10/11).
 */
#pragma once

#include "nn/context.h"
#include "nn/module.h"

namespace slapo {
namespace sim {

/** Per-device memory breakdown in bytes. */
struct MemoryBreakdown
{
    double weights = 0;
    double gradients = 0;
    double optimizer_states = 0;
    double activations = 0;

    double total() const
    {
        return weights + gradients + optimizer_states + activations;
    }
};

/** Memory accountant for one training configuration. */
class MemoryModel
{
  public:
    /**
     * @param bytes_per_element model precision.
     * @param zero_stage ZeRO stage applied to the data-parallel group
     *        (0 = plain DDP replication).
     * @param dp_size data-parallel group size the ZeRO stages shard over.
     */
    MemoryModel(double bytes_per_element, int zero_stage, int dp_size);

    /**
     * State memory (weights + grads + optimizer) of one rank's model
     * replica. The replica's parameter shapes already reflect any tensor
     * or pipeline parallel sharding (DistExecutor::replicate narrowed
     * them), so only ZeRO's data-parallel sharding is applied here.
     */
    MemoryBreakdown stateMemory(const nn::Module& replica) const;

    /**
     * Activation memory of `in_flight` micro-batches of the profiled
     * forward (1 for plain training; up to the stage count for 1F1B
     * pipelining).
     */
    double activationMemory(const nn::Profile& profile,
                            int in_flight = 1) const;

    /** stateMemory + activationMemory. */
    MemoryBreakdown trainingMemory(const nn::Module& replica,
                                   const nn::Profile& profile,
                                   int in_flight = 1) const;

  private:
    double bytes_per_element_;
    int zero_stage_;
    int dp_size_;
};

} // namespace sim
} // namespace slapo
