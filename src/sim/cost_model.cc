#include "sim/cost_model.h"

#include <algorithm>

namespace slapo {
namespace sim {

CostModel::CostModel(const ClusterSpec& cluster, double bytes_per_element)
    : cluster_(cluster), bytes_per_element_(bytes_per_element)
{
    const DeviceSpec& d = cluster.device;
    const double peak =
        bytes_per_element <= 2.0 ? d.peak_flops_fp16 : d.peak_flops_fp32;
    effective_flops_ = peak * d.compute_efficiency;
    effective_bw_ = d.mem_bandwidth * d.bandwidth_efficiency;
}

double
CostModel::kernelTime(const nn::KernelRecord& kernel) const
{
    // Small kernels under-utilize the compute units (see DeviceSpec).
    const double ramp = cluster_.device.gemm_ramp_flops;
    const double utilization =
        kernel.flops > 0 ? kernel.flops / (kernel.flops + ramp) : 1.0;
    const double compute = kernel.flops / (effective_flops_ * utilization);
    const double traffic = (kernel.bytes_in + kernel.bytes_out) / effective_bw_;
    return cluster_.device.kernel_launch_overhead + std::max(compute, traffic);
}

double
CostModel::kernelBackwardTime(const nn::KernelRecord& kernel) const
{
    nn::KernelRecord bwd = kernel;
    bwd.flops *= 2.0;
    bwd.bytes_in *= 2.0;
    bwd.bytes_out *= 2.0;
    return kernelTime(bwd);
}

double
CostModel::collectiveTime(const std::string& kind, double bytes,
                          int group_size, bool cross_node) const
{
    if (group_size <= 1 || bytes <= 0) {
        return 0;
    }
    const double n = static_cast<double>(group_size);
    // Within a node every GPU has its NVLink share; across nodes the
    // ring's slowest hop is each node's network link divided among the
    // group members placed on it.
    double bottleneck = cluster_.intra_node_bw;
    if (cross_node) {
        const int per_node =
            std::min(group_size, cluster_.gpus_per_node);
        bottleneck = cluster_.inter_node_bw / std::max(1, per_node);
    }
    const double latency = cluster_.comm_latency * 2.0 * (n - 1.0);
    double volume_factor;
    if (kind == "all_reduce") {
        volume_factor = 2.0 * (n - 1.0) / n;
    } else if (kind == "all_gather" || kind == "reduce_scatter") {
        volume_factor = (n - 1.0) / n;
    } else {
        SLAPO_THROW("collectiveTime: unknown collective '" << kind << "'");
    }
    return latency + volume_factor * bytes / bottleneck;
}

double
CostModel::forwardComputeTime(const nn::Profile& profile) const
{
    double total = 0;
    for (const nn::KernelRecord& k : profile.kernels) {
        total += kernelTime(k);
    }
    return total;
}

double
CostModel::backwardComputeTime(const nn::Profile& profile,
                               double* recompute_out) const
{
    double total = 0;
    double recompute = 0;
    for (const nn::KernelRecord& k : profile.kernels) {
        total += kernelBackwardTime(k);
        // Checkpointed regions re-run their forward before the backward;
        // fused/flash kernels recompute inside the kernel for free.
        if (k.checkpointed && !k.recompute_free) {
            recompute += kernelTime(k);
        }
    }
    if (recompute_out != nullptr) {
        *recompute_out = recompute;
    }
    return total + recompute;
}

double
CostModel::commTime(const nn::Profile& profile, int group_size,
                    bool cross_node, bool backward) const
{
    double total = 0;
    for (const nn::CommRecord& c : profile.comms) {
        if (c.backward == backward) {
            total += collectiveTime(c.kind, c.bytes, group_size, cross_node);
        }
    }
    return total;
}

} // namespace sim
} // namespace slapo
