#include "sim/device.h"

namespace slapo {
namespace sim {

DeviceSpec
DeviceSpec::v100_16gb()
{
    return DeviceSpec{};
}

DeviceSpec
DeviceSpec::v100_32gb()
{
    DeviceSpec spec;
    spec.name = "V100-32GB";
    spec.mem_capacity = 32e9;
    return spec;
}

ClusterSpec
ClusterSpec::p3_16xlarge()
{
    ClusterSpec cluster;
    cluster.device = DeviceSpec::v100_16gb();
    cluster.gpus_per_node = 8;
    cluster.num_nodes = 1;
    return cluster;
}

ClusterSpec
ClusterSpec::p3dn_24xlarge(int nodes)
{
    ClusterSpec cluster;
    cluster.device = DeviceSpec::v100_32gb();
    cluster.gpus_per_node = 8;
    cluster.num_nodes = nodes;
    return cluster;
}

ClusterSpec
ClusterSpec::singleV100()
{
    ClusterSpec cluster;
    cluster.device = DeviceSpec::v100_16gb();
    cluster.gpus_per_node = 1;
    cluster.num_nodes = 1;
    return cluster;
}

} // namespace sim
} // namespace slapo
