/**
 * @file
 * Kernel and collective cost formulas over a forward Profile.
 *
 * Kernel: t = launch_overhead + max(flops / (peak * eff),
 *                                   bytes / (bw * eff))
 * Ring all-reduce over n ranks: t = 2(n-1) * latency
 *                                   + 2(n-1)/n * bytes / bottleneck_bw
 * (all-gather / reduce-scatter use the (n-1)/n single-pass volume).
 * The bottleneck bandwidth is the NVLink share within a node or the
 * per-GPU slice of the node's network link when the group spans nodes.
 */
#pragma once

#include "nn/context.h"
#include "sim/device.h"

namespace slapo {
namespace sim {

/** Aggregated timings of one training step's phases (seconds). */
struct PhaseTimes
{
    double forward = 0;
    double backward = 0;       ///< includes checkpoint recompute
    double recompute = 0;      ///< checkpoint recompute share (informational)
    double tp_comm = 0;        ///< tensor-parallel collectives (fwd+bwd)
    double dp_comm = 0;        ///< gradient / ZeRO collectives (post-overlap)
    double optimizer = 0;

    double total() const
    {
        return forward + backward + tp_comm + dp_comm + optimizer;
    }
};

/** Roofline + ring-collective evaluator for one cluster. */
class CostModel
{
  public:
    /**
     * @param bytes_per_element model precision (2 = FP16, 4 = FP32); FP32
     *        models also use the FP32 compute peak.
     */
    CostModel(const ClusterSpec& cluster, double bytes_per_element);

    /** Time of one kernel launch described by a profiler record. */
    double kernelTime(const nn::KernelRecord& kernel) const;

    /**
     * Backward time of the same kernel: twice the math and traffic (the
     * two grad GEMMs of a linear; activation + weight grads).
     */
    double kernelBackwardTime(const nn::KernelRecord& kernel) const;

    /**
     * Ring collective over `group_size` ranks.
     * @param kind "all_reduce" | "all_gather" | "reduce_scatter"
     * @param cross_node whether the group spans multiple nodes.
     */
    double collectiveTime(const std::string& kind, double bytes,
                          int group_size, bool cross_node) const;

    /** Sum of forward kernel times of a profile. */
    double forwardComputeTime(const nn::Profile& profile) const;

    /**
     * Sum of backward kernel times, including re-running the forward of
     * checkpointed kernels (recompute), reported separately too.
     */
    double backwardComputeTime(const nn::Profile& profile,
                               double* recompute_out = nullptr) const;

    /** Sum of collective times of the profile's comm records. */
    double commTime(const nn::Profile& profile, int group_size,
                    bool cross_node, bool backward) const;

    const ClusterSpec& cluster() const { return cluster_; }
    double bytesPerElement() const { return bytes_per_element_; }

  private:
    ClusterSpec cluster_;
    double bytes_per_element_;
    double effective_flops_;
    double effective_bw_;
};

} // namespace sim
} // namespace slapo
