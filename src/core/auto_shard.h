/**
 * @file
 * Auto-scheduler prototype for tensor parallelism — the paper's stated
 * future work ("we plan to develop an auto-scheduler that automatically
 * generates these primitives", §3.2.2) implemented for the shard/sync
 * primitive family.
 *
 * The generator walks each transformer block's *traced* dataflow to find
 * producer→consumer linear pairs, shards the producer column-parallel
 * and the consumer row-parallel, and places a single deferred all-reduce
 * after the consumer (the Fig. 3(c) deferred aggregation point),
 * together with the conjugate backward sync at the region entry. Vocab
 * embeddings become vocab-parallel with a forward all-reduce. The result
 * is the same schedule a Megatron expert writes by hand — but derived,
 * not hand-placed — and it passes the §3.5 verifier.
 */
#pragma once

#include <string>
#include <vector>

#include "core/schedule.h"

namespace slapo {
namespace core {

/** What the auto-scheduler decided, for reporting and tests. */
struct AutoShardReport
{
    /** Producer/consumer linear pairs sharded column/row-parallel. */
    std::vector<std::pair<std::string, std::string>> sharded_pairs;
    /** Vocab-parallel embeddings. */
    std::vector<std::string> sharded_embeddings;
    /** Modules that received a forward all-reduce sync. */
    std::vector<std::string> forward_syncs;
    /** Modules that received a backward all-reduce sync. */
    std::vector<std::string> backward_syncs;
};

/** Options of the auto-shard pass. */
struct AutoShardOptions
{
    /** Also shard vocabulary embeddings (with padding if needed). */
    bool shard_embeddings = true;
    /**
     * Minimum parameter count for a linear pair to be worth sharding
     * (tiny projections are all communication, no savings).
     */
    int64_t min_pair_params = 0;
};

/**
 * Automatically generate `.shard()` / `.sync()` primitives for every
 * shardable region of the scheduled model. The schedule must have been
 * created with world_size > 1.
 *
 * Detected regions:
 *  - SelfAttention / FusedSelfAttention / CrossAttentionBlock followed by
 *    their Projection (q/k/v or fused qkv column-parallel, output dense
 *    row-parallel);
 *  - FFN fc1→fc2 pairs;
 *  - (optionally) word embeddings, vocab-parallel.
 *
 * @throws SlapoError if world size does not divide the relevant
 *         dimensions (heads, hidden) of a detected region.
 */
AutoShardReport autoShard(Schedule& schedule,
                          const AutoShardOptions& options = {});

} // namespace core
} // namespace slapo
