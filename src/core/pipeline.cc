#include "core/pipeline.h"

#include <algorithm>

#include "analysis/lint.h"
#include "analysis/pipeline_check.h"

namespace slapo {
namespace core {

using graph::Node;
using graph::NodeKind;
using nn::Module;
using nn::ModulePtr;

namespace {

/** An unsplittable unit of the linearized model. */
struct Atom
{
    std::string path;
    ModulePtr module;
    bool split_after = false;
};

bool
hasAnnotatedDescendant(Module& module)
{
    for (auto& [path, m] : module.namedModules()) {
        if (!path.empty() && m->meta().pipeline_split_after) {
            return true;
        }
    }
    return false;
}

/**
 * Linearize `module` into atoms, expanding only containers that hold
 * annotations. The container's execution order comes from its (traced)
 * static graph: a chain of CallModule nodes, each consuming the previous
 * one — the form the pipeline runtime requires.
 */
void
expand(const std::string& path, ModulePtr module,
       const std::vector<Shape>& input_shapes, std::vector<Atom>& atoms)
{
    const bool split_after = module->meta().pipeline_split_after;
    if (!hasAnnotatedDescendant(*module)) {
        atoms.push_back({path, module, split_after});
        return;
    }

    // Trace by need: this container is on an annotation path, so it must
    // expose its child-call order as a static graph.
    std::shared_ptr<graph::Graph> g = module->meta().traced_graph;
    if (!g) {
        g = nn::traceModule(*module, input_shapes, nn::TraceOptions{});
    }

    const Node* previous = nullptr;
    for (Node* node : g->nodes()) {
        switch (node->kind()) {
          case NodeKind::Placeholder:
            previous = node;
            break;
          case NodeKind::CallModule: {
            SLAPO_CHECK(node->inputs().size() == 1 &&
                            node->inputs()[0] == previous,
                        "pipeline partitioning: container '"
                            << (path.empty() ? "<root>" : path)
                            << "' is not a single-tensor linear chain at "
                               "node "
                            << node->name()
                            << "; pipeline stages need sequential modules");
            ModulePtr child = module->child(node->target());
            std::vector<Shape> child_shapes;
            for (const Node* in : node->inputs()) {
                child_shapes.push_back(in->shape());
            }
            const std::string child_path =
                path.empty() ? node->target() : path + "." + node->target();
            expand(child_path, child, child_shapes, atoms);
            previous = node;
            break;
          }
          case NodeKind::Output:
            SLAPO_CHECK(node->inputs().size() == 1 &&
                            node->inputs()[0] == previous,
                        "pipeline partitioning: container output of '"
                            << path << "' is not the last child call");
            break;
          default:
            SLAPO_THROW("pipeline partitioning: container '"
                        << (path.empty() ? "<root>" : path)
                        << "' computes outside its children (node "
                        << node->name()
                        << "); move the computation into a submodule");
        }
    }
    // An annotation on the container itself cuts after its last atom.
    if (split_after && !atoms.empty()) {
        atoms.back().split_after = true;
    }
}

} // namespace

ModulePtr
PipelineStage::toModule() const
{
    auto seq = std::make_shared<nn::Sequential>();
    for (const auto& [path, m] : modules) {
        seq->append(m);
    }
    return seq;
}

std::vector<PipelineStage>
partitionPipeline(Schedule& schedule, const std::vector<Shape>& input_shapes)
{
    int annotations = 0;
    for (Schedule* s : schedule.subtree()) {
        if (s->module()->meta().pipeline_split_after) {
            ++annotations;
        }
    }
    SLAPO_CHECK(annotations > 0,
                "partitionPipeline: no .pipeline_split() annotations found");

    // Static gate: run the pipeline-split checks (and only those — sim
    // configs legitimately pair tensor-parallel recipes sized for one
    // world with pipeline worlds of another size) before building stages.
    if (analysis::lintEnabled()) {
        analysis::Diagnostics diags;
        analysis::checkPipeline(*schedule.module(), schedule.worldSize(),
                                diags);
        if (diags.hasErrors()) {
            throw analysis::StaticLintError(std::move(diags),
                                            "pipeline.partition");
        }
    }

    std::vector<Atom> atoms;
    expand("", schedule.module(), input_shapes, atoms);

    std::vector<PipelineStage> stages(1);
    for (Atom& atom : atoms) {
        stages.back().modules.emplace_back(atom.path, atom.module);
        if (atom.split_after) {
            stages.emplace_back();
        }
    }
    SLAPO_CHECK(!stages.back().modules.empty(),
                "partitionPipeline: trailing .pipeline_split() produced an "
                "empty final stage");
    return stages;
}

} // namespace core
} // namespace slapo
