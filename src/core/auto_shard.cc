#include "core/auto_shard.h"

#include <set>

namespace slapo {
namespace core {

namespace {

using graph::Node;
using graph::NodeKind;
using graph::OpKind;
using nn::Module;
using nn::ModulePtr;

/** Elementwise, feature-preserving ops a column→row pair may straddle. */
bool
isFeaturePreservingOp(const Node& node)
{
    if (node.kind() != NodeKind::CallOp) {
        return false;
    }
    switch (node.op()) {
      case OpKind::Gelu:
      case OpKind::Relu:
      case OpKind::Tanh:
      case OpKind::Dropout:
      case OpKind::Scale:
      case OpKind::AddScalar:
      case OpKind::Identity:
        return true;
      default:
        return false;
    }
}

/** Feature-preserving leaf modules (activations, dropout). */
bool
isFeaturePreservingModule(const Module& module)
{
    const std::string& t = module.typeName();
    return t == "GELU" || t == "ReLU" || t == "TanhAct" || t == "Dropout";
}

bool
alreadySharded(const Module& module)
{
    return !module.meta().sharded_params.empty();
}

void
shardLinear(Schedule& sch, int64_t axis, int64_t interleave = 1)
{
    sch.shard("weight", axis, interleave);
    if (axis == 0 && sch.module()->hasParam("bias")) {
        sch.shard("bias", 0, interleave);
    }
}

/** Example shapes for tracing a module whose input feature size is known
 * from its first linear-ish child; seq/batch are irrelevant to topology. */
std::vector<Shape>
probeShapes(Module& module)
{
    // Find the first Linear (directly or transitively) to size the input.
    for (auto& [path, m] : module.namedModules()) {
        if (m->typeName() == "Linear") {
            auto* lin = static_cast<nn::Linear*>(m);
            return {{1, 4, lin->inFeatures()}};
        }
    }
    return {};
}

/**
 * Structural pass: inside `container`'s shallow graph, find
 * Linear -> (feature-preserving)* -> Linear chains and shard them as a
 * column/row pair with a deferred all-reduce after the consumer.
 */
void
shardLinearPairs(Schedule& root, Schedule& container,
                 const AutoShardOptions& options, AutoShardReport& report)
{
    Module& module = *container.module();
    if (!module.traceable()) {
        return;
    }
    const std::vector<Shape> shapes = probeShapes(module);
    if (shapes.empty()) {
        return;
    }
    std::shared_ptr<graph::Graph> g = module.meta().traced_graph;
    if (!g) {
        try {
            g = nn::traceModule(module, shapes, nn::TraceOptions{});
        } catch (const SlapoError&) {
            return; // shapes did not fit this container's forward
        }
    }

    for (Node* node : g->nodes()) {
        if (node->kind() != NodeKind::CallModule ||
            node->module()->typeName() != "Linear") {
            continue;
        }
        Module* producer = node->module();
        if (alreadySharded(*producer)) {
            continue;
        }
        // Follow the single-consumer feature-preserving chain.
        Node* cursor = node;
        Node* consumer_node = nullptr;
        while (true) {
            auto users = g->usersOf(cursor);
            if (users.size() != 1 || users[0]->kind() == NodeKind::Output) {
                break;
            }
            Node* user = users[0];
            if (user->kind() == NodeKind::CallModule) {
                if (user->module()->typeName() == "Linear") {
                    consumer_node = user;
                    break;
                }
                if (!isFeaturePreservingModule(*user->module())) {
                    break;
                }
            } else if (!isFeaturePreservingOp(*user)) {
                break;
            }
            cursor = user;
        }
        if (consumer_node == nullptr) {
            continue;
        }
        Module* consumer = consumer_node->module();
        if (alreadySharded(*consumer)) {
            continue;
        }
        auto* a = static_cast<nn::Linear*>(producer);
        auto* b = static_cast<nn::Linear*>(consumer);
        if (a->outFeatures() != b->inFeatures() ||
            a->outFeatures() % container.worldSize() != 0) {
            continue;
        }
        if (a->numParams() + b->numParams() < options.min_pair_params) {
            continue;
        }
        Schedule& producer_sch = container[node->target()];
        Schedule& consumer_sch = container[consumer_node->target()];
        shardLinear(producer_sch, 0);
        producer_sch.sync(nn::SyncDirection::Backward);
        shardLinear(consumer_sch, 1);
        consumer_sch.sync(nn::SyncDirection::Forward);
        report.sharded_pairs.emplace_back(producer_sch.path(),
                                          consumer_sch.path());
        report.backward_syncs.push_back(producer_sch.path());
        report.forward_syncs.push_back(consumer_sch.path());
        (void)root;
    }
}

/** Shard an attention region: projections column-parallel, the output
 * dense row-parallel, deferred all-reduce after the dense (Fig. 3). */
void
shardAttention(Schedule& root, const std::string& attn_path,
               AutoShardReport& report)
{
    Schedule& attn = root[attn_path];
    Module& module = *attn.module();
    const int ws = attn.worldSize();
    if (alreadySharded(*module.children().front().second)) {
        return;
    }

    // Validate head divisibility via the core attention's head_dim.
    for (auto& [path, m] : module.namedModules()) {
        if (m->typeName() == "CoreAttention" ||
            m->typeName() == "EfficientAttention") {
            auto* core = static_cast<nn::CoreAttention*>(m);
            auto* first_linear = static_cast<nn::Linear*>(
                module.children().front().second.get());
            const int64_t hidden = first_linear->inFeatures();
            SLAPO_CHECK((hidden / ws) % core->headDim() == 0,
                        "autoShard: head count of '"
                            << attn_path << "' not divisible by world size "
                            << ws);
        }
    }

    if (module.typeName() == "FusedSelfAttention") {
        shardLinear(attn["qkv"], 0, /*interleave=*/3);
    } else {
        for (const char* proj : {"query", "key", "value"}) {
            shardLinear(attn[proj], 0);
        }
    }
    if (module.hasChild("core") &&
        attn["core"].module()->hasParam("rel_bias")) {
        attn["core"].shard("rel_bias", 0); // head-indexed table
    }
    attn.sync(nn::SyncDirection::Backward);
    report.backward_syncs.push_back(attn.path());

    // The row-parallel partner: an internal "output" projection
    // (CrossAttentionBlock) or the sibling Projection's dense.
    Schedule* dense = nullptr;
    if (module.hasChild("output")) {
        dense = &attn["output.dense"];
    } else if (attn.parent() != nullptr &&
               attn.parent()->module()->hasChild("output")) {
        dense = &(*attn.parent())["output.dense"];
    }
    SLAPO_CHECK(dense != nullptr,
                "autoShard: no output projection found for '" << attn_path
                                                              << "'");
    shardLinear(*dense, 1);
    dense->sync(nn::SyncDirection::Forward);
    report.sharded_pairs.emplace_back(attn.path(), dense->path());
    report.forward_syncs.push_back(dense->path());
}

} // namespace

AutoShardReport
autoShard(Schedule& schedule, const AutoShardOptions& options)
{
    SLAPO_CHECK(schedule.worldSize() > 1,
                "autoShard: schedule must target world_size > 1");
    AutoShardReport report;

    // Pass 1: attention regions (type-guided pairing across siblings).
    std::vector<std::string> attention_paths;
    for (auto& [path, m] : schedule.module()->namedModules()) {
        const std::string& t = m->typeName();
        if (t == "SelfAttention" || t == "FusedSelfAttention" ||
            t == "CrossAttentionBlock") {
            attention_paths.push_back(path);
        }
    }
    for (const std::string& path : attention_paths) {
        shardAttention(schedule, path, report);
    }

    // Pass 2: structural Linear->pointwise->Linear pairs in every
    // container (FFNs, MLP heads, ...), discovered from traced graphs.
    for (Schedule* sub : schedule.subtree()) {
        shardLinearPairs(schedule, *sub, options, report);
    }

    // Pass 3: vocabulary-parallel embeddings.
    if (options.shard_embeddings) {
        const int ws = schedule.worldSize();
        for (auto& [path, m] : schedule.module()->namedModules()) {
            if (m->typeName() == "Embedding" &&
                path.find("word") != std::string::npos &&
                !alreadySharded(*m)) {
                auto* emb = static_cast<nn::Embedding*>(m);
                emb->padVocabTo((emb->vocabSize() + ws - 1) / ws * ws);
                Schedule& emb_sch = schedule[path];
                emb_sch.shard("weight", 0);
                emb_sch.sync(nn::SyncDirection::Forward);
                report.sharded_embeddings.push_back(path);
                report.forward_syncs.push_back(path);
            }
        }
    }
    return report;
}

} // namespace core
} // namespace slapo
