/**
 * @file
 * Pipeline partitioning (§3.3.2): turn `.pipeline_split()` annotations on
 * arbitrary-depth submodules into a flat sequence of stage modules.
 *
 * Because the schedule preserves the model hierarchy, an annotation on
 * bert.encoder.layer.11 must be propagated upward so sibling modules at
 * every level (embeddings before the encoder, the pooler after it) land
 * in the correct stages — the propagation algorithm of Fig. 5. Only the
 * modules on the path from the common parent down to the annotations are
 * traced ("trace by need"); untraceable core blocks like attention stay
 * opaque atoms.
 */
#pragma once

#include <memory>
#include <vector>

#include "core/schedule.h"

namespace slapo {
namespace core {

/** One pipeline stage: an execution-ordered chain of original modules. */
struct PipelineStage
{
    /** Modules executed by this stage, in order (aliases into the model). */
    std::vector<std::pair<std::string, nn::ModulePtr>> modules;

    /** Wrap the chain as a runnable module (a Sequential alias). */
    nn::ModulePtr toModule() const;
};

/**
 * Partition the scheduled model into pipeline stages.
 *
 * @param schedule the root schedule; its subtree is scanned for
 *        `.pipeline_split()` annotations.
 * @param input_shapes example input shapes of the *root* module, used to
 *        trace the container modules along the annotation paths.
 * @return num_splits + 1 stages covering every module exactly once.
 * @throws SlapoError if no annotations exist, or if a container on the
 *         annotation path is not a single-tensor linear chain (the
 *         restriction the DeepSpeed pipeline runtime imposes, §4).
 */
std::vector<PipelineStage> partitionPipeline(
    Schedule& schedule, const std::vector<Shape>& input_shapes);

} // namespace core
} // namespace slapo
