/**
 * @file
 * The Slapo schedule language (§3): a structure-preserving schedule tree
 * over a model plus the primitives of Table 1.
 *
 *   | dynamic-graph primitives      | static-graph primitives            |
 *   |--------------------------------|------------------------------------|
 *   | replace(new_mod)              | replace(new_mod, subgraph)         |
 *   | shard(param_name, axis)       | fuse(compiler, subgraph)           |
 *   | sync(type)                    | pipelineSplit()                    |
 *   | checkpoint()                  | checkpoint(subgraph)               |
 *
 * plus trace(leaves, flatten), find(regex | pattern), and decompose().
 * createSchedule() recurses over all submodules so primitives can be
 * applied at any level via sch["bert.encoder.layer.0.attention"].
 *
 * Every primitive validates its preconditions (§3.5 first stage): .sync()
 * needs a prior .shard(); distributed primitives need world_size > 1;
 * static-graph primitives need a prior .trace(). Violations raise
 * SlapoError and abort the rest of the scheduling process.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/pattern.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/tracer.h"

namespace slapo {
namespace core {

class Schedule;
using SchedulePtr = std::shared_ptr<Schedule>;

/**
 * A node of the schedule tree, aliasing one module of the model. The
 * tree mirrors the module hierarchy exactly (structure preservation),
 * so developers locate optimization targets by the same paths they use
 * to debug the model.
 */
class Schedule : public std::enable_shared_from_this<Schedule>
{
  public:
    /**
     * Build the default schedule of `model` (recursively, §3.1).
     *
     * @param world_size the distributed group size this schedule targets;
     *        1 (default) disables distributed primitives.
     */
    static SchedulePtr create(nn::ModulePtr model, int world_size = 1);

    /** Navigate to a sub-schedule by dotted path (throws if absent). */
    Schedule& operator[](const std::string& path);

    /** The scheduled module. */
    nn::ModulePtr module() const { return module_; }

    /** Dotted path from the root schedule ("" at the root). */
    const std::string& path() const { return path_; }

    Schedule* parent() const { return parent_; }
    int worldSize() const { return world_size_; }

    /** Direct sub-schedules in registration order. */
    const std::vector<std::pair<std::string, SchedulePtr>>& children() const
    {
        return children_;
    }

    // --- dynamic-graph primitives (§3.2) --------------------------------

    /**
     * Swap this module for `new_module` (efficient kernel, fused block).
     * The sub-schedule tree is rebuilt for the replacement; numerical
     * equivalence is the verifier's job (core/verify.h).
     */
    void replace(nn::ModulePtr new_module);

    /** Shard parameter `name` along `axis` across the schedule's world. */
    void shard(const std::string& param_name, int64_t axis,
               int64_t interleave = 1);

    /** Shard several parameters along the same axis (Fig. 3 style). */
    void shard(const std::vector<std::string>& param_names, int64_t axis);

    /**
     * Add an aggregation point at this module's boundary. `direction` is
     * the paper's "forward" / "backward" / "both"; `kind` defaults to the
     * partial-sum all-reduce of Fig. 3.
     */
    void sync(nn::SyncDirection direction,
              nn::SyncKind kind = nn::SyncKind::AllReduce, int64_t axis = -1);

    /** Wrap this module with activation checkpointing. */
    void checkpoint();

    /** Mark a pipeline-stage boundary after this module (§3.3.2). */
    void pipelineSplit();

    /**
     * Inline this framework leaf into primitive ops when traced (splits a
     * Linear into matmul + bias-add so bias fusions can grab the add).
     */
    void decompose();

    // --- static-graph primitives (§3.3) -----------------------------------

    /**
     * Trace this module's forward into a static graph with the given
     * example input shapes; prerequisite of all graph primitives.
     */
    void trace(const std::vector<Shape>& input_shapes,
               nn::TraceOptions options = {});

    /** All matches of a signature-chain / DAG pattern (§3.3.1). */
    std::vector<graph::Match> find(const graph::Pattern& pattern);

    /** All nodes matching a regular expression. */
    std::vector<graph::Match> find(const std::string& regex);

    /**
     * Fuse a matched subgraph into one kernel via `compiler` (only the
     * "TorchScript" pattern-based fuser is implemented, as in the paper).
     */
    void fuse(const std::vector<graph::Node*>& subgraph,
              const std::string& compiler = "TorchScript");

    /** Replace a matched subgraph with a custom module. */
    void replace(nn::ModulePtr new_module,
                 const std::vector<graph::Node*>& subgraph);

    /** Checkpoint only a subgraph of the traced computation. */
    void checkpoint(const std::vector<graph::Node*>& subgraph);

    // --- un-apply (§3: primitives can be applied *or un-applied*) --------

    /** Remove the shard decision of `param_name` (and any now-orphaned
     * syncs if it was the last shard under this module). */
    void unshard(const std::string& param_name);

    /** Remove all sync points of this module. */
    void unsync();

    /** Remove the activation-checkpoint wrapper. */
    void uncheckpoint();

    /** Drop the traced static graph; the module runs its original
     * forward again (all graph-level rewrites are discarded). */
    void untrace();

    /** The traced graph (throws if .trace() has not run). */
    graph::Graph& graph();

    /** True once .trace() has run on this module. */
    bool traced() const { return module_->meta().traced_graph != nullptr; }

    /** Pre-order walk of this subtree (used by partitioner/verifier). */
    std::vector<Schedule*> subtree();

    /**
     * Human-readable dump of every primitive applied in this subtree —
     * the debuggability story of §1 (Challenge 4): the schedule is
     * inspectable separately from the (unchanged) model definition.
     * Modules with a default schedule are omitted.
     */
    std::string toString();

  private:
    Schedule(nn::ModulePtr module, Schedule* parent, std::string name,
             int world_size);

    void rebuildChildren();
    void requireDistributed(const char* primitive) const;
    void requireTraced(const char* primitive) const;

    nn::ModulePtr module_;
    Schedule* parent_;
    std::string name_;
    std::string path_;
    int world_size_;
    std::vector<std::pair<std::string, SchedulePtr>> children_;
};

} // namespace core
} // namespace slapo
