#include "core/schedule.h"

#include <algorithm>
#include <sstream>

#include "obs/provenance.h"

namespace slapo {
namespace core {

using graph::Node;
using nn::ModulePtr;

Schedule::Schedule(ModulePtr module, Schedule* parent, std::string name,
                   int world_size)
    : module_(std::move(module)),
      parent_(parent),
      name_(std::move(name)),
      world_size_(world_size)
{
    path_ = parent_ == nullptr || parent_->path_.empty()
                ? name_
                : parent_->path_ + "." + name_;
    rebuildChildren();
}

SchedulePtr
Schedule::create(ModulePtr model, int world_size)
{
    SLAPO_CHECK(model != nullptr, "create_schedule: null model");
    SLAPO_CHECK(world_size >= 1, "create_schedule: bad world size "
                                     << world_size);
    return SchedulePtr(new Schedule(std::move(model), nullptr, "", world_size));
}

void
Schedule::rebuildChildren()
{
    children_.clear();
    for (const auto& [name, child] : module_->children()) {
        children_.emplace_back(
            name, SchedulePtr(new Schedule(child, this, name, world_size_)));
    }
}

Schedule&
Schedule::operator[](const std::string& path)
{
    if (path.empty()) {
        return *this;
    }
    const size_t dot = path.find('.');
    const std::string head = path.substr(0, dot);
    for (auto& [name, child] : children_) {
        if (name == head) {
            return dot == std::string::npos ? *child
                                            : (*child)[path.substr(dot + 1)];
        }
    }
    SLAPO_THROW("schedule path '" << head << "' not found under '"
                                  << (path_.empty() ? "<root>" : path_) << "'");
}

std::vector<Schedule*>
Schedule::subtree()
{
    std::vector<Schedule*> result = {this};
    for (auto& [name, child] : children_) {
        auto sub = child->subtree();
        result.insert(result.end(), sub.begin(), sub.end());
    }
    return result;
}

std::string
Schedule::toString()
{
    std::ostringstream os;
    for (Schedule* node : subtree()) {
        const nn::ScheduleMeta& meta = node->module_->meta();
        const bool scheduled = !meta.sharded_params.empty() ||
                               !meta.syncs.empty() || meta.checkpointed ||
                               meta.pipeline_split_after || meta.decomposed ||
                               meta.traced_graph != nullptr;
        if (!scheduled) {
            continue;
        }
        os << (node->path_.empty() ? "<root>" : node->path_) << " ("
           << node->module_->typeName() << "):";
        for (const auto& [name, spec] : meta.sharded_params) {
            os << " .shard(" << name << ", axis=" << spec.axis;
            if (spec.interleave > 1) {
                os << ", interleave=" << spec.interleave;
            }
            os << ")";
        }
        for (const nn::SyncSpec& sync : meta.syncs) {
            os << " .sync("
               << (sync.direction == nn::SyncDirection::Forward    ? "forward"
                   : sync.direction == nn::SyncDirection::Backward ? "backward"
                                                                   : "both")
               << ", "
               << (sync.kind == nn::SyncKind::AllReduce ? "all_reduce"
                   : sync.kind == nn::SyncKind::AllGather
                       ? "all_gather"
                       : "reduce_scatter")
               << ")";
        }
        if (meta.checkpointed) os << " .checkpoint()";
        if (meta.decomposed) os << " .decompose()";
        if (meta.pipeline_split_after) os << " .pipeline_split()";
        if (meta.traced_graph) {
            os << " .trace(" << meta.traced_graph->size() << " nodes)";
        }
        os << "\n";
    }
    return os.str();
}

void
Schedule::requireDistributed(const char* primitive) const
{
    SLAPO_CHECK(world_size_ > 1,
                "." << primitive
                    << "(): distributed primitives require a schedule "
                       "created with world_size > 1 (got "
                    << world_size_ << ")");
}

void
Schedule::requireTraced(const char* primitive) const
{
    SLAPO_CHECK(module_->meta().traced_graph != nullptr,
                "." << primitive << "(): module '"
                    << (path_.empty() ? "<root>" : path_)
                    << "' has no static graph; call .trace() first");
}

void
Schedule::replace(ModulePtr new_module)
{
    SLAPO_CHECK(new_module != nullptr, ".replace(): null module");
    SLAPO_CHECK(parent_ != nullptr,
                ".replace(): cannot replace the root module; schedule its "
                "parent instead");
    // A replacement invalidates any graph the *parent* traced earlier,
    // because CallModule nodes bind the old module.
    SLAPO_CHECK(parent_->module_->meta().traced_graph == nullptr,
                ".replace(): parent '" << parent_->path()
                                       << "' was traced before the "
                                          "replacement; re-trace after "
                                          "replacing");
    parent_->module_->replaceChild(name_, new_module);
    module_ = std::move(new_module);
    rebuildChildren();
    obs::recordPrimitive("replace", path_);
}

void
Schedule::shard(const std::string& param_name, int64_t axis, int64_t interleave)
{
    requireDistributed("shard");
    SLAPO_CHECK(module_->hasParam(param_name),
                ".shard(): module '" << path_ << "' has no parameter '"
                                     << param_name << "'");
    const Tensor& param = module_->paramTensor(param_name);
    SLAPO_CHECK(axis >= 0 && axis < param.dim(),
                ".shard(): axis " << axis << " out of range for parameter "
                                  << param_name << " of shape "
                                  << shapeToString(param.shape()));
    SLAPO_CHECK(param.size(axis) % (world_size_ * interleave) == 0,
                ".shard(): axis extent " << param.size(axis)
                                         << " not divisible by world size "
                                         << world_size_);
    nn::ShardSpec spec;
    spec.axis = axis;
    spec.world_size = world_size_;
    spec.interleave = interleave;
    module_->meta().sharded_params[param_name] = spec;
    obs::recordPrimitive("shard", path_);
}

void
Schedule::shard(const std::vector<std::string>& param_names, int64_t axis)
{
    for (const std::string& name : param_names) {
        shard(name, axis);
    }
}

void
Schedule::sync(nn::SyncDirection direction, nn::SyncKind kind, int64_t axis)
{
    requireDistributed("sync");
    // Rule (§3.5): a .sync() must follow a .shard() somewhere in this
    // subtree — aggregating an unsharded module is always a bug.
    bool any_shard = false;
    for (auto& [path, m] : module_->namedModules()) {
        if (!m->meta().sharded_params.empty()) {
            any_shard = true;
            break;
        }
    }
    SLAPO_CHECK(any_shard,
                ".sync(): no .shard() was applied under '"
                    << (path_.empty() ? "<root>" : path_)
                    << "'; a sync point requires a prior shard");
    nn::SyncSpec spec;
    spec.direction = direction;
    spec.kind = kind;
    spec.axis = axis;
    module_->meta().syncs.push_back(spec);
    obs::recordPrimitive("sync", path_);
}

void
Schedule::checkpoint()
{
    module_->meta().checkpointed = true;
    obs::recordPrimitive("checkpoint", path_);
}

void
Schedule::pipelineSplit()
{
    requireDistributed("pipeline_split");
    SLAPO_CHECK(parent_ != nullptr,
                ".pipeline_split(): cannot split after the root module");
    module_->meta().pipeline_split_after = true;
    obs::recordPrimitive("pipeline_split", path_);
}

void
Schedule::decompose()
{
    module_->meta().decomposed = true;
    obs::recordPrimitive("decompose", path_);
}

void
Schedule::unshard(const std::string& param_name)
{
    auto& shards = module_->meta().sharded_params;
    auto it = shards.find(param_name);
    SLAPO_CHECK(it != shards.end(),
                ".unshard(): parameter '" << param_name
                                          << "' of '" << path_
                                          << "' is not sharded");
    shards.erase(it);
    // A sync without any shard would be rejected by the validator on
    // re-application; drop the now-orphaned aggregation points too. The
    // canonical recipes hang syncs on *containers* (the attention block's
    // backward all-reduce pairs with a shard on its qkv child), so the
    // cleanup must walk the whole parent chain: every schedule whose
    // module subtree no longer holds a sharded parameter loses its syncs.
    for (Schedule* s = this; s != nullptr; s = s->parent_) {
        bool any_shard = false;
        for (auto& [path, m] : s->module_->namedModules()) {
            if (!m->meta().sharded_params.empty()) {
                any_shard = true;
                break;
            }
        }
        if (!any_shard) {
            s->module_->meta().syncs.clear();
        }
    }
}

void
Schedule::unsync()
{
    module_->meta().syncs.clear();
}

void
Schedule::uncheckpoint()
{
    module_->meta().checkpointed = false;
}

void
Schedule::untrace()
{
    module_->meta().traced_graph = nullptr;
}

void
Schedule::trace(const std::vector<Shape>& input_shapes,
                nn::TraceOptions options)
{
    module_->meta().traced_graph = nullptr; // re-trace replaces the graph
    module_->meta().traced_graph =
        nn::traceModule(*module_, input_shapes, std::move(options));
    obs::recordPrimitive("trace", path_);
}

graph::Graph&
Schedule::graph()
{
    requireTraced("graph");
    return *module_->meta().traced_graph;
}

std::vector<graph::Match>
Schedule::find(const graph::Pattern& pattern)
{
    requireTraced("find");
    return graph::findPattern(graph(), pattern);
}

std::vector<graph::Match>
Schedule::find(const std::string& regex)
{
    requireTraced("find");
    return graph::findByRegex(graph(), regex);
}

void
Schedule::fuse(const std::vector<Node*>& subgraph, const std::string& compiler)
{
    requireTraced("fuse");
    SLAPO_CHECK(compiler == "TorchScript",
                ".fuse(): unknown compiler '"
                    << compiler << "' (only \"TorchScript\" is supported)");
    Node* fused = graph().fuseSubgraph(subgraph, "fused");
    const int64_t seq = obs::recordPrimitive("fuse", path_);
    fused->setProvenance({"fuse", path_, seq});
    // The autograd engine executes the encapsulated clones one by one;
    // stamp them too so fused compute attributes to .fuse() either way.
    for (Node* inner : fused->subgraph()->nodes()) {
        inner->setProvenance({"fuse", path_, seq});
    }
}

void
Schedule::replace(ModulePtr new_module, const std::vector<Node*>& subgraph)
{
    requireTraced("replace");
    SLAPO_CHECK(new_module != nullptr, ".replace(): null module");
    // Register the custom kernel as a child so it is owned, cloned, and
    // profiled like any other module.
    std::string name = "replaced_0";
    for (int i = 0; module_->hasChild(name); ++i) {
        name = "replaced_" + std::to_string(i + 1);
    }
    module_->registerChild(name, new_module);
    Node* node = graph().replaceSubgraph(subgraph, graph::NodeKind::CallModule,
                                         name);
    node->setTarget(name);
    node->setModule(new_module.get());
    node->setAttr("type", new_module->typeName());
    node->setProvenance(
        {"replace", path_, obs::recordPrimitive("replace", path_)});
    rebuildChildren();
}

void
Schedule::checkpoint(const std::vector<Node*>& subgraph)
{
    requireTraced("checkpoint");
    SLAPO_CHECK(!subgraph.empty(), ".checkpoint(): empty subgraph");
    const int64_t seq = obs::recordPrimitive("checkpoint", path_);
    for (Node* node : subgraph) {
        node->setCheckpointed(true);
        node->setProvenance({"checkpoint", path_, seq});
    }
}

} // namespace core
} // namespace slapo
