/**
 * @file
 * Schedule verification (§3.5, stages two and three).
 *
 * Stage one (primitive-sequence rules) lives inside the primitives
 * themselves. This header provides the numeric stages:
 *  - verifyReplacement: random-input equivalence of a replaced/fused
 *    module against the original;
 *  - verifyEndToEnd: the whole scheduled model against the unscheduled
 *    reference — running the scheduled model under the multi-rank
 *    executor when it was sharded, which catches both wrong shard shapes
 *    and misplaced `.sync()` aggregation points.
 */
#pragma once

#include <functional>
#include <vector>

#include "core/schedule.h"
#include "nn/module.h"

namespace slapo {
namespace core {

/** Options of the numeric verifier. */
struct VerifyOptions
{
    /** Number of random inputs to test (paper: configurable). */
    int num_inputs = 2;
    /** Max tolerated |a - b| per element. */
    float tolerance = 1e-3f;
    /** Seed of the random input generator. */
    uint64_t seed = 42;
    /**
     * Custom input generator for constrained inputs (e.g. integer token
     * ids); called once per trial with the trial index. When empty,
     * uniform(-1, 1) tensors of the given shapes are generated.
     */
    std::function<std::vector<Tensor>(int trial)> input_gen;
    /** Input shapes used by the default generator. */
    std::vector<Shape> input_shapes;
    /**
     * Also compare *gradients*: both models are wrapped with a
     * cross-entropy loss (appending a target generated per trial) and
     * backpropagated; every parameter gradient must match. Only
     * supported for single-output, unsharded schedules; the distributed
     * gradient check lives in the runtime tests.
     */
    bool check_gradients = false;
};

/**
 * Check that `replacement` computes the same function as `original` on
 * random inputs. Both modules must be single-output and materialized.
 *
 * @throws SlapoError with the offending max-difference on mismatch.
 */
void verifyReplacement(nn::Module& original, nn::Module& replacement,
                       const VerifyOptions& options);

/**
 * End-to-end check of a scheduled model against the unscheduled
 * reference. If the schedule sharded any parameter, the scheduled model
 * runs under a DistExecutor with the schedule's world size and *every*
 * rank's output is compared against the reference — a partial
 * (unaggregated) output therefore fails, diagnosing a missing or
 * misplaced `.sync()`.
 */
void verifyEndToEnd(nn::Module& reference, Schedule& schedule,
                    const VerifyOptions& options);

/**
 * The `.replace()` primitive with the §3.5 stage-two check built in:
 * verifies `new_module` against the currently scheduled module on random
 * inputs *before* swapping it in, so a wrong replacement never lands.
 *
 * @throws SlapoError (and leaves the schedule untouched) on divergence.
 */
void replaceVerified(Schedule& schedule, nn::ModulePtr new_module,
                     const VerifyOptions& options);

} // namespace core
} // namespace slapo
