#include "core/verify.h"

#include "analysis/lint.h"
#include "runtime/autograd.h"
#include "runtime/dist_executor.h"

namespace slapo {
namespace core {

namespace {

std::vector<Tensor>
generateInputs(const VerifyOptions& options, int trial)
{
    if (options.input_gen) {
        return options.input_gen(trial);
    }
    SLAPO_CHECK(!options.input_shapes.empty(),
                "verifier: provide input_shapes or an input generator");
    std::vector<Tensor> inputs;
    for (size_t i = 0; i < options.input_shapes.size(); ++i) {
        inputs.push_back(Tensor::uniform(
            options.input_shapes[i], 1.0f,
            options.seed + 977 * trial + 13 * static_cast<uint64_t>(i)));
    }
    return inputs;
}

std::vector<Tensor>
runEager(nn::Module& module, const std::vector<Tensor>& inputs)
{
    std::vector<nn::Value> values;
    values.reserve(inputs.size());
    for (const Tensor& t : inputs) {
        values.emplace_back(t);
    }
    std::vector<Tensor> outputs;
    for (nn::Value& v : module.call(values)) {
        SLAPO_CHECK(v.tensor().materialized(),
                    "verifier: module produced a meta output; materialize "
                    "parameters before verification");
        outputs.push_back(v.tensor());
    }
    return outputs;
}

} // namespace

void
verifyReplacement(nn::Module& original, nn::Module& replacement,
                  const VerifyOptions& options)
{
    for (int trial = 0; trial < options.num_inputs; ++trial) {
        const std::vector<Tensor> inputs = generateInputs(options, trial);
        const std::vector<Tensor> expected = runEager(original, inputs);
        const std::vector<Tensor> actual = runEager(replacement, inputs);
        SLAPO_CHECK(expected.size() == actual.size(),
                    "verifier: replacement output arity "
                        << actual.size() << " != original " << expected.size());
        for (size_t i = 0; i < expected.size(); ++i) {
            SLAPO_CHECK(expected[i].shape() == actual[i].shape(),
                        "verifier: replacement output " << i << " has shape "
                            << shapeToString(actual[i].shape())
                            << ", original has "
                            << shapeToString(expected[i].shape()));
            const float diff = Tensor::maxAbsDiff(expected[i], actual[i]);
            SLAPO_CHECK(diff <= options.tolerance,
                        "verifier: replacement diverges on trial "
                            << trial << ", output " << i << ": max |diff| = "
                            << diff << " > " << options.tolerance);
        }
    }
}

namespace {

/** Backprop both models through a CE loss; compare parameter grads. */
void
verifyGradients(nn::Module& reference, nn::Module& scheduled,
                const std::vector<Tensor>& inputs, float tolerance, int trial)
{
    // Wrap clones so the originals keep their (unwrapped) structure.
    nn::ModulePtr ref_loss = runtime::withCrossEntropyLoss(reference.clone());
    nn::ModulePtr sch_loss = runtime::withCrossEntropyLoss(scheduled.clone());

    // Targets: flatten the reference logits' leading dims.
    std::vector<nn::Value> probe_in;
    for (const Tensor& t : inputs) probe_in.emplace_back(t);
    nn::Value logits = reference.callOne(probe_in);
    Shape target_shape(logits.shape().begin(), logits.shape().end() - 1);
    const int64_t vocab = logits.shape().back();
    Tensor targets =
        Tensor::randint(target_shape, vocab, 4242 + trial);

    std::vector<Tensor> loss_inputs = inputs;
    loss_inputs.push_back(targets);
    runtime::AutogradEngine ref_engine;
    runtime::GradResult ref_result = ref_engine.run(*ref_loss, loss_inputs);
    runtime::AutogradEngine sch_engine;
    runtime::GradResult sch_result = sch_engine.run(*sch_loss, loss_inputs);

    auto ref_params = ref_loss->namedParams();
    auto sch_params = sch_loss->namedParams();
    SLAPO_CHECK(ref_params.size() == sch_params.size(),
                "verifier: parameter count changed ("
                    << ref_params.size() << " -> " << sch_params.size()
                    << "); gradient check requires structure-compatible "
                       "schedules");
    for (size_t i = 0; i < ref_params.size(); ++i) {
        Tensor g_ref = runtime::AutogradEngine::gradFor(ref_result,
                                                        *ref_params[i].second);
        Tensor g_sch = runtime::AutogradEngine::gradFor(sch_result,
                                                        *sch_params[i].second);
        SLAPO_CHECK(g_ref.shape() == g_sch.shape(),
                    "verifier: gradient shape mismatch at parameter '"
                        << ref_params[i].first << "'");
        const float diff = Tensor::maxAbsDiff(g_ref, g_sch);
        SLAPO_CHECK(diff <= tolerance,
                    "verifier: gradient of '" << ref_params[i].first
                                              << "' diverges on trial "
                                              << trial << ": max |diff| = "
                                              << diff << " > " << tolerance);
    }
}

} // namespace

void
verifyEndToEnd(nn::Module& reference, Schedule& schedule,
               const VerifyOptions& options)
{
    nn::Module& scheduled = *schedule.module();

    // Stage one (docs/VERIFICATION.md): the static lint must pass before
    // any tensor is generated or executed — shape contradictions and
    // sharding mistakes fail fast with stable SLP codes.
    analysis::enforceLint(scheduled, schedule.worldSize(),
                          "verify.end_to_end");

    // Pre-flight: every installed static graph must be well-formed
    // (rewrites like fuse/replace can only leave valid graphs behind).
    for (auto& [path, m] : scheduled.namedModules()) {
        if (m->meta().traced_graph) {
            m->meta().traced_graph->validate();
        }
    }

    bool sharded = false;
    for (auto& [path, m] : scheduled.namedModules()) {
        if (!m->meta().sharded_params.empty()) {
            sharded = true;
            break;
        }
    }

    for (int trial = 0; trial < options.num_inputs; ++trial) {
        const std::vector<Tensor> inputs = generateInputs(options, trial);
        const std::vector<Tensor> expected = runEager(reference, inputs);

        std::vector<std::vector<Tensor>> per_rank;
        if (sharded) {
            runtime::DistExecutor executor(schedule.worldSize());
            per_rank = executor.forward(scheduled, inputs);
        } else {
            per_rank.push_back(runEager(scheduled, inputs));
        }

        for (size_t rank = 0; rank < per_rank.size(); ++rank) {
            const auto& actual = per_rank[rank];
            SLAPO_CHECK(actual.size() == expected.size(),
                        "verifier: scheduled model output arity mismatch");
            for (size_t i = 0; i < expected.size(); ++i) {
                SLAPO_CHECK(
                    expected[i].shape() == actual[i].shape(),
                    "verifier: rank " << rank << " output " << i
                                      << " has sharded shape "
                                      << shapeToString(actual[i].shape())
                                      << " but the reference produces "
                                      << shapeToString(expected[i].shape())
                                      << "; a .sync() aggregation point is "
                                         "missing or misplaced");
                const float diff = Tensor::maxAbsDiff(expected[i], actual[i]);
                SLAPO_CHECK(diff <= options.tolerance,
                            "verifier: rank "
                                << rank << " diverges on trial " << trial
                                << ", output " << i << ": max |diff| = " << diff
                                << " > " << options.tolerance
                                << " (wrong shard layout or aggregation "
                                   "point)");
            }
        }

        if (options.check_gradients) {
            SLAPO_CHECK(!sharded,
                        "verifier: check_gradients does not support sharded "
                        "schedules; use the DistExecutor gradient tests");
            verifyGradients(reference, scheduled, inputs, options.tolerance,
                            trial);
        }
    }
}

void
replaceVerified(Schedule& schedule, nn::ModulePtr new_module,
                const VerifyOptions& options)
{
    SLAPO_CHECK(new_module != nullptr, "replaceVerified: null module");
    verifyReplacement(*schedule.module(), *new_module, options);
    schedule.replace(std::move(new_module));
}

} // namespace core
} // namespace slapo
