/**
 * @file
 * Megatron-LM framework dialect (§4): validates that a scheduled model
 * is in the form Megatron's runtime accepts — every tensor-parallel
 * block must be a column-parallel/row-parallel pair with the matching
 * sync points — and emits the runtime configuration. The checks encode
 * Megatron's conventions: column-parallel linears shard weights on
 * axis 0 with the gradient all-reduce ("f") at their input; row-parallel
 * linears shard on axis 1 with the output all-reduce ("g").
 */
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"

namespace slapo {
namespace dialects {

/** Runtime configuration handed to the (simulated) Megatron launcher. */
struct MegatronLaunchConfig
{
    int tensor_parallel = 1;
    int pipeline_parallel = 1;
    /** Paths of column-parallel (axis-0) sharded linears. */
    std::vector<std::string> column_parallel;
    /** Paths of row-parallel (axis-1) sharded linears. */
    std::vector<std::string> row_parallel;
    /** Paths of vocab-parallel embeddings. */
    std::vector<std::string> vocab_parallel;
};

/**
 * Validate the scheduled model against Megatron's conventions and
 * extract its launch configuration.
 *
 * @throws SlapoError if a row-parallel linear lacks a forward sync, if a
 *         sharded module's world size disagrees with `tensor_parallel`,
 *         or if a vocab-parallel embedding lacks its all-reduce.
 */
MegatronLaunchConfig toMegatron(nn::Module& model, int tensor_parallel,
                                int pipeline_parallel = 1);

} // namespace dialects
} // namespace slapo
