/**
 * @file
 * DeepSpeed framework dialect (§4): the DeepSpeed pipeline runtime
 * requires each stage to consume and produce *a single tuple of
 * tensors*. The dialect wraps every partitioned stage in a module that
 * (1) unpacks the incoming tuple and packs the outgoing one, and
 * (2) performs liveness analysis so tensors required by *later* stages
 * are bypassed through intermediate stages that do not use them.
 */
#pragma once

#include <vector>

#include "core/pipeline.h"
#include "nn/module.h"

namespace slapo {
namespace dialects {

/**
 * A pipeline stage in DeepSpeed form: forward takes the stage tuple
 * (primary activation first, live bypass tensors after) and returns the
 * next stage's tuple.
 */
class DeepSpeedStage : public nn::Module
{
  public:
    /**
     * @param stage the partitioned chain this stage executes.
     * @param bypass_count trailing tuple entries forwarded untouched
     *        (the liveness set computed by wrapForDeepSpeedPipeline).
     */
    DeepSpeedStage(const core::PipelineStage& stage, int bypass_count);

    std::vector<nn::Value> forward(const std::vector<nn::Value>& inputs) override;
    nn::ModulePtr clone() const override;

    int bypassCount() const { return bypass_count_; }

  private:
    int bypass_count_;
};

/**
 * Convert partitioned stages into DeepSpeed tuple-calling-convention
 * stage modules. Liveness: with single-tensor boundaries (the form
 * core::partitionPipeline guarantees), each stage's bypass set is any
 * extra tuple entries the caller threads through — computed here so
 * chained execution of the returned stages reproduces the original
 * model exactly (verified in tests).
 */
std::vector<nn::ModulePtr> wrapForDeepSpeedPipeline(
    const std::vector<core::PipelineStage>& stages);

/**
 * Execute wrapped stages back-to-back on one device (the runtime's
 * correctness path; scheduling across devices is the simulator's job).
 */
std::vector<nn::Value> runPipelineSequentially(
    const std::vector<nn::ModulePtr>& stages,
    const std::vector<nn::Value>& inputs);

} // namespace dialects
} // namespace slapo
