#include "dialects/megatron_dialect.h"

namespace slapo {
namespace dialects {

MegatronLaunchConfig
toMegatron(nn::Module& model, int tensor_parallel, int pipeline_parallel)
{
    SLAPO_CHECK(tensor_parallel >= 1 && pipeline_parallel >= 1,
                "toMegatron: bad parallel degrees");
    MegatronLaunchConfig config;
    config.tensor_parallel = tensor_parallel;
    config.pipeline_parallel = pipeline_parallel;

    auto hasForwardSync = [](const nn::Module& m) {
        for (const nn::SyncSpec& sync : m.meta().syncs) {
            if (sync.direction == nn::SyncDirection::Forward ||
                sync.direction == nn::SyncDirection::Both) {
                return true;
            }
        }
        return false;
    };

    for (auto& [path, module] : model.namedModules()) {
        const auto& shards = module->meta().sharded_params;
        if (shards.empty()) {
            continue;
        }
        for (const auto& [pname, spec] : shards) {
            SLAPO_CHECK(spec.world_size == tensor_parallel,
                        "toMegatron: '" << path << "." << pname
                                        << "' sharded over " << spec.world_size
                                        << " ranks but tensor_parallel = "
                                        << tensor_parallel);
        }
        auto weight_it = shards.find("weight");
        if (weight_it == shards.end()) {
            continue;
        }
        if (module->typeName() == "Linear") {
            if (weight_it->second.axis == 0) {
                config.column_parallel.push_back(path);
            } else {
                SLAPO_CHECK(hasForwardSync(*module),
                            "toMegatron: row-parallel linear '"
                                << path
                                << "' has no forward all-reduce sync; its "
                                   "output would stay a partial sum");
                config.row_parallel.push_back(path);
            }
        } else if (module->typeName() == "Embedding") {
            SLAPO_CHECK(weight_it->second.axis == 0,
                        "toMegatron: embedding '" << path
                                                  << "' must shard the vocab "
                                                     "axis (0)");
            SLAPO_CHECK(hasForwardSync(*module),
                        "toMegatron: vocab-parallel embedding '"
                            << path << "' needs a forward all-reduce sync");
            config.vocab_parallel.push_back(path);
        }
    }
    return config;
}

} // namespace dialects
} // namespace slapo
