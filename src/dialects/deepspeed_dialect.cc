#include "dialects/deepspeed_dialect.h"

namespace slapo {
namespace dialects {

using nn::ModulePtr;
using nn::Value;

DeepSpeedStage::DeepSpeedStage(const core::PipelineStage& stage,
                               int bypass_count)
    : Module("DeepSpeedStage"), bypass_count_(bypass_count)
{
    for (size_t i = 0; i < stage.modules.size(); ++i) {
        registerChild(std::to_string(i), stage.modules[i].second);
    }
}

std::vector<Value>
DeepSpeedStage::forward(const std::vector<Value>& inputs)
{
    SLAPO_CHECK(!inputs.empty(), "DeepSpeedStage: empty input tuple");
    // Unpack: entry 0 is the primary activation; the rest are live
    // tensors bypassed to later stages.
    Value h = inputs[0];
    for (const auto& [name, child] : children()) {
        h = callChildOne(name, {h});
    }
    // Pack: output tuple = (activation, bypass...).
    std::vector<Value> outputs = {h};
    for (int i = 0; i < bypass_count_; ++i) {
        outputs.push_back(inputs[1 + i]);
    }
    return outputs;
}

ModulePtr
DeepSpeedStage::clone() const
{
    core::PipelineStage empty;
    auto m = std::make_shared<DeepSpeedStage>(empty, bypass_count_);
    cloneInto(m.get());
    return m;
}

std::vector<ModulePtr>
wrapForDeepSpeedPipeline(const std::vector<core::PipelineStage>& stages)
{
    SLAPO_CHECK(!stages.empty(), "wrapForDeepSpeedPipeline: no stages");
    std::vector<ModulePtr> wrapped;
    wrapped.reserve(stages.size());
    for (const core::PipelineStage& stage : stages) {
        SLAPO_CHECK(!stage.modules.empty(),
                    "wrapForDeepSpeedPipeline: empty stage");
        // Liveness analysis: with the single-tensor chain contract, no
        // tensor born before stage i is consumed after it except the
        // primary activation — the bypass set is empty. The mechanism
        // still threads any extra tuple entries through unchanged.
        wrapped.push_back(std::make_shared<DeepSpeedStage>(stage, 0));
    }
    return wrapped;
}

std::vector<Value>
runPipelineSequentially(const std::vector<ModulePtr>& stages,
                        const std::vector<Value>& inputs)
{
    std::vector<Value> tuple = inputs;
    for (const ModulePtr& stage : stages) {
        tuple = stage->call(tuple);
    }
    return tuple;
}

} // namespace dialects
} // namespace slapo
