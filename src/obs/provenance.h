/**
 * @file
 * Process-wide schedule-provenance registry: which primitive was applied
 * to which module path, in which order (docs/OBSERVABILITY.md,
 * "Attribution & step reports").
 *
 * Graph-level primitives (.fuse(), .replace(subgraph), …) stamp the
 * nodes they create directly (graph::Provenance on graph::Node); but
 * most primitives — .shard(), .sync(), .checkpoint(), .pipeline_split(),
 * .decompose() — act on *module metadata* and leave the traced nodes
 * untouched. This registry records those decisions so the step-report
 * builder (obs/step_report.h) can attribute the compute executed under a
 * scheduled module to the primitive that reshaped it: a row whose node
 * carries no stamped provenance is attributed to the most recent
 * compute-affecting primitive on the longest dotted-prefix match of its
 * module path, or to "baseline" when no primitive touched the subtree.
 *
 * The registry sits in obs (the bottom of the dependency stack) so both
 * core/schedule.cc (the writer) and obs/step_report.cc (the reader) can
 * reach it. Writes happen at scheduling time, never on the training hot
 * path; reads happen at report-build time — a mutex is fine.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace slapo {
namespace obs {

/** One recorded schedule decision. */
struct ProvenanceRecord
{
    std::string primitive;   ///< "shard", "sync", "fuse", …
    std::string module_path; ///< dotted schedule path ("" = root)
    int64_t apply_seq = -1;  ///< monotonic application order
};

/**
 * Record one primitive application; returns its apply_seq. Called by
 * every schedule primitive (auto-shard and pipeline lowering go through
 * the same primitives, so they are covered for free).
 */
int64_t recordPrimitive(const std::string& primitive,
                        const std::string& module_path);

/**
 * The compute-affecting primitive responsible for work executed under
 * `module_path`: the most recent record on the longest dotted-prefix
 * match. Records of "sync" and "trace" are skipped — sync time is
 * attributed explicitly at the collective call site, and tracing does
 * not change what runs. Returns nullptr when nothing matches (baseline).
 * The pointer stays valid until clearProvenance().
 */
const ProvenanceRecord* lookupProvenance(const std::string& module_path);

/** All records in application order (for dumps and tests). */
std::vector<ProvenanceRecord> provenanceRecords();

/** Number of primitives recorded so far. */
int64_t provenanceCount();

/** Drop all records and reset apply_seq (tests / fresh schedules). */
void clearProvenance();

} // namespace obs
} // namespace slapo
