#include "obs/provenance.h"

#include <deque>
#include <map>
#include <mutex>

namespace slapo {
namespace obs {

namespace {

struct Registry
{
    std::mutex mutex;
    int64_t next_seq = 0;
    /** Records in application order; deque so pointers stay stable. */
    std::deque<ProvenanceRecord> records;
    /** module_path -> indices into `records`, in application order. */
    std::map<std::string, std::vector<size_t>> by_path;
};

Registry&
registry()
{
    static Registry* r = new Registry();
    return *r;
}

bool
claimsCompute(const std::string& primitive)
{
    // Sync time is attributed at the collective call site; tracing does
    // not change what executes.
    return primitive != "sync" && primitive != "trace";
}

} // namespace

int64_t
recordPrimitive(const std::string& primitive, const std::string& module_path)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    ProvenanceRecord rec;
    rec.primitive = primitive;
    rec.module_path = module_path;
    rec.apply_seq = r.next_seq++;
    r.records.push_back(std::move(rec));
    r.by_path[module_path].push_back(r.records.size() - 1);
    return r.records.back().apply_seq;
}

const ProvenanceRecord*
lookupProvenance(const std::string& module_path)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    // Walk prefixes longest-first: "a.b.c", "a.b", "a", "".
    std::string prefix = module_path;
    while (true) {
        auto it = r.by_path.find(prefix);
        if (it != r.by_path.end()) {
            for (auto idx = it->second.rbegin(); idx != it->second.rend();
                 ++idx) {
                const ProvenanceRecord& rec = r.records[*idx];
                if (claimsCompute(rec.primitive)) {
                    return &rec;
                }
            }
        }
        if (prefix.empty()) {
            return nullptr;
        }
        const size_t dot = prefix.rfind('.');
        prefix = dot == std::string::npos ? "" : prefix.substr(0, dot);
    }
}

std::vector<ProvenanceRecord>
provenanceRecords()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return {r.records.begin(), r.records.end()};
}

int64_t
provenanceCount()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return static_cast<int64_t>(r.records.size());
}

void
clearProvenance()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.records.clear();
    r.by_path.clear();
    r.next_seq = 0;
}

} // namespace obs
} // namespace slapo
