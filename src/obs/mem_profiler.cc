#include "obs/mem_profiler.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/provenance.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "support/error.h"

namespace slapo {
namespace obs {

namespace {

/** Per-category Chrome-trace counter track names (literal lifetime). */
constexpr const char* kCategoryName[kNumMemCategories] = {
    "parameter",       "gradient", "activation",
    "optimizer_state", "scratch",  "comm_buffer",
};
constexpr const char* kCategoryTrack[kNumMemCategories] = {
    "mem.parameter_bytes",       "mem.gradient_bytes",
    "mem.activation_bytes",      "mem.optimizer_state_bytes",
    "mem.scratch_bytes",         "mem.comm_buffer_bytes",
};

/** Top-K live tensors kept in each peak snapshot. */
constexpr size_t kTopTensors = 16;

/** Thread-local allocation tag the RAII scopes maintain. */
struct ThreadTag
{
    MemCategory category = MemCategory::Activation;
    int64_t node_id = -1;
    const std::string* primitive = nullptr; ///< stamped node provenance
    int rank = -1;
};

thread_local ThreadTag t_tag;

/** Budget configuration: read on the alloc path without the registry
 * lock (plain relaxed atomics, set rarely). */
std::atomic<int64_t> g_budget{-1};
std::atomic<int> g_budget_action{0}; ///< 0 = warn, 1 = throw

std::mutex g_dump_mutex;
std::string g_dump_path; ///< SLAPO_MEM_DUMP / setMemDumpPath ("" = none)

} // namespace

struct MemWindow::State
{
    int64_t peak = 0;
    int64_t cat_at_peak[kNumMemCategories] = {};
};

namespace {

/** The live-tensor registry. One mutex: the enabled path is a profiling
 * mode, and allocations come from a handful of rank/stage threads, never
 * from inside parallelFor chunks (tensor/alloc.h). */
struct Registry
{
    struct Entry
    {
        int64_t bytes = 0;
        MemCategory category = MemCategory::Activation;
        int64_t node_id = -1;
        int rank = -1;
        uint32_t path_id = 0; ///< index into `paths`
    };

    std::mutex mutex;
    std::unordered_map<const void*, Entry> entries;

    /** Interned (module path, primitive) pairs + per-pair live bytes by
     * category — the incremental aggregate a snapshot copies from. */
    std::map<std::pair<std::string, std::string>, uint32_t> path_ids;
    std::vector<std::pair<std::string, std::string>> paths;
    std::vector<std::array<int64_t, kNumMemCategories>> agg;

    int64_t live = 0;
    int64_t peak = 0;
    int64_t cat_live[kNumMemCategories] = {};

    MemPeakReport snapshot;
    int64_t snapshot_live = 0; ///< live bytes at the last snapshot

    std::vector<MemWindow::State*> windows;

    bool above_budget = false; ///< watchdog edge detector
};

Registry&
registry()
{
    static Registry* r = new Registry();
    return *r;
}

/** Re-snapshot hysteresis: skip rebuilds for watermark advances smaller
 * than ~0.4% of the peak (floor 4 KiB), bounding snapshot work to
 * O(log) rebuilds per doubling of peak memory. */
int64_t
snapshotThreshold(int64_t peak)
{
    return std::max<int64_t>(peak / 256, 4096);
}

uint32_t
internPathLocked(Registry& r, const std::string& module_path,
                 const std::string& primitive)
{
    const auto key = std::make_pair(module_path, primitive);
    auto it = r.path_ids.find(key);
    if (it != r.path_ids.end()) {
        return it->second;
    }
    const uint32_t id = static_cast<uint32_t>(r.paths.size());
    r.path_ids.emplace(key, id);
    r.paths.push_back(key);
    r.agg.emplace_back();
    r.agg.back().fill(0);
    return id;
}

void
rebuildSnapshotLocked(Registry& r)
{
    MemPeakReport& s = r.snapshot;
    s.rows.clear();
    s.top.clear();
    s.peak_bytes = r.peak;
    s.live_bytes = r.live;
    s.retained_bytes = metrics().alloc_pooled_bytes.get();
    s.budget_bytes = g_budget.load(std::memory_order_relaxed);
    std::copy(std::begin(r.cat_live), std::end(r.cat_live),
              std::begin(s.category_bytes));

    int64_t attributed = 0;
    for (size_t p = 0; p < r.agg.size(); ++p) {
        for (int c = 0; c < kNumMemCategories; ++c) {
            const int64_t bytes = r.agg[p][c];
            if (bytes <= 0) {
                continue;
            }
            MemRow row;
            row.category = static_cast<MemCategory>(c);
            row.module_path = r.paths[p].first;
            row.primitive = r.paths[p].second;
            row.bytes = bytes;
            attributed += bytes;
            s.rows.push_back(std::move(row));
        }
    }
    s.attributed_bytes = attributed;
    std::stable_sort(s.rows.begin(), s.rows.end(),
                     [](const MemRow& a, const MemRow& b) {
                         return a.bytes > b.bytes;
                     });

    // Top-K live tensors: partial sort over the entry set.
    std::vector<const std::pair<const void* const, Registry::Entry>*> all;
    all.reserve(r.entries.size());
    for (const auto& kv : r.entries) {
        all.push_back(&kv);
    }
    const size_t k = std::min(kTopTensors, all.size());
    std::partial_sort(all.begin(), all.begin() + static_cast<long>(k),
                      all.end(), [](const auto* a, const auto* b) {
                          return a->second.bytes > b->second.bytes;
                      });
    for (size_t i = 0; i < k; ++i) {
        const Registry::Entry& e = all[i]->second;
        MemTensorRow row;
        row.bytes = e.bytes;
        row.category = e.category;
        row.module_path = r.paths[e.path_id].first;
        row.primitive = r.paths[e.path_id].second;
        row.node_id = e.node_id;
        row.rank = e.rank;
        s.top.push_back(std::move(row));
    }
    r.snapshot_live = r.live;
}

void
writeDumpFile(const std::string& json)
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(g_dump_mutex);
        path = g_dump_path;
    }
    if (path.empty()) {
        return;
    }
    std::ofstream file(path, std::ios::trunc);
    if (file.good()) {
        file << json << "\n";
    }
}

/**
 * Shared allocation-recording body. `enforce_budget` is false on the
 * scratch path (a throwing kernel temporary would leak its buffer).
 * Throws MemoryBudgetExceeded — with the entry rolled back first — when
 * the budget is crossed under action Throw.
 */
void
recordAllocImpl(const void* key, int64_t bytes, MemCategory category,
                bool enforce_budget)
{
    // Resolve the primitive before taking the registry lock
    // (lookupProvenance holds the provenance registry's own mutex).
    // Precedence mirrors step reports: stamped node provenance, then the
    // registry's longest-prefix match, then baseline.
    const std::string& module_path = ModuleScope::currentPath();
    std::string primitive;
    if (t_tag.primitive != nullptr && !t_tag.primitive->empty()) {
        primitive = *t_tag.primitive;
    } else if (const ProvenanceRecord* rec = lookupProvenance(module_path)) {
        primitive = rec->primitive;
    } else {
        primitive = "baseline";
    }

    const int64_t budget = g_budget.load(std::memory_order_relaxed);
    const bool throw_action = g_budget_action.load(std::memory_order_relaxed) == 1;

    bool crossed = false;
    bool do_throw = false;
    int64_t live_at_crossing = 0;
    int64_t cat_level = 0;
    std::string forensics;

    Registry& r = registry();
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        const uint32_t path_id = internPathLocked(r, module_path, primitive);

        Registry::Entry& entry = r.entries[key];
        if (entry.bytes != 0) {
            // Stale entry: the key's previous owner was freed while the
            // profiler was toggled off (its free went unrecorded) and
            // the address was reused. Roll the stale bytes off first.
            const int stale_c = static_cast<int>(entry.category);
            r.live -= entry.bytes;
            r.cat_live[stale_c] -= entry.bytes;
            r.agg[entry.path_id][stale_c] -= entry.bytes;
        }
        entry.bytes = bytes;
        entry.category = category;
        entry.node_id = t_tag.node_id;
        entry.rank = t_tag.rank;
        entry.path_id = path_id;

        const int c = static_cast<int>(category);
        r.live += bytes;
        r.cat_live[c] += bytes;
        r.agg[path_id][c] += bytes;
        cat_level = r.cat_live[c];

        if (r.live > r.peak) {
            r.peak = r.live;
            if (r.peak - r.snapshot_live >= snapshotThreshold(r.peak)) {
                rebuildSnapshotLocked(r);
            }
        }
        for (MemWindow::State* w : r.windows) {
            if (r.live > w->peak) {
                w->peak = r.live;
                std::copy(std::begin(r.cat_live), std::end(r.cat_live),
                          std::begin(w->cat_at_peak));
            }
        }

        if (budget >= 0 && r.live > budget) {
            if (!r.above_budget) {
                // Rising edge: this allocation IS the over-budget peak —
                // snapshot right here so the forensics show the exact
                // composition at the crossing.
                r.above_budget = true;
                rebuildSnapshotLocked(r);
                forensics = r.snapshot.toJson();
                crossed = true;
                live_at_crossing = r.live;
                if (enforce_budget && throw_action) {
                    // Roll the allocation back: the caller releases the
                    // buffer, so the registry must not keep the entry.
                    r.entries.erase(key);
                    r.live -= bytes;
                    r.cat_live[c] -= bytes;
                    r.agg[path_id][c] -= bytes;
                    r.above_budget = r.live > budget;
                    do_throw = true;
                }
            }
        }
    }

    if (tracingEnabled()) {
        traceCounter(kCategoryTrack[static_cast<int>(category)], cat_level);
    }
    if (crossed) {
        if (RunLog* log = runLog()) {
            RunLogRecord record("mem.budget");
            record.num("live_bytes", live_at_crossing)
                .num("budget_bytes", budget)
                .str("action", throw_action ? "throw" : "warn")
                .raw("report", forensics);
            log->write(record);
        }
        writeDumpFile(forensics);
    }
    if (do_throw) {
        throw MemoryBudgetExceeded(live_at_crossing, budget);
    }
}

} // namespace

const char*
memCategoryName(MemCategory category)
{
    return kCategoryName[static_cast<int>(category)];
}

// --- enablement ----------------------------------------------------------

namespace detail {

std::atomic<int> g_mem_enabled{-1};

namespace {
std::once_flag g_env_once;
} // namespace

namespace impl {

void
probeEnv()
{
    std::call_once(g_env_once, [] {
        bool on = false;
        if (const char* env = std::getenv("SLAPO_MEM_PROFILE")) {
            on = env[0] != '\0' && std::strcmp(env, "0") != 0 &&
                 std::strcmp(env, "off") != 0;
        }
        if (const char* env = std::getenv("SLAPO_MEM_BUDGET")) {
            if (env[0] != '\0') {
                const long long bytes = std::atoll(env);
                if (bytes > 0) {
                    g_budget.store(bytes, std::memory_order_relaxed);
                    on = true; // a budget implies watching live bytes
                }
            }
        }
        if (const char* env = std::getenv("SLAPO_MEM_BUDGET_ACTION")) {
            g_budget_action.store(std::strcmp(env, "throw") == 0 ? 1 : 0,
                                  std::memory_order_relaxed);
        }
        if (const char* env = std::getenv("SLAPO_MEM_DUMP")) {
            if (env[0] != '\0') {
                std::lock_guard<std::mutex> lock(g_dump_mutex);
                g_dump_path = env;
                on = true; // a dump path implies wanting the report
            }
        }
        int expected = -1;
        g_mem_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                              std::memory_order_relaxed);
    });
}

} // namespace impl

bool
memProfilingEnabledSlow()
{
    impl::probeEnv();
    return g_mem_enabled.load(std::memory_order_relaxed) == 1;
}

} // namespace detail

void
setMemProfilingEnabled(bool on)
{
    detail::impl::probeEnv(); // settle the env state so it can't overwrite
    detail::g_mem_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

// --- budget --------------------------------------------------------------

int64_t
memBudgetBytes()
{
    detail::impl::probeEnv();
    return g_budget.load(std::memory_order_relaxed);
}

void
setMemBudget(int64_t bytes, MemBudgetAction action)
{
    detail::impl::probeEnv();
    g_budget.store(bytes < 0 ? -1 : bytes, std::memory_order_relaxed);
    g_budget_action.store(action == MemBudgetAction::Throw ? 1 : 0,
                          std::memory_order_relaxed);
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.above_budget = bytes >= 0 && r.live > bytes;
}

void
setMemDumpPath(const std::string& path)
{
    detail::impl::probeEnv();
    std::lock_guard<std::mutex> lock(g_dump_mutex);
    g_dump_path = path;
}

// --- recording hooks -----------------------------------------------------

void
memRecordAlloc(const void* key, int64_t bytes)
{
    recordAllocImpl(key, bytes, t_tag.category, /*enforce_budget=*/true);
}

void
memRecordAlloc(const void* key, int64_t bytes, MemCategory category)
{
    recordAllocImpl(key, bytes, category, /*enforce_budget=*/true);
}

void
memRecordScratch(const void* key, int64_t bytes) noexcept
{
    recordAllocImpl(key, bytes, MemCategory::Scratch,
                    /*enforce_budget=*/false);
}

void
memRecordFree(const void* key) noexcept
{
    Registry& r = registry();
    int c = -1;
    int64_t cat_level = 0;
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        auto it = r.entries.find(key);
        if (it == r.entries.end()) {
            return; // allocated while the profiler was off
        }
        const Registry::Entry& entry = it->second;
        c = static_cast<int>(entry.category);
        r.live -= entry.bytes;
        r.cat_live[c] -= entry.bytes;
        r.agg[entry.path_id][c] -= entry.bytes;
        cat_level = r.cat_live[c];
        r.entries.erase(it);
        const int64_t budget = g_budget.load(std::memory_order_relaxed);
        if (r.above_budget && (budget < 0 || r.live <= budget)) {
            r.above_budget = false; // re-arm the watchdog
        }
    }
    if (tracingEnabled()) {
        traceCounter(kCategoryTrack[c], cat_level);
    }
}

// --- thread tag scopes ---------------------------------------------------

MemCategoryScope::MemCategoryScope(MemCategory category)
{
    if (!memProfilingEnabled()) {
        return;
    }
    active_ = true;
    prev_ = t_tag.category;
    t_tag.category = category;
}

MemCategoryScope::~MemCategoryScope()
{
    if (active_) {
        t_tag.category = prev_;
    }
}

MemNodeScope::MemNodeScope(int64_t node_id, const std::string* primitive)
{
    if (!memProfilingEnabled()) {
        return;
    }
    active_ = true;
    prev_id_ = t_tag.node_id;
    prev_primitive_ = t_tag.primitive;
    t_tag.node_id = node_id;
    t_tag.primitive = primitive;
}

MemNodeScope::~MemNodeScope()
{
    if (active_) {
        t_tag.node_id = prev_id_;
        t_tag.primitive = prev_primitive_;
    }
}

void
setMemThreadRank(int rank)
{
    t_tag.rank = rank;
}

void
memRetagRank(const void* key, int rank)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.entries.find(key);
    if (it != r.entries.end()) {
        it->second.rank = rank;
    }
}

// --- reports -------------------------------------------------------------

double
MemPeakReport::attributedFraction() const
{
    if (peak_bytes <= 0) {
        return 0;
    }
    return static_cast<double>(attributed_bytes) /
           static_cast<double>(peak_bytes);
}

std::string
MemPeakReport::categoriesJson() const
{
    std::string out = "{";
    for (int c = 0; c < kNumMemCategories; ++c) {
        if (c > 0) out += ",";
        out += json::quoted(kCategoryName[c]) + ":" +
               json::number(category_bytes[c]);
    }
    out += "}";
    return out;
}

std::string
MemPeakReport::toJson() const
{
    std::string out = "{\"kind\":\"mem_peak_report\",\"schema_version\":2";
    out += ",\"peak_bytes\":" + json::number(peak_bytes);
    out += ",\"live_bytes\":" + json::number(live_bytes);
    out += ",\"attributed_bytes\":" + json::number(attributed_bytes);
    out += ",\"attributed_fraction\":" + json::number(attributedFraction());
    out += ",\"retained_bytes\":" + json::number(retained_bytes);
    out += ",\"budget_bytes\":" + json::number(budget_bytes);
    out += ",\"categories\":" + categoriesJson();
    out += ",\"rows\":[";
    bool first = true;
    for (const MemRow& row : rows) {
        if (!first) out += ",";
        first = false;
        out += "{\"category\":" +
               json::quoted(kCategoryName[static_cast<int>(row.category)]) +
               ",\"module\":" + json::quoted(row.module_path) +
               ",\"primitive\":" + json::quoted(row.primitive) +
               ",\"bytes\":" + json::number(row.bytes) + "}";
    }
    out += "],\"top_tensors\":[";
    first = true;
    for (const MemTensorRow& t : top) {
        if (!first) out += ",";
        first = false;
        out += "{\"bytes\":" + json::number(t.bytes) + ",\"category\":" +
               json::quoted(kCategoryName[static_cast<int>(t.category)]) +
               ",\"module\":" + json::quoted(t.module_path) +
               ",\"primitive\":" + json::quoted(t.primitive) +
               ",\"node_id\":" + json::number(t.node_id) +
               ",\"rank\":" + json::number(static_cast<int64_t>(t.rank)) +
               "}";
    }
    out += "]}";
    return out;
}

MemPeakReport
memPeakReport()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    // Catch up on any watermark advance the hysteresis skipped so the
    // returned report is never staler than one threshold step.
    if (r.peak > r.snapshot.peak_bytes && r.live == r.peak) {
        rebuildSnapshotLocked(r);
    } else {
        r.snapshot.peak_bytes = r.peak;
    }
    return r.snapshot;
}

int64_t
memLiveBytes()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.live;
}

int64_t
memCategoryLiveBytes(MemCategory category)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.cat_live[static_cast<int>(category)];
}

int64_t
memRegistrySize()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return static_cast<int64_t>(r.entries.size());
}

bool
memLookup(const void* key, MemTensorRow* out)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.entries.find(key);
    if (it == r.entries.end()) {
        return false;
    }
    if (out != nullptr) {
        const Registry::Entry& e = it->second;
        out->bytes = e.bytes;
        out->category = e.category;
        out->module_path = r.paths[e.path_id].first;
        out->primitive = r.paths[e.path_id].second;
        out->node_id = e.node_id;
        out->rank = e.rank;
    }
    return true;
}

void
writeMemDump(const std::string& path)
{
    const std::string json = memPeakReport().toJson();
    std::ofstream file(path, std::ios::trunc);
    if (file.good()) {
        file << json << "\n";
    }
}

void
memProfilerReset()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    SLAPO_ASSERT(r.windows.empty(),
                 "memProfilerReset with " << r.windows.size()
                                          << " MemWindow(s) alive");
    r.entries.clear();
    r.path_ids.clear();
    r.paths.clear();
    r.agg.clear();
    r.live = 0;
    r.peak = 0;
    std::fill(std::begin(r.cat_live), std::end(r.cat_live), 0);
    r.snapshot = MemPeakReport();
    r.snapshot_live = 0;
    r.above_budget = false;
}

// --- MemWindow -----------------------------------------------------------

MemWindow::MemWindow()
{
    if (!memProfilingEnabled()) {
        return;
    }
    state_ = new State();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    // The window opens at the current level: a step that only *holds*
    // memory (no new watermark) still reports what it held.
    state_->peak = r.live;
    std::copy(std::begin(r.cat_live), std::end(r.cat_live),
              std::begin(state_->cat_at_peak));
    r.windows.push_back(state_);
}

MemWindow::~MemWindow()
{
    if (state_ == nullptr) {
        return;
    }
    Registry& r = registry();
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        auto& w = r.windows;
        w.erase(std::remove(w.begin(), w.end(), state_), w.end());
    }
    delete state_;
}

bool
MemWindow::active() const
{
    return state_ != nullptr;
}

int64_t
MemWindow::peakBytes() const
{
    if (state_ == nullptr) {
        return 0;
    }
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return state_->peak;
}

int64_t
MemWindow::categoryPeakBytes(MemCategory category) const
{
    if (state_ == nullptr) {
        return 0;
    }
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return state_->cat_at_peak[static_cast<int>(category)];
}

std::string
MemWindow::categoriesJson() const
{
    std::string out = "{";
    for (int c = 0; c < kNumMemCategories; ++c) {
        if (c > 0) out += ",";
        out += json::quoted(kCategoryName[c]) + ":";
        out += json::number(
            categoryPeakBytes(static_cast<MemCategory>(c)));
    }
    out += "}";
    return out;
}

// --- sim-model side channel ----------------------------------------------

namespace {
thread_local double t_sim_peak_bytes = -1.0;
} // namespace

void
reportSimPeakBytes(double predicted_peak_bytes)
{
    t_sim_peak_bytes = predicted_peak_bytes;
}

double
takeSimPeakBytes()
{
    const double value = t_sim_peak_bytes;
    t_sim_peak_bytes = -1.0;
    return value;
}

} // namespace obs
} // namespace slapo
