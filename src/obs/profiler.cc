#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <tuple>

#include "obs/mem_profiler.h"
#include "obs/trace.h"

namespace slapo {
namespace obs {

namespace {

/** 4 sub-buckets per power-of-two octave: <= 19% relative error on p99. */
constexpr int kSubBuckets = 4;
constexpr int kNumBuckets = 64 * kSubBuckets;

int
bucketOf(int64_t ns)
{
    if (ns < kSubBuckets) {
        return static_cast<int>(ns < 0 ? 0 : ns);
    }
    const uint64_t v = static_cast<uint64_t>(ns);
    const int octave = 63 - __builtin_clzll(v);
    const int sub = static_cast<int>((v >> (octave - 2)) & 3);
    return octave * kSubBuckets + sub;
}

/** Inclusive upper bound of a bucket (inverse of bucketOf). */
int64_t
bucketUpperBound(int bucket)
{
    if (bucket < kSubBuckets) {
        return bucket;
    }
    const int octave = bucket / kSubBuckets;
    const int sub = bucket % kSubBuckets;
    return ((static_cast<int64_t>(sub) + 5) << (octave - 2)) - 1;
}

std::atomic<OpProfiler*> g_current{nullptr};
std::once_flag g_env_once;

std::string
formatUs(double ns)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", ns / 1000.0);
    return buf;
}

} // namespace

struct OpProfiler::Impl
{
    struct Agg
    {
        int64_t count = 0;
        int64_t total_ns = 0;
        int64_t buckets[kNumBuckets] = {};
    };

    mutable std::mutex mutex;
    // Ordered map keyed by (op, module_path, primitive): deterministic
    // report order for ties, and no hashing of composite keys.
    std::map<std::tuple<std::string, std::string, std::string>, Agg> aggs;
};

OpProfiler::OpProfiler() : impl_(new Impl()) {}

OpProfiler::~OpProfiler()
{
    delete impl_;
}

void
OpProfiler::record(const std::string& op, const std::string& module_path,
                   int64_t duration_ns)
{
    record(op, module_path, std::string(), duration_ns);
}

namespace {
thread_local int64_t t_recorded_ns = 0;
} // namespace

int64_t
OpProfiler::threadRecordedNs()
{
    return t_recorded_ns;
}

void
OpProfiler::record(const std::string& op, const std::string& module_path,
                   const std::string& primitive, int64_t duration_ns)
{
    t_recorded_ns += duration_ns;
    std::lock_guard<std::mutex> lock(impl_->mutex);
    Impl::Agg& agg = impl_->aggs[{op, module_path, primitive}];
    ++agg.count;
    agg.total_ns += duration_ns;
    ++agg.buckets[bucketOf(duration_ns)];
}

std::vector<OpStats>
OpProfiler::report() const
{
    std::vector<OpStats> stats;
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        stats.reserve(impl_->aggs.size());
        for (const auto& [key, agg] : impl_->aggs) {
            OpStats s;
            s.op = std::get<0>(key);
            s.module_path = std::get<1>(key);
            s.primitive = std::get<2>(key);
            s.count = agg.count;
            s.total_ns = agg.total_ns;
            s.mean_ns = static_cast<double>(agg.total_ns) /
                        static_cast<double>(agg.count);
            // p99: first bucket at which the cumulative count covers 99%.
            const int64_t threshold = (agg.count * 99 + 99) / 100;
            int64_t seen = 0;
            for (int b = 0; b < kNumBuckets; ++b) {
                seen += agg.buckets[b];
                if (seen >= threshold) {
                    s.p99_ns = bucketUpperBound(b);
                    break;
                }
            }
            stats.push_back(std::move(s));
        }
    }
    std::stable_sort(stats.begin(), stats.end(),
                     [](const OpStats& a, const OpStats& b) {
                         return a.total_ns > b.total_ns;
                     });
    return stats;
}

std::string
OpProfiler::table() const
{
    const std::vector<OpStats> stats = report();
    int64_t grand_total = 0;
    size_t op_width = 2, path_width = 6, prim_width = 9;
    for (const OpStats& s : stats) {
        grand_total += s.total_ns;
        op_width = std::max(op_width, s.op.size());
        path_width = std::max(path_width,
                              std::max<size_t>(s.module_path.size(), 6));
        prim_width = std::max(prim_width,
                              std::max<size_t>(s.primitive.size(), 9));
    }
    std::ostringstream os;
    char line[512];
    std::snprintf(line, sizeof line,
                  "%-*s  %-*s  %-*s  %8s  %12s  %10s  %10s  %6s\n",
                  static_cast<int>(op_width), "op",
                  static_cast<int>(path_width), "module",
                  static_cast<int>(prim_width), "primitive", "count",
                  "total(us)", "mean(us)", "p99(us)", "%");
    os << line;
    for (const OpStats& s : stats) {
        const double pct =
            grand_total > 0
                ? 100.0 * static_cast<double>(s.total_ns) /
                      static_cast<double>(grand_total)
                : 0.0;
        std::snprintf(line, sizeof line,
                      "%-*s  %-*s  %-*s  %8lld  %12s  %10s  %10s  %5.1f%%\n",
                      static_cast<int>(op_width), s.op.c_str(),
                      static_cast<int>(path_width),
                      s.module_path.empty() ? "(root)" : s.module_path.c_str(),
                      static_cast<int>(prim_width),
                      s.primitive.empty() ? "-" : s.primitive.c_str(),
                      static_cast<long long>(s.count),
                      formatUs(static_cast<double>(s.total_ns)).c_str(),
                      formatUs(s.mean_ns).c_str(),
                      formatUs(static_cast<double>(s.p99_ns)).c_str(), pct);
        os << line;
    }
    std::snprintf(line, sizeof line, "total: %s us across %zu (op, module) pairs\n",
                  formatUs(static_cast<double>(grand_total)).c_str(),
                  stats.size());
    os << line;
    return os.str();
}

std::string
OpProfiler::toJson() const
{
    std::string out = "[";
    bool first = true;
    for (const OpStats& s : report()) {
        if (!first) out += ",";
        first = false;
        out += "{\"op\":\"" + s.op + "\",\"module\":\"" + s.module_path +
               "\",\"primitive\":\"" + s.primitive +
               "\",\"count\":" + std::to_string(s.count) +
               ",\"total_ns\":" + std::to_string(s.total_ns) +
               ",\"mean_ns\":" + std::to_string(s.mean_ns) +
               ",\"p99_ns\":" + std::to_string(s.p99_ns) + "}";
    }
    out += "]";
    return out;
}

void
OpProfiler::clear()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->aggs.clear();
}

OpProfiler*
OpProfiler::current()
{
    OpProfiler* p = g_current.load(std::memory_order_relaxed);
    if (p != nullptr) {
        return p;
    }
    // One-time environment probe: SLAPO_OP_PROFILE=1 (table to stderr at
    // exit) or SLAPO_OP_PROFILE=report.json (JSON file at exit).
    std::call_once(g_env_once, [] {
        const char* env = std::getenv("SLAPO_OP_PROFILE");
        if (env == nullptr || env[0] == '\0') {
            return;
        }
        static OpProfiler* profiler = new OpProfiler();
        static std::string out = env;
        g_current.store(profiler, std::memory_order_relaxed);
        std::atexit([] {
            if (out == "1") {
                std::fputs(profiler->table().c_str(), stderr);
            } else {
                if (std::FILE* f = std::fopen(out.c_str(), "wb")) {
                    const std::string json = profiler->toJson();
                    std::fwrite(json.data(), 1, json.size(), f);
                    std::fputc('\n', f);
                    std::fclose(f);
                }
            }
        });
    });
    return g_current.load(std::memory_order_relaxed);
}

OpProfilerGuard::OpProfilerGuard(OpProfiler* profiler)
    : previous_(g_current.load(std::memory_order_relaxed))
{
    g_current.store(profiler, std::memory_order_relaxed);
}

OpProfilerGuard::~OpProfilerGuard()
{
    g_current.store(previous_, std::memory_order_relaxed);
}

namespace {
thread_local std::string t_module_path;
} // namespace

ModuleScope::ModuleScope(const std::string& name) : restore_len_(SIZE_MAX)
{
    if (!active()) {
        return;
    }
    restore_len_ = t_module_path.size();
    if (!t_module_path.empty()) {
        t_module_path += '.';
    }
    t_module_path += name;
}

ModuleScope::~ModuleScope()
{
    if (restore_len_ != SIZE_MAX) {
        t_module_path.resize(restore_len_);
    }
}

const std::string&
ModuleScope::currentPath()
{
    return t_module_path;
}

bool
ModuleScope::active()
{
    return OpProfiler::current() != nullptr || tracingEnabled() ||
           memProfilingEnabled();
}

} // namespace obs
} // namespace slapo
