/**
 * @file
 * Memory profiler: live-tensor attribution, peak forensics, and the
 * memory-budget watchdog (docs/OBSERVABILITY.md, "Where did my memory
 * go?").
 *
 * Where obs/metrics.h keeps one global live/peak byte pair, this module
 * answers *which module, which schedule primitive, which tensor
 * category* is holding the bytes. Every `TensorStorage` (and every
 * `alloc::Scratch` kernel temporary) is tagged at allocation with:
 *
 *   category    parameter / gradient / activation / optimizer-state /
 *               scratch / comm-buffer, taken from the innermost
 *               MemCategoryScope on the allocating thread (the runtime
 *               opens scopes at the natural sites: initializeParams,
 *               AdamW::addParam, gradient accumulation, the bucketed
 *               gradient exchange; everything else is an activation)
 *   module      the dotted ModuleScope path active at allocation
 *   primitive   the stamped node provenance when allocation happens
 *               under a graph node (MemNodeScope), else the provenance
 *               registry's longest-prefix match, else "baseline" —
 *               the same precedence step reports use for time
 *   node id     the graph node being executed (-1 outside executors)
 *   rank        the data-parallel rank / pipeline stage of the
 *               allocating thread (setMemThreadRank), re-attributable
 *               after an elastic rebuild (memRetagRank)
 *
 * On every advance of the live-bytes high watermark the registry
 * snapshots a peak attribution report — bytes per (category, module,
 * primitive), top-K live tensors — and, while a Chrome trace is live,
 * emits one counter track per category so checkpointing visibly trades
 * activation bytes for recompute time on the same timeline.
 *
 * Cost discipline: when disabled (the default) every instrumented
 * allocation/free costs ONE relaxed atomic load (`memProfilingEnabled`,
 * same pattern as obs::tracingEnabled). Enabled cost is a mutexed
 * registry update per allocation — the benches put a number on both
 * (BM_MemProfilerDisabledCheck / BM_MemProfilerRecord).
 *
 * Budget watchdog: `SLAPO_MEM_BUDGET=bytes` (auto-enables the profiler)
 * turns the first allocation that pushes live bytes over the budget
 * into forensics: the full peak report is written as a run-log
 * `mem.budget` record and to the `SLAPO_MEM_DUMP` file, and with
 * `SLAPO_MEM_BUDGET_ACTION=throw` the allocation is rolled back and a
 * typed MemoryBudgetExceeded is raised — which the recovery machinery
 * treats like any other step failure. The watchdog re-arms once live
 * bytes fall back under the budget.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace slapo {
namespace obs {

/** What a live tensor is *for*. Order is the report/JSON order. */
enum class MemCategory : int
{
    Parameter = 0,
    Gradient,
    Activation,
    OptimizerState,
    Scratch,
    CommBuffer,
};

constexpr int kNumMemCategories = 6;

/** Lower-case stable name ("parameter", "optimizer_state", ...). */
const char* memCategoryName(MemCategory category);

// --- enablement (one-relaxed-atomic pattern, see obs/trace.h) -----------

namespace detail {
extern std::atomic<int> g_mem_enabled; ///< -1 = probe env, 0 = off, 1 = on
/** One-time SLAPO_MEM_PROFILE / SLAPO_MEM_BUDGET environment probe. */
bool memProfilingEnabledSlow();
} // namespace detail

/**
 * True while the live-tensor registry is recording. The disabled fast
 * path — what every TensorStorage construction/destruction pays — is a
 * single relaxed atomic load. First calls probe `SLAPO_MEM_PROFILE=1`
 * plus the budget/dump variables (any of which auto-enable).
 */
inline bool
memProfilingEnabled()
{
    const int state = detail::g_mem_enabled.load(std::memory_order_relaxed);
    if (state >= 0) {
        return state == 1;
    }
    return detail::memProfilingEnabledSlow();
}

/** Programmatic switch (overrides the environment probe). Enabling does
 * not clear the registry; pair with memProfilerReset() in tests. */
void setMemProfilingEnabled(bool on);

// --- budget watchdog -----------------------------------------------------

/** What to do when live bytes cross the budget (beyond the dump). */
enum class MemBudgetAction
{
    Warn,  ///< dump forensics, keep going (default)
    Throw, ///< roll back the allocation and raise MemoryBudgetExceeded
};

/** The configured budget in bytes, or -1 when none. */
int64_t memBudgetBytes();

/** Set (or clear, with bytes < 0) the budget programmatically. */
void setMemBudget(int64_t bytes, MemBudgetAction action = MemBudgetAction::Warn);

/** Where budget crossings dump forensics ("" = nowhere). Overrides
 * SLAPO_MEM_DUMP. */
void setMemDumpPath(const std::string& path);

// --- recording hooks (tensor/tensor.cc, tensor/alloc.h) ------------------

/**
 * Register a storage allocation under the calling thread's current tag
 * (category scope, ModuleScope path, node scope, rank). `key` is the
 * storage identity later passed to memRecordFree — Tensor::storageKey()
 * for tensor storage. Callers must check memProfilingEnabled() first.
 * May throw MemoryBudgetExceeded (after rolling the entry back) when
 * the budget is crossed with action Throw.
 */
void memRecordAlloc(const void* key, int64_t bytes);

/** Same, with an explicit category overriding the thread scope. */
void memRecordAlloc(const void* key, int64_t bytes, MemCategory category);

/** Scratch variant: explicit Scratch category, never throws (a kernel
 * temporary must not leak its buffer to the watchdog). */
void memRecordScratch(const void* key, int64_t bytes) noexcept;

/** Unregister a storage. Unknown keys (allocated while the profiler was
 * off) are ignored. Never throws. */
void memRecordFree(const void* key) noexcept;

// --- thread tag scopes ---------------------------------------------------

/**
 * RAII category tag for allocations on the calling thread. The runtime
 * opens these at the sites that know what a tensor is for; untagged
 * allocations are activations. Free (no thread-local write) when the
 * profiler is disabled.
 */
class MemCategoryScope
{
  public:
    explicit MemCategoryScope(MemCategory category);
    ~MemCategoryScope();
    MemCategoryScope(const MemCategoryScope&) = delete;
    MemCategoryScope& operator=(const MemCategoryScope&) = delete;

  private:
    MemCategory prev_{};
    bool active_ = false;
};

/**
 * RAII node tag: the graph node (id + stamped primitive) the executor is
 * currently running, so tensors allocated inside kernels attribute to
 * the node that produced them. `primitive` must outlive the scope (it is
 * the node's provenance string). Free when the profiler is disabled.
 */
class MemNodeScope
{
  public:
    MemNodeScope(int64_t node_id, const std::string* primitive);
    ~MemNodeScope();
    MemNodeScope(const MemNodeScope&) = delete;
    MemNodeScope& operator=(const MemNodeScope&) = delete;

  private:
    int64_t prev_id_ = -1;
    const std::string* prev_primitive_ = nullptr;
    bool active_ = false;
};

/** Tag the calling thread's allocations with a data-parallel rank or
 * pipeline stage index (-1 = untagged). Cheap; callable always. */
void setMemThreadRank(int rank);

/** Re-attribute one live storage to a new owner rank (elastic rebuild:
 * a surviving rank inherits another rank's shards). Unknown keys are
 * ignored. */
void memRetagRank(const void* key, int rank);

// --- reports -------------------------------------------------------------

/** One (category, module, primitive) attribution row. */
struct MemRow
{
    MemCategory category = MemCategory::Activation;
    std::string module_path; ///< dotted owner path ("" = root)
    std::string primitive;   ///< resolved primitive or "baseline"
    int64_t bytes = 0;
};

/** One live tensor (the top-K list of a peak report). */
struct MemTensorRow
{
    int64_t bytes = 0;
    MemCategory category = MemCategory::Activation;
    std::string module_path;
    std::string primitive;
    int64_t node_id = -1;
    int rank = -1;
};

/**
 * Snapshot taken at (a hysteresis step under) the live-bytes high
 * watermark: where the bytes were when memory peaked.
 */
struct MemPeakReport
{
    int64_t peak_bytes = 0;       ///< registry high watermark
    int64_t live_bytes = 0;       ///< live bytes at snapshot time
    int64_t attributed_bytes = 0; ///< Σ rows (== live at snapshot)
    int64_t retained_bytes = 0;   ///< allocator free-list bytes (pooled,
                                  ///< freed-but-cached — NOT live)
    int64_t budget_bytes = -1;    ///< configured budget (-1 = none)
    int64_t category_bytes[kNumMemCategories] = {}; ///< live per category

    std::vector<MemRow> rows;       ///< sorted by bytes desc
    std::vector<MemTensorRow> top;  ///< top-K live tensors, bytes desc

    /** attributed_bytes / peak_bytes — the ≥ 0.9 acceptance gate. */
    double attributedFraction() const;

    /** {"parameter":N,...} in category order. */
    std::string categoriesJson() const;

    /** The whole report as one JSON object (kind "mem_peak_report"). */
    std::string toJson() const;
};

/** Copy of the most recent peak snapshot (empty when never enabled). */
MemPeakReport memPeakReport();

/** Live bytes currently tracked by the registry. */
int64_t memLiveBytes();

/** Live bytes of one category currently tracked by the registry. */
int64_t memCategoryLiveBytes(MemCategory category);

/** Number of live entries in the registry (leak checks in tests). */
int64_t memRegistrySize();

/** Look up one live entry; false when the key is not registered. */
bool memLookup(const void* key, MemTensorRow* out);

/** Write memPeakReport().toJson() to `path` (forensics dump format). */
void writeMemDump(const std::string& path);

/** Drop every entry, aggregate, and the peak snapshot (tests). Do not
 * call with MemWindow instances alive. */
void memProfilerReset();

/**
 * RAII per-step/per-trial window: records the in-window peak of tagged
 * live bytes and the per-category breakdown at that peak. Stackable
 * (StepReportBuilder, trainers, and tuner trials each hold their own).
 * Inert when the profiler is disabled at construction.
 */
class MemWindow
{
  public:
    MemWindow();
    ~MemWindow();
    MemWindow(const MemWindow&) = delete;
    MemWindow& operator=(const MemWindow&) = delete;

    /** True when the profiler was enabled at construction. */
    bool active() const;

    /** Peak tagged live bytes inside the window so far. */
    int64_t peakBytes() const;

    /** Live bytes of `category` at the window's peak. */
    int64_t categoryPeakBytes(MemCategory category) const;

    /** {"parameter":N,...} at the window's peak. */
    std::string categoriesJson() const;

    struct State; ///< implementation detail (registry needs the type)

  private:
    State* state_ = nullptr;
};

// --- sim-model side channel (tuner measured-vs-predicted) ----------------

/**
 * Thread-local mailbox the analytical memory model fills: sim's
 * TrainingSimulator::simulate() reports its predicted peak here, and the
 * tuner's per-trial evaluator consumes it to log the measured-vs-sim
 * relative error in every tuner.trial record. Lives in obs so sim and
 * tuner need no dependency on each other.
 */
void reportSimPeakBytes(double predicted_peak_bytes);

/** Consume the last reported prediction (-1 when none since the last
 * take). */
double takeSimPeakBytes();

} // namespace obs
} // namespace slapo
