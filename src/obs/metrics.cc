#include "obs/metrics.h"

namespace slapo {
namespace obs {

std::vector<std::pair<std::string, int64_t>>
Metrics::snapshot() const
{
    return {
        {"tensor.allocated_bytes", tensor_allocated_bytes.get()},
        {"tensor.live_bytes", tensor_live_bytes.get()},
        {"tensor.peak_bytes", tensor_live_bytes.peak()},
        {"alloc.pool_hits", alloc_pool_hits.get()},
        {"alloc.pool_misses", alloc_pool_misses.get()},
        {"alloc.reuse_bytes", alloc_reuse_bytes.get()},
        {"alloc.pooled_bytes", alloc_pooled_bytes.get()},
        {"pg.count", pg_count.get()},
        {"pg.wait_ns", pg_wait_ns.get()},
        {"pg.copy_ns", pg_copy_ns.get()},
        {"pipeline.queue_wait_ns", pipeline_queue_wait_ns.get()},
        {"pipeline.push_wait_ns", pipeline_push_wait_ns.get()},
        {"pipeline.peak_queue_depth", pipeline_queue_depth.peak()},
        {"checkpoint.write_bytes", checkpoint_write_bytes.get()},
        {"checkpoint.write_ns", checkpoint_write_ns.get()},
        {"checkpoint.read_bytes", checkpoint_read_bytes.get()},
        {"checkpoint.read_ns", checkpoint_read_ns.get()},
        {"recovery.restores", recovery_restores.get()},
        {"elastic.rebuilds", elastic_rebuilds.get()},
        {"elastic.lost_ranks", elastic_lost_ranks.get()},
    };
}

std::string
Metrics::toJson() const
{
    std::string out = "{";
    bool first = true;
    for (const auto& [name, value] : snapshot()) {
        if (!first) out += ",";
        first = false;
        out += "\"" + name + "\":" + std::to_string(value);
    }
    out += "}";
    return out;
}

void
Metrics::reset()
{
    tensor_allocated_bytes.reset();
    tensor_live_bytes.reset();
    alloc_pool_hits.reset();
    alloc_pool_misses.reset();
    alloc_reuse_bytes.reset();
    alloc_pooled_bytes.reset();
    pg_count.reset();
    pg_wait_ns.reset();
    pg_copy_ns.reset();
    pipeline_queue_wait_ns.reset();
    pipeline_push_wait_ns.reset();
    pipeline_queue_depth.reset();
    checkpoint_write_bytes.reset();
    checkpoint_write_ns.reset();
    checkpoint_read_bytes.reset();
    checkpoint_read_ns.reset();
    recovery_restores.reset();
    elastic_rebuilds.reset();
    elastic_lost_ranks.reset();
}

std::vector<std::pair<std::string, int64_t>>
Metrics::snapshotAndReset()
{
    std::vector<std::pair<std::string, int64_t>> snap = snapshot();
    reset();
    return snap;
}

Metrics&
metrics()
{
    static Metrics* m = new Metrics(); // leaked: tensor dtors may run late
    return *m;
}

namespace {

/** Snapshot entries that are levels/watermarks, not monotonic counters. */
bool
isLevelMetric(const std::string& name)
{
    return name == "tensor.live_bytes" || name == "tensor.peak_bytes" ||
           name == "alloc.pooled_bytes" ||
           name == "pipeline.peak_queue_depth";
}

} // namespace

MetricsDelta::MetricsDelta() : baseline_(metrics().snapshot()) {}

std::vector<std::pair<std::string, int64_t>>
MetricsDelta::values() const
{
    std::vector<std::pair<std::string, int64_t>> now = metrics().snapshot();
    for (size_t i = 0; i < now.size() && i < baseline_.size(); ++i) {
        if (!isLevelMetric(now[i].first)) {
            now[i].second -= baseline_[i].second;
        }
    }
    return now;
}

int64_t
MetricsDelta::get(const std::string& name) const
{
    for (const auto& [key, value] : values()) {
        if (key == name) {
            return value;
        }
    }
    return 0;
}

} // namespace obs
} // namespace slapo
