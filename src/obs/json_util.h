/**
 * @file
 * Tiny JSON-emission helpers shared by the observability writers
 * (trace dumps, flight-recorder dumps, the run log). Emission only — the
 * repo deliberately has no JSON parser; tests validate output with their
 * own minimal RFC 8259 checker.
 */
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace slapo {
namespace obs {
namespace json {

inline void
appendEscaped(std::string& out, const char* s)
{
    for (; *s; ++s) {
        const char c = *s;
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof hex, "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

inline std::string
quoted(const char* s)
{
    std::string out = "\"";
    appendEscaped(out, s);
    out += '"';
    return out;
}

inline std::string
quoted(const std::string& s)
{
    return quoted(s.c_str());
}

/** Doubles render shortest-roundtrip; NaN/Inf (not JSON) become null. */
inline std::string
number(double v)
{
    if (!std::isfinite(v)) {
        return "null";
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

inline std::string
number(int64_t v)
{
    return std::to_string(v);
}

} // namespace json
} // namespace obs
} // namespace slapo
