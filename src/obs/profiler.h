/**
 * @file
 * Per-op aggregate profiler: count / total / mean / p99 wall time per
 * (node op, module path) pair across every executed graph node
 * (docs/OBSERVABILITY.md).
 *
 * Where obs/trace.h answers "what did this step's timeline look like",
 * the OpProfiler answers "where does the time go in aggregate" — the
 * per-primitive attribution the paper's evaluation breaks speedups down
 * by (Figs. 7-11). The graph interpreter and the autograd engine record
 * every CallOp / CallModule execution into the installed profiler;
 * nothing is recorded (one relaxed atomic load per node) when no
 * profiler is installed.
 *
 * Aggregation keeps exact count and total; p99 comes from a fixed
 * 256-bucket log-scale histogram (4 sub-buckets per octave, <= 19%
 * relative error), so memory stays bounded no matter how many steps are
 * profiled.
 *
 * Usage:
 *   obs::OpProfiler profiler;
 *   { obs::OpProfilerGuard guard(&profiler); trainer.step(...); }
 *   std::cout << profiler.table();
 *
 * Or from the environment: SLAPO_OP_PROFILE=1 installs a process-wide
 * profiler and prints the table to stderr at exit (SLAPO_OP_PROFILE can
 * also name a JSON output file).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace slapo {
namespace obs {

/** Aggregated timing of one (op, module path, primitive) triple. */
struct OpStats
{
    std::string op;          ///< op kind / module type ("LinearOp", ...)
    std::string module_path; ///< dotted owner path ("" = root)
    std::string primitive;   ///< schedule primitive stamped on the node
                             ///< ("" = not stamped; see obs/provenance.h)
    int64_t count = 0;
    int64_t total_ns = 0;
    double mean_ns = 0;
    int64_t p99_ns = 0; ///< histogram-bucket upper bound
};

/** Thread-safe aggregate profiler; install with OpProfilerGuard. */
class OpProfiler
{
  public:
    OpProfiler();
    ~OpProfiler();
    OpProfiler(const OpProfiler&) = delete;
    OpProfiler& operator=(const OpProfiler&) = delete;

    /** Fold one execution of `op` (under `module_path`) into the stats. */
    void record(const std::string& op, const std::string& module_path,
                int64_t duration_ns);

    /**
     * Same, tagged with the schedule primitive responsible for the node
     * (graph::Node::provenance().primitive, or "sync" for the collective
     * boundaries the autograd engine applies). Rows recorded via the
     * untagged overload carry primitive "".
     */
    void record(const std::string& op, const std::string& module_path,
                const std::string& primitive, int64_t duration_ns);

    /** Aggregates, sorted by total time descending. */
    std::vector<OpStats> report() const;

    /** Human-readable fixed-width table of report(). */
    std::string table() const;

    /** report() as a JSON array. */
    std::string toJson() const;

    void clear();

    /**
     * The installed profiler, or nullptr. Disabled fast path is one
     * relaxed atomic load (plus a one-time SLAPO_OP_PROFILE environment
     * probe, mirroring obs::tracingEnabled).
     */
    static OpProfiler* current();

    /**
     * Total duration_ns this thread has recorded into any profiler —
     * a monotone thread-local counter. Snapshotting it around a region
     * gives "attributed time inside the region", which is how the
     * autograd engine computes the unattributed remainder it reports as
     * its own `engine.overhead` row (docs/OBSERVABILITY.md).
     */
    static int64_t threadRecordedNs();

  private:
    friend class OpProfilerGuard;
    struct Impl;
    Impl* impl_;
};

/** RAII process-wide installation of an OpProfiler. */
class OpProfilerGuard
{
  public:
    explicit OpProfilerGuard(OpProfiler* profiler);
    ~OpProfilerGuard();
    OpProfilerGuard(const OpProfilerGuard&) = delete;
    OpProfilerGuard& operator=(const OpProfilerGuard&) = delete;

  private:
    OpProfiler* previous_;
};

/**
 * Thread-local dotted module-path scope shared by the interpreter and
 * the autograd engine: a CallModule pushes its target name so the ops
 * it executes are attributed to the right submodule. Free when neither
 * a profiler nor tracing is active (the push is skipped entirely — use
 * `active()` to decide, as the instrumentation sites do).
 */
class ModuleScope
{
  public:
    explicit ModuleScope(const std::string& name);
    ~ModuleScope();
    ModuleScope(const ModuleScope&) = delete;
    ModuleScope& operator=(const ModuleScope&) = delete;

    /** Current dotted path of the calling thread ("" at the root). */
    static const std::string& currentPath();

    /** True when path bookkeeping is worth doing (profiler, trace, or
     * memory profiler on). */
    static bool active();

  private:
    size_t restore_len_; ///< path length to truncate back to
};

} // namespace obs
} // namespace slapo
