/**
 * @file
 * Runtime span tracer emitting Chrome-trace-format JSON.
 *
 * The measurement substrate of slapo-cc (docs/OBSERVABILITY.md): every
 * layer of the runtime — graph interpreter nodes, autograd phases,
 * kernel-pool jobs, ProcessGroup collectives, pipeline stages, trainer
 * step phases, checkpoint I/O — opens a TraceSpan around its work, and
 * the recorder turns the spans into a `chrome://tracing` / Perfetto
 * loadable file with one track per registered thread (rank threads and
 * pipeline stage threads label their tracks via setThreadTrack).
 *
 * Recording discipline (same as support/failpoint.h): when tracing is
 * disabled the entire cost of an instrumented site is ONE relaxed atomic
 * load (`tracingEnabled()`), so instrumentation can stay in hot loops
 * permanently. When enabled, each thread appends finished spans to its
 * own buffer — there is no shared lock on the recording path; a
 * per-buffer mutex (uncontended: only the owning thread records, only
 * the dump takes it) makes concurrent dump/record well-defined under
 * TSan.
 *
 * Enabling:
 *   - `SLAPO_TRACE=out.json` in the environment: tracing starts at the
 *     first instrumented event and the file is written at process exit.
 *   - programmatic: `obs::startTracing("out.json"); ...; obs::stopTracing();`
 *
 * Timestamps are steady-clock microseconds relative to tracing start;
 * durations are microseconds with nanosecond resolution (Chrome trace
 * accepts fractional values).
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace slapo {
namespace obs {

namespace detail {
extern std::atomic<bool> g_tracing;
/** One-time SLAPO_TRACE environment probe (called by tracingEnabled). */
bool tracingEnabledSlow();
} // namespace detail

/**
 * True while a trace is being recorded. The disabled fast path is a
 * single relaxed atomic load; the first few calls also probe the
 * SLAPO_TRACE environment variable (once per process).
 */
inline bool
tracingEnabled()
{
    if (detail::g_tracing.load(std::memory_order_relaxed)) {
        return true;
    }
    return detail::tracingEnabledSlow();
}

/**
 * Start recording. `path` is where stopTracing()/process exit writes the
 * JSON ("" = keep in memory, fetch with dumpTraceJson). Clears any
 * previously recorded events.
 */
void startTracing(const std::string& path = "");

/**
 * Stop recording and, if a path was configured, write the trace file.
 * Returns the number of events recorded. Safe to call when not tracing
 * (returns 0).
 */
int64_t stopTracing();

/**
 * Write the trace collected *so far* to the configured path without
 * stopping the recording — the hang/abort story: ProcessGroup::abort()
 * and the flight-recorder watchdog call this so a killed run leaves its
 * SLAPO_TRACE output on disk next to the hang dump instead of losing it
 * with the process. Best effort (never throws); returns the number of
 * events flushed, 0 when tracing is off or no path was configured.
 */
int64_t flushTrace();

/** Serialize everything recorded so far as a Chrome-trace JSON string. */
std::string dumpTraceJson();

/** Write the current trace to `path` (trailing newline included). */
void writeTrace(const std::string& path);

/** Drop all recorded events and thread-track registrations kept so far.
 * Call only while tracing is stopped. */
void clearTrace();

/**
 * Label the calling thread's track: `pid` selects the process row
 * (ranks use their rank index so every rank gets its own row group in
 * Perfetto; 0 = the main process), `name` the thread row ("rank 1",
 * "stage 2", ...). Cheap; callable whether or not tracing is live.
 */
void setThreadTrack(int pid, const std::string& name);

/** Record an instant counter sample (Chrome-trace "C" event), e.g. a
 * pipeline queue depth. No-op when tracing is disabled. */
void traceCounter(const char* name, int64_t value);

/**
 * RAII span. Construction samples the clock only when tracing is
 * enabled; destruction records one complete ("X") event on the calling
 * thread's buffer. `name` must outlive the span (string literals) —
 * dynamic labels go through the `std::string` overload, which callers
 * should guard behind `tracingEnabled()` to keep the disabled path
 * allocation-free.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char* name, const char* category = nullptr)
    {
        if (tracingEnabled()) {
            begin(name, category);
        }
    }

    TraceSpan(std::string name, const char* category = nullptr)
    {
        if (tracingEnabled()) {
            beginOwned(std::move(name), category);
        }
    }

    ~TraceSpan()
    {
        if (live_) {
            end();
        }
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

    /** Attach a key=value argument (shown in the Perfetto side panel).
     * No-op unless the span is live. */
    void arg(const char* key, const std::string& value);
    void arg(const char* key, int64_t value);

    /** True when this span is actually recording. */
    bool live() const { return live_; }

  private:
    void begin(const char* name, const char* category);
    void beginOwned(std::string name, const char* category);
    void end();

    bool live_ = false;
    const char* name_ = nullptr;     ///< literal name (not owned)
    std::string owned_name_;         ///< dynamic name (when non-empty)
    const char* category_ = nullptr;
    std::chrono::steady_clock::time_point start_;
    std::string args_; ///< pre-rendered JSON object body ("" = none)
};

} // namespace obs
} // namespace slapo
