/**
 * @file
 * Collective flight recorder — the distributed half of the observability
 * stack (docs/OBSERVABILITY.md).
 *
 * On a real cluster the hardest question is "which rank is stuck in
 * which collective?"; the answer is gone by the time anyone can attach a
 * debugger. The flight recorder keeps it: every ProcessGroup owns one
 * recorder with a per-rank ring buffer of the last N collective events
 * (site, per-rank sequence number, shape/dtype, enter/exit timestamps),
 * written lock-free by the rank threads (relaxed atomics only — TSan
 * clean, no mutex on the hot path) and readable at any moment by a
 * dumper.
 *
 * `analyze()` merges the rings: because SPMD ranks issue collectives in
 * lock-step, comparing per-rank sequence numbers names the stuck
 * collective (highest sequence some rank entered but nobody finished),
 * the ranks blocked inside it, and the ranks that never arrived — the
 * straggler/victim split a hang post-mortem needs.
 *
 * Dumps fire three ways:
 *   - on demand: `dumpFlightRecorder()` (all live groups) or
 *     `ProcessGroup::flightRecorder().dumpJson()`;
 *   - on failure: the first abort/timeout of a group writes one dump to
 *     the `SLAPO_FLIGHT_DUMP` path (or `setFlightDumpPath()`), captured
 *     *before* the failing rank unwinds, so the dump shows who was
 *     still blocked;
 *   - on deadline: `SLAPO_WATCHDOG_MS=<ms>` (or `startWatchdog()`) arms
 *     a watchdog thread that scans all recorders and dumps automatically
 *     when any in-flight collective exceeds the deadline — once per
 *     stuck sequence, not repeatedly.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace slapo {
namespace obs {

/** One recorded collective entry, in merged snapshot form. */
struct FlightEvent
{
    int rank = 0;
    int64_t seq = 0;       ///< per-rank collective sequence (1-based)
    std::string site;      ///< "pg.allreduce", ...
    std::vector<int64_t> shape;
    std::string dtype = "f32";
    int64_t enter_ns = 0;  ///< steady-clock ns (process epoch)
    int64_t exit_ns = 0;   ///< 0 = in flight, -1 = aborted, >0 = done
};

/** Merged cross-rank view of where every rank is. */
struct FlightAnalysis
{
    std::vector<int64_t> last_started;   ///< per rank: last seq entered
    std::vector<int64_t> last_completed; ///< per rank: last seq finished OK
    /** True while some rank sits inside an unfinished collective. */
    bool stalled = false;
    /** The unfinished collective with the highest sequence number. */
    std::string stuck_site;
    int64_t stuck_seq = -1;
    std::vector<int> waiting_ranks; ///< entered stuck_seq, still inside
    std::vector<int> missing_ranks; ///< never reached stuck_seq
};

/**
 * Per-rank ring buffers of recent collective events. One writer per
 * rank (the rank's thread); any thread may snapshot/dump concurrently.
 */
class FlightRecorder
{
  public:
    static constexpr size_t kDefaultCapacity = 64;
    static constexpr int kMaxDims = 4;

    explicit FlightRecorder(int world_size,
                            size_t capacity = kDefaultCapacity);
    ~FlightRecorder();
    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    int worldSize() const { return world_size_; }
    size_t capacity() const { return capacity_; }

    /** Group label shown in dumps ("pg" by default). */
    void setLabel(const std::string& label);

    /**
     * Record entry into a collective. `site` must be a string literal
     * (stored by pointer); returns a token for `end()`. Lock-free.
     */
    int64_t begin(int rank, const char* site, const int64_t* dims,
                  int ndim);

    /** Record the matching exit. `aborted` marks an abandoned wait
     * (timeout/abort) — it never advances the completed counter. */
    void end(int rank, int64_t token, bool aborted = false);

    /** All retained events, oldest first within each rank. */
    std::vector<FlightEvent> events() const;

    /** Merge the rings into a stuck-site / missing-ranks verdict. */
    FlightAnalysis analyze() const;

    /** Full JSON dump: label, analysis, and every retained event. */
    std::string dumpJson() const;

    /**
     * Write one dump to the configured flight-dump path (or stderr when
     * none is set), at most once per arming — the error path of a group
     * calls this from every rank, and only the first does I/O. No-op
     * when no dump destination exists and `force` is false.
     */
    void autoDumpOnError();

    /** Re-enable autoDumpOnError after a group reset (retried step). */
    void rearmAutoDump();

  private:
    struct Slot;
    struct RankRing;

    const int world_size_;
    const size_t capacity_;
    std::string label_ = "pg";
    std::vector<RankRing>* rings_; ///< pimpl: keeps atomics out of the ABI
    std::atomic<bool> auto_dumped_{false};
    /** Highest stuck_seq the watchdog has already dumped for. */
    std::atomic<int64_t> watchdog_dumped_seq_{-1};

    friend struct WatchdogThread;
};

/** Dump every live recorder (one JSON object per line). */
std::string dumpFlightRecorder();

/**
 * Where automatic dumps (abort/timeout/watchdog) go. "" (the default)
 * means stderr. The `SLAPO_FLIGHT_DUMP` environment variable, probed on
 * first use, overrides; dumps append one JSON object per line.
 */
void setFlightDumpPath(const std::string& path);
std::string flightDumpPath();

/**
 * Start the collective watchdog: every `deadline_ms / 4` (clamped to
 * [10, 250] ms) it scans all live recorders and writes a dump for any
 * collective in flight longer than `deadline_ms`. Also armed by the
 * `SLAPO_WATCHDOG_MS` environment variable when the first recorder is
 * created. Restarting replaces the previous deadline.
 */
void startWatchdog(int64_t deadline_ms);
void stopWatchdog();

} // namespace obs
} // namespace slapo
