#include "obs/run_log.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "obs/json_util.h"

namespace slapo {
namespace obs {

// --- RunLogRecord -----------------------------------------------------------

RunLogRecord::RunLogRecord(const char* kind)
{
    // Every record carries the schema version right after its kind so
    // downstream tooling can dispatch before reading any other field
    // (docs/OBSERVABILITY.md documents the per-kind schemas).
    // Version 2: step records gained mem_live_bytes / mem_retained_bytes
    // / per-category mem_categories, and the mem.budget forensics record
    // kind was added (obs/mem_profiler.h).
    body_ = "{\"kind\":" + json::quoted(kind) + ",\"schema_version\":2";
}

RunLogRecord&
RunLogRecord::num(const char* key, int64_t value)
{
    body_ += ",";
    body_ += json::quoted(key);
    body_ += ":";
    body_ += json::number(value);
    return *this;
}

RunLogRecord&
RunLogRecord::num(const char* key, double value)
{
    body_ += ",";
    body_ += json::quoted(key);
    body_ += ":";
    body_ += json::number(value);
    return *this;
}

RunLogRecord&
RunLogRecord::str(const char* key, const std::string& value)
{
    body_ += ",";
    body_ += json::quoted(key);
    body_ += ":";
    body_ += json::quoted(value);
    return *this;
}

RunLogRecord&
RunLogRecord::flag(const char* key, bool value)
{
    body_ += ",";
    body_ += json::quoted(key);
    body_ += value ? ":true" : ":false";
    return *this;
}

RunLogRecord&
RunLogRecord::raw(const char* key, const std::string& json_value)
{
    body_ += ",";
    body_ += json::quoted(key);
    body_ += ":";
    body_ += json_value;
    return *this;
}

std::string
RunLogRecord::json() const
{
    return body_ + "}";
}

// --- RunLog -----------------------------------------------------------------

RunLog::RunLog(const std::string& path)
    : file_(path, std::ios::binary | std::ios::trunc), path_(path)
{
    good_ = file_.good();
}

void
RunLog::write(const RunLogRecord& record)
{
    writeLine(record.json());
}

void
RunLog::writeLine(const std::string& json_object)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!good_) {
        return;
    }
    file_ << json_object << "\n";
    file_.flush();
}

void
RunLog::logStep(const StepRecord& step)
{
    const bool nan_anomaly =
        !std::isfinite(step.loss) || !std::isfinite(step.grad_norm);

    bool spike = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (recent_losses_.size() >= 4 && std::isfinite(step.loss)) {
            double mean = 0.0;
            for (const double l : recent_losses_) {
                mean += l;
            }
            mean /= static_cast<double>(recent_losses_.size());
            spike = step.loss > 2.0 * mean && step.loss > mean + 1.0;
        }
        if (std::isfinite(step.loss)) {
            recent_losses_.push_back(step.loss);
            while (recent_losses_.size() > 8) {
                recent_losses_.pop_front();
            }
        }
    }

    const double tokens_per_s =
        step.step_ms > 0.0
            ? static_cast<double>(step.tokens) / (step.step_ms / 1000.0)
            : 0.0;

    RunLogRecord record("step");
    record.num("step", step.step)
        .num("loss", step.loss)
        .num("grad_norm", step.grad_norm)
        .num("micro_batches", step.micro_batches)
        .num("tokens", step.tokens)
        .num("tokens_per_s", tokens_per_s)
        .num("step_ms", step.step_ms)
        .num("mem_peak_bytes", step.mem_peak_bytes)
        .num("mem_live_bytes", step.mem_live_bytes)
        .num("mem_retained_bytes", step.mem_retained_bytes)
        .num("world_size", static_cast<int64_t>(step.world_size))
        .flag("anomaly_nan", nan_anomaly)
        .flag("anomaly_loss_spike", spike);
    if (!step.mem_categories_json.empty()) {
        record.raw("mem_categories", step.mem_categories_json);
    }
    write(record);
}

// --- global sink ------------------------------------------------------------

namespace {

std::atomic<RunLog*> g_run_log{nullptr};
std::once_flag g_env_once;
std::mutex g_open_mutex;

void
openLocked(const std::string& path)
{
    RunLog* next = path.empty() ? nullptr : new RunLog(path);
    if (next != nullptr && !next->good()) {
        delete next;
        next = nullptr;
    }
    RunLog* prev = g_run_log.exchange(next, std::memory_order_acq_rel);
    // Leak the previous sink instead of deleting it: a concurrent writer
    // may still hold the pointer. Run logs are opened O(1) times.
    (void)prev;
}

} // namespace

RunLog*
runLog()
{
    std::call_once(g_env_once, [] {
        const char* env = std::getenv("SLAPO_RUN_LOG");
        if (env != nullptr && env[0] != '\0') {
            std::lock_guard<std::mutex> lock(g_open_mutex);
            openLocked(env);
        }
    });
    return g_run_log.load(std::memory_order_acquire);
}

void
openRunLog(const std::string& path)
{
    std::call_once(g_env_once, [] {}); // an explicit open beats the env
    std::lock_guard<std::mutex> lock(g_open_mutex);
    openLocked(path);
}

void
closeRunLog()
{
    std::call_once(g_env_once, [] {});
    std::lock_guard<std::mutex> lock(g_open_mutex);
    openLocked("");
}

} // namespace obs
} // namespace slapo
