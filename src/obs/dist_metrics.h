/**
 * @file
 * Cross-rank metric aggregation (docs/OBSERVABILITY.md).
 *
 * A single-process metrics snapshot hides skew: one slow rank shows up
 * only as everyone else's pg.wait_ns. This module defines the pure half
 * of the aggregation — which per-rank values are shared, how they are
 * packed bit-exactly into the float tensors the collectives move, and
 * the min/max/mean skew report rank 0 renders. The actual all-gather
 * lives in the runtime (`DataParallelTrainer::gatherMetrics()`), which
 * piggybacks on the training ProcessGroup; obs sits below the tensor
 * layer and never touches it.
 *
 * Packing: float32 cannot represent ns-scale int64 counters exactly
 * (> 2^24), so each int64 is zigzag-encoded to uint64 and split into
 * four 16-bit chunks, each ≤ 65535 and therefore exact in a float.
 * Round-trip is bit-exact for the full int64 range.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace slapo {
namespace obs {

/** Floats per packed int64 (four 16-bit chunks). */
inline constexpr size_t kFloatsPerInt64 = 4;

/** The per-rank values every rank contributes, in wire order. */
std::vector<std::string> distMetricNames();

/** Pack int64s into exact-in-float32 chunks (4 floats per value). */
std::vector<float> packInt64s(const std::vector<int64_t>& values);

/** Inverse of packInt64s. `data` holds `count * kFloatsPerInt64` floats. */
std::vector<int64_t> unpackInt64s(const float* data, size_t count);

/** One metric aggregated across ranks. */
struct DistMetricStat
{
    std::string name;
    std::vector<int64_t> per_rank;
    int64_t min = 0;
    int64_t max = 0;
    double mean = 0.0;
    /** max − min: the rank-skew headline number. */
    int64_t spread = 0;
};

/** Rank 0's merged view of every rank's snapshot. */
struct DistMetricsReport
{
    int world_size = 0;
    std::vector<DistMetricStat> stats;

    /** `{"kind":"dist_metrics",...}` — also a valid run-log record. */
    std::string toJson() const;
    /** Human-readable aligned table (for examples/reports). */
    std::string table() const;
};

/**
 * Build the report from per-rank rows: `per_rank[r]` holds rank r's
 * values, one per `names` entry (rows shorter than `names` are padded
 * with zeros).
 */
DistMetricsReport buildDistMetricsReport(
    const std::vector<std::string>& names,
    const std::vector<std::vector<int64_t>>& per_rank);

} // namespace obs
} // namespace slapo
