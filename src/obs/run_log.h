/**
 * @file
 * Structured run log: one JSON object per line (JSONL), one record per
 * training event — the durable "what did this run actually do?" answer
 * (docs/OBSERVABILITY.md documents the schema).
 *
 * Enabled by `SLAPO_RUN_LOG=run.jsonl` in the environment (probed once,
 * same discipline as SLAPO_TRACE) or programmatically with
 * `openRunLog(path)`. When disabled, every call site pays one relaxed
 * atomic load. Record kinds emitted by the runtime:
 *
 *   step                one per optimizer step (Trainer /
 *                       DataParallelTrainer): step index, loss, global
 *                       grad norm, tokens/s, step wall time, memory
 *                       peak, NaN/Inf and loss-spike anomaly flags
 *   pipeline.forward    one per PipelineRuntime forward: micro-batches,
 *                       bubble (queue-wait) ns, wall time
 *   checkpoint.save /   one per checkpoint write/load: step, path,
 *   checkpoint.restore  bytes, writing world size, wall time
 *   recovery            one per retry inside runWithRecovery: attempt
 *                       number, failed step, error text
 *   recovery.giveup     one when runWithRecovery exhausts its retry or
 *                       restore-sweep budget: restore attempts,
 *                       recoveries so far, failed step, error text
 *   elastic.rebuild     one per elastic shrink (DataParallelTrainer):
 *                       lost original ranks, old/new world size, new
 *                       membership generation, rebuild latency
 *   tuner.trial         one per tuner evaluation: config, value,
 *                       whether it is the best so far, measured peak
 *                       memory (+ sim-predicted peak & relative error
 *                       when available; `pruned_static` + `lint_codes`
 *                       when the static lint rejected the config)
 *   lint                one per static-lint gate run (analysis/lint.h):
 *                       gate site, world size, error/warning/note
 *                       counts, lint wall time, pass/fail, and the full
 *                       diagnostics array when findings exist
 *                       (docs/VERIFICATION.md)
 *   mem.budget          one per memory-budget crossing
 *                       (obs/mem_profiler.h): live/budget bytes, the
 *                       configured action, and the full peak
 *                       attribution report as forensics
 *   dist_metrics        one per cross-rank aggregation (dist_metrics.h)
 *
 * Writers hold one mutex per record — the run log is per-step, not
 * per-op, so contention is irrelevant.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>

namespace slapo {
namespace obs {

/** Builder for one JSONL record. Keys must be literal/ASCII. */
class RunLogRecord
{
  public:
    explicit RunLogRecord(const char* kind);

    RunLogRecord& num(const char* key, int64_t value);
    RunLogRecord& num(const char* key, double value); ///< NaN/Inf -> null
    RunLogRecord& str(const char* key, const std::string& value);
    RunLogRecord& flag(const char* key, bool value);
    /** Pre-rendered JSON value (object/array), inserted verbatim. */
    RunLogRecord& raw(const char* key, const std::string& json_value);

    /** The finished one-line JSON object. */
    std::string json() const;

  private:
    std::string body_;
};

/** Per-step payload for `RunLog::logStep` (anomaly flags are derived). */
struct StepRecord
{
    int64_t step = 0;        ///< optimizer step index (0-based)
    double loss = 0.0;
    double grad_norm = 0.0;  ///< global L2 norm of the (averaged) grads
    int64_t micro_batches = 0;
    int64_t tokens = 0;      ///< input elements consumed this step
    double step_ms = 0.0;    ///< wall time of the step
    int64_t mem_peak_bytes = 0;
    int world_size = 1;      ///< 1 for single-process Trainer

    // Memory-profiler fields (schema v2; obs/mem_profiler.h). Zero /
    // empty when memProfilingEnabled() is off — the trainers then fall
    // back to the global tensor.peak_bytes watermark for mem_peak_bytes.
    int64_t mem_live_bytes = 0;     ///< tagged live bytes at step end
    int64_t mem_retained_bytes = 0; ///< allocator free-list bytes
    /** Per-category bytes at the step's peak, pre-rendered as a JSON
     * object ({"parameter":N,...}); "" = profiler off, field omitted. */
    std::string mem_categories_json;
};

/**
 * A JSONL sink. Thread-safe; every record is flushed so a crashed run
 * keeps everything up to the failing step.
 */
class RunLog
{
  public:
    explicit RunLog(const std::string& path);

    bool good() const { return good_; }
    const std::string& path() const { return path_; }

    /** Append one record as a line. */
    void write(const RunLogRecord& record);

    /** Append a pre-rendered one-line JSON object (must carry "kind"). */
    void writeLine(const std::string& json_object);

    /**
     * Append a `step` record with derived anomaly flags:
     * `anomaly_nan` when loss or grad norm is non-finite;
     * `anomaly_loss_spike` when the loss jumps far above the trailing
     * window (≥ 4 recent finite losses, loss > 2× their mean and
     * > mean + 1.0 — robust to both large and near-zero loss scales).
     */
    void logStep(const StepRecord& step);

  private:
    std::mutex mutex_;
    std::ofstream file_;
    bool good_ = false;
    std::string path_;
    std::deque<double> recent_losses_; ///< trailing finite losses (≤ 8)
};

/**
 * The process-wide run log, or nullptr when disabled. First call probes
 * `SLAPO_RUN_LOG`; `openRunLog()` overrides (closing any previous log).
 */
RunLog* runLog();
void openRunLog(const std::string& path);
void closeRunLog();

} // namespace obs
} // namespace slapo
