#include "obs/dist_metrics.h"

#include <cstdio>

#include "obs/json_util.h"

namespace slapo {
namespace obs {

std::vector<std::string>
distMetricNames()
{
    return {
        "pg.count",          // collectives this rank entered
        "pg.wait_ns",        // this rank blocked on peers
        "pg.copy_ns",        // this rank's reduction/copy time
        "tensor.allocated_bytes",
        "tensor.peak_bytes",
        "pipeline.queue_wait_ns", // bubble time
    };
}

std::vector<float>
packInt64s(const std::vector<int64_t>& values)
{
    std::vector<float> out;
    out.reserve(values.size() * kFloatsPerInt64);
    for (const int64_t v : values) {
        // Zigzag: sign bit moves to bit 0, so negatives stay small and
        // the uint64 splits cleanly into chunks.
        const uint64_t z = (static_cast<uint64_t>(v) << 1) ^
                           static_cast<uint64_t>(v >> 63);
        for (size_t c = 0; c < kFloatsPerInt64; ++c) {
            out.push_back(
                static_cast<float>((z >> (16 * c)) & 0xffffULL));
        }
    }
    return out;
}

std::vector<int64_t>
unpackInt64s(const float* data, size_t count)
{
    std::vector<int64_t> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        uint64_t z = 0;
        for (size_t c = 0; c < kFloatsPerInt64; ++c) {
            const uint64_t chunk = static_cast<uint64_t>(
                data[i * kFloatsPerInt64 + c]);
            z |= (chunk & 0xffffULL) << (16 * c);
        }
        out.push_back(static_cast<int64_t>((z >> 1) ^
                                           (~(z & 1) + 1)));
    }
    return out;
}

DistMetricsReport
buildDistMetricsReport(const std::vector<std::string>& names,
                       const std::vector<std::vector<int64_t>>& per_rank)
{
    DistMetricsReport report;
    report.world_size = static_cast<int>(per_rank.size());
    for (size_t m = 0; m < names.size(); ++m) {
        DistMetricStat stat;
        stat.name = names[m];
        double sum = 0.0;
        for (size_t r = 0; r < per_rank.size(); ++r) {
            const int64_t v =
                m < per_rank[r].size() ? per_rank[r][m] : 0;
            stat.per_rank.push_back(v);
            if (r == 0 || v < stat.min) stat.min = v;
            if (r == 0 || v > stat.max) stat.max = v;
            sum += static_cast<double>(v);
        }
        stat.mean = per_rank.empty()
                        ? 0.0
                        : sum / static_cast<double>(per_rank.size());
        stat.spread = stat.max - stat.min;
        report.stats.push_back(std::move(stat));
    }
    return report;
}

std::string
DistMetricsReport::toJson() const
{
    std::string out =
        "{\"kind\":\"dist_metrics\",\"schema_version\":2,\"world_size\":" +
                      std::to_string(world_size) + ",\"metrics\":{";
    bool first = true;
    for (const DistMetricStat& stat : stats) {
        if (!first) out += ",";
        first = false;
        out += json::quoted(stat.name) + ":{\"per_rank\":[";
        for (size_t r = 0; r < stat.per_rank.size(); ++r) {
            if (r != 0) out += ",";
            out += std::to_string(stat.per_rank[r]);
        }
        out += "],\"min\":" + std::to_string(stat.min);
        out += ",\"max\":" + std::to_string(stat.max);
        out += ",\"mean\":" + json::number(stat.mean);
        out += ",\"spread\":" + std::to_string(stat.spread);
        out += "}";
    }
    out += "}}";
    return out;
}

std::string
DistMetricsReport::table() const
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line, "%-26s %14s %14s %14s %14s\n",
                  "metric", "min", "max", "mean", "spread");
    out += line;
    for (const DistMetricStat& stat : stats) {
        std::snprintf(line, sizeof line,
                      "%-26s %14lld %14lld %14.1f %14lld\n",
                      stat.name.c_str(),
                      static_cast<long long>(stat.min),
                      static_cast<long long>(stat.max), stat.mean,
                      static_cast<long long>(stat.spread));
        out += line;
    }
    return out;
}

} // namespace obs
} // namespace slapo
