/**
 * @file
 * Schedule-aware step reports: one JSON document per optimizer step
 * decomposing the step's wall time into compute / comm / pipeline-bubble
 * / other, rolled up per schedule primitive and per module path
 * (docs/OBSERVABILITY.md, "Attribution & step reports").
 *
 * The report is the layer that turns raw telemetry into schedule
 * decisions: every profiler row is attributed to the primitive
 * responsible for it — the node's stamped graph::Provenance when the
 * primitive rewrote the graph (.fuse(), .replace()), the provenance
 * registry's longest-prefix match when it only reshaped module metadata
 * (.shard(), .checkpoint(), …), and "baseline" for untouched
 * computation — so `diffReports` can answer "did .shard() on layer 3
 * pay for its syncs?" between two runs.
 *
 * Cost discipline: when step reports are disabled (the default), the
 * trainers pay one relaxed atomic load per step — nothing else changes.
 * When enabled (`SLAPO_STEP_REPORT=reports.jsonl` or
 * `setStepReportsEnabled(true)`), each step installs an OpProfiler,
 * which adds the per-node record cost documented in
 * docs/OBSERVABILITY.md (~100–200 ns per executed graph node).
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace slapo {
namespace obs {

class OpProfiler;

/** One attributed profiler row (primitive is never empty here). */
struct AttributedOp
{
    std::string op;          ///< op name, ".bwd"-suffixed for backward
    std::string module_path; ///< dotted owner path ("" = root)
    std::string primitive;   ///< resolved primitive or "baseline"
    int64_t count = 0;
    int64_t total_ns = 0;
    double mean_ns = 0;
    int64_t p99_ns = 0;
};

/** Per-primitive rollup of attributed time. */
struct PrimitiveTotal
{
    std::string primitive;
    int64_t total_ns = 0;
    int64_t count = 0; ///< row executions folded into this primitive
};

/** Per-module rollup (with the primitive that claims the module). */
struct ModuleTotal
{
    std::string module_path;
    std::string primitive;
    int64_t total_ns = 0;
};

/**
 * One step's attributed breakdown. All *_ns components are per-rank
 * means (profiler totals divided by `world_size`), so they are
 * commensurable with the step's wall time:
 *
 *   wall_ns ≈ compute_ns + comm_ns + pipeline_bubble_ns + other_ns
 *
 * `comm_ns` covers the timed collective boundaries (.sync() rows and
 * the data-parallel gradient exchange); `pg_wait_ns` inside it is the
 * pure rendezvous wait from the always-on metrics. Allocator behaviour
 * is reported as counts (pool hits/misses/reuse) — allocation time is
 * spent inside kernels and therefore already counted in compute.
 */
struct StepReport
{
    int64_t step = -1; ///< optimizer step index (-1 = not from a trainer)
    int world_size = 1;
    int64_t wall_ns = 0;

    int64_t compute_ns = 0;         ///< attributed non-comm row time / world
    int64_t comm_ns = 0;            ///< sync + gradient-exchange rows / world
    int64_t pipeline_bubble_ns = 0; ///< pipeline queue-wait delta / world
    int64_t other_ns = 0;           ///< wall − the above (≥ 0)

    int64_t pg_wait_ns = 0; ///< rendezvous wait inside comm_ns / world
    int64_t alloc_pool_hits = 0;
    int64_t alloc_pool_misses = 0;
    int64_t alloc_reuse_bytes = 0;

    // Memory section (obs/mem_profiler.h). All zeros / empty unless
    // memProfilingEnabled() was on for the step. `mem_category_bytes`
    // holds (category name, bytes) at the step's live-byte peak, so a
    // checkpointed schedule shows lower activation bytes and a sharded
    // one lower parameter bytes in the same report that shows their
    // time cost. `mem_retained_bytes` is the allocator's free-list
    // level — freed-but-cached storage, deliberately separate from
    // live bytes (docs/PERFORMANCE.md).
    int64_t mem_peak_bytes = 0;     ///< in-step peak of tagged live bytes
    int64_t mem_live_bytes = 0;     ///< tagged live bytes at step end
    int64_t mem_retained_bytes = 0; ///< pool free-list bytes at step end
    std::vector<std::pair<std::string, int64_t>> mem_category_bytes;

    std::vector<PrimitiveTotal> primitives; ///< sorted by total desc
    std::vector<ModuleTotal> modules;       ///< sorted by total desc
    std::vector<AttributedOp> ops;          ///< sorted by total desc

    /** Cross-rank spread (DistMetricsReport::toJson), "" when absent. */
    std::string per_rank_json;

    /** Σ per-primitive time (per-rank mean) / wall — the attribution
     * coverage the acceptance gate asserts ≥ 0.95 on. */
    double attributedFraction() const;

    /** Per-primitive rollup as a JSON array (embedded by tuner.trial). */
    std::string primitivesJson() const;

    /** The whole report as one JSON object (kind "step_report"). */
    std::string toJson() const;
};

/**
 * Build a report from a profiler's aggregates. `window` values are the
 * step's metric deltas in Metrics::snapshot() order (as returned by
 * MetricsDelta::values()); pass {} to skip the metric components.
 */
StepReport buildStepReport(
    const OpProfiler& profiler,
    const std::vector<std::pair<std::string, int64_t>>& window,
    int64_t wall_ns, int world_size, int64_t step);

/**
 * RAII per-step collection: installs a fresh OpProfiler and opens a
 * metrics window at construction; finish() closes both and builds the
 * report. Used by the trainers when stepReportsEnabled().
 */
class StepReportBuilder
{
  public:
    explicit StepReportBuilder(int world_size = 1);
    ~StepReportBuilder();
    StepReportBuilder(const StepReportBuilder&) = delete;
    StepReportBuilder& operator=(const StepReportBuilder&) = delete;

    /** Build the report for the elapsed window (callable once). */
    StepReport finish(int64_t step);

  private:
    struct Impl;
    Impl* impl_;
};

// --- enablement (one-relaxed-atomic pattern, see obs/trace.h) -----------

/** True when trainers should produce step reports. First call probes
 * `SLAPO_STEP_REPORT`; the hot-path cost when disabled is this one
 * relaxed atomic load. */
bool stepReportsEnabled();

/** Programmatic switch (overrides the environment probe). */
void setStepReportsEnabled(bool on);

/** Append `report.toJson()` as one line to the SLAPO_STEP_REPORT file
 * (no-op when the variable named no path, e.g. enabled
 * programmatically). */
void maybeWriteStepReport(const StepReport& report);

// --- diff + regression gate ---------------------------------------------

/** One compared entry of a report diff. */
struct ReportDelta
{
    std::string key; ///< "primitive:fuse" or "op:LinearOp@encoder.layer.0"
    int64_t before_ns = 0;
    int64_t after_ns = 0;
    double pct = 0; ///< (after − before) / before × 100
    bool regression = false;
};

/** Thresholds deciding when a delta counts as a regression. */
struct DiffOptions
{
    double threshold_pct = 20.0; ///< relative slowdown to flag
    /** Entries whose before-time is under this floor are never flagged —
     * sub-millisecond rows are timing noise at test scale. */
    int64_t min_ns = 1000000;
};

/** diffReports() result. */
struct ReportDiff
{
    std::vector<ReportDelta> primitives;
    std::vector<ReportDelta> ops;
    std::vector<ReportDelta> regressions; ///< flagged entries of the above
    double wall_pct = 0;                  ///< wall-time change, percent

    bool hasRegressions() const { return !regressions.empty(); }
    std::string toJson() const;
};

/**
 * Per-primitive and per-op deltas of `after` relative to `before`.
 * Entries present in only one report are compared against 0 (new work
 * above the floor in `after` is flagged).
 */
ReportDiff diffReports(const StepReport& before, const StepReport& after,
                       DiffOptions options = {});

} // namespace obs
} // namespace slapo
