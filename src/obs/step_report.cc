#include "obs/step_report.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>

#include "obs/json_util.h"
#include "obs/mem_profiler.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/provenance.h"
#include "support/error.h"

namespace slapo {
namespace obs {

namespace {

/** Primitives whose rows count as communication, not compute. */
bool
isCommPrimitive(const std::string& primitive)
{
    return primitive == "sync" || primitive == "data_parallel";
}

int64_t
windowValue(const std::vector<std::pair<std::string, int64_t>>& window,
            const char* name)
{
    for (const auto& [key, value] : window) {
        if (key == name) {
            return value;
        }
    }
    return 0;
}

std::string
attributedOpJson(const AttributedOp& op)
{
    std::string out = "{\"op\":" + json::quoted(op.op) +
                      ",\"module\":" + json::quoted(op.module_path) +
                      ",\"primitive\":" + json::quoted(op.primitive) +
                      ",\"count\":" + json::number(op.count) +
                      ",\"total_ns\":" + json::number(op.total_ns) +
                      ",\"mean_ns\":" + json::number(op.mean_ns) +
                      ",\"p99_ns\":" + json::number(op.p99_ns) + "}";
    return out;
}

std::string
deltaJson(const ReportDelta& d)
{
    std::string out = "{\"key\":" + json::quoted(d.key) +
                      ",\"before_ns\":" + json::number(d.before_ns) +
                      ",\"after_ns\":" + json::number(d.after_ns) +
                      ",\"pct\":" + json::number(d.pct) +
                      ",\"regression\":" +
                      (d.regression ? "true" : "false") + "}";
    return out;
}

} // namespace

double
StepReport::attributedFraction() const
{
    if (wall_ns <= 0) {
        return 0;
    }
    int64_t attributed = 0;
    for (const PrimitiveTotal& p : primitives) {
        attributed += p.total_ns;
    }
    return static_cast<double>(attributed) / static_cast<double>(wall_ns);
}

std::string
StepReport::primitivesJson() const
{
    std::string out = "[";
    bool first = true;
    for (const PrimitiveTotal& p : primitives) {
        if (!first) out += ",";
        first = false;
        out += "{\"primitive\":" + json::quoted(p.primitive) +
               ",\"total_ns\":" + json::number(p.total_ns) +
               ",\"count\":" + json::number(p.count) + "}";
    }
    out += "]";
    return out;
}

std::string
StepReport::toJson() const
{
    // Version 2: adds the "memory" section (live/peak/retained bytes +
    // per-category breakdown at the step's peak).
    std::string out = "{\"kind\":\"step_report\",\"schema_version\":2";
    out += ",\"step\":" + json::number(step);
    out += ",\"world_size\":" + json::number(static_cast<int64_t>(world_size));
    out += ",\"wall_ns\":" + json::number(wall_ns);
    out += ",\"compute_ns\":" + json::number(compute_ns);
    out += ",\"comm_ns\":" + json::number(comm_ns);
    out += ",\"pipeline_bubble_ns\":" + json::number(pipeline_bubble_ns);
    out += ",\"other_ns\":" + json::number(other_ns);
    out += ",\"pg_wait_ns\":" + json::number(pg_wait_ns);
    out += ",\"attributed_fraction\":" + json::number(attributedFraction());
    out += ",\"alloc\":{\"pool_hits\":" + json::number(alloc_pool_hits) +
           ",\"pool_misses\":" + json::number(alloc_pool_misses) +
           ",\"reuse_bytes\":" + json::number(alloc_reuse_bytes) + "}";
    out += ",\"memory\":{\"peak_bytes\":" + json::number(mem_peak_bytes) +
           ",\"live_bytes\":" + json::number(mem_live_bytes) +
           ",\"retained_bytes\":" + json::number(mem_retained_bytes) +
           ",\"at_peak\":{";
    {
        bool first_cat = true;
        for (const auto& [name, bytes] : mem_category_bytes) {
            if (!first_cat) out += ",";
            first_cat = false;
            out += json::quoted(name) + ":" + json::number(bytes);
        }
    }
    out += "}}";
    out += ",\"primitives\":" + primitivesJson();
    out += ",\"modules\":[";
    bool first = true;
    for (const ModuleTotal& m : modules) {
        if (!first) out += ",";
        first = false;
        out += "{\"module\":" + json::quoted(m.module_path) +
               ",\"primitive\":" + json::quoted(m.primitive) +
               ",\"total_ns\":" + json::number(m.total_ns) + "}";
    }
    out += "],\"ops\":[";
    first = true;
    for (const AttributedOp& op : ops) {
        if (!first) out += ",";
        first = false;
        out += attributedOpJson(op);
    }
    out += "]";
    if (!per_rank_json.empty()) {
        out += ",\"per_rank\":" + per_rank_json;
    }
    out += "}";
    return out;
}

StepReport
buildStepReport(const OpProfiler& profiler,
                const std::vector<std::pair<std::string, int64_t>>& window,
                int64_t wall_ns, int world_size, int64_t step)
{
    StepReport report;
    report.step = step;
    report.world_size = world_size < 1 ? 1 : world_size;
    report.wall_ns = wall_ns;

    int64_t compute_total = 0; // raw (summed over ranks)
    int64_t comm_total = 0;
    std::map<std::string, PrimitiveTotal> by_primitive;
    std::map<std::string, ModuleTotal> by_module;

    for (const OpStats& row : profiler.report()) {
        AttributedOp op;
        op.op = row.op;
        op.module_path = row.module_path;
        op.count = row.count;
        op.total_ns = row.total_ns;
        op.mean_ns = row.mean_ns;
        op.p99_ns = row.p99_ns;
        // Attribution: stamped node provenance wins; otherwise the most
        // recent compute-affecting primitive on the longest prefix of the
        // module path; otherwise baseline.
        if (!row.primitive.empty()) {
            op.primitive = row.primitive;
        } else if (const ProvenanceRecord* rec =
                       lookupProvenance(row.module_path)) {
            op.primitive = rec->primitive;
        } else {
            op.primitive = "baseline";
        }

        (isCommPrimitive(op.primitive) ? comm_total : compute_total) +=
            op.total_ns;

        PrimitiveTotal& pt = by_primitive[op.primitive];
        pt.primitive = op.primitive;
        pt.total_ns += op.total_ns;
        pt.count += op.count;

        ModuleTotal& mt = by_module[op.module_path];
        mt.module_path = op.module_path;
        mt.total_ns += op.total_ns;
        // The module rollup shows the primitive claiming the module's
        // non-baseline work (ties broken toward the scheduled one).
        if (mt.primitive.empty() || mt.primitive == "baseline") {
            mt.primitive = op.primitive;
        }

        report.ops.push_back(std::move(op));
    }

    const int64_t world = report.world_size;
    report.compute_ns = compute_total / world;
    report.comm_ns = comm_total / world;
    report.pg_wait_ns = windowValue(window, "pg.wait_ns") / world;
    report.pipeline_bubble_ns =
        windowValue(window, "pipeline.queue_wait_ns") / world;
    const int64_t accounted =
        report.compute_ns + report.comm_ns + report.pipeline_bubble_ns;
    report.other_ns = wall_ns > accounted ? wall_ns - accounted : 0;

    report.alloc_pool_hits = windowValue(window, "alloc.pool_hits");
    report.alloc_pool_misses = windowValue(window, "alloc.pool_misses");
    report.alloc_reuse_bytes = windowValue(window, "alloc.reuse_bytes");

    for (auto& [key, pt] : by_primitive) {
        pt.total_ns /= world; // per-rank mean, commensurable with wall
        report.primitives.push_back(std::move(pt));
    }
    for (auto& [key, mt] : by_module) {
        mt.total_ns /= world;
        report.modules.push_back(std::move(mt));
    }
    auto by_total_desc = [](const auto& a, const auto& b) {
        return a.total_ns > b.total_ns;
    };
    std::stable_sort(report.primitives.begin(), report.primitives.end(),
                     by_total_desc);
    std::stable_sort(report.modules.begin(), report.modules.end(),
                     by_total_desc);
    std::stable_sort(report.ops.begin(), report.ops.end(), by_total_desc);
    return report;
}

// --- builder -------------------------------------------------------------

struct StepReportBuilder::Impl
{
    int world_size;
    OpProfiler profiler;
    MetricsDelta window;
    MemWindow mem_window; ///< inert unless memProfilingEnabled()
    std::chrono::steady_clock::time_point start;
    OpProfilerGuard guard;
    bool finished = false;

    explicit Impl(int world)
        : world_size(world), start(std::chrono::steady_clock::now()),
          guard(&profiler)
    {
    }
};

StepReportBuilder::StepReportBuilder(int world_size)
    : impl_(new Impl(world_size))
{
}

StepReportBuilder::~StepReportBuilder()
{
    delete impl_;
}

StepReport
StepReportBuilder::finish(int64_t step)
{
    SLAPO_ASSERT(!impl_->finished, "StepReportBuilder::finish called twice");
    impl_->finished = true;
    const int64_t wall_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - impl_->start)
            .count();
    StepReport report = buildStepReport(impl_->profiler,
                                        impl_->window.values(), wall_ns,
                                        impl_->world_size, step);
    if (impl_->mem_window.active()) {
        report.mem_peak_bytes = impl_->mem_window.peakBytes();
        report.mem_live_bytes = memLiveBytes();
        report.mem_retained_bytes = metrics().alloc_pooled_bytes.get();
        for (int c = 0; c < kNumMemCategories; ++c) {
            const MemCategory cat = static_cast<MemCategory>(c);
            report.mem_category_bytes.emplace_back(
                memCategoryName(cat),
                impl_->mem_window.categoryPeakBytes(cat));
        }
    }
    return report;
}

// --- enablement ----------------------------------------------------------

namespace {

std::atomic<int> g_enabled{-1}; ///< -1 = probe env, 0 = off, 1 = on
std::once_flag g_env_once;
std::mutex g_sink_mutex;
std::string g_sink_path; ///< SLAPO_STEP_REPORT path ("" = none)

void
probeEnv()
{
    std::call_once(g_env_once, [] {
        const char* env = std::getenv("SLAPO_STEP_REPORT");
        int expected = -1;
        if (env != nullptr && env[0] != '\0') {
            {
                std::lock_guard<std::mutex> lock(g_sink_mutex);
                g_sink_path = env;
            }
            g_enabled.compare_exchange_strong(expected, 1,
                                              std::memory_order_relaxed);
        } else {
            g_enabled.compare_exchange_strong(expected, 0,
                                              std::memory_order_relaxed);
        }
    });
}

} // namespace

bool
stepReportsEnabled()
{
    const int state = g_enabled.load(std::memory_order_relaxed);
    if (state >= 0) {
        return state == 1;
    }
    probeEnv();
    return g_enabled.load(std::memory_order_relaxed) == 1;
}

void
setStepReportsEnabled(bool on)
{
    probeEnv(); // settle the env state first so it cannot overwrite us
    g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void
maybeWriteStepReport(const StepReport& report)
{
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    if (g_sink_path.empty()) {
        return;
    }
    static std::ofstream* file = nullptr;
    if (file == nullptr) {
        file = new std::ofstream(g_sink_path, std::ios::trunc);
    }
    if (file->good()) {
        *file << report.toJson() << "\n";
        file->flush(); // a crashed run keeps every completed step
    }
}

// --- diff + regression gate ---------------------------------------------

namespace {

void
diffKeyed(const std::map<std::string, int64_t>& before,
          const std::map<std::string, int64_t>& after,
          const DiffOptions& options, std::vector<ReportDelta>& out,
          std::vector<ReportDelta>& regressions)
{
    std::map<std::string, std::pair<int64_t, int64_t>> merged;
    for (const auto& [key, ns] : before) {
        merged[key].first = ns;
    }
    for (const auto& [key, ns] : after) {
        merged[key].second = ns;
    }
    for (const auto& [key, pair] : merged) {
        ReportDelta d;
        d.key = key;
        d.before_ns = pair.first;
        d.after_ns = pair.second;
        d.pct = d.before_ns > 0
                    ? 100.0 *
                          static_cast<double>(d.after_ns - d.before_ns) /
                          static_cast<double>(d.before_ns)
                    : (d.after_ns > 0 ? 100.0 : 0.0);
        // Regression: a relative slowdown above the threshold on a row
        // big enough to be signal — or brand-new work above the floor.
        const int64_t base = std::max(d.before_ns, options.min_ns);
        d.regression =
            d.after_ns - d.before_ns >
            static_cast<int64_t>(static_cast<double>(base) *
                                 options.threshold_pct / 100.0) &&
            d.after_ns >= options.min_ns;
        out.push_back(d);
        if (d.regression) {
            regressions.push_back(d);
        }
    }
}

} // namespace

std::string
ReportDiff::toJson() const
{
    std::string out = "{\"kind\":\"report_diff\",\"schema_version\":1";
    out += ",\"wall_pct\":" + json::number(wall_pct);
    out += ",\"regressions\":[";
    bool first = true;
    for (const ReportDelta& d : regressions) {
        if (!first) out += ",";
        first = false;
        out += deltaJson(d);
    }
    out += "],\"primitives\":[";
    first = true;
    for (const ReportDelta& d : primitives) {
        if (!first) out += ",";
        first = false;
        out += deltaJson(d);
    }
    out += "],\"ops\":[";
    first = true;
    for (const ReportDelta& d : ops) {
        if (!first) out += ",";
        first = false;
        out += deltaJson(d);
    }
    out += "]}";
    return out;
}

ReportDiff
diffReports(const StepReport& before, const StepReport& after,
            DiffOptions options)
{
    ReportDiff diff;
    diff.wall_pct =
        before.wall_ns > 0
            ? 100.0 * static_cast<double>(after.wall_ns - before.wall_ns) /
                  static_cast<double>(before.wall_ns)
            : 0.0;

    std::map<std::string, int64_t> prim_before, prim_after;
    for (const PrimitiveTotal& p : before.primitives) {
        prim_before["primitive:" + p.primitive] += p.total_ns;
    }
    for (const PrimitiveTotal& p : after.primitives) {
        prim_after["primitive:" + p.primitive] += p.total_ns;
    }
    diffKeyed(prim_before, prim_after, options, diff.primitives,
              diff.regressions);

    std::map<std::string, int64_t> ops_before, ops_after;
    for (const AttributedOp& op : before.ops) {
        ops_before["op:" + op.op + "@" + op.module_path] += op.total_ns;
    }
    for (const AttributedOp& op : after.ops) {
        ops_after["op:" + op.op + "@" + op.module_path] += op.total_ns;
    }
    diffKeyed(ops_before, ops_after, options, diff.ops, diff.regressions);
    return diff;
}

} // namespace obs
} // namespace slapo
