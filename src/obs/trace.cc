#include "obs/trace.h"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "support/error.h"

namespace slapo {
namespace obs {

namespace {

/** One finished event, stored per producing thread. */
struct TraceEvent
{
    char phase = 'X';            ///< 'X' complete span, 'C' counter sample
    const char* name = nullptr;  ///< literal name (preferred)
    std::string owned_name;      ///< dynamic name (used when name == nullptr)
    const char* category = nullptr;
    int64_t ts_ns = 0;  ///< start, relative to the trace epoch
    int64_t dur_ns = 0; ///< span duration ('X' only)
    int64_t value = 0;  ///< counter sample ('C' only)
    std::string args;   ///< pre-rendered JSON object body ("" = none)
};

/**
 * Per-thread event buffer. The owning thread appends; the dumper reads.
 * The mutex is virtually uncontended (taken by the dumper only at
 * start/stop/dump), so recording stays effectively thread-private while
 * remaining well-defined under concurrent dump.
 */
struct ThreadBuffer
{
    std::mutex mutex;
    std::vector<TraceEvent> events;
    int pid = 0;
    std::string name; ///< thread track label ("" = "thread <tid>")
    int tid = 0;      ///< registration-order track id
};

struct Registry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::string path; ///< output file ("" = in-memory only)
    /** Trace start, as steady-clock ns — atomic so recording threads can
     * read it without the registry lock. */
    std::atomic<int64_t> epoch_ns{0};
};

Registry&
registry()
{
    static Registry* r = new Registry(); // leaked: outlives thread statics
    return *r;
}

std::once_flag g_env_once;

/** The calling thread's buffer, registered on first use and kept alive
 * by the registry even after the thread exits. */
ThreadBuffer&
threadBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> t_buffer = [] {
        auto buffer = std::make_shared<ThreadBuffer>();
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        buffer->tid = static_cast<int>(r.buffers.size());
        r.buffers.push_back(buffer);
        return buffer;
    }();
    return *t_buffer;
}

int64_t
sinceEpochNs(std::chrono::steady_clock::time_point tp)
{
    const int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp.time_since_epoch())
            .count();
    return now_ns - registry().epoch_ns.load(std::memory_order_relaxed);
}

void
appendJsonEscaped(std::string& out, const char* s)
{
    for (; *s; ++s) {
        const char c = *s;
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof hex, "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

std::string
jsonString(const char* s)
{
    std::string out = "\"";
    appendJsonEscaped(out, s);
    out += '"';
    return out;
}

void
emitMicros(std::string& out, int64_t ns)
{
    // Microseconds with nanosecond resolution, no float rounding noise.
    char buf[40];
    std::snprintf(buf, sizeof buf, "%lld.%03d",
                  static_cast<long long>(ns / 1000),
                  static_cast<int>(ns % 1000));
    out += buf;
}

void
emitEvent(std::string& out, const ThreadBuffer& buffer, const TraceEvent& e)
{
    out += "{\"name\":";
    out += jsonString(e.name ? e.name : e.owned_name.c_str());
    out += ",\"ph\":\"";
    out += e.phase;
    out += '"';
    if (e.category != nullptr) {
        out += ",\"cat\":";
        out += jsonString(e.category);
    }
    out += ",\"ts\":";
    emitMicros(out, e.ts_ns);
    if (e.phase == 'X') {
        out += ",\"dur\":";
        emitMicros(out, e.dur_ns);
    }
    out += ",\"pid\":" + std::to_string(buffer.pid);
    out += ",\"tid\":" + std::to_string(buffer.tid);
    if (e.phase == 'C') {
        out += ",\"args\":{\"value\":" + std::to_string(e.value) + "}";
    } else if (!e.args.empty()) {
        out += ",\"args\":{" + e.args + "}";
    }
    out += '}';
}

void
emitMetadata(std::string& out, int pid, int tid, const char* kind,
             const std::string& label, bool& first)
{
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    out += kind;
    out += "\",\"ph\":\"M\",\"ts\":0,\"pid\":" + std::to_string(pid);
    if (tid >= 0) {
        out += ",\"tid\":" + std::to_string(tid);
    }
    out += ",\"args\":{\"name\":" + jsonString(label.c_str()) + "}}";
}

} // namespace

namespace detail {

std::atomic<bool> g_tracing{false};

bool
tracingEnabledSlow()
{
    // First query also gets a chance to arm from the environment, mirroring
    // failpoint::configureFromEnv.
    std::call_once(g_env_once, [] {
        const char* env = std::getenv("SLAPO_TRACE");
        if (env != nullptr && env[0] != '\0') {
            startTracing(env);
            std::atexit([] { stopTracing(); });
        }
    });
    return g_tracing.load(std::memory_order_relaxed);
}

} // namespace detail

void
startTracing(const std::string& path)
{
    Registry& r = registry();
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        r.path = path;
        r.epoch_ns.store(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count(),
            std::memory_order_relaxed);
        for (auto& buffer : r.buffers) {
            std::lock_guard<std::mutex> blk(buffer->mutex);
            buffer->events.clear();
        }
    }
    detail::g_tracing.store(true, std::memory_order_relaxed);
}

int64_t
stopTracing()
{
    if (!detail::g_tracing.load(std::memory_order_relaxed)) {
        return 0;
    }
    detail::g_tracing.store(false, std::memory_order_relaxed);
    Registry& r = registry();
    std::string path;
    int64_t events = 0;
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        path = r.path;
        for (auto& buffer : r.buffers) {
            std::lock_guard<std::mutex> blk(buffer->mutex);
            events += static_cast<int64_t>(buffer->events.size());
        }
    }
    if (!path.empty()) {
        writeTrace(path);
    }
    return events;
}

std::string
dumpTraceJson()
{
    Registry& r = registry();
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    std::lock_guard<std::mutex> lock(r.mutex);
    // Track metadata rows: process names (one per distinct pid, labelled
    // by the first thread that claimed it) and per-thread names.
    bool named_pid0 = false;
    for (const auto& buffer : r.buffers) {
        std::lock_guard<std::mutex> blk(buffer->mutex);
        if (buffer->pid == 0) {
            if (!named_pid0) {
                emitMetadata(out, 0, -1, "process_name", "slapo", first);
                named_pid0 = true;
            }
        } else {
            emitMetadata(out, buffer->pid, -1, "process_name",
                         buffer->name.empty()
                             ? "pid " + std::to_string(buffer->pid)
                             : buffer->name,
                         first);
        }
        emitMetadata(out, buffer->pid, buffer->tid, "thread_name",
                     buffer->name.empty()
                         ? "thread " + std::to_string(buffer->tid)
                         : buffer->name,
                     first);
    }
    for (const auto& buffer : r.buffers) {
        std::lock_guard<std::mutex> blk(buffer->mutex);
        for (const TraceEvent& e : buffer->events) {
            if (!first) out += ",\n";
            first = false;
            emitEvent(out, *buffer, e);
        }
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}";
    return out;
}

void
writeTrace(const std::string& path)
{
    std::string json = dumpTraceJson();
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    SLAPO_CHECK(file.good(), "trace: cannot open '" << path << "' for write");
    file << json << "\n";
    SLAPO_CHECK(file.good(), "trace: write to '" << path << "' failed");
}

int64_t
flushTrace()
{
    if (!detail::g_tracing.load(std::memory_order_relaxed)) {
        return 0;
    }
    Registry& r = registry();
    std::string path;
    int64_t events = 0;
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        path = r.path;
        for (auto& buffer : r.buffers) {
            std::lock_guard<std::mutex> blk(buffer->mutex);
            events += static_cast<int64_t>(buffer->events.size());
        }
    }
    if (path.empty()) {
        return 0; // in-memory session: nothing durable to flush to
    }
    // Best effort by design: the flush runs on abort/watchdog paths that
    // must never turn a hang diagnosis into a new exception.
    try {
        writeTrace(path);
    } catch (...) {
        return 0;
    }
    return events;
}

void
clearTrace()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (auto& buffer : r.buffers) {
        std::lock_guard<std::mutex> blk(buffer->mutex);
        buffer->events.clear();
    }
}

void
setThreadTrack(int pid, const std::string& name)
{
    ThreadBuffer& buffer = threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.pid = pid;
    buffer.name = name;
}

void
traceCounter(const char* name, int64_t value)
{
    if (!tracingEnabled()) {
        return;
    }
    TraceEvent e;
    e.phase = 'C';
    e.name = name;
    e.ts_ns = sinceEpochNs(std::chrono::steady_clock::now());
    e.value = value;
    ThreadBuffer& buffer = threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(std::move(e));
}

void
TraceSpan::begin(const char* name, const char* category)
{
    live_ = true;
    name_ = name;
    category_ = category;
    start_ = std::chrono::steady_clock::now();
}

void
TraceSpan::beginOwned(std::string name, const char* category)
{
    live_ = true;
    owned_name_ = std::move(name);
    category_ = category;
    start_ = std::chrono::steady_clock::now();
}

void
TraceSpan::arg(const char* key, const std::string& value)
{
    if (!live_) return;
    if (!args_.empty()) args_ += ',';
    args_ += jsonString(key) + ":" + jsonString(value.c_str());
}

void
TraceSpan::arg(const char* key, int64_t value)
{
    if (!live_) return;
    if (!args_.empty()) args_ += ',';
    args_ += jsonString(key) + ":" + std::to_string(value);
}

void
TraceSpan::end()
{
    const auto now = std::chrono::steady_clock::now();
    TraceEvent e;
    e.phase = 'X';
    e.name = name_;
    e.owned_name = std::move(owned_name_);
    e.category = category_;
    e.ts_ns = sinceEpochNs(start_);
    e.dur_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   now - start_)
                   .count();
    e.args = std::move(args_);
    ThreadBuffer& buffer = threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(std::move(e));
}

} // namespace obs
} // namespace slapo
