/**
 * @file
 * Always-on training-runtime metrics: monotonic counters and
 * high-watermark gauges (docs/OBSERVABILITY.md).
 *
 * Unlike spans (obs/trace.h), which are only recorded while a trace is
 * live, metrics are plain relaxed atomics that cost a few nanoseconds
 * per update — cheap enough to leave enabled everywhere. The registry is
 * a fixed struct of well-known metrics (no name lookup on the hot
 * path); `snapshot()` renders it as name/value pairs for reports, JSON
 * dumps, and tests.
 *
 * What each well-known metric means:
 *   tensor.allocated_bytes   cumulative tensor storage ever allocated
 *   tensor.live_bytes        currently live tensor storage
 *   tensor.peak_bytes        high watermark of live_bytes
 *   alloc.pool_hits          storage requests served from the pool's
 *                            free lists (tensor/alloc.h)
 *   alloc.pool_misses        storage requests that hit the heap — flat
 *                            across steady-state steps when the pool is
 *                            warm (tests/test_alloc.cc asserts this)
 *   alloc.reuse_bytes        cumulative bytes served from free lists
 *   alloc.pooled_bytes       bytes parked on free lists right now
 *   pg.wait_ns / pg.count    time ranks spent blocked waiting for peers
 *                            inside collectives / number of collectives
 *   pg.copy_ns               collective compute + result-copy time
 *   pipeline.queue_wait_ns   stage threads blocked popping an empty queue
 *                            (pipeline bubble time)
 *   pipeline.push_wait_ns    stage threads blocked pushing a full queue
 *                            (back-pressure stalls)
 *   pipeline.peak_queue_depth  deepest any inter-stage queue got
 *   checkpoint.write_bytes/.write_ns   checkpoint save volume/time
 *   checkpoint.read_bytes/.read_ns     checkpoint restore volume/time
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace slapo {
namespace obs {

/** Monotonic counter (adds only). */
class Counter
{
  public:
    void
    add(int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t get() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/** Gauge that also tracks its all-time maximum (high watermark). */
class Gauge
{
  public:
    /** Add `delta` (may be negative) and fold the result into the peak. */
    void
    add(int64_t delta)
    {
        const int64_t now =
            value_.fetch_add(delta, std::memory_order_relaxed) + delta;
        int64_t seen = peak_.load(std::memory_order_relaxed);
        while (now > seen &&
               !peak_.compare_exchange_weak(seen, now,
                                            std::memory_order_relaxed)) {
        }
    }

    /** Fold a directly observed level into the peak (no running value). */
    void
    observe(int64_t level)
    {
        int64_t seen = peak_.load(std::memory_order_relaxed);
        while (level > seen &&
               !peak_.compare_exchange_weak(seen, level,
                                            std::memory_order_relaxed)) {
        }
    }

    int64_t get() const { return value_.load(std::memory_order_relaxed); }
    int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

    void
    reset()
    {
        value_.store(0, std::memory_order_relaxed);
        peak_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> value_{0};
    std::atomic<int64_t> peak_{0};
};

/** The process-wide metric registry. */
struct Metrics
{
    // tensor substrate
    Counter tensor_allocated_bytes;
    Gauge tensor_live_bytes; ///< value = live, peak = high watermark

    // caching allocator (tensor/alloc.h)
    Counter alloc_pool_hits;   ///< requests served from a free list
    Counter alloc_pool_misses; ///< requests that touched the heap
    Counter alloc_reuse_bytes; ///< cumulative bytes served from free lists
    Gauge alloc_pooled_bytes;  ///< bytes currently parked on free lists

    // collectives
    Counter pg_count;   ///< collectives completed (per-rank entries)
    Counter pg_wait_ns; ///< blocked waiting for peers (rendezvous wait)
    Counter pg_copy_ns; ///< reduction compute + result copy

    // pipeline
    Counter pipeline_queue_wait_ns; ///< bubble: stage starved for input
    Counter pipeline_push_wait_ns;  ///< back-pressure: output queue full
    Gauge pipeline_queue_depth;     ///< peak = deepest inter-stage queue

    // checkpointing
    Counter checkpoint_write_bytes;
    Counter checkpoint_write_ns;
    Counter checkpoint_read_bytes;
    Counter checkpoint_read_ns;

    // recovery / elastic world-size changes (runtime/trainer.cc). These
    // were previously only visible as run-log records, so a scoped
    // MetricsDelta window (tuner trials, step reports) could not see
    // whether a recovery happened inside it.
    Counter recovery_restores;  ///< checkpoint restores by runWithRecovery
    Counter elastic_rebuilds;   ///< world-shrinking group rebuilds
    Counter elastic_lost_ranks; ///< ranks dropped across all rebuilds

    /** All metrics as (name, value), in a stable order. */
    std::vector<std::pair<std::string, int64_t>> snapshot() const;

    /** Snapshot rendered as a flat JSON object. */
    std::string toJson() const;

    /** Zero everything (tests; live_bytes of still-live tensors too, so
     * only call between self-contained phases). */
    void reset();

    /** Atomically-enough read-then-zero for per-phase readings: returns
     * `snapshot()` and resets. Concurrent updates between the read and
     * the zeroing land in the *next* window — nothing is double-counted
     * into the returned snapshot. */
    std::vector<std::pair<std::string, int64_t>> snapshotAndReset();
};

/** The global registry. */
Metrics& metrics();

/**
 * Scoped metric window: captures a baseline at construction so a test or
 * tuner trial can read its own contribution without zeroing the registry
 * under other threads' feet. Counter entries report current − baseline;
 * level/peak entries (`tensor.live_bytes`, `tensor.peak_bytes`,
 * `pipeline.peak_queue_depth`) report the current absolute value, since
 * a high watermark has no meaningful difference.
 */
class MetricsDelta
{
  public:
    MetricsDelta();

    /** (name, windowed value) in the same stable order as snapshot(). */
    std::vector<std::pair<std::string, int64_t>> values() const;

    /** Windowed value of one metric by snapshot name (0 if unknown). */
    int64_t get(const std::string& name) const;

  private:
    std::vector<std::pair<std::string, int64_t>> baseline_;
};

} // namespace obs
} // namespace slapo
