#include "obs/flight_recorder.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/json_util.h"
#include "obs/trace.h"

namespace slapo {
namespace obs {

namespace {

int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Fold `value` into `target` if larger (relaxed CAS max). */
void
atomicMax(std::atomic<int64_t>& target, int64_t value)
{
    int64_t seen = target.load(std::memory_order_relaxed);
    while (value > seen &&
           !target.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
}

/** Global list of live recorders (leaked: outlives late dtors). */
struct RecorderRegistry
{
    std::mutex mutex;
    std::vector<FlightRecorder*> recorders;
};

RecorderRegistry&
recorderRegistry()
{
    static RecorderRegistry* r = new RecorderRegistry();
    return *r;
}

/** Automatic-dump destination ("" = stderr). */
struct DumpPath
{
    std::mutex mutex;
    std::string path;
    bool env_probed = false;
};

DumpPath&
dumpPath()
{
    static DumpPath* p = new DumpPath();
    return *p;
}

/** Append one dump (a single JSON line) to the configured destination. */
void
writeDump(const std::string& json)
{
    const std::string path = flightDumpPath();
    if (path.empty()) {
        std::fprintf(stderr, "[slapo flight recorder] %s\n", json.c_str());
        return;
    }
    std::ofstream file(path, std::ios::binary | std::ios::app);
    if (file.good()) {
        file << json << "\n";
    }
}

std::once_flag g_watchdog_env_once;

} // namespace

// --- ring storage -----------------------------------------------------------

/**
 * One retained event. Every field is a relaxed atomic, so concurrent
 * record/dump is well-defined (TSan-clean) without any lock. The `seq`
 * field doubles as the validity marker: the writer zeroes it, fills the
 * payload, then publishes the new sequence; a reader that sees the
 * sequence change mid-read discards the slot. A torn-but-published read
 * can still mix fields in principle — acceptable for diagnostic data,
 * never undefined behaviour.
 */
struct FlightRecorder::Slot
{
    std::atomic<int64_t> seq{0}; ///< 0 = empty/being written
    std::atomic<const char*> site{nullptr};
    std::atomic<int64_t> enter_ns{0};
    std::atomic<int64_t> exit_ns{0};
    std::atomic<int> ndim{0};
    std::atomic<int64_t> dims[kMaxDims] = {};
};

struct FlightRecorder::RankRing
{
    std::unique_ptr<Slot[]> slots;
    std::atomic<int64_t> started{0};   ///< collectives entered
    std::atomic<int64_t> finished{0};  ///< exited, successfully or not
    std::atomic<int64_t> completed{0}; ///< exited successfully
};

FlightRecorder::FlightRecorder(int world_size, size_t capacity)
    : world_size_(world_size < 1 ? 1 : world_size),
      capacity_(capacity < 1 ? 1 : capacity),
      rings_(new std::vector<RankRing>(
          static_cast<size_t>(world_size < 1 ? 1 : world_size)))
{
    for (RankRing& ring : *rings_) {
        ring.slots = std::make_unique<Slot[]>(capacity_);
    }
    {
        RecorderRegistry& reg = recorderRegistry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        reg.recorders.push_back(this);
    }
    // First recorder gets a chance to arm the watchdog from the
    // environment, mirroring failpoint::configureFromEnv.
    std::call_once(g_watchdog_env_once, [] {
        const char* env = std::getenv("SLAPO_WATCHDOG_MS");
        if (env != nullptr && env[0] != '\0') {
            const long long ms = std::atoll(env);
            if (ms > 0) {
                startWatchdog(ms);
            }
        }
    });
}

FlightRecorder::~FlightRecorder()
{
    {
        RecorderRegistry& reg = recorderRegistry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        for (auto it = reg.recorders.begin(); it != reg.recorders.end(); ++it) {
            if (*it == this) {
                reg.recorders.erase(it);
                break;
            }
        }
    }
    delete rings_;
}

void
FlightRecorder::setLabel(const std::string& label)
{
    label_ = label;
}

int64_t
FlightRecorder::begin(int rank, const char* site, const int64_t* dims,
                      int ndim)
{
    if (rank < 0 || rank >= world_size_) {
        return 0;
    }
    RankRing& ring = (*rings_)[static_cast<size_t>(rank)];
    const int64_t seq =
        ring.started.fetch_add(1, std::memory_order_relaxed) + 1;
    Slot& slot = ring.slots[static_cast<size_t>(seq - 1) % capacity_];
    slot.seq.store(0, std::memory_order_release); // invalidate for readers
    slot.site.store(site, std::memory_order_relaxed);
    slot.enter_ns.store(nowNs(), std::memory_order_relaxed);
    slot.exit_ns.store(0, std::memory_order_relaxed);
    slot.ndim.store(ndim, std::memory_order_relaxed);
    const int keep = ndim < kMaxDims ? ndim : kMaxDims;
    for (int d = 0; d < keep; ++d) {
        slot.dims[d].store(dims[d], std::memory_order_relaxed);
    }
    slot.seq.store(seq, std::memory_order_release);
    return seq;
}

void
FlightRecorder::end(int rank, int64_t token, bool aborted)
{
    if (rank < 0 || rank >= world_size_ || token <= 0) {
        return;
    }
    RankRing& ring = (*rings_)[static_cast<size_t>(rank)];
    Slot& slot = ring.slots[static_cast<size_t>(token - 1) % capacity_];
    if (slot.seq.load(std::memory_order_acquire) == token) {
        slot.exit_ns.store(aborted ? -1 : nowNs(),
                           std::memory_order_relaxed);
    }
    atomicMax(ring.finished, token);
    if (!aborted) {
        atomicMax(ring.completed, token);
    }
}

std::vector<FlightEvent>
FlightRecorder::events() const
{
    std::vector<FlightEvent> out;
    for (int rank = 0; rank < world_size_; ++rank) {
        const RankRing& ring = (*rings_)[static_cast<size_t>(rank)];
        const int64_t last = ring.started.load(std::memory_order_relaxed);
        const int64_t first =
            last > static_cast<int64_t>(capacity_)
                ? last - static_cast<int64_t>(capacity_) + 1
                : 1;
        for (int64_t seq = first; seq <= last; ++seq) {
            const Slot& slot =
                ring.slots[static_cast<size_t>(seq - 1) % capacity_];
            const int64_t s1 = slot.seq.load(std::memory_order_acquire);
            if (s1 != seq) {
                continue; // overwritten or mid-write
            }
            FlightEvent e;
            e.rank = rank;
            e.seq = seq;
            const char* site = slot.site.load(std::memory_order_relaxed);
            e.site = site != nullptr ? site : "?";
            e.enter_ns = slot.enter_ns.load(std::memory_order_relaxed);
            e.exit_ns = slot.exit_ns.load(std::memory_order_relaxed);
            const int ndim = slot.ndim.load(std::memory_order_relaxed);
            const int keep = ndim < kMaxDims ? ndim : kMaxDims;
            for (int d = 0; d < keep; ++d) {
                e.shape.push_back(
                    slot.dims[d].load(std::memory_order_relaxed));
            }
            if (slot.seq.load(std::memory_order_acquire) != seq) {
                continue; // overwritten while reading
            }
            out.push_back(std::move(e));
        }
    }
    return out;
}

FlightAnalysis
FlightRecorder::analyze() const
{
    FlightAnalysis a;
    a.last_started.resize(static_cast<size_t>(world_size_));
    a.last_completed.resize(static_cast<size_t>(world_size_));
    std::vector<int64_t> finished(static_cast<size_t>(world_size_));
    for (int rank = 0; rank < world_size_; ++rank) {
        const RankRing& ring = (*rings_)[static_cast<size_t>(rank)];
        a.last_started[rank] = ring.started.load(std::memory_order_relaxed);
        a.last_completed[rank] =
            ring.completed.load(std::memory_order_relaxed);
        finished[rank] = ring.finished.load(std::memory_order_relaxed);
    }
    // The stuck collective: the highest sequence any rank is still
    // inside. Ranks whose last started sequence is lower never arrived —
    // they are the stragglers the dump must name.
    int64_t stuck = -1;
    for (int rank = 0; rank < world_size_; ++rank) {
        if (a.last_started[rank] > finished[rank] &&
            a.last_started[rank] > stuck) {
            stuck = a.last_started[rank];
        }
    }
    if (stuck <= 0) {
        return a;
    }
    a.stalled = true;
    a.stuck_seq = stuck;
    for (int rank = 0; rank < world_size_; ++rank) {
        if (a.last_started[rank] == stuck &&
            a.last_started[rank] > finished[rank]) {
            a.waiting_ranks.push_back(rank);
            if (a.stuck_site.empty()) {
                const RankRing& ring = (*rings_)[static_cast<size_t>(rank)];
                const Slot& slot =
                    ring.slots[static_cast<size_t>(stuck - 1) % capacity_];
                if (slot.seq.load(std::memory_order_acquire) == stuck) {
                    const char* site =
                        slot.site.load(std::memory_order_relaxed);
                    a.stuck_site = site != nullptr ? site : "?";
                }
            }
        } else if (a.last_started[rank] < stuck) {
            a.missing_ranks.push_back(rank);
        }
    }
    return a;
}

std::string
FlightRecorder::dumpJson() const
{
    const FlightAnalysis a = analyze();
    std::string out = "{\"label\":" + json::quoted(label_);
    out += ",\"world_size\":" + std::to_string(world_size_);
    out += ",\"capacity\":" + std::to_string(capacity_);
    out += ",\"analysis\":{\"stalled\":";
    out += a.stalled ? "true" : "false";
    out += ",\"stuck_site\":" + json::quoted(a.stuck_site);
    out += ",\"stuck_seq\":" + std::to_string(a.stuck_seq);
    auto int_array = [](const auto& values) {
        std::string s = "[";
        bool first = true;
        for (const auto v : values) {
            if (!first) s += ",";
            first = false;
            s += std::to_string(v);
        }
        return s + "]";
    };
    out += ",\"waiting_ranks\":" + int_array(a.waiting_ranks);
    out += ",\"missing_ranks\":" + int_array(a.missing_ranks);
    out += ",\"last_started\":" + int_array(a.last_started);
    out += ",\"last_completed\":" + int_array(a.last_completed);
    out += "},\"events\":[";
    bool first = true;
    for (const FlightEvent& e : events()) {
        if (!first) out += ",";
        first = false;
        out += "{\"rank\":" + std::to_string(e.rank);
        out += ",\"seq\":" + std::to_string(e.seq);
        out += ",\"site\":" + json::quoted(e.site);
        out += ",\"dtype\":" + json::quoted(e.dtype);
        out += ",\"shape\":" + int_array(e.shape);
        out += ",\"enter_ns\":" + std::to_string(e.enter_ns);
        out += ",\"exit_ns\":" + std::to_string(e.exit_ns);
        out += ",\"state\":";
        out += e.exit_ns == 0   ? "\"in_flight\""
               : e.exit_ns < 0 ? "\"aborted\""
                                : "\"done\"";
        out += "}";
    }
    out += "]}";
    return out;
}

void
FlightRecorder::autoDumpOnError()
{
    if (auto_dumped_.exchange(true, std::memory_order_relaxed)) {
        return; // one dump per failure, not one per victim rank
    }
    writeDump(dumpJson());
}

void
FlightRecorder::rearmAutoDump()
{
    auto_dumped_.store(false, std::memory_order_relaxed);
}

// --- free functions ---------------------------------------------------------

std::string
dumpFlightRecorder()
{
    RecorderRegistry& reg = recorderRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::string out;
    for (const FlightRecorder* recorder : reg.recorders) {
        out += recorder->dumpJson();
        out += "\n";
    }
    return out;
}

void
setFlightDumpPath(const std::string& path)
{
    DumpPath& p = dumpPath();
    std::lock_guard<std::mutex> lock(p.mutex);
    p.path = path;
    p.env_probed = true; // an explicit path beats the environment
}

std::string
flightDumpPath()
{
    DumpPath& p = dumpPath();
    std::lock_guard<std::mutex> lock(p.mutex);
    if (!p.env_probed) {
        p.env_probed = true;
        const char* env = std::getenv("SLAPO_FLIGHT_DUMP");
        if (env != nullptr && env[0] != '\0') {
            p.path = env;
        }
    }
    return p.path;
}

// --- watchdog ---------------------------------------------------------------

struct WatchdogThread
{
    std::mutex mutex;
    std::condition_variable cv;
    std::thread thread;
    bool running = false;
    bool stop_requested = false;
    std::atomic<int64_t> deadline_ms{0};

    void
    loop()
    {
        for (;;) {
            const int64_t deadline =
                deadline_ms.load(std::memory_order_relaxed);
            int64_t interval_ms = deadline / 4;
            if (interval_ms < 10) interval_ms = 10;
            if (interval_ms > 250) interval_ms = 250;
            {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait_for(lock, std::chrono::milliseconds(interval_ms),
                            [&] { return stop_requested; });
                if (stop_requested) {
                    return;
                }
            }
            scan(deadline);
        }
    }

    /** Dump any recorder with a collective in flight past the deadline
     * (once per stuck sequence — a stall produces one dump, not a
     * stream of them). */
    void
    scan(int64_t deadline)
    {
        const int64_t now = nowNs();
        RecorderRegistry& reg = recorderRegistry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        for (FlightRecorder* recorder : reg.recorders) {
            const FlightAnalysis a = recorder->analyze();
            if (!a.stalled) {
                continue;
            }
            // Age of the stuck collective = oldest enter among the
            // waiting ranks' current events.
            int64_t oldest_enter = now;
            for (const FlightEvent& e : recorder->events()) {
                if (e.seq == a.stuck_seq && e.exit_ns == 0 &&
                    e.enter_ns < oldest_enter) {
                    oldest_enter = e.enter_ns;
                }
            }
            if (now - oldest_enter < deadline * 1000000) {
                continue;
            }
            int64_t dumped = recorder->watchdog_dumped_seq_.load(
                std::memory_order_relaxed);
            if (a.stuck_seq <= dumped) {
                continue;
            }
            recorder->watchdog_dumped_seq_.store(
                a.stuck_seq, std::memory_order_relaxed);
            writeDump(recorder->dumpJson());
            // A stall that trips the watchdog often ends with the
            // process being killed; flush the trace buffers now so the
            // SLAPO_TRACE timeline survives next to the hang dump.
            flushTrace();
        }
    }
};

namespace {

WatchdogThread&
watchdog()
{
    static WatchdogThread* w = new WatchdogThread();
    return *w;
}

} // namespace

void
startWatchdog(int64_t deadline_ms)
{
    WatchdogThread& w = watchdog();
    std::lock_guard<std::mutex> lock(w.mutex);
    w.deadline_ms.store(deadline_ms, std::memory_order_relaxed);
    if (!w.running) {
        w.stop_requested = false;
        w.running = true;
        w.thread = std::thread([&w] { w.loop(); });
    }
}

void
stopWatchdog()
{
    WatchdogThread& w = watchdog();
    {
        std::lock_guard<std::mutex> lock(w.mutex);
        if (!w.running) {
            return;
        }
        w.stop_requested = true;
        w.cv.notify_all();
    }
    w.thread.join();
    std::lock_guard<std::mutex> lock(w.mutex);
    w.running = false;
}

} // namespace slapo
} // namespace obs
