/**
 * @file
 * Error handling utilities shared across all slapo-cc libraries.
 *
 * Two severities, following the gem5 fatal/panic convention:
 *  - SlapoError (thrown by SLAPO_CHECK / raise): a *user* mistake — an
 *    invalid schedule, a malformed search space, an impossible shard axis.
 *    The schedule verifier and primitive validators rely on these being
 *    catchable so they can report the offending primitive.
 *  - SLAPO_ASSERT: an *internal* invariant violation (a slapo-cc bug);
 *    aborts via assert semantics even in release builds.
 *
 * The fault-tolerant runtime adds two typed SlapoError subclasses so
 * recovery code can distinguish *where* a failure came from:
 *  - CollectiveError: a collective operation failed or was aborted; it
 *    carries the site ("pg.allreduce"), the origin rank, and the group
 *    generation at which the failure happened (docs/ROBUSTNESS.md).
 *  - CheckpointError: a checkpoint file is missing, malformed, or failed
 *    its CRC — the recovery loop falls back to an older checkpoint.
 *  - MemoryBudgetExceeded: live tensor bytes crossed SLAPO_MEM_BUDGET
 *    with SLAPO_MEM_BUDGET_ACTION=throw (obs/mem_profiler.h); raised at
 *    the allocation that crossed the line so it behaves like a real OOM
 *    and flows through the same retry machinery as any step failure.
 */
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace slapo {

/** Exception carrying a user-facing schedule/validation error message. */
class SlapoError : public std::runtime_error
{
  public:
    explicit SlapoError(const std::string& msg) : std::runtime_error(msg) {}
};

/**
 * A collective failed or its group was aborted. Every rank blocked in or
 * entering an aborted ProcessGroup receives a copy describing the
 * *origin* of the failure, not its own vantage point — so logs from all
 * ranks agree on who failed, where, and in which generation.
 */
class CollectiveError : public SlapoError
{
  public:
    /** @param waited_ms how long the *throwing* rank had been blocked in
     * the rendezvous when it gave up (-1 = not applicable/unknown).
     *  @param member_generation the group's *membership* generation (world
     * epoch, bumped by elastic rebuilds) at failure time; 0 = the group
     * predates membership epochs / not applicable. */
    CollectiveError(std::string site, int rank, int64_t generation,
                    const std::string& detail, int64_t waited_ms = -1,
                    int64_t member_generation = 0);

    /** Collective site of the origin failure, e.g. "pg.allreduce". */
    const std::string& site() const { return site_; }
    /** Rank at which the failure originated. */
    int rank() const { return rank_; }
    /** ProcessGroup generation (collective count) at failure time. */
    int64_t generation() const { return generation_; }
    /** Elapsed wait of the throwing rank in ms (-1 if unknown). */
    int64_t waitedMs() const { return waited_ms_; }
    /**
     * Membership generation (elastic world epoch) the error belongs to.
     * A handler holding the group can compare this against
     * `ProcessGroup::membershipGeneration()` to tell a stale error —
     * raised before an elastic rebuild replaced the world — from one
     * about the current world (0 = unknown/pre-epoch).
     */
    int64_t memberGeneration() const { return member_generation_; }

  private:
    std::string site_;
    int rank_;
    int64_t generation_;
    int64_t waited_ms_;
    int64_t member_generation_;
};

/** A checkpoint file could not be written, read, or verified. */
class CheckpointError : public SlapoError
{
  public:
    CheckpointError(std::string path, const std::string& detail);

    /** Path of the offending checkpoint file. */
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

/**
 * A tensor allocation pushed live bytes over the configured memory
 * budget (obs/mem_profiler.h, SLAPO_MEM_BUDGET with action `throw`).
 * The offending allocation is rolled back before the throw, so live
 * bytes drop back under the budget as the failing step unwinds and a
 * recovery retry (or a smaller configuration) can proceed.
 */
class MemoryBudgetExceeded : public SlapoError
{
  public:
    MemoryBudgetExceeded(int64_t live_bytes, int64_t budget_bytes);

    /** Live tensor bytes the failing allocation would have reached. */
    int64_t liveBytes() const { return live_bytes_; }
    /** The configured budget, in bytes. */
    int64_t budgetBytes() const { return budget_bytes_; }

  private:
    int64_t live_bytes_;
    int64_t budget_bytes_;
};

namespace detail {

/** Stream-style message builder used by the error macros. */
class MessageBuilder
{
  public:
    template <typename T>
    MessageBuilder&
    operator<<(const T& v)
    {
        stream_ << v;
        return *this;
    }

    std::string str() const { return stream_.str(); }

  private:
    std::ostringstream stream_;
};

[[noreturn]] void throwError(const std::string& msg);
[[noreturn]] void assertFail(const char* expr, const char* file, int line,
                             const std::string& msg);

} // namespace detail

} // namespace slapo

/** Throw SlapoError if `cond` is false. Message is stream-composable. */
#define SLAPO_CHECK(cond, msg)                                             \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::slapo::detail::throwError(                                   \
                (::slapo::detail::MessageBuilder() << msg).str());         \
        }                                                                  \
    } while (0)

/** Unconditionally throw SlapoError with a stream-composable message. */
#define SLAPO_THROW(msg)                                                   \
    ::slapo::detail::throwError(                                           \
        (::slapo::detail::MessageBuilder() << msg).str())

/** Abort on internal invariant violation (slapo-cc bug, not user error). */
#define SLAPO_ASSERT(cond, msg)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::slapo::detail::assertFail(                                   \
                #cond, __FILE__, __LINE__,                                 \
                (::slapo::detail::MessageBuilder() << msg).str());         \
        }                                                                  \
    } while (0)
