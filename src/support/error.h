/**
 * @file
 * Error handling utilities shared across all slapo-cc libraries.
 *
 * Two severities, following the gem5 fatal/panic convention:
 *  - SlapoError (thrown by SLAPO_CHECK / raise): a *user* mistake — an
 *    invalid schedule, a malformed search space, an impossible shard axis.
 *    The schedule verifier and primitive validators rely on these being
 *    catchable so they can report the offending primitive.
 *  - SLAPO_ASSERT: an *internal* invariant violation (a slapo-cc bug);
 *    aborts via assert semantics even in release builds.
 */
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace slapo {

/** Exception carrying a user-facing schedule/validation error message. */
class SlapoError : public std::runtime_error
{
  public:
    explicit SlapoError(const std::string& msg) : std::runtime_error(msg) {}
};

namespace detail {

/** Stream-style message builder used by the error macros. */
class MessageBuilder
{
  public:
    template <typename T>
    MessageBuilder&
    operator<<(const T& v)
    {
        stream_ << v;
        return *this;
    }

    std::string str() const { return stream_.str(); }

  private:
    std::ostringstream stream_;
};

[[noreturn]] void throwError(const std::string& msg);
[[noreturn]] void assertFail(const char* expr, const char* file, int line,
                             const std::string& msg);

} // namespace detail

} // namespace slapo

/** Throw SlapoError if `cond` is false. Message is stream-composable. */
#define SLAPO_CHECK(cond, msg)                                             \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::slapo::detail::throwError(                                   \
                (::slapo::detail::MessageBuilder() << msg).str());         \
        }                                                                  \
    } while (0)

/** Unconditionally throw SlapoError with a stream-composable message. */
#define SLAPO_THROW(msg)                                                   \
    ::slapo::detail::throwError(                                           \
        (::slapo::detail::MessageBuilder() << msg).str())

/** Abort on internal invariant violation (slapo-cc bug, not user error). */
#define SLAPO_ASSERT(cond, msg)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::slapo::detail::assertFail(                                   \
                #cond, __FILE__, __LINE__,                                 \
                (::slapo::detail::MessageBuilder() << msg).str());         \
        }                                                                  \
    } while (0)
