/**
 * @file
 * Deterministic fault-injection registry (the reproduction's failpoints).
 *
 * Production training stacks exercise their recovery paths with injected
 * faults; slapo-cc does the same so the fault-tolerant runtime
 * (ProcessGroup abort/timeout, Trainer checkpoint/restore) is testable
 * without real crashes. A *failpoint* is a named site in the code
 * (`failpoint::hit("pg.allreduce", rank)`); arming it with a Spec makes
 * the hit fire an action at an exact (site, invocation count, rank)
 * triple — never wall-clock — so every injected failure is reproducible
 * bit-for-bit across runs and thread interleavings.
 *
 * Sites wired in the runtime (`knownSites()` enumerates them; arming an
 * unknown site via SLAPO_FAILPOINTS / configureFromString fails fast):
 *   pg.allreduce / pg.allreduce.bucket / pg.allgather /
 *   pg.reducescatter / pg.broadcast /
 *   pg.barrier     — per rank, on entry to the collective
 *   executor.rank  — per rank, at the top of a DistExecutor rank body
 *   pipeline.stage — per micro-batch handoff, rank = stage index
 *   trainer.step / dp_trainer.step — per optimizer step, rank 0
 *   elastic.drain / elastic.rebuild / elastic.rebalance
 *                  — per elastic-recovery pass, rank 0 (main thread)
 *   elastic.rendezvous / elastic.restore
 *                  — per survivor, rank = post-rebuild rank
 *
 * Configuration is programmatic (tests) or via the environment:
 *   SLAPO_FAILPOINTS=site@invocation:action[:rRANK][;...]
 *   action := throw | kill | die | delay=MILLIS
 * e.g. SLAPO_FAILPOINTS="pg.allreduce@3:kill:r1;trainer.step@5:throw"
 *
 * Invocation counters start when the first spec is armed; an unarmed
 * registry leaves `hit()` as a single relaxed atomic load.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.h"

namespace slapo {
namespace support {
namespace failpoint {

/** What an armed failpoint does when it fires. */
enum class Action
{
    Throw, ///< throw FailpointError (an ordinary, catchable failure)
    Delay, ///< sleep for `delay_ms` (stall injection; pairs with timeouts)
    Kill,  ///< throw RankKilledError (simulates the rank process dying)
    Die,   ///< throw RankLostError (the rank is *permanently* gone)
};

/** Arming record for one site. */
struct Spec
{
    int64_t at = 0;               ///< fire at this invocation index (0-based)
    Action action = Action::Throw;
    int rank = -1;                ///< only fire on this rank (-1 = any rank)
    int64_t delay_ms = 0;         ///< Action::Delay sleep duration
};

/** Thrown by Action::Throw — a recoverable injected failure. */
class FailpointError : public SlapoError
{
  public:
    FailpointError(std::string site, int rank, int64_t invocation);

    const std::string& site() const { return site_; }
    int rank() const { return rank_; }
    int64_t invocation() const { return invocation_; }

  private:
    std::string site_;
    int rank_;
    int64_t invocation_;
};

/**
 * Thrown by Action::Kill — models a rank's process dying mid-run. The
 * DistExecutor treats it like any rank failure (abort the group, join,
 * rethrow), which is exactly how a monitor process reacts to a peer
 * disappearing.
 */
class RankKilledError : public SlapoError
{
  public:
    RankKilledError(std::string site, int rank, int64_t invocation);

    const std::string& site() const { return site_; }
    int rank() const { return rank_; }
    int64_t invocation() const { return invocation_; }

  private:
    std::string site_;
    int rank_;
    int64_t invocation_;
};

/**
 * Thrown by Action::Die — models a rank that is *permanently* lost (the
 * machine is gone, not rebooting). Unlike RankKilledError (a transient
 * crash the trainer replays at the same world size), the DistExecutor
 * declares the rank lost on its ProcessGroup, and an elastic trainer
 * responds by rebuilding the group over the survivors
 * (docs/ROBUSTNESS.md).
 */
class RankLostError : public SlapoError
{
  public:
    RankLostError(std::string site, int rank, int64_t invocation);

    const std::string& site() const { return site_; }
    int rank() const { return rank_; }
    int64_t invocation() const { return invocation_; }

  private:
    std::string site_;
    int rank_;
    int64_t invocation_;
};

/**
 * Arm `site` with `spec`. A site may be armed several times (e.g. two
 * `die` specs at different invocation counts to model sequential rank
 * losses); a hit fires the first spec matching its (invocation, rank).
 */
void enable(const std::string& site, const Spec& spec);

/** Disarm one site (removes every spec armed on it). */
void disable(const std::string& site);

/** Disarm everything and reset all invocation counters. */
void clearAll();

/** True if any site is armed (cheap; used by the hit fast path). */
bool anyEnabled();

/**
 * Parse a SLAPO_FAILPOINTS-syntax config string and arm every spec in
 * it. Returns the number of specs armed; throws SlapoError on syntax
 * errors and on site names not in `knownSites()` (a typo'd site would
 * otherwise silently never fire). Programmatic `enable()` accepts any
 * site, so tests can use ad-hoc unit sites.
 */
int configureFromString(const std::string& config);

/**
 * Every failpoint site wired into the runtime, sorted. The
 * configuration-string parser rejects sites outside this list, and
 * tests/test_fault.cc enumerates it against the documented site table.
 */
const std::vector<std::string>& knownSites();

/** True if `site` is in `knownSites()`. */
bool isKnownSite(const std::string& site);

/**
 * Arm from the SLAPO_FAILPOINTS environment variable if set. Called
 * lazily by the first `hit()`; harmless to call again (applies once).
 */
void configureFromEnv();

/**
 * Injection point. Increments the (site, rank) invocation counter and
 * fires the armed action when the counter matches. No-op (one atomic
 * load) when nothing is armed.
 */
void hit(const std::string& site, int rank = 0);

} // namespace failpoint
} // namespace support
} // namespace slapo
