/**
 * @file
 * Deterministic fault-injection registry (the reproduction's failpoints).
 *
 * Production training stacks exercise their recovery paths with injected
 * faults; slapo-cc does the same so the fault-tolerant runtime
 * (ProcessGroup abort/timeout, Trainer checkpoint/restore) is testable
 * without real crashes. A *failpoint* is a named site in the code
 * (`failpoint::hit("pg.allreduce", rank)`); arming it with a Spec makes
 * the hit fire an action at an exact (site, invocation count, rank)
 * triple — never wall-clock — so every injected failure is reproducible
 * bit-for-bit across runs and thread interleavings.
 *
 * Sites wired in the runtime:
 *   pg.allreduce / pg.allgather / pg.reducescatter / pg.broadcast /
 *   pg.barrier     — per rank, on entry to the collective
 *   executor.rank  — per rank, at the top of a DistExecutor rank body
 *   pipeline.stage — per micro-batch handoff, rank = stage index
 *   trainer.step / dp_trainer.step — per optimizer step, rank 0
 *
 * Configuration is programmatic (tests) or via the environment:
 *   SLAPO_FAILPOINTS=site@invocation:action[:rRANK][;...]
 *   action := throw | kill | delay=MILLIS
 * e.g. SLAPO_FAILPOINTS="pg.allreduce@3:kill:r1;trainer.step@5:throw"
 *
 * Invocation counters start when the first spec is armed; an unarmed
 * registry leaves `hit()` as a single relaxed atomic load.
 */
#pragma once

#include <cstdint>
#include <string>

#include "support/error.h"

namespace slapo {
namespace support {
namespace failpoint {

/** What an armed failpoint does when it fires. */
enum class Action
{
    Throw, ///< throw FailpointError (an ordinary, catchable failure)
    Delay, ///< sleep for `delay_ms` (stall injection; pairs with timeouts)
    Kill,  ///< throw RankKilledError (simulates the rank process dying)
};

/** Arming record for one site. */
struct Spec
{
    int64_t at = 0;               ///< fire at this invocation index (0-based)
    Action action = Action::Throw;
    int rank = -1;                ///< only fire on this rank (-1 = any rank)
    int64_t delay_ms = 0;         ///< Action::Delay sleep duration
};

/** Thrown by Action::Throw — a recoverable injected failure. */
class FailpointError : public SlapoError
{
  public:
    FailpointError(std::string site, int rank, int64_t invocation);

    const std::string& site() const { return site_; }
    int rank() const { return rank_; }
    int64_t invocation() const { return invocation_; }

  private:
    std::string site_;
    int rank_;
    int64_t invocation_;
};

/**
 * Thrown by Action::Kill — models a rank's process dying mid-run. The
 * DistExecutor treats it like any rank failure (abort the group, join,
 * rethrow), which is exactly how a monitor process reacts to a peer
 * disappearing.
 */
class RankKilledError : public SlapoError
{
  public:
    RankKilledError(std::string site, int rank, int64_t invocation);

    const std::string& site() const { return site_; }
    int rank() const { return rank_; }
    int64_t invocation() const { return invocation_; }

  private:
    std::string site_;
    int rank_;
    int64_t invocation_;
};

/** Arm `site` with `spec` (replaces any previous arming of the site). */
void enable(const std::string& site, const Spec& spec);

/** Disarm one site. */
void disable(const std::string& site);

/** Disarm everything and reset all invocation counters. */
void clearAll();

/** True if any site is armed (cheap; used by the hit fast path). */
bool anyEnabled();

/**
 * Parse a SLAPO_FAILPOINTS-syntax config string and arm every spec in
 * it. Returns the number of specs armed; throws SlapoError on syntax
 * errors.
 */
int configureFromString(const std::string& config);

/**
 * Arm from the SLAPO_FAILPOINTS environment variable if set. Called
 * lazily by the first `hit()`; harmless to call again (applies once).
 */
void configureFromEnv();

/**
 * Injection point. Increments the (site, rank) invocation counter and
 * fires the armed action when the counter matches. No-op (one atomic
 * load) when nothing is armed.
 */
void hit(const std::string& site, int rank = 0);

} // namespace failpoint
} // namespace support
} // namespace slapo
