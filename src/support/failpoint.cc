#include "support/failpoint.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

namespace slapo {
namespace support {
namespace failpoint {

namespace {

struct Registry
{
    std::mutex mutex;
    std::map<std::string, Spec> specs;
    // Invocation counters keyed by (site, rank). Counting starts when the
    // first spec is armed so the unarmed fast path stays lock-free.
    std::map<std::pair<std::string, int>, int64_t> counters;
};

Registry&
registry()
{
    static Registry r;
    return r;
}

std::atomic<bool> g_armed{false};
std::once_flag g_env_once;

std::string
describe(const std::string& site, int rank, int64_t invocation)
{
    return (detail::MessageBuilder()
            << site << " (rank " << rank << ", invocation " << invocation
            << ")")
        .str();
}

Action
parseAction(const std::string& text, int64_t* delay_ms)
{
    if (text == "throw") return Action::Throw;
    if (text == "kill") return Action::Kill;
    if (text.rfind("delay=", 0) == 0) {
        *delay_ms = std::atoll(text.c_str() + 6);
        SLAPO_CHECK(*delay_ms > 0,
                    "failpoint: bad delay in action '" << text << "'");
        return Action::Delay;
    }
    SLAPO_THROW("failpoint: unknown action '"
                << text << "' (expected throw|kill|delay=MS)");
}

} // namespace

FailpointError::FailpointError(std::string site, int rank, int64_t invocation)
    : SlapoError("injected failure at " + describe(site, rank, invocation)),
      site_(std::move(site)), rank_(rank), invocation_(invocation)
{
}

RankKilledError::RankKilledError(std::string site, int rank,
                                 int64_t invocation)
    : SlapoError("rank " + std::to_string(rank) + " killed at " +
                 describe(site, rank, invocation)),
      site_(std::move(site)), rank_(rank), invocation_(invocation)
{
}

void
enable(const std::string& site, const Spec& spec)
{
    SLAPO_CHECK(!site.empty(), "failpoint: empty site name");
    SLAPO_CHECK(spec.at >= 0, "failpoint: negative invocation index");
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.specs[site] = spec;
    g_armed.store(true, std::memory_order_relaxed);
}

void
disable(const std::string& site)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.specs.erase(site);
    if (r.specs.empty()) {
        g_armed.store(false, std::memory_order_relaxed);
    }
}

void
clearAll()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.specs.clear();
    r.counters.clear();
    g_armed.store(false, std::memory_order_relaxed);
}

bool
anyEnabled()
{
    return g_armed.load(std::memory_order_relaxed);
}

int
configureFromString(const std::string& config)
{
    int armed = 0;
    size_t pos = 0;
    while (pos < config.size()) {
        size_t end = config.find(';', pos);
        if (end == std::string::npos) end = config.size();
        std::string entry = config.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty()) continue;

        const size_t at_pos = entry.find('@');
        SLAPO_CHECK(at_pos != std::string::npos && at_pos > 0,
                    "failpoint: expected 'site@invocation:action', got '"
                        << entry << "'");
        const size_t colon_pos = entry.find(':', at_pos);
        SLAPO_CHECK(colon_pos != std::string::npos,
                    "failpoint: missing ':action' in '" << entry << "'");

        Spec spec;
        const std::string site = entry.substr(0, at_pos);
        const std::string at_text =
            entry.substr(at_pos + 1, colon_pos - at_pos - 1);
        SLAPO_CHECK(!at_text.empty() &&
                        at_text.find_first_not_of("0123456789") ==
                            std::string::npos,
                    "failpoint: bad invocation index '" << at_text << "' in '"
                                                        << entry << "'");
        spec.at = std::atoll(at_text.c_str());

        std::string action_text = entry.substr(colon_pos + 1);
        const size_t rank_pos = action_text.rfind(":r");
        if (rank_pos != std::string::npos) {
            spec.rank = std::atoi(action_text.c_str() + rank_pos + 2);
            action_text = action_text.substr(0, rank_pos);
        }
        spec.action = parseAction(action_text, &spec.delay_ms);
        enable(site, spec);
        ++armed;
    }
    return armed;
}

void
configureFromEnv()
{
    std::call_once(g_env_once, [] {
        const char* env = std::getenv("SLAPO_FAILPOINTS");
        if (env != nullptr && env[0] != '\0') {
            configureFromString(env);
        }
    });
}

void
hit(const std::string& site, int rank)
{
    if (!g_armed.load(std::memory_order_relaxed)) {
        // First hit also gets a chance to arm from the environment.
        configureFromEnv();
        if (!g_armed.load(std::memory_order_relaxed)) {
            return;
        }
    }

    Spec spec;
    int64_t invocation;
    {
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        invocation = r.counters[{site, rank}]++;
        auto it = r.specs.find(site);
        if (it == r.specs.end()) return;
        if (it->second.rank != -1 && it->second.rank != rank) return;
        if (it->second.at != invocation) return;
        spec = it->second;
    }
    switch (spec.action) {
      case Action::Throw:
        throw FailpointError(site, rank, invocation);
      case Action::Kill:
        throw RankKilledError(site, rank, invocation);
      case Action::Delay:
        std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
        return;
    }
}

} // namespace failpoint
} // namespace support
} // namespace slapo
