#include "support/failpoint.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

namespace slapo {
namespace support {
namespace failpoint {

namespace {

struct Registry
{
    std::mutex mutex;
    // A site may carry several armings (e.g. two `die` specs at
    // different invocation counts to model sequential rank losses), so
    // the value is a list; `hit` fires the first spec that matches.
    std::map<std::string, std::vector<Spec>> specs;
    // Invocation counters keyed by (site, rank). Counting starts when the
    // first spec is armed so the unarmed fast path stays lock-free.
    std::map<std::pair<std::string, int>, int64_t> counters;
};

Registry&
registry()
{
    static Registry r;
    return r;
}

std::atomic<bool> g_armed{false};
std::once_flag g_env_once;

std::string
describe(const std::string& site, int rank, int64_t invocation)
{
    return (detail::MessageBuilder()
            << site << " (rank " << rank << ", invocation " << invocation
            << ")")
        .str();
}

Action
parseAction(const std::string& text, int64_t* delay_ms)
{
    if (text == "throw") return Action::Throw;
    if (text == "kill") return Action::Kill;
    if (text == "die") return Action::Die;
    if (text.rfind("delay=", 0) == 0) {
        *delay_ms = std::atoll(text.c_str() + 6);
        SLAPO_CHECK(*delay_ms > 0,
                    "failpoint: bad delay in action '" << text << "'");
        return Action::Delay;
    }
    SLAPO_THROW("failpoint: unknown action '"
                << text << "' (expected throw|kill|die|delay=MS)");
}

} // namespace

FailpointError::FailpointError(std::string site, int rank, int64_t invocation)
    : SlapoError("injected failure at " + describe(site, rank, invocation)),
      site_(std::move(site)), rank_(rank), invocation_(invocation)
{
}

RankKilledError::RankKilledError(std::string site, int rank,
                                 int64_t invocation)
    : SlapoError("rank " + std::to_string(rank) + " killed at " +
                 describe(site, rank, invocation)),
      site_(std::move(site)), rank_(rank), invocation_(invocation)
{
}

RankLostError::RankLostError(std::string site, int rank, int64_t invocation)
    : SlapoError("rank " + std::to_string(rank) + " permanently lost at " +
                 describe(site, rank, invocation)),
      site_(std::move(site)), rank_(rank), invocation_(invocation)
{
}

const std::vector<std::string>&
knownSites()
{
    // Keep in sync with the site table in docs/ROBUSTNESS.md and the
    // enumeration test in tests/test_fault.cc.
    static const std::vector<std::string> sites = {
        "dp_trainer.step",
        "elastic.drain",
        "elastic.rebalance",
        "elastic.rebuild",
        "elastic.rendezvous",
        "elastic.restore",
        "executor.rank",
        "pg.allgather",
        "pg.allreduce",
        "pg.allreduce.bucket",
        "pg.barrier",
        "pg.broadcast",
        "pg.reducescatter",
        "pipeline.stage",
        "trainer.step",
    };
    return sites;
}

bool
isKnownSite(const std::string& site)
{
    const std::vector<std::string>& sites = knownSites();
    return std::find(sites.begin(), sites.end(), site) != sites.end();
}

void
enable(const std::string& site, const Spec& spec)
{
    SLAPO_CHECK(!site.empty(), "failpoint: empty site name");
    SLAPO_CHECK(spec.at >= 0, "failpoint: negative invocation index");
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.specs[site].push_back(spec);
    g_armed.store(true, std::memory_order_relaxed);
}

void
disable(const std::string& site)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.specs.erase(site);
    if (r.specs.empty()) {
        g_armed.store(false, std::memory_order_relaxed);
    }
}

void
clearAll()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.specs.clear();
    r.counters.clear();
    g_armed.store(false, std::memory_order_relaxed);
}

bool
anyEnabled()
{
    return g_armed.load(std::memory_order_relaxed);
}

int
configureFromString(const std::string& config)
{
    int armed = 0;
    size_t pos = 0;
    while (pos < config.size()) {
        size_t end = config.find(';', pos);
        if (end == std::string::npos) end = config.size();
        std::string entry = config.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty()) continue;

        const size_t at_pos = entry.find('@');
        SLAPO_CHECK(at_pos != std::string::npos && at_pos > 0,
                    "failpoint: expected 'site@invocation:action', got '"
                        << entry << "'");
        const size_t colon_pos = entry.find(':', at_pos);
        SLAPO_CHECK(colon_pos != std::string::npos,
                    "failpoint: missing ':action' in '" << entry << "'");

        Spec spec;
        const std::string site = entry.substr(0, at_pos);
        const std::string at_text =
            entry.substr(at_pos + 1, colon_pos - at_pos - 1);
        SLAPO_CHECK(!at_text.empty() &&
                        at_text.find_first_not_of("0123456789") ==
                            std::string::npos,
                    "failpoint: bad invocation index '" << at_text << "' in '"
                                                        << entry << "'");
        spec.at = std::atoll(at_text.c_str());

        std::string action_text = entry.substr(colon_pos + 1);
        const size_t rank_pos = action_text.rfind(":r");
        if (rank_pos != std::string::npos) {
            spec.rank = std::atoi(action_text.c_str() + rank_pos + 2);
            action_text = action_text.substr(0, rank_pos);
        }
        spec.action = parseAction(action_text, &spec.delay_ms);
        SLAPO_CHECK(isKnownSite(site),
                    "failpoint: unknown site '"
                        << site << "' in '" << entry
                        << "' (see failpoint::knownSites() / the site "
                           "table in docs/ROBUSTNESS.md)");
        enable(site, spec);
        ++armed;
    }
    return armed;
}

void
configureFromEnv()
{
    std::call_once(g_env_once, [] {
        const char* env = std::getenv("SLAPO_FAILPOINTS");
        if (env != nullptr && env[0] != '\0') {
            configureFromString(env);
        }
    });
}

void
hit(const std::string& site, int rank)
{
    if (!g_armed.load(std::memory_order_relaxed)) {
        // First hit also gets a chance to arm from the environment.
        configureFromEnv();
        if (!g_armed.load(std::memory_order_relaxed)) {
            return;
        }
    }

    Spec spec;
    int64_t invocation;
    {
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        invocation = r.counters[{site, rank}]++;
        auto it = r.specs.find(site);
        if (it == r.specs.end()) return;
        auto match =
            std::find_if(it->second.begin(), it->second.end(),
                         [&](const Spec& s) {
                             return (s.rank == -1 || s.rank == rank) &&
                                    s.at == invocation;
                         });
        if (match == it->second.end()) return;
        spec = *match;
    }
    switch (spec.action) {
      case Action::Throw:
        throw FailpointError(site, rank, invocation);
      case Action::Kill:
        throw RankKilledError(site, rank, invocation);
      case Action::Die:
        throw RankLostError(site, rank, invocation);
      case Action::Delay:
        std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
        return;
    }
}

} // namespace failpoint
} // namespace support
} // namespace slapo
