/**
 * @file
 * Deterministic multicore substrate for the numeric kernels.
 *
 * A persistent, static-partition thread pool (no work stealing) executes
 * `parallelFor` loops split into *fixed-size* chunks. Chunk boundaries
 * depend only on the loop bounds and the grain — never on the worker
 * count — and every chunk writes a disjoint region (or a private partial
 * buffer combined in chunk order), so kernel outputs are bit-identical
 * for any `SLAPO_NUM_THREADS`. This is the guarantee `Tensor::allClose`
 * based verification and the gradient-sync checks rely on.
 *
 * Thread count resolution order:
 *   1. `slapo::setNumThreads(n)` (programmatic, e.g. bench sweeps)
 *   2. `SLAPO_NUM_THREADS` environment variable (read once, at first use)
 *   3. `std::thread::hardware_concurrency()`
 */
#pragma once

#include <cstdint>
#include <functional>

namespace slapo {

/**
 * Set the number of worker threads used by the numeric kernels.
 * `n >= 1` pins the count; `n == 0` resets to the environment/hardware
 * default. Growing the count lazily spawns pool workers; shrinking only
 * limits how many participate (idle workers just sleep).
 */
void setNumThreads(int n);

/** Current worker count the kernels will use (always >= 1). */
int getNumThreads();

namespace support {

/**
 * Run `fn(chunk_begin, chunk_end)` over [begin, end) split into chunks of
 * `grain` iterations (the last chunk may be short). Chunks are distributed
 * over the pool dynamically, but the chunk *boundaries* are a pure
 * function of (begin, end, grain), so any writes keyed by chunk index or
 * iteration index are deterministic across thread counts.
 *
 * The first exception thrown by any chunk is captured, remaining chunks
 * are cancelled (already-started ones run to completion), and the
 * exception is rethrown on the calling thread after all workers finish.
 *
 * Calls nested inside a pool worker run inline (serially) to avoid
 * deadlock; top-level calls with one configured thread or a single chunk
 * also run inline with zero synchronization overhead.
 */
void parallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/**
 * Number of chunks `parallelFor(begin, end, grain, ...)` will execute.
 * Kernels that combine per-chunk partial buffers size them with this.
 */
inline int64_t
chunkCountFor(int64_t begin, int64_t end, int64_t grain)
{
    if (end <= begin) return 0;
    const int64_t g = grain < 1 ? 1 : grain;
    return (end - begin + g - 1) / g;
}

/** True when the caller is already executing inside a pool worker. */
bool inParallelRegion();

} // namespace support
} // namespace slapo
