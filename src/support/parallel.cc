#include "support/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "support/error.h"

namespace slapo {
namespace support {
namespace {

thread_local bool t_in_worker = false;

int
defaultNumThreads()
{
    if (const char* env = std::getenv("SLAPO_NUM_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1) {
            return static_cast<int>(std::min<long>(v, 256));
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

std::atomic<int> g_num_threads{0}; // 0 = not yet resolved

/**
 * Persistent worker pool. One job runs at a time (jobs are serialized by
 * `job_mutex_`); workers grab fixed chunks off a shared atomic counter.
 * Workers are spawned lazily up to the configured count and never die
 * until process exit.
 */
class Pool
{
  public:
    static Pool&
    instance()
    {
        static Pool* pool = new Pool(); // leaked: workers outlive statics
        return *pool;
    }

    void
    run(int64_t num_chunks, int helpers,
        const std::function<void(int64_t)>& chunk_body)
    {
        std::lock_guard<std::mutex> job_lock(job_mutex_);
        ensureWorkers(helpers);
        {
            std::lock_guard<std::mutex> lk(m_);
            helpers = std::min<int>(helpers, static_cast<int>(workers_.size()));
            body_ = &chunk_body;
            num_chunks_ = num_chunks;
            next_chunk_.store(0, std::memory_order_relaxed);
            max_claims_ = helpers;
            claims_ = 0;
            pending_ = helpers;
            error_ = nullptr;
            ++generation_;
        }
        cv_.notify_all();
        // The caller participates too. Flag it as a worker for the
        // duration so a chunk body that itself calls parallelFor runs
        // inline instead of re-entering run() on the held job_mutex_.
        t_in_worker = true;
        runChunks(chunk_body);
        t_in_worker = false;
        {
            std::unique_lock<std::mutex> lk(m_);
            done_cv_.wait(lk, [&] { return pending_ == 0; });
            body_ = nullptr;
            if (error_) {
                std::exception_ptr e = error_;
                error_ = nullptr;
                lk.unlock();
                std::rethrow_exception(e);
            }
        }
    }

  private:
    Pool() = default;

    void
    ensureWorkers(int count)
    {
        std::lock_guard<std::mutex> lk(m_);
        while (static_cast<int>(workers_.size()) < count) {
            workers_.emplace_back([this] { workerLoop(); });
        }
    }

    void
    runChunks(const std::function<void(int64_t)>& body)
    {
        try {
            for (;;) {
                const int64_t c =
                    next_chunk_.fetch_add(1, std::memory_order_relaxed);
                if (c >= num_chunks_) break;
                body(c);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lk(m_);
            if (!error_) error_ = std::current_exception();
            // Cancel chunks nobody has started yet.
            next_chunk_.store(num_chunks_, std::memory_order_relaxed);
        }
    }

    void
    workerLoop()
    {
        t_in_worker = true;
        uint64_t seen_generation = 0;
        for (;;) {
            const std::function<void(int64_t)>* body = nullptr;
            {
                std::unique_lock<std::mutex> lk(m_);
                cv_.wait(lk, [&] {
                    return generation_ != seen_generation && body_ != nullptr;
                });
                seen_generation = generation_;
                if (claims_ >= max_claims_) {
                    continue; // this job is capped below the pool size
                }
                ++claims_;
                body = body_;
            }
            {
                // One span per job this worker participates in: pool
                // tasks show up as their own rows in the trace.
                obs::TraceSpan task_span("pool.task", "parallel");
                runChunks(*body);
            }
            {
                std::lock_guard<std::mutex> lk(m_);
                if (--pending_ == 0) {
                    done_cv_.notify_all();
                }
            }
        }
    }

    std::mutex job_mutex_; // serializes whole jobs

    std::mutex m_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> workers_;

    const std::function<void(int64_t)>* body_ = nullptr;
    int64_t num_chunks_ = 0;
    std::atomic<int64_t> next_chunk_{0};
    int max_claims_ = 0;
    int claims_ = 0;
    int pending_ = 0;
    uint64_t generation_ = 0;
    std::exception_ptr error_;
};

} // namespace

bool
inParallelRegion()
{
    return t_in_worker;
}

void
parallelFor(int64_t begin, int64_t end, int64_t grain,
            const std::function<void(int64_t, int64_t)>& fn)
{
    if (end <= begin) {
        return;
    }
    const int64_t g = grain < 1 ? 1 : grain;
    const int64_t num_chunks = chunkCountFor(begin, end, g);
    const int threads = getNumThreads();

    if (threads <= 1 || num_chunks <= 1 || t_in_worker) {
        // Serial path: identical chunk boundaries, same execution order.
        for (int64_t c = 0; c < num_chunks; ++c) {
            const int64_t lo = begin + c * g;
            fn(lo, std::min(end, lo + g));
        }
        return;
    }

    auto chunk_body = [&](int64_t c) {
        const int64_t lo = begin + c * g;
        fn(lo, std::min(end, lo + g));
    };
    const int helpers =
        static_cast<int>(std::min<int64_t>(threads - 1, num_chunks - 1));
    obs::TraceSpan span("parallel_for", "parallel");
    if (span.live()) {
        span.arg("chunks", num_chunks);
        span.arg("helpers", static_cast<int64_t>(helpers));
    }
    Pool::instance().run(num_chunks, helpers, chunk_body);
}

} // namespace support

void
setNumThreads(int n)
{
    SLAPO_CHECK(n >= 0, "setNumThreads: count must be >= 0, got " << n);
    support::g_num_threads.store(n == 0 ? support::defaultNumThreads()
                                        : std::min(n, 256),
                                 std::memory_order_relaxed);
}

int
getNumThreads()
{
    int n = support::g_num_threads.load(std::memory_order_relaxed);
    if (n == 0) {
        n = support::defaultNumThreads();
        support::g_num_threads.store(n, std::memory_order_relaxed);
    }
    return n;
}

} // namespace slapo
