#include "support/error.h"

#include <cstdio>
#include <cstdlib>

namespace slapo {
namespace detail {

void
throwError(const std::string& msg)
{
    throw SlapoError(msg);
}

void
assertFail(const char* expr, const char* file, int line,
           const std::string& msg)
{
    std::fprintf(stderr, "slapo internal assertion failed: %s\n  at %s:%d\n  %s\n",
                 expr, file, line, msg.c_str());
    std::abort();
}

} // namespace detail
} // namespace slapo
