#include "support/error.h"

#include <cstdio>
#include <cstdlib>

namespace slapo {

CollectiveError::CollectiveError(std::string site, int rank,
                                 int64_t generation,
                                 const std::string& detail, int64_t waited_ms,
                                 int64_t member_generation)
    : SlapoError("collective error at " + site + " (origin rank " +
                 std::to_string(rank) + ", generation " +
                 std::to_string(generation) +
                 (member_generation != 0
                      ? ", world gen " + std::to_string(member_generation)
                      : "") +
                 "): " + detail +
                 (waited_ms >= 0 ? " [this rank waited " +
                                       std::to_string(waited_ms) + "ms]"
                                 : "")),
      site_(std::move(site)), rank_(rank), generation_(generation),
      waited_ms_(waited_ms), member_generation_(member_generation)
{
}

CheckpointError::CheckpointError(std::string path, const std::string& detail)
    : SlapoError("checkpoint error at '" + path + "': " + detail),
      path_(std::move(path))
{
}

MemoryBudgetExceeded::MemoryBudgetExceeded(int64_t live_bytes,
                                           int64_t budget_bytes)
    : SlapoError("memory budget exceeded: " + std::to_string(live_bytes) +
                 " live tensor bytes > budget of " +
                 std::to_string(budget_bytes) +
                 " (see the mem.budget forensics record / SLAPO_MEM_DUMP)"),
      live_bytes_(live_bytes), budget_bytes_(budget_bytes)
{
}

namespace detail {

void
throwError(const std::string& msg)
{
    throw SlapoError(msg);
}

void
assertFail(const char* expr, const char* file, int line,
           const std::string& msg)
{
    std::fprintf(stderr, "slapo internal assertion failed: %s\n  at %s:%d\n  %s\n",
                 expr, file, line, msg.c_str());
    std::abort();
}

} // namespace detail
} // namespace slapo
