/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used to integrity-check
 * checkpoint tensors on disk. Table-driven, incremental: feed chunks by
 * passing the previous return value as `seed`.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace slapo {
namespace support {

/** CRC-32 of `len` bytes; chain calls via `seed` for incremental use. */
uint32_t crc32(const void* data, size_t len, uint32_t seed = 0);

} // namespace support
} // namespace slapo
