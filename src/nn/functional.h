/**
 * @file
 * nn::F — the op surface module forwards are written against.
 *
 * Every function dispatches on ambient context (see context.h):
 * symbolic-trace, eager-numeric, or meta shape propagation, reporting its
 * cost signature to an active Profiler. This single dispatch point is
 * what lets one model definition serve eager execution, tracing,
 * verification, and performance simulation — the reproduction of the
 * PyTorch/torch.fx substrate the paper builds on.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "nn/value.h"

namespace slapo {
namespace nn {
namespace F {

Value add(const Value& a, const Value& b);
Value sub(const Value& a, const Value& b);
Value mul(const Value& a, const Value& b);
Value div(const Value& a, const Value& b);
Value scale(const Value& a, double factor);
Value addScalar(const Value& a, double value);

Value gelu(const Value& a);
Value relu(const Value& a);
Value tanh(const Value& a);
Value clampScalar(const Value& a, double lo, double hi);
Value rangeMask(const Value& a, double lo, double hi);
Value causalMask(const Value& scores);
/** T5 relative position bias: scores + table[h, clip(j - i)]. */
Value relPosBias(const Value& scores, const Value& table);

Value softmax(const Value& a);
Value layerNorm(const Value& x, const Value& gamma, const Value& beta,
                double eps);
Value dropout(const Value& x, double p, int64_t seed);

Value matmul(const Value& a, const Value& b);
/** x @ w^T + b; pass a default-constructed Value to omit the bias. */
Value linear(const Value& x, const Value& w, const Value& b);
Value transposeLast2(const Value& a);
Value reshape(const Value& a, Shape shape);
Value permute(const Value& a, std::vector<int64_t> perm);
Value concat(const std::vector<Value>& parts, int64_t axis);
Value narrow(const Value& a, int64_t axis, int64_t start, int64_t length);

Value embedding(const Value& ids, const Value& table);
Value crossEntropy(const Value& logits, const Value& targets);
Value mseLoss(const Value& pred, const Value& target);

Value conv2d(const Value& x, const Value& w, int64_t stride, int64_t pad);
Value batchNorm2d(const Value& x, const Value& gamma, const Value& beta,
                  double eps);
Value globalAvgPool(const Value& x);

Value identity(const Value& a);

// Collectives (declared alongside Module in module.h as well):
Value allReduce(const Value& x);
Value allGather(const Value& x, int64_t axis);
Value reduceScatter(const Value& x, int64_t axis);

} // namespace F
} // namespace nn
} // namespace slapo
