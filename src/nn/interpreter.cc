#include "nn/interpreter.h"

#include <chrono>
#include <optional>

#include "graph/memplan.h"
#include "nn/context.h"
#include "nn/functional.h"
#include "nn/module.h"
#include "obs/mem_profiler.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace slapo {
namespace nn {

namespace {

/**
 * Per-node observability hook shared by the executor loops: opens a
 * trace span and, on close, folds the elapsed time into the installed
 * OpProfiler under the thread's current module path. Also tags the
 * thread for the memory profiler so tensors allocated inside the kernel
 * attribute to this node's id and stamped primitive. Disabled cost is
 * the three atomic loads in the constructor.
 */
class NodeTimer
{
  public:
    NodeTimer(const char* op, const graph::Node& node)
        : op_(op), primitive_(&node.provenance().primitive),
          mem_scope_(node.id(), primitive_),
          profiler_(obs::OpProfiler::current())
    {
        if (profiler_ != nullptr || obs::tracingEnabled()) {
            span_.emplace(op_, "op");
            span_->arg("node", node.name());
            if (!obs::ModuleScope::currentPath().empty()) {
                span_->arg("module", obs::ModuleScope::currentPath());
            }
            if (!primitive_->empty()) {
                span_->arg("primitive", *primitive_);
            }
            start_ = std::chrono::steady_clock::now();
        }
    }

    ~NodeTimer()
    {
        if (profiler_ != nullptr) {
            const int64_t ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            profiler_->record(op_, obs::ModuleScope::currentPath(),
                              *primitive_, ns);
        }
    }

  private:
    const char* op_;
    const std::string* primitive_; ///< node provenance; outlives the timer
    obs::MemNodeScope mem_scope_;
    obs::OpProfiler* profiler_;
    std::optional<obs::TraceSpan> span_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Dispatch a planner-marked CallOp to its in-place kernel twin,
 * overwriting `t` (the dying, uniquely-owned first operand). `second`
 * is the already-guarded second operand for binary ops (null
 * otherwise). Returns false for ops without an in-place twin — the
 * caller falls back to the out-of-place path.
 */
bool
runOpInPlace(const graph::Node& node, Tensor& t, const Tensor* second)
{
    using graph::OpKind;
    switch (node.op()) {
      case OpKind::Add: ops::addInPlace(t, *second); return true;
      case OpKind::Sub: ops::subInPlace(t, *second); return true;
      case OpKind::Mul: ops::mulInPlace(t, *second); return true;
      case OpKind::Div: ops::divInPlace(t, *second); return true;
      case OpKind::Scale:
        ops::scaleInPlace(t, static_cast<float>(node.attrFloat("factor")));
        return true;
      case OpKind::AddScalar:
        ops::addScalarInPlace(t, static_cast<float>(node.attrFloat("value")));
        return true;
      case OpKind::Gelu: ops::geluInPlace(t); return true;
      case OpKind::Relu: ops::reluInPlace(t); return true;
      case OpKind::Tanh: ops::tanhInPlace(t); return true;
      case OpKind::Clamp:
        ops::clampScalarInPlace(t, static_cast<float>(node.attrFloat("lo")),
                                static_cast<float>(node.attrFloat("hi")));
        return true;
      case OpKind::RangeMask:
        ops::rangeMaskInPlace(t, static_cast<float>(node.attrFloat("lo")),
                              static_cast<float>(node.attrFloat("hi")));
        return true;
      case OpKind::CausalMask: ops::causalMaskInPlace(t); return true;
      case OpKind::Softmax: ops::softmaxInPlace(t); return true;
      default: return false;
    }
}

} // namespace

Value
interpretOp(const graph::Node& node, const std::vector<Value>& in)
{
    using graph::OpKind;
    switch (node.op()) {
      case OpKind::Add: return F::add(in[0], in[1]);
      case OpKind::Sub: return F::sub(in[0], in[1]);
      case OpKind::Mul: return F::mul(in[0], in[1]);
      case OpKind::Div: return F::div(in[0], in[1]);
      case OpKind::Scale: return F::scale(in[0], node.attrFloat("factor"));
      case OpKind::AddScalar:
        return F::addScalar(in[0], node.attrFloat("value"));
      case OpKind::Gelu: return F::gelu(in[0]);
      case OpKind::Relu: return F::relu(in[0]);
      case OpKind::Tanh: return F::tanh(in[0]);
      case OpKind::Clamp:
        return F::clampScalar(in[0], node.attrFloat("lo"),
                              node.attrFloat("hi"));
      case OpKind::RangeMask:
        return F::rangeMask(in[0], node.attrFloat("lo"), node.attrFloat("hi"));
      case OpKind::CausalMask: return F::causalMask(in[0]);
      case OpKind::RelPosBias: return F::relPosBias(in[0], in[1]);
      case OpKind::Softmax: return F::softmax(in[0]);
      case OpKind::LayerNormOp:
        return F::layerNorm(in[0], in[1], in[2], node.attrFloat("eps"));
      case OpKind::Dropout:
        return F::dropout(in[0], node.attrFloat("p"), node.attrInt("seed"));
      case OpKind::Matmul: return F::matmul(in[0], in[1]);
      case OpKind::LinearOp:
        return F::linear(in[0], in[1], in.size() > 2 ? in[2] : Value());
      case OpKind::TransposeLast2: return F::transposeLast2(in[0]);
      case OpKind::Reshape: return F::reshape(in[0], node.attrInts("shape"));
      case OpKind::Permute: return F::permute(in[0], node.attrInts("perm"));
      case OpKind::Concat: return F::concat(in, node.attrInt("axis"));
      case OpKind::Narrow:
        return F::narrow(in[0], node.attrInt("axis"), node.attrInt("start"),
                         node.attrInt("length"));
      case OpKind::EmbeddingOp: return F::embedding(in[0], in[1]);
      case OpKind::CrossEntropyOp: return F::crossEntropy(in[0], in[1]);
      case OpKind::MseLossOp: return F::mseLoss(in[0], in[1]);
      case OpKind::Conv2dOp:
        return F::conv2d(in[0], in[1], node.attrInt("stride"),
                         node.attrInt("pad"));
      case OpKind::BatchNormOp:
        return F::batchNorm2d(in[0], in[1], in[2], node.attrFloat("eps"));
      case OpKind::GlobalAvgPoolOp: return F::globalAvgPool(in[0]);
      case OpKind::AllReduce: return F::allReduce(in[0]);
      case OpKind::AllGather: return F::allGather(in[0], node.attrInt("axis"));
      case OpKind::ReduceScatter:
        return F::reduceScatter(in[0], node.attrInt("axis"));
      case OpKind::Identity: return F::identity(in[0]);
    }
    SLAPO_THROW("interpretOp: unhandled op " << opKindName(node.op()));
}

std::vector<Value>
interpretGraph(const graph::Graph& graph, Module* self,
               const std::vector<Value>& inputs)
{
    SLAPO_CHECK(TracingState::current() == nullptr,
                "cannot interpret a traced graph while tracing; re-trace the "
                "module instead of nesting");
    // Dense per-node-id environment: node ids are graph-unique and bounded
    // by idBound(), so a flat vector replaces the former std::map (one
    // indexed load per use instead of a tree walk on the hot loop).
    std::vector<std::vector<Value>> env(graph.idBound());
    std::vector<char> defined(graph.idBound(), 0);
    auto put = [&](const graph::Node* n, std::vector<Value> values) {
        SLAPO_ASSERT(n->id() >= 0 &&
                         n->id() < static_cast<int64_t>(env.size()),
                     "interpret: node id out of range for " << n->name());
        env[n->id()] = std::move(values);
        defined[n->id()] = 1;
    };

    const auto placeholders = graph.placeholders();
    SLAPO_CHECK(placeholders.size() == inputs.size(),
                "graph expects " << placeholders.size() << " inputs, got "
                                 << inputs.size());
    for (size_t i = 0; i < placeholders.size(); ++i) {
        put(placeholders[i], {inputs[i]});
    }

    auto first = [&](const graph::Node* n) -> const Value& {
        SLAPO_ASSERT(n->id() >= 0 &&
                         n->id() < static_cast<int64_t>(env.size()) &&
                         defined[n->id()],
                     "interpret: undefined node " << n->name());
        return env[n->id()][0];
    };

    // Memory plan: per-node env releases at last use plus in-place
    // rewrites (graph/memplan.h). Cached in the graph, keyed by the
    // runtime input shapes.
    std::shared_ptr<const graph::MemPlan> plan;
    if (graph::memPlanEnabled()) {
        std::vector<Shape> in_shapes;
        in_shapes.reserve(inputs.size());
        for (const Value& v : inputs) {
            in_shapes.push_back(v.shape());
        }
        plan = graph::memPlanFor(graph, in_shapes);
        if (plan != nullptr && obs::tracingEnabled()) {
            obs::TraceSpan span("memplan.plan", "mem");
            span.arg("release_points", plan->release_count);
            span.arg("inplace_nodes", plan->inplace_count);
        }
    }

    Profiler* prof = Profiler::current();

    for (graph::Node* node : graph.nodes()) {
        const graph::MemPlan::NodeActions* act =
            plan != nullptr ? plan->at(node->id()) : nullptr;
        switch (node->kind()) {
          case graph::NodeKind::Placeholder:
            break;
          case graph::NodeKind::GetParam: {
            SLAPO_ASSERT(node->module() != nullptr,
                         "get_param without module binding");
            put(node, {Value(node->module()->paramTensor(node->target()))});
            break;
          }
          case graph::NodeKind::CallOp: {
            NodeTimer timer(opKindName(node->op()), *node);
            // A .checkpoint(subgraph) node: flag its kernel record (the
            // memory model drops it from activations) and account the
            // region boundary once, at entry nodes.
            const bool ckpt_scope = node->checkpointed() && prof != nullptr;
            if (ckpt_scope) {
                bool region_entry = true;
                double boundary_elems = 0;
                for (graph::Node* in : node->inputs()) {
                    region_entry &= !in->checkpointed();
                    boundary_elems +=
                        static_cast<double>(numelOf(in->shape()));
                }
                if (region_entry) {
                    prof->recordCheckpointBoundary(boundary_elems);
                }
                prof->beginModule("ckpt_subgraph", /*checkpointed=*/true);
            }

            // Planner in-place rewrite: input 0 dies here, so move it
            // out of the env — if no aliases remain (no reshape views,
            // caller handles, or parameters share the storage), the
            // kernel may overwrite its buffer. Any failed guard falls
            // back to the ordinary out-of-place execution using the
            // moved handle, so results are identical either way.
            bool executed = false;
            if (act != nullptr && act->inplace) {
                graph::Node* src = node->inputs()[0];
                SLAPO_ASSERT(defined[src->id()],
                             "interpret: undefined node " << src->name());
                Value moved = std::move(env[src->id()][0]);
                env[src->id()].clear();
                defined[src->id()] = 0;

                Tensor& t = moved.tensor();
                const Tensor* second = nullptr;
                bool ok = t.materialized() && t.shape() == node->shape() &&
                          t.storageUseCount() == 1;
                if (ok && node->inputs().size() > 1) {
                    const Tensor& b = first(node->inputs()[1]).tensor();
                    ok = b.materialized() && b.shape() == t.shape();
                    second = &b;
                }
                if (ok && runOpInPlace(*node, t, second)) {
                    put(node, {std::move(moved)});
                    executed = true;
                } else {
                    std::vector<Value> ins;
                    ins.reserve(node->inputs().size());
                    ins.push_back(std::move(moved));
                    for (size_t i = 1; i < node->inputs().size(); ++i) {
                        ins.push_back(first(node->inputs()[i]));
                    }
                    put(node, {interpretOp(*node, ins)});
                    executed = true;
                }
            }
            if (!executed) {
                std::vector<Value> ins;
                ins.reserve(node->inputs().size());
                for (graph::Node* in : node->inputs()) {
                    ins.push_back(first(in));
                }
                put(node, {interpretOp(*node, ins)});
            }
            if (ckpt_scope) {
                prof->endModule();
            }
            break;
          }
          case graph::NodeKind::CallModule: {
            Module* target = node->module();
            SLAPO_ASSERT(target != nullptr, "call_module without module");
            std::vector<Value> ins;
            for (graph::Node* in : node->inputs()) {
                ins.push_back(first(in));
            }
            if (prof) prof->beginModule(node->target(), false);
            {
                // Attribute everything the submodule runs to its dotted
                // path; an untraced (leaf) module executes eagerly with
                // no inner CallOp nodes, so time it as one record itself.
                obs::ModuleScope scope(node->target());
                std::optional<NodeTimer> timer;
                if (target->meta().traced_graph == nullptr) {
                    timer.emplace(target->typeName().c_str(), *node);
                }
                put(node, target->call(ins));
            }
            if (prof) prof->endModule();
            break;
          }
          case graph::NodeKind::FusedOp: {
            NodeTimer timer(node->name().c_str(), *node);
            std::vector<Value> ins;
            for (graph::Node* in : node->inputs()) {
                ins.push_back(first(in));
            }
            // A fused kernel is one launch: collapse its inner ops into a
            // single profiler record, then run the encapsulated subgraph.
            if (prof) {
                prof->beginKernelScope(node->name(), /*recompute_free=*/true);
            }
            std::vector<Value> outs =
                interpretGraph(*node->subgraph(), self, ins);
            if (prof) prof->endKernelScope();
            put(node, std::move(outs));
            break;
          }
          case graph::NodeKind::TupleGet: {
            const graph::Node* src = node->inputs()[0];
            SLAPO_ASSERT(defined[src->id()],
                         "interpret: undefined node " << src->name());
            const auto& producer = env[src->id()];
            const int64_t index = node->attrInt("index");
            SLAPO_ASSERT(index >= 0 &&
                             index < static_cast<int64_t>(producer.size()),
                         "tuple_get index out of range");
            put(node, {producer[index]});
            break;
          }
          case graph::NodeKind::Output: {
            std::vector<Value> outs;
            for (graph::Node* in : node->inputs()) {
                outs.push_back(first(in));
            }
            return outs;
          }
        }
        // Drop env entries whose producing node saw its last use here, so
        // the storage returns to the allocator pool mid-graph instead of
        // at function exit. With tracing on, each release point becomes a
        // timeline event so a memory-over-time view shows *where* in the
        // graph the planner returns storage.
        if (act != nullptr && !act->release_after.empty()) {
            if (obs::tracingEnabled()) {
                int64_t bytes = 0;
                for (int64_t id : act->release_after) {
                    for (const Value& v : env[id]) {
                        if (v.tensor().materialized()) {
                            bytes += v.tensor().bytes();
                        }
                    }
                }
                obs::TraceSpan span("memplan.release", "mem");
                span.arg("after_node", node->name());
                span.arg("values",
                         static_cast<int64_t>(act->release_after.size()));
                span.arg("bytes", bytes);
            }
            for (int64_t id : act->release_after) {
                env[id].clear();
                defined[id] = 0;
            }
            if (obs::memProfilingEnabled() && obs::tracingEnabled()) {
                obs::traceCounter("mem.live_bytes", obs::memLiveBytes());
            }
        }
    }
    SLAPO_THROW("interpretGraph: graph has no output node");
}

} // namespace nn
} // namespace slapo
