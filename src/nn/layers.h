/**
 * @file
 * Framework building blocks (the reproduction of torch.nn) plus the
 * transformer blocks the paper's motivating example (§2.2, Fig. 1) and
 * the model zoo are built from, including the *efficient* replacements
 * the schedule primitives install: FusedSelfAttention (fused QKV),
 * EfficientAttention (flash-attention stand-in), FusedBiasGelu.
 *
 * Parameters are created as meta tensors; call initializeParams() to
 * materialize them for numeric runs.
 */
#pragma once

#include <cstdint>

#include "nn/functional.h"
#include "nn/module.h"

namespace slapo {
namespace nn {

/** Fresh deterministic dropout seed (monotone per process). */
uint64_t nextDropoutSeed();

/** y = x W^T + b. Weight shape (out, in): axis-0 shard = output split. */
class Linear : public Module
{
  public:
    Linear(int64_t in_features, int64_t out_features, bool bias = true);

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;

    int64_t inFeatures() const { return in_features_; }
    int64_t outFeatures() const { return out_features_; }
    bool hasBias() const { return has_bias_; }

  private:
    int64_t in_features_;
    int64_t out_features_;
    bool has_bias_;
};

/** LayerNorm over the last axis with affine gamma/beta. */
class LayerNorm : public Module
{
  public:
    explicit LayerNorm(int64_t dim, double eps = 1e-5);

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;

    int64_t dimSize() const { return dim_; }

  private:
    int64_t dim_;
    double eps_;
};

/**
 * Token embedding. When its weight is sharded on axis 0 (vocab) the
 * forward switches to vocab-parallel lookup: out-of-shard ids are masked
 * to zero so an all-reduce `.sync()` restores the full embedding — the
 * word-embedding sharding step of the paper's Fig. 10 ablation.
 */
class Embedding : public Module
{
  public:
    Embedding(int64_t vocab, int64_t dim);

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;

    int64_t vocabSize() const { return vocab_; }

    /**
     * Grow the table to `new_vocab` rows (zero-padded), the standard
     * Megatron trick to make the vocabulary divisible by the
     * tensor-parallel degree before sharding. No-op if already large
     * enough; padded rows are never indexed.
     */
    void padVocabTo(int64_t new_vocab);

  private:
    int64_t vocab_;
    int64_t dim_;
};

/** Learned positional embedding added to [B, S, H] hidden states. */
class PositionalEmbedding : public Module
{
  public:
    PositionalEmbedding(int64_t max_positions, int64_t dim);

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;

  private:
    int64_t max_positions_;
    int64_t dim_;
};

/** Inverted dropout with a stable per-instance seed. */
class Dropout : public Module
{
  public:
    explicit Dropout(double p);

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;

    double p() const { return p_; }
    uint64_t seed() const { return seed_; }
    void setSeed(uint64_t seed) { seed_ = seed; }

  private:
    double p_;
    uint64_t seed_;
};

/** Elementwise activation module. */
class Activation : public Module
{
  public:
    enum class Kind { Gelu, Relu, Tanh };

    explicit Activation(Kind kind);

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;

  private:
    static const char* nameOf(Kind kind);
    Kind kind_;
};

/**
 * Chain of children "0", "1", ...: output of each feeds the next. Also
 * serves as the ModuleList for transformer layer stacks
 * ("encoder.layer.3" resolves through it).
 */
class Sequential : public Module
{
  public:
    Sequential() : Module("Sequential") {}
    explicit Sequential(std::vector<ModulePtr> modules);

    void append(ModulePtr module);
    int64_t length() const { return static_cast<int64_t>(children().size()); }

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;
};

/**
 * The paper's Fig. 1 "pink block": scaled dot-product attention over
 * already-projected q, k, v — scale, baddbmm, softmax, dropout, matmul.
 * Materializes the (B, heads, S, S) score tensor, the memory bottleneck
 * flash attention removes.
 */
class CoreAttention : public Module
{
  public:
    /**
     * @param head_dim per-head feature size. The head count is derived
     *        from the incoming hidden size at forward time, so a
     *        tensor-parallel shard of the projections transparently runs
     *        with hidden/ws features and heads/ws heads (Megatron-style).
     */
    CoreAttention(int64_t head_dim, double dropout_p, bool causal);

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;

    int64_t headDim() const { return head_dim_; }
    bool causal() const { return causal_; }
    double dropoutP() const { return dropout_p_; }
    uint64_t dropoutSeed() const { return dropout_seed_; }
    void setDropoutSeed(uint64_t seed) { dropout_seed_ = seed; }

    /**
     * Megatron-style fused scale-mask-softmax(-dropout): the score
     * normalization executes as one kernel that keeps only the final
     * probability tensor for backward (unlike flash attention, the
     * (B, h, Sq, Sk) probs are still materialized). Numerically
     * identical; affects only the profiled cost signature.
     */
    void setFusedSoftmax(bool enabled) { fused_softmax_ = enabled; }
    bool fusedSoftmax() const { return fused_softmax_; }

    /**
     * T5-style learned relative position bias added to the attention
     * scores (the HF implementation detail §5.2 credits for Megatron's
     * T5 speed edge — Megatron uses fixed embeddings instead). Registers
     * the "rel_bias" table of shape (num_heads, 2*buckets - 1); shard it
     * on axis 0 together with the q/k/v projections under TP.
     */
    void enableRelativeBias(int64_t num_heads, int64_t buckets);
    void disableRelativeBias();
    bool hasRelativeBias() const { return hasParam("rel_bias"); }

  protected:
    CoreAttention(std::string type_name, int64_t head_dim, double dropout_p,
                  bool causal);

  private:
    int64_t head_dim_;
    double dropout_p_;
    bool causal_;
    uint64_t dropout_seed_;
    bool fused_softmax_ = false;
};

/**
 * Flash-attention stand-in (xFormers mem_eff_attention in the paper):
 * numerically identical to CoreAttention but executed as a single fused
 * kernel with block-wise intermediates — the profiler sees one launch and
 * no quadratic activation, reproducing the kernel's memory/time effect.
 */
class EfficientAttention : public CoreAttention
{
  public:
    EfficientAttention(int64_t head_dim, double dropout_p, bool causal);

    /** Build a drop-in replacement for an existing core attention. */
    static ModulePtr fromCore(const CoreAttention& core);

    bool profileAsKernel() const override { return true; }
    /** With a T5 relative bias the kernel's internal recompute must
     * rebuild the bucketed bias too — recompute is no longer free. */
    bool recomputeFree() const override { return !hasRelativeBias(); }
    ModulePtr clone() const override;
};

/**
 * Q/K/V as three standalone Linears + core attention — the HuggingFace
 * BertSelfAttention layout of Fig. 1(a).
 */
class SelfAttention : public Module
{
  public:
    /** @param relative_buckets > 0 enables the T5-style learned relative
     *        position bias on the score matrix. */
    SelfAttention(int64_t hidden, int64_t num_heads, double dropout_p,
                  bool causal, int64_t relative_buckets = 0);

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;

    int64_t hidden() const { return hidden_; }
    int64_t numHeads() const { return num_heads_; }

  private:
    int64_t hidden_;
    int64_t num_heads_;
    double dropout_p_;
    bool causal_;
};

/**
 * Fused-QKV attention — optimization ① of §2.2: one (3H, H) Linear whose
 * output is split into q, k, v, saving two kernel launches.
 */
class FusedSelfAttention : public Module
{
  public:
    FusedSelfAttention(int64_t hidden, int64_t num_heads, double dropout_p,
                       bool causal);

    /**
     * Build from an existing SelfAttention, concatenating its q/k/v
     * weights so the replacement is numerically identical (what the
     * `.replace()` verifier checks).
     */
    static ModulePtr fromSelfAttention(SelfAttention& attn);

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;

  private:
    int64_t hidden_;
    int64_t num_heads_;
    double dropout_p_;
    bool causal_;
};

/**
 * Post-attention projection (HF BertSelfOutput): dense + dropout +
 * residual add + LayerNorm. Inputs: (context, residual).
 */
class Projection : public Module
{
  public:
    Projection(int64_t hidden, double dropout_p, bool pre_norm = false);

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;

  private:
    int64_t hidden_;
    double dropout_p_;
    bool pre_norm_; ///< skip the post-LN (GPT-style pre-LN blocks)
};

/** Feed-forward block: dense(H→I) + GeLU + dense(I→H) + dropout +
 * residual + LayerNorm (post-norm) or without LN (pre-norm). */
class FFN : public Module
{
  public:
    FFN(int64_t hidden, int64_t intermediate, double dropout_p,
        bool pre_norm = false);

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;

    int64_t intermediate() const { return intermediate_; }
    int64_t hidden() const { return hidden_; }
    bool preNorm() const { return pre_norm_; }

  private:
    int64_t hidden_;
    int64_t intermediate_;
    double dropout_p_;
    bool pre_norm_;
};

/**
 * Hand-written fused bias+GeLU kernel (the Megatron bias_gelu fusion the
 * paper schedules in Fig. 10). Replaces the {add bias, gelu} subgraph of
 * a decomposed Linear; executes as one launch.
 */
class FusedBiasGelu : public Module
{
  public:
    explicit FusedBiasGelu(Tensor bias);

    bool profileAsKernel() const override { return true; }
    bool recomputeFree() const override { return true; }

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;
};

/**
 * Vocabulary-parallel output projection (Megatron's column-parallel LM
 * head): the (vocab, hidden) weight is zero-padded to a multiple of the
 * world size and sharded on axis 0; the forward all-gathers the partial
 * logits and narrows away the padding, so callers always see the
 * original vocabulary width. Works identically un-sharded (reference /
 * single-device runs) because the padded rows produce logits that are
 * sliced off.
 */
class VocabParallelLinear : public Module
{
  public:
    VocabParallelLinear(int64_t in_features, int64_t vocab, bool bias,
                        int world_size);

    /** Drop-in replacement for an existing head linear (weights copied,
     * padded, and marked sharded). */
    static ModulePtr fromLinear(Linear& linear, int world_size);

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;

    int64_t vocabSize() const { return vocab_; }
    int64_t paddedVocab() const { return padded_vocab_; }

  private:
    int64_t in_features_;
    int64_t vocab_;
    int64_t padded_vocab_;
    bool has_bias_;
    int world_size_;
};

/** 2-D convolution leaf (NCHW, square kernel, zero padding). */
class Conv2d : public Module
{
  public:
    Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
           int64_t stride, int64_t pad);

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;

  private:
    int64_t in_channels_;
    int64_t out_channels_;
    int64_t kernel_;
    int64_t stride_;
    int64_t pad_;
};

/** Batch normalization leaf (batch statistics, NCHW). */
class BatchNorm2d : public Module
{
  public:
    explicit BatchNorm2d(int64_t channels, double eps = 1e-5);

    std::vector<Value> forward(const std::vector<Value>& inputs) override;
    ModulePtr clone() const override;

  private:
    int64_t channels_;
    double eps_;
};

} // namespace nn
} // namespace slapo
