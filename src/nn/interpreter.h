/**
 * @file
 * Forward interpreter for traced graphs.
 *
 * Once a module has been `.trace()`d (and possibly rewritten by fuse /
 * replace / checkpoint primitives), Module::call executes the graph by
 * re-dispatching every node through nn::F — so eager numerics, meta
 * shape propagation, and cost profiling all keep working on scheduled
 * graphs exactly as they do on unscheduled forwards.
 */
#pragma once

#include <map>
#include <vector>

#include "graph/graph.h"
#include "nn/value.h"

namespace slapo {
namespace nn {

class Module;

/** Execute `graph` (owned by `self`) on `inputs`, returning outputs. */
std::vector<Value> interpretGraph(const graph::Graph& graph, Module* self,
                                  const std::vector<Value>& inputs);

/**
 * Execute a single CallOp node given its input values (shared by the
 * interpreter and the autograd engine).
 */
Value interpretOp(const graph::Node& node, const std::vector<Value>& inputs);

} // namespace nn
} // namespace slapo
