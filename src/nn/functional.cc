#include "nn/functional.h"

#include <algorithm>
#include <functional>

#include "nn/context.h"
#include "runtime/process_group.h"
#include "tensor/ops.h"

namespace slapo {
namespace nn {
namespace F {

namespace {

using graph::Attr;
using graph::Node;
using graph::NodeKind;
using graph::OpKind;

/** Everything dispatch() needs to know about one op invocation. */
struct OpCall
{
    OpKind kind;
    Shape out_shape;
    double flops = 0;
    std::vector<std::pair<std::string, Attr>> attrs;
    /** Pure metadata ops (reshape) launch no kernel and move no bytes. */
    bool is_view = false;
};

using NumericFn = std::function<Tensor(const std::vector<const Tensor*>&)>;

double
elems(const std::vector<Value>& inputs)
{
    double acc = 0;
    for (const Value& v : inputs) {
        acc += static_cast<double>(v.tensor().numel());
    }
    return acc;
}

/** Core three-way dispatch: trace / profile+compute / meta-propagate. */
Value
dispatch(const OpCall& call, const std::vector<Value>& inputs,
         const NumericFn& numeric)
{
    if (TracingState* ts = TracingState::current()) {
        Node* node = ts->graph()->createNode(NodeKind::CallOp,
                                             opKindName(call.kind));
        node->setOp(call.kind);
        for (const Value& v : inputs) {
            SLAPO_CHECK(v.symbolic(),
                        "tracing " << opKindName(call.kind)
                                   << ": input is not symbolic; tensors "
                                      "created outside the traced region must "
                                      "enter via placeholders or parameters");
            node->addInput(v.node());
        }
        for (const auto& [k, v] : call.attrs) {
            node->setAttr(k, v);
        }
        node->setShapes({call.out_shape});
        return Value(Tensor::meta(call.out_shape), node);
    }

    if (Profiler* prof = Profiler::current(); prof && !call.is_view) {
        prof->recordOp(opKindName(call.kind), call.flops, elems(inputs),
                       static_cast<double>(numelOf(call.out_shape)));
    }

    bool all_materialized = true;
    std::vector<const Tensor*> tensors;
    tensors.reserve(inputs.size());
    for (const Value& v : inputs) {
        tensors.push_back(&v.tensor());
        all_materialized &= v.tensor().materialized();
    }
    if (!all_materialized) {
        return Value(Tensor::meta(call.out_shape));
    }
    Tensor out = numeric(tensors);
    SLAPO_ASSERT(out.shape() == call.out_shape,
                 "op " << opKindName(call.kind) << ": inferred shape "
                       << shapeToString(call.out_shape)
                       << " != computed shape " << shapeToString(out.shape()));
    return Value(std::move(out));
}

Value
binaryOp(OpKind kind, const Value& a, const Value& b,
         Tensor (*fn)(const Tensor&, const Tensor&))
{
    OpCall call;
    call.kind = kind;
    call.out_shape = broadcastShapes(a.shape(), b.shape());
    call.flops = static_cast<double>(numelOf(call.out_shape));
    return dispatch(call, {a, b}, [fn](const std::vector<const Tensor*>& t) {
        return fn(*t[0], *t[1]);
    });
}

Value
unaryOp(OpKind kind, const Value& a, double flops_per_elem,
        Tensor (*fn)(const Tensor&))
{
    OpCall call;
    call.kind = kind;
    call.out_shape = a.shape();
    call.flops = flops_per_elem * static_cast<double>(a.tensor().numel());
    return dispatch(call, {a}, [fn](const std::vector<const Tensor*>& t) {
        return fn(*t[0]);
    });
}

} // namespace

Value
add(const Value& a, const Value& b)
{
    return binaryOp(OpKind::Add, a, b, &ops::add);
}

Value
sub(const Value& a, const Value& b)
{
    return binaryOp(OpKind::Sub, a, b, &ops::sub);
}

Value
mul(const Value& a, const Value& b)
{
    return binaryOp(OpKind::Mul, a, b, &ops::mul);
}

Value
div(const Value& a, const Value& b)
{
    return binaryOp(OpKind::Div, a, b, &ops::div);
}

Value
scale(const Value& a, double factor)
{
    OpCall call;
    call.kind = OpKind::Scale;
    call.out_shape = a.shape();
    call.flops = static_cast<double>(a.tensor().numel());
    call.attrs.emplace_back("factor", factor);
    return dispatch(call, {a}, [factor](const std::vector<const Tensor*>& t) {
        return ops::scale(*t[0], static_cast<float>(factor));
    });
}

Value
addScalar(const Value& a, double value)
{
    OpCall call;
    call.kind = OpKind::AddScalar;
    call.out_shape = a.shape();
    call.flops = static_cast<double>(a.tensor().numel());
    call.attrs.emplace_back("value", value);
    return dispatch(call, {a}, [value](const std::vector<const Tensor*>& t) {
        return ops::addScalar(*t[0], static_cast<float>(value));
    });
}

Value
gelu(const Value& a)
{
    return unaryOp(OpKind::Gelu, a, 8.0, &ops::gelu);
}

Value
relu(const Value& a)
{
    return unaryOp(OpKind::Relu, a, 1.0, &ops::relu);
}

Value
tanh(const Value& a)
{
    return unaryOp(OpKind::Tanh, a, 5.0, &ops::tanhOp);
}

Value
clampScalar(const Value& a, double lo, double hi)
{
    OpCall call;
    call.kind = OpKind::Clamp;
    call.out_shape = a.shape();
    call.flops = static_cast<double>(a.tensor().numel());
    call.attrs.emplace_back("lo", lo);
    call.attrs.emplace_back("hi", hi);
    return dispatch(call, {a}, [lo, hi](const std::vector<const Tensor*>& t) {
        return ops::clampScalar(*t[0], static_cast<float>(lo),
                                static_cast<float>(hi));
    });
}

Value
rangeMask(const Value& a, double lo, double hi)
{
    OpCall call;
    call.kind = OpKind::RangeMask;
    call.out_shape = a.shape();
    call.flops = static_cast<double>(a.tensor().numel());
    call.attrs.emplace_back("lo", lo);
    call.attrs.emplace_back("hi", hi);
    return dispatch(call, {a}, [lo, hi](const std::vector<const Tensor*>& t) {
        return ops::rangeMask(*t[0], static_cast<float>(lo),
                              static_cast<float>(hi));
    });
}

Value
causalMask(const Value& scores)
{
    OpCall call;
    call.kind = OpKind::CausalMask;
    call.out_shape = scores.shape();
    call.flops = static_cast<double>(scores.tensor().numel());
    return dispatch(call, {scores}, [](const std::vector<const Tensor*>& t) {
        return ops::causalMask(*t[0]);
    });
}

Value
relPosBias(const Value& scores, const Value& table)
{
    SLAPO_CHECK(scores.shape().size() == 4 && table.shape().size() == 2,
                "F::relPosBias: expects 4-D scores and 2-D table");
    SLAPO_CHECK(scores.shape()[1] == table.shape()[0],
                "F::relPosBias: head count mismatch (" << scores.shape()[1]
                                                       << " vs "
                                                       << table.shape()[0]
                                                       << ")");
    OpCall call;
    call.kind = OpKind::RelPosBias;
    call.out_shape = scores.shape();
    // Computing the bucketed bias costs a few ops per score element —
    // the overhead §5.2 credits Megatron's fixed embeddings with avoiding.
    call.flops = 4.0 * static_cast<double>(scores.tensor().numel());
    return dispatch(call, {scores, table},
                    [](const std::vector<const Tensor*>& t) {
                        return ops::relPosBias(*t[0], *t[1]);
                    });
}

Value
softmax(const Value& a)
{
    return unaryOp(OpKind::Softmax, a, 5.0, &ops::softmax);
}

Value
layerNorm(const Value& x, const Value& gamma, const Value& beta, double eps)
{
    OpCall call;
    call.kind = OpKind::LayerNormOp;
    call.out_shape = x.shape();
    call.flops = 8.0 * static_cast<double>(x.tensor().numel());
    call.attrs.emplace_back("eps", eps);
    return dispatch(call, {x, gamma, beta},
                    [eps](const std::vector<const Tensor*>& t) {
                        return ops::layerNorm(*t[0], *t[1], *t[2],
                                              static_cast<float>(eps));
                    });
}

Value
dropout(const Value& x, double p, int64_t seed)
{
    OpCall call;
    call.kind = OpKind::Dropout;
    call.out_shape = x.shape();
    call.flops = 2.0 * static_cast<double>(x.tensor().numel());
    call.attrs.emplace_back("p", p);
    call.attrs.emplace_back("seed", seed);
    return dispatch(call, {x}, [p, seed](const std::vector<const Tensor*>& t) {
        return ops::dropout(*t[0], static_cast<float>(p),
                            static_cast<uint64_t>(seed));
    });
}

Value
matmul(const Value& a, const Value& b)
{
    const Shape& sa = a.shape();
    const Shape& sb = b.shape();
    SLAPO_CHECK(sa.size() >= 2 && sb.size() >= 2, "F::matmul: rank < 2");
    SLAPO_CHECK(sa.back() == sb[sb.size() - 2],
                "F::matmul: inner dims mismatch " << shapeToString(sa) << " @ "
                                                  << shapeToString(sb));
    Shape batch = broadcastShapes(Shape(sa.begin(), sa.end() - 2),
                                  Shape(sb.begin(), sb.end() - 2));
    OpCall call;
    call.kind = OpKind::Matmul;
    call.out_shape = batch;
    call.out_shape.push_back(sa[sa.size() - 2]);
    call.out_shape.push_back(sb.back());
    call.flops = 2.0 * static_cast<double>(numelOf(batch)) *
                 static_cast<double>(sa[sa.size() - 2]) *
                 static_cast<double>(sa.back()) *
                 static_cast<double>(sb.back());
    return dispatch(call, {a, b}, [](const std::vector<const Tensor*>& t) {
        return ops::matmul(*t[0], *t[1]);
    });
}

Value
linear(const Value& x, const Value& w, const Value& b)
{
    // A default-constructed Value (0-d meta tensor, no node) means "no
    // bias"; anything with a real shape or a graph node is a bias.
    const bool has_bias = b.symbolic() || b.tensor().dim() > 0;
    SLAPO_CHECK(w.shape().size() == 2, "F::linear: weight must be 2-D");
    SLAPO_CHECK(x.shape().back() == w.shape()[1],
                "F::linear: in features " << x.shape().back()
                                          << " != weight in " << w.shape()[1]);
    OpCall call;
    call.kind = OpKind::LinearOp;
    call.out_shape = x.shape();
    call.out_shape.back() = w.shape()[0];
    const double rows =
        static_cast<double>(x.tensor().numel()) / static_cast<double>(w.shape()[1]);
    call.flops = 2.0 * rows * static_cast<double>(w.shape()[0]) *
                     static_cast<double>(w.shape()[1]) +
                 (has_bias ? rows * static_cast<double>(w.shape()[0]) : 0.0);
    std::vector<Value> inputs = {x, w};
    if (has_bias) {
        inputs.push_back(b);
    }
    return dispatch(call, inputs,
                    [has_bias](const std::vector<const Tensor*>& t) {
                        static const Tensor kNoBias = Tensor::zeros({0});
                        return ops::linear(*t[0], *t[1],
                                           has_bias ? *t[2] : kNoBias);
                    });
}

Value
transposeLast2(const Value& a)
{
    SLAPO_CHECK(a.shape().size() >= 2, "F::transposeLast2: rank < 2");
    OpCall call;
    call.kind = OpKind::TransposeLast2;
    call.out_shape = a.shape();
    std::swap(call.out_shape[call.out_shape.size() - 1],
              call.out_shape[call.out_shape.size() - 2]);
    return dispatch(call, {a}, [](const std::vector<const Tensor*>& t) {
        return ops::transposeLast2(*t[0]);
    });
}

Value
reshape(const Value& a, Shape shape)
{
    SLAPO_CHECK(numelOf(shape) == a.tensor().numel(),
                "F::reshape: cannot view " << shapeToString(a.shape())
                                           << " as " << shapeToString(shape));
    OpCall call;
    call.kind = OpKind::Reshape;
    call.out_shape = shape;
    call.is_view = true;
    call.attrs.emplace_back("shape", std::vector<int64_t>(shape));
    return dispatch(call, {a}, [shape](const std::vector<const Tensor*>& t) {
        return t[0]->reshape(shape);
    });
}

Value
permute(const Value& a, std::vector<int64_t> perm)
{
    SLAPO_CHECK(perm.size() == a.shape().size(), "F::permute: rank mismatch");
    OpCall call;
    call.kind = OpKind::Permute;
    call.out_shape.resize(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) {
        call.out_shape[i] = a.shape()[perm[i]];
    }
    call.attrs.emplace_back("perm", perm);
    return dispatch(call, {a}, [perm](const std::vector<const Tensor*>& t) {
        return ops::permute(*t[0], perm);
    });
}

Value
concat(const std::vector<Value>& parts, int64_t axis)
{
    SLAPO_CHECK(!parts.empty(), "F::concat: no inputs");
    const int64_t rank = static_cast<int64_t>(parts[0].shape().size());
    const int64_t ax = axis < 0 ? axis + rank : axis;
    SLAPO_CHECK(ax >= 0 && ax < rank, "F::concat: bad axis " << axis);
    OpCall call;
    call.kind = OpKind::Concat;
    call.out_shape = parts[0].shape();
    int64_t total = 0;
    for (const Value& v : parts) {
        total += v.shape()[ax];
    }
    call.out_shape[ax] = total;
    call.attrs.emplace_back("axis", ax);
    return dispatch(call, parts, [ax](const std::vector<const Tensor*>& t) {
        std::vector<Tensor> tensors;
        tensors.reserve(t.size());
        for (const Tensor* p : t) tensors.push_back(*p);
        return ops::concat(tensors, ax);
    });
}

Value
narrow(const Value& a, int64_t axis, int64_t start, int64_t length)
{
    const int64_t rank = static_cast<int64_t>(a.shape().size());
    const int64_t ax = axis < 0 ? axis + rank : axis;
    SLAPO_CHECK(ax >= 0 && ax < rank, "F::narrow: bad axis " << axis);
    SLAPO_CHECK(start >= 0 && start + length <= a.shape()[ax],
                "F::narrow: slice out of range");
    OpCall call;
    call.kind = OpKind::Narrow;
    call.out_shape = a.shape();
    call.out_shape[ax] = length;
    call.attrs.emplace_back("axis", ax);
    call.attrs.emplace_back("start", start);
    call.attrs.emplace_back("length", length);
    return dispatch(call, {a},
                    [ax, start, length](const std::vector<const Tensor*>& t) {
                        return ops::narrow(*t[0], ax, start, length);
                    });
}

Value
embedding(const Value& ids, const Value& table)
{
    SLAPO_CHECK(table.shape().size() == 2, "F::embedding: table must be 2-D");
    OpCall call;
    call.kind = OpKind::EmbeddingOp;
    call.out_shape = ids.shape();
    call.out_shape.push_back(table.shape()[1]);
    return dispatch(call, {ids, table},
                    [](const std::vector<const Tensor*>& t) {
                        return ops::embedding(*t[0], *t[1]);
                    });
}

Value
crossEntropy(const Value& logits, const Value& targets)
{
    OpCall call;
    call.kind = OpKind::CrossEntropyOp;
    call.out_shape = {1};
    call.flops = 8.0 * static_cast<double>(logits.tensor().numel());
    return dispatch(call, {logits, targets},
                    [](const std::vector<const Tensor*>& t) {
                        return ops::crossEntropy(*t[0], *t[1]);
                    });
}

Value
mseLoss(const Value& pred, const Value& target)
{
    OpCall call;
    call.kind = OpKind::MseLossOp;
    call.out_shape = {1};
    call.flops = 3.0 * static_cast<double>(pred.tensor().numel());
    return dispatch(call, {pred, target},
                    [](const std::vector<const Tensor*>& t) {
                        return ops::mseLoss(*t[0], *t[1]);
                    });
}

Value
conv2d(const Value& x, const Value& w, int64_t stride, int64_t pad)
{
    const Shape& sx = x.shape();
    const Shape& sw = w.shape();
    SLAPO_CHECK(sx.size() == 4 && sw.size() == 4, "F::conv2d: NCHW/OIHW only");
    SLAPO_CHECK(sx[1] == sw[1], "F::conv2d: channel mismatch");
    const int64_t ho = (sx[2] + 2 * pad - sw[2]) / stride + 1;
    const int64_t wo = (sx[3] + 2 * pad - sw[3]) / stride + 1;
    OpCall call;
    call.kind = OpKind::Conv2dOp;
    call.out_shape = {sx[0], sw[0], ho, wo};
    call.flops = 2.0 * static_cast<double>(numelOf(call.out_shape)) *
                 static_cast<double>(sw[1] * sw[2] * sw[3]);
    call.attrs.emplace_back("stride", stride);
    call.attrs.emplace_back("pad", pad);
    return dispatch(call, {x, w},
                    [stride, pad](const std::vector<const Tensor*>& t) {
                        return ops::conv2d(*t[0], *t[1], stride, pad);
                    });
}

Value
batchNorm2d(const Value& x, const Value& gamma, const Value& beta, double eps)
{
    OpCall call;
    call.kind = OpKind::BatchNormOp;
    call.out_shape = x.shape();
    call.flops = 8.0 * static_cast<double>(x.tensor().numel());
    call.attrs.emplace_back("eps", eps);
    return dispatch(call, {x, gamma, beta},
                    [eps](const std::vector<const Tensor*>& t) {
                        return ops::batchNorm2d(*t[0], *t[1], *t[2],
                                                static_cast<float>(eps));
                    });
}

Value
globalAvgPool(const Value& x)
{
    SLAPO_CHECK(x.shape().size() == 4, "F::globalAvgPool: NCHW only");
    OpCall call;
    call.kind = OpKind::GlobalAvgPoolOp;
    call.out_shape = {x.shape()[0], x.shape()[1]};
    call.flops = static_cast<double>(x.tensor().numel());
    return dispatch(call, {x}, [](const std::vector<const Tensor*>& t) {
        return ops::globalAvgPool(*t[0]);
    });
}

Value
identity(const Value& a)
{
    OpCall call;
    call.kind = OpKind::Identity;
    call.out_shape = a.shape();
    call.is_view = true;
    return dispatch(call, {a}, [](const std::vector<const Tensor*>& t) {
        return t[0]->clone();
    });
}

namespace {

Value
collective(OpKind kind, const Value& x, int64_t axis)
{
    DistContext* dc = DistContext::current();
    const int ws = dc ? dc->world_size : 1;

    Shape out_shape = x.shape();
    if (kind == OpKind::AllGather) {
        const int64_t ax = axis < 0 ? axis + out_shape.size() : axis;
        out_shape[ax] *= ws;
    } else if (kind == OpKind::ReduceScatter) {
        const int64_t ax = axis < 0 ? axis + out_shape.size() : axis;
        SLAPO_CHECK(out_shape[ax] % ws == 0,
                    "reduce_scatter: axis extent " << out_shape[ax]
                                                   << " not divisible by world "
                                                   << ws);
        out_shape[ax] /= ws;
    }

    if (TracingState* ts = TracingState::current()) {
        Node* node =
            ts->graph()->createNode(NodeKind::CallOp, opKindName(kind));
        node->setOp(kind);
        node->addInput(x.node());
        node->setAttr("axis", axis);
        node->setShapes({out_shape});
        return Value(Tensor::meta(out_shape), node);
    }

    if (Profiler* prof = Profiler::current()) {
        // Payload convention: the *full* tensor being exchanged — the
        // gathered output for all-gather, the reduced input otherwise —
        // so ring-cost formulas apply their (n-1)/n factors uniformly.
        const double payload =
            kind == OpKind::AllGather
                ? static_cast<double>(numelOf(out_shape))
                : static_cast<double>(x.tensor().numel());
        prof->recordComm(opKindName(kind), payload);
    }

    if (ws == 1 || !x.tensor().materialized()) {
        if (kind == OpKind::AllGather && ws > 1) {
            return Value(Tensor::meta(out_shape));
        }
        return ws == 1 ? Value(x.tensor().clone())
                       : Value(Tensor::meta(out_shape));
    }

    SLAPO_CHECK(dc->group != nullptr,
                "collective " << opKindName(kind)
                              << " requires a live ProcessGroup on this thread");
    switch (kind) {
      case OpKind::AllReduce:
        return Value(dc->group->allReduce(dc->rank, x.tensor()));
      case OpKind::AllGather:
        return Value(dc->group->allGather(dc->rank, x.tensor(), axis));
      case OpKind::ReduceScatter:
        return Value(dc->group->reduceScatter(dc->rank, x.tensor(), axis));
      default:
        SLAPO_THROW("not a collective op");
    }
}

} // namespace

Value
allReduce(const Value& x)
{
    return collective(OpKind::AllReduce, x, -1);
}

Value
allGather(const Value& x, int64_t axis)
{
    return collective(OpKind::AllGather, x, axis);
}

Value
reduceScatter(const Value& x, int64_t axis)
{
    return collective(OpKind::ReduceScatter, x, axis);
}

} // namespace F
} // namespace nn
} // namespace slapo
