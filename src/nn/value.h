/**
 * @file
 * The dual eager/symbolic value handle flowing through module forwards.
 *
 * A `Value` is what a PyTorch tensor is to a PyTorch model: module
 * `forward` methods are written once against `nn::F` ops and behave in
 * three ways depending on ambient context:
 *  - eager, materialized: the op computes numerically (verifier, tests);
 *  - eager, meta: the op only propagates shapes (paper-scale models);
 *  - tracing: the op appends a node to the active graph (torch.fx-style
 *    symbolic tracing; the "trace by need" mechanism of §3.3).
 */
#pragma once

#include "graph/node.h"
#include "tensor/tensor.h"

namespace slapo {
namespace nn {

/** Eager-or-symbolic tensor handle. */
class Value
{
  public:
    Value() = default;

    /** Eager value (materialized or meta tensor). */
    explicit Value(Tensor tensor) : tensor_(std::move(tensor)) {}

    /** Symbolic value produced by `node` (tensor carries the shape). */
    Value(Tensor meta, graph::Node* node)
        : tensor_(std::move(meta)), node_(node) {}

    const Shape& shape() const { return tensor_.shape(); }
    const Tensor& tensor() const { return tensor_; }
    Tensor& tensor() { return tensor_; }

    /** True when this value is a node of a graph being traced. */
    bool symbolic() const { return node_ != nullptr; }
    graph::Node* node() const { return node_; }

  private:
    Tensor tensor_;
    graph::Node* node_ = nullptr;
};

} // namespace nn
} // namespace slapo
