#include "nn/module.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "nn/functional.h"
#include "nn/interpreter.h"
#include "obs/mem_profiler.h"
#include "obs/profiler.h"

namespace slapo {
namespace nn {

namespace {

/** Module types the tracer keeps as CallModule nodes even when
 * flattening (framework-predefined leaves, §3.3). */
bool
isDefaultLeafType(const std::string& type_name)
{
    static const char* kLeaves[] = {"Linear", "LayerNorm", "Embedding",
                                    "Conv2d", "BatchNorm2d"};
    for (const char* leaf : kLeaves) {
        if (type_name == leaf) return true;
    }
    return false;
}

/** Recursively map original-subtree module pointers to clone pointers. */
void
buildPtrMap(const Module* src, Module* dst,
            std::map<const Module*, Module*>& map)
{
    map[src] = dst;
    const auto& src_children = src->children();
    const auto& dst_children = dst->children();
    SLAPO_ASSERT(src_children.size() == dst_children.size(),
                 "clone: child count mismatch");
    for (size_t i = 0; i < src_children.size(); ++i) {
        buildPtrMap(src_children[i].second.get(), dst_children[i].second.get(),
                    map);
    }
}

/** Rebind module pointers in a cloned graph (recursing into subgraphs). */
void
remapGraphModules(graph::Graph* g, const std::map<const Module*, Module*>& map)
{
    for (graph::Node* node : g->nodes()) {
        if (node->module()) {
            auto it = map.find(node->module());
            if (it != map.end()) {
                node->setModule(it->second);
            }
        }
        if (node->subgraph()) {
            remapGraphModules(node->subgraph(), map);
        }
    }
}

} // namespace

std::vector<Value>
Module::call(const std::vector<Value>& inputs)
{
    Profiler* prof = Profiler::current();
    const bool profiling = prof != nullptr && TracingState::current() == nullptr;
    if (profiling) {
        if (meta_.checkpointed) {
            double boundary_elems = 0;
            for (const Value& v : inputs) {
                boundary_elems += static_cast<double>(v.tensor().numel());
            }
            prof->recordCheckpointBoundary(boundary_elems);
        }
        prof->beginModule(type_name_, meta_.checkpointed);
    }
    const bool kernel_scope = profiling && profileAsKernel();
    if (kernel_scope) {
        prof->beginKernelScope(type_name_, recomputeFree());
    }
    std::vector<Value> outputs = runForward(inputs);
    if (kernel_scope) {
        prof->endKernelScope();
    }
    outputs = applyForwardSyncs(std::move(outputs));
    if (profiling) {
        prof->endModule();
    }
    return outputs;
}

Value
Module::callOne(const std::vector<Value>& inputs)
{
    std::vector<Value> outputs = call(inputs);
    SLAPO_CHECK(outputs.size() == 1, typeName()
                                         << ": expected a single output, got "
                                         << outputs.size());
    return outputs[0];
}

std::vector<Value>
Module::runForward(const std::vector<Value>& inputs)
{
    // A traced-and-scheduled graph *is* this module's execution strategy;
    // replay it. While tracing (symbolically re-capturing), always run the
    // original forward so the parent graph sees fresh nodes.
    if (meta_.traced_graph && TracingState::current() == nullptr) {
        return interpretGraph(*meta_.traced_graph, this, inputs);
    }
    return forward(inputs);
}

std::vector<Value>
Module::applyForwardSyncs(std::vector<Value> outputs)
{
    if (meta_.syncs.empty()) {
        return outputs;
    }
    SLAPO_CHECK(outputs.size() == 1,
                typeName() << ": .sync() requires a single-output module");
    Profiler* prof = Profiler::current();
    for (const SyncSpec& sync : meta_.syncs) {
        if (sync.direction == SyncDirection::Forward ||
            sync.direction == SyncDirection::Both) {
            switch (sync.kind) {
              case SyncKind::AllReduce:
                outputs[0] = F::allReduce(outputs[0]);
                break;
              case SyncKind::AllGather:
                outputs[0] = F::allGather(outputs[0], sync.axis);
                break;
              case SyncKind::ReduceScatter:
                outputs[0] = F::reduceScatter(outputs[0], sync.axis);
                break;
            }
        }
        if (prof && TracingState::current() == nullptr &&
            (sync.direction == SyncDirection::Backward ||
             sync.direction == SyncDirection::Both)) {
            // Account for the gradient aggregation the backward pass will
            // issue at this boundary (the "g" collective in Megatron).
            prof->recordComm("all_reduce",
                             static_cast<double>(outputs[0].tensor().numel()),
                             /*backward=*/true);
        }
    }
    return outputs;
}

void
Module::registerParam(const std::string& name, Tensor tensor)
{
    SLAPO_CHECK(!hasParam(name),
                typeName() << ": duplicate parameter '" << name << "'");
    params_.emplace_back(name, std::move(tensor));
}

bool
Module::hasParam(const std::string& name) const
{
    return std::any_of(params_.begin(), params_.end(),
                       [&](const auto& p) { return p.first == name; });
}

void
Module::removeParam(const std::string& name)
{
    auto it = std::find_if(params_.begin(), params_.end(),
                           [&](const auto& p) { return p.first == name; });
    SLAPO_CHECK(it != params_.end(),
                typeName() << ": no parameter '" << name << "' to remove");
    params_.erase(it);
    meta_.sharded_params.erase(name);
}

Tensor&
Module::paramTensor(const std::string& name)
{
    for (auto& [pname, tensor] : params_) {
        if (pname == name) return tensor;
    }
    SLAPO_THROW(typeName() << ": no parameter '" << name << "'");
}

const Tensor&
Module::paramTensor(const std::string& name) const
{
    return const_cast<Module*>(this)->paramTensor(name);
}

void
Module::setParamTensor(const std::string& name, Tensor tensor)
{
    paramTensor(name) = std::move(tensor);
}

std::vector<std::string>
Module::paramNames() const
{
    std::vector<std::string> names;
    names.reserve(params_.size());
    for (const auto& [name, tensor] : params_) {
        names.push_back(name);
    }
    return names;
}

Value
Module::param(const std::string& name)
{
    Tensor& tensor = paramTensor(name);
    if (TracingState* ts = TracingState::current()) {
        graph::Node* node =
            ts->graph()->createNode(graph::NodeKind::GetParam, name);
        node->setTarget(name);
        node->setModule(this);
        node->setShapes({tensor.shape()});
        return Value(Tensor::meta(tensor.shape()), node);
    }
    return Value(tensor);
}

void
Module::registerChild(const std::string& name, ModulePtr module)
{
    SLAPO_CHECK(!hasChild(name),
                typeName() << ": duplicate child '" << name << "'");
    SLAPO_CHECK(module != nullptr, typeName() << ": null child '" << name << "'");
    children_.emplace_back(name, std::move(module));
}

bool
Module::hasChild(const std::string& name) const
{
    return std::any_of(children_.begin(), children_.end(),
                       [&](const auto& c) { return c.first == name; });
}

ModulePtr
Module::child(const std::string& name) const
{
    for (const auto& [cname, module] : children_) {
        if (cname == name) return module;
    }
    SLAPO_THROW(typeName() << ": no child '" << name << "'");
}

void
Module::replaceChild(const std::string& name, ModulePtr module)
{
    for (auto& [cname, existing] : children_) {
        if (cname == name) {
            existing = std::move(module);
            return;
        }
    }
    SLAPO_THROW(typeName() << ": no child '" << name << "' to replace");
}

std::vector<Value>
Module::callChild(const std::string& name, const std::vector<Value>& inputs)
{
    ModulePtr target = child(name);
    TracingState* ts = TracingState::current();
    if (ts == nullptr) {
        return target->call(inputs);
    }

    const TraceOptions& options = ts->options();
    const std::string prefix = ts->currentPath();
    const std::string child_path =
        prefix.empty() ? name : prefix + "." + name;

    bool leaf = true;
    if (options.flatten) {
        const bool user_leaf = options.leaf_paths.count(child_path) > 0 ||
                               options.leaf_types.count(target->typeName()) > 0;
        const bool framework_leaf = options.default_leaf_types &&
                                    isDefaultLeafType(target->typeName()) &&
                                    !target->meta().decomposed;
        leaf = user_leaf || framework_leaf;
    }

    if (!leaf) {
        SLAPO_CHECK(target->traceable(),
                    "module '" << child_path << "' (" << target->typeName()
                               << ") cannot be traced: its coding style "
                                  "defeats the symbolic tracer; keep it as a "
                                  "leaf or trace a smaller region");
        ts->pushModule(name);
        std::vector<Value> outputs = target->call(inputs);
        ts->popModule();
        return outputs;
    }

    // Keep the child opaque: one CallModule node. Shapes come from a meta
    // execution with tracing suspended (so no nodes leak from the child).
    graph::Node* node =
        ts->graph()->createNode(graph::NodeKind::CallModule, name);
    node->setTarget(child_path);
    node->setModule(target.get());
    node->setAttr("type", target->typeName());
    for (const Value& v : inputs) {
        SLAPO_CHECK(v.symbolic(), "tracing call to '"
                                      << child_path
                                      << "': input value was created outside "
                                         "the traced region");
        node->addInput(v.node());
    }
    std::vector<Value> meta_outputs;
    {
        TracingGuard suspend(nullptr);
        std::vector<Value> meta_inputs;
        meta_inputs.reserve(inputs.size());
        for (const Value& v : inputs) {
            meta_inputs.emplace_back(Tensor::meta(v.shape()));
        }
        meta_outputs = target->call(meta_inputs);
    }
    std::vector<Shape> shapes;
    shapes.reserve(meta_outputs.size());
    for (const Value& v : meta_outputs) {
        shapes.push_back(v.shape());
    }
    node->setShapes(shapes);
    if (target->meta().checkpointed) {
        node->setCheckpointed(true);
    }

    if (meta_outputs.size() == 1) {
        return {Value(Tensor::meta(shapes[0]), node)};
    }
    std::vector<Value> outputs;
    for (size_t i = 0; i < meta_outputs.size(); ++i) {
        graph::Node* get =
            ts->graph()->createNode(graph::NodeKind::TupleGet, name + "_out");
        get->addInput(node);
        get->setAttr("index", static_cast<int64_t>(i));
        get->setShapes({shapes[i]});
        outputs.emplace_back(Tensor::meta(shapes[i]), get);
    }
    return outputs;
}

Value
Module::callChildOne(const std::string& name, const std::vector<Value>& inputs)
{
    std::vector<Value> outputs = callChild(name, inputs);
    SLAPO_CHECK(outputs.size() == 1,
                "child '" << name << "': expected a single output, got "
                          << outputs.size());
    return outputs[0];
}

ModulePtr
Module::findByPath(const std::string& path)
{
    if (path.empty()) {
        return shared_from_this();
    }
    const size_t dot = path.find('.');
    const std::string head = path.substr(0, dot);
    ModulePtr next = child(head);
    if (dot == std::string::npos) {
        return next;
    }
    return next->findByPath(path.substr(dot + 1));
}

std::vector<std::pair<std::string, Module*>>
Module::namedModules()
{
    std::vector<std::pair<std::string, Module*>> result;
    std::function<void(const std::string&, Module*)> visit =
        [&](const std::string& prefix, Module* m) {
            result.emplace_back(prefix, m);
            for (const auto& [name, c] : m->children_) {
                visit(prefix.empty() ? name : prefix + "." + name, c.get());
            }
        };
    visit("", this);
    return result;
}

std::vector<std::pair<std::string, Tensor*>>
Module::namedParams()
{
    std::vector<std::pair<std::string, Tensor*>> result;
    for (auto& [path, m] : namedModules()) {
        for (auto& [name, tensor] : m->params_) {
            result.emplace_back(path.empty() ? name : path + "." + name,
                                &tensor);
        }
    }
    return result;
}

int64_t
Module::numParams() const
{
    int64_t total = 0;
    for (const auto& [name, tensor] : params_) {
        total += tensor.numel();
    }
    for (const auto& [name, c] : children_) {
        total += c->numParams();
    }
    return total;
}

void
Module::initializeParams(uint64_t seed)
{
    for (auto& [path, tensor] : namedParams()) {
        uint64_t h = seed;
        for (char ch : path) {
            h = h * 1099511628211ULL + static_cast<uint64_t>(ch);
        }
        // Norm scales start at one; everything else small-random.
        const bool is_scale = path.size() >= 5 &&
                              path.compare(path.size() - 5, 5, "gamma") == 0;
        if (tensor->isMeta()) {
            // Tag the materialization for the memory profiler: category
            // Parameter, attributed to the param's own dotted path.
            obs::MemCategoryScope mem_cat(obs::MemCategory::Parameter);
            std::optional<obs::ModuleScope> mem_path;
            if (obs::ModuleScope::active()) {
                mem_path.emplace(path);
            }
            *tensor = is_scale ? Tensor::full(tensor->shape(), 1.0f)
                               : Tensor::uniform(tensor->shape(), 0.08f, h);
        }
    }
}

void
Module::cloneInto(Module* dst) const
{
    dst->type_name_ = type_name_;
    dst->traceable_ = traceable_;
    dst->params_.clear();
    {
        // Replica/stage clones carry parameters, not activations.
        obs::MemCategoryScope mem_cat(obs::MemCategory::Parameter);
        for (const auto& [name, tensor] : params_) {
            std::optional<obs::ModuleScope> mem_path;
            if (obs::ModuleScope::active()) {
                mem_path.emplace(name);
            }
            dst->params_.emplace_back(name, tensor.clone());
        }
    }
    dst->children_.clear();
    for (const auto& [name, c] : children_) {
        // Nest a scope per child so cloned parameters register under
        // their full dotted path, not an anonymous blob.
        std::optional<obs::ModuleScope> mem_path;
        if (obs::ModuleScope::active()) {
            mem_path.emplace(name);
        }
        dst->children_.emplace_back(name, c->clone());
    }
    dst->meta_ = meta_;
    if (meta_.traced_graph) {
        std::map<const Module*, Module*> map;
        buildPtrMap(this, dst, map);
        dst->meta_.traced_graph = meta_.traced_graph->clone();
        remapGraphModules(dst->meta_.traced_graph.get(), map);
    }
}

} // namespace nn
} // namespace slapo
