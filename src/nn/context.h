/**
 * @file
 * Ambient execution contexts consulted by nn::F op dispatch.
 *
 * Three orthogonal, thread-local contexts:
 *  - TracingState: ops append IR nodes instead of computing (§3.3 trace);
 *  - Profiler: eager ops report their cost signature (FLOPs, bytes,
 *    activation footprint) — the input of the performance simulator;
 *  - DistContext: the calling thread is rank r of an N-way group;
 *    collective ops go through the ProcessGroup (runtime/) or, in meta
 *    profiling, are just accounted for.
 *
 * Contexts are RAII-scoped via the *Guard classes.
 */
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace slapo {

namespace runtime {
class ProcessGroup; // defined in runtime/process_group.h
} // namespace runtime

namespace nn {

class Module;

/** Options of the `.trace(leaves, flatten)` primitive. */
struct TraceOptions
{
    /**
     * When false (default), every direct child module becomes a
     * CallModule node. When true, non-leaf children are inlined
     * recursively so the graph reaches primitive-op granularity.
     */
    bool flatten = false;

    /** Module *paths* (relative to the traced root) never to inline. */
    std::set<std::string> leaf_paths;

    /** Module *type names* never to inline (adds to the default set). */
    std::set<std::string> leaf_types;

    /**
     * Default framework leaves (Linear, LayerNorm, Embedding, Conv2d,
     * BatchNorm2d), kept as CallModule even when flattening — unless a
     * module was `.decompose()`d.
     */
    bool default_leaf_types = true;
};

/** Active symbolic-tracing session (one per .trace() call). */
class TracingState
{
  public:
    TracingState(graph::Graph* graph, TraceOptions options)
        : graph_(graph), options_(std::move(options)) {}

    graph::Graph* graph() const { return graph_; }
    const TraceOptions& options() const { return options_; }

    /** Dotted path of the module currently executing, "" at the root. */
    std::string currentPath() const;

    void pushModule(const std::string& name) { stack_.push_back(name); }
    void popModule() { stack_.pop_back(); }

    /** The live tracing state of this thread, or nullptr. */
    static TracingState* current();

  private:
    friend class TracingGuard;
    graph::Graph* graph_;
    TraceOptions options_;
    std::vector<std::string> stack_;
};

/** RAII activation of a TracingState on this thread. */
class TracingGuard
{
  public:
    explicit TracingGuard(TracingState* state);
    ~TracingGuard();
    TracingGuard(const TracingGuard&) = delete;
    TracingGuard& operator=(const TracingGuard&) = delete;

  private:
    TracingState* previous_;
};

/** One profiled kernel launch (a primitive op, a fused kernel, or a
 * hand-written efficient kernel). */
struct KernelRecord
{
    std::string name;        ///< op kind or kernel name
    std::string module_path; ///< dotted owner path ("" = root)
    double flops = 0;        ///< floating-point operations
    double bytes_in = 0;     ///< bytes read (at model precision)
    double bytes_out = 0;    ///< bytes written
    double activation_bytes = 0; ///< output bytes that must persist for bwd
    bool checkpointed = false;   ///< inside a .checkpoint() scope
    bool recompute_free = false; ///< fused/efficient kernel: cheap recompute
};

/** One profiled collective. */
struct CommRecord
{
    std::string kind; ///< "all_reduce" | "all_gather" | "reduce_scatter"
    double bytes = 0; ///< payload bytes at model precision
    bool backward = false; ///< issued by the backward pass
    std::string module_path;
};

/** Cost signature of one forward pass, consumed by sim::TrainingSimulator. */
struct Profile
{
    std::vector<KernelRecord> kernels;
    std::vector<CommRecord> comms;
    /**
     * Bytes of checkpointed-module *boundary* inputs: what the backward
     * pass keeps for recomputation instead of full activations.
     */
    double checkpoint_boundary_bytes = 0;

    double totalFlops() const;
    double totalKernels() const { return static_cast<double>(kernels.size()); }
    double totalActivationBytes() const;
    double commBytes(bool backward) const;
};

/** Eager-execution cost recorder. */
class Profiler
{
  public:
    /** @param bytes_per_element model precision (2 = fp16, 4 = fp32). */
    explicit Profiler(double bytes_per_element = 2.0)
        : bytes_per_element_(bytes_per_element) {}

    double bytesPerElement() const { return bytes_per_element_; }

    void beginModule(const std::string& name, bool checkpointed);
    void endModule();

    /** Collapse all ops until the matching end into one kernel record. */
    void beginKernelScope(const std::string& name, bool recompute_free);
    void endKernelScope();

    void recordOp(const std::string& name, double flops, double elems_in,
                  double elems_out);
    void recordComm(const std::string& kind, double elems,
                    bool backward = false);

    /** Input bytes retained at a checkpointed-module boundary. */
    void recordCheckpointBoundary(double elems);

    const Profile& profile() const { return profile_; }
    Profile takeProfile() { return std::move(profile_); }

    static Profiler* current();

  private:
    friend class ProfilerGuard;
    std::string path() const;

    double bytes_per_element_;
    Profile profile_;
    std::vector<std::string> module_stack_;
    std::vector<bool> ckpt_frames_;
    int checkpoint_depth_ = 0;
    // Pending fused-kernel accumulation (nested scopes collapse into the
    // outermost one).
    int kernel_scope_depth_ = 0;
    KernelRecord pending_;
};

/** RAII activation of a Profiler on this thread. */
class ProfilerGuard
{
  public:
    explicit ProfilerGuard(Profiler* profiler);
    ~ProfilerGuard();
    ProfilerGuard(const ProfilerGuard&) = delete;
    ProfilerGuard& operator=(const ProfilerGuard&) = delete;

  private:
    Profiler* previous_;
};

/** This thread is rank `rank` of `world_size`; collectives use `group`
 * when set (numeric) or are merely accounted (meta profiling). */
struct DistContext
{
    int rank = 0;
    int world_size = 1;
    runtime::ProcessGroup* group = nullptr;
    /**
     * The group's membership generation (elastic world epoch) this
     * thread was spawned into; 0 = don't enforce. When set, a deposit
     * into a group whose membership has since been rebuilt is rejected
     * with a stale-generation CollectiveError instead of silently
     * joining a world the rank no longer belongs to.
     */
    int64_t membership_generation = 0;

    static DistContext* current();
};

/** RAII activation of a DistContext on this thread. */
class DistGuard
{
  public:
    explicit DistGuard(DistContext* context);
    ~DistGuard();
    DistGuard(const DistGuard&) = delete;
    DistGuard& operator=(const DistGuard&) = delete;

  private:
    DistContext* previous_;
};

} // namespace nn
} // namespace slapo
