#include "nn/context.h"

#include <numeric>

namespace slapo {
namespace nn {

namespace {
thread_local TracingState* g_tracing = nullptr;
thread_local Profiler* g_profiler = nullptr;
thread_local DistContext* g_dist = nullptr;
} // namespace

std::string
TracingState::currentPath() const
{
    std::string path;
    for (const auto& part : stack_) {
        if (!path.empty()) path += ".";
        path += part;
    }
    return path;
}

TracingState*
TracingState::current()
{
    return g_tracing;
}

TracingGuard::TracingGuard(TracingState* state) : previous_(g_tracing)
{
    g_tracing = state;
}

TracingGuard::~TracingGuard()
{
    g_tracing = previous_;
}

double
Profile::totalFlops() const
{
    double acc = 0;
    for (const auto& k : kernels) acc += k.flops;
    return acc;
}

double
Profile::totalActivationBytes() const
{
    double acc = 0;
    for (const auto& k : kernels) acc += k.activation_bytes;
    return acc;
}

double
Profile::commBytes(bool backward) const
{
    double acc = 0;
    for (const auto& c : comms) {
        if (c.backward == backward) acc += c.bytes;
    }
    return acc;
}

void
Profiler::beginModule(const std::string& name, bool checkpointed)
{
    module_stack_.push_back(name);
    if (checkpointed) ++checkpoint_depth_;
    // Remember whether this frame raised the checkpoint depth so endModule
    // can undo it; encode by appending a marker character to the stack
    // entry would be fragile — track with a parallel stack instead.
    ckpt_frames_.push_back(checkpointed);
}

void
Profiler::endModule()
{
    SLAPO_ASSERT(!module_stack_.empty(), "endModule without beginModule");
    if (ckpt_frames_.back()) --checkpoint_depth_;
    ckpt_frames_.pop_back();
    module_stack_.pop_back();
}

void
Profiler::beginKernelScope(const std::string& name, bool recompute_free)
{
    if (kernel_scope_depth_++ == 0) {
        pending_ = KernelRecord{};
        pending_.name = name;
        pending_.module_path = path();
        pending_.checkpointed = checkpoint_depth_ > 0;
        pending_.recompute_free = recompute_free;
    }
}

void
Profiler::endKernelScope()
{
    SLAPO_ASSERT(kernel_scope_depth_ > 0, "endKernelScope without begin");
    if (--kernel_scope_depth_ == 0) {
        profile_.kernels.push_back(pending_);
    }
}

void
Profiler::recordOp(const std::string& name, double flops, double elems_in,
                   double elems_out)
{
    const double bytes_in = elems_in * bytes_per_element_;
    const double bytes_out = elems_out * bytes_per_element_;
    if (kernel_scope_depth_ > 0) {
        // Inside a fused/efficient kernel: accumulate FLOPs; only the
        // scope's first reads and last write count as traffic, which we
        // approximate as max-in and last-out.
        pending_.flops += flops;
        pending_.bytes_in = std::max(pending_.bytes_in, bytes_in);
        pending_.bytes_out = bytes_out;
        pending_.activation_bytes = bytes_out;
        return;
    }
    KernelRecord rec;
    rec.name = name;
    rec.module_path = path();
    rec.flops = flops;
    rec.bytes_in = bytes_in;
    rec.bytes_out = bytes_out;
    rec.activation_bytes = bytes_out;
    rec.checkpointed = checkpoint_depth_ > 0;
    profile_.kernels.push_back(rec);
}

void
Profiler::recordComm(const std::string& kind, double elems, bool backward)
{
    CommRecord rec;
    rec.kind = kind;
    rec.bytes = elems * bytes_per_element_;
    rec.backward = backward;
    rec.module_path = path();
    profile_.comms.push_back(rec);
}

void
Profiler::recordCheckpointBoundary(double elems)
{
    profile_.checkpoint_boundary_bytes += elems * bytes_per_element_;
}

std::string
Profiler::path() const
{
    std::string p;
    for (const auto& part : module_stack_) {
        if (!p.empty()) p += ".";
        p += part;
    }
    return p;
}

Profiler*
Profiler::current()
{
    return g_profiler;
}

ProfilerGuard::ProfilerGuard(Profiler* profiler) : previous_(g_profiler)
{
    g_profiler = profiler;
}

ProfilerGuard::~ProfilerGuard()
{
    g_profiler = previous_;
}

DistContext*
DistContext::current()
{
    return g_dist;
}

DistGuard::DistGuard(DistContext* context) : previous_(g_dist)
{
    g_dist = context;
}

DistGuard::~DistGuard()
{
    g_dist = previous_;
}

} // namespace nn
} // namespace slapo
