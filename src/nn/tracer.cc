#include "nn/tracer.h"

namespace slapo {
namespace nn {

std::shared_ptr<graph::Graph>
traceModule(Module& module, const std::vector<Shape>& input_shapes,
            TraceOptions options)
{
    SLAPO_CHECK(module.traceable(),
                "module of type '" << module.typeName()
                                   << "' cannot be traced: its coding style "
                                      "defeats the symbolic tracer (trace a "
                                      "submodule instead)");
    auto g = std::make_shared<graph::Graph>();

    std::vector<Value> inputs;
    inputs.reserve(input_shapes.size());
    for (size_t i = 0; i < input_shapes.size(); ++i) {
        graph::Node* ph = g->createNode(graph::NodeKind::Placeholder,
                                        "input" + std::to_string(i));
        ph->setShapes({input_shapes[i]});
        inputs.emplace_back(Tensor::meta(input_shapes[i]), ph);
    }

    TracingState state(g.get(), std::move(options));
    std::vector<Value> outputs;
    {
        TracingGuard guard(&state);
        outputs = module.call(inputs);
    }

    graph::Node* out = g->createNode(graph::NodeKind::Output, "output");
    std::vector<Shape> out_shapes;
    for (const Value& v : outputs) {
        SLAPO_CHECK(v.symbolic(),
                    "trace: module returned a value not derived from its "
                    "inputs/parameters");
        out->addInput(v.node());
        out_shapes.push_back(v.shape());
    }
    out->setShapes(out_shapes);
    g->setOutputNode(out);
    return g;
}

} // namespace nn
} // namespace slapo
