/**
 * @file
 * Symbolic tracer — the engine behind the `.trace(leaves, flatten)`
 * primitive (§3.3).
 *
 * Unlike a whole-model tracer (torch.fx invoked at the top), tracing is
 * invoked *module by module* so the hierarchy is preserved (§4): direct
 * children become CallModule nodes by default; with flatten=true they are
 * inlined recursively down to framework leaves / primitive ops, honoring
 * `leaves` exclusions. A module flagged untraceable (coding-style
 * limitation) raises SlapoError only when the trace actually needs to
 * capture *its* forward, so "trace by need" sidesteps it.
 */
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "nn/context.h"
#include "nn/module.h"

namespace slapo {
namespace nn {

/**
 * Symbolically execute `module.forward` on placeholder inputs of the
 * given shapes and return the captured graph. The caller typically
 * installs the result into module.meta().traced_graph (the `.trace()`
 * primitive does exactly that).
 *
 * @throws SlapoError if `module` (or any module the options require
 *         inlining) is flagged untraceable.
 */
std::shared_ptr<graph::Graph> traceModule(Module& module,
                                          const std::vector<Shape>& input_shapes,
                                          TraceOptions options = {});

} // namespace nn
} // namespace slapo
