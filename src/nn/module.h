/**
 * @file
 * The module system: hierarchical model building blocks, mirroring
 * PyTorch's nn.Module (§2/§3 of the paper).
 *
 * A Module owns named parameters and named submodules (ordered), and
 * implements `forward` against nn::F ops so it runs eagerly, propagates
 * meta shapes, or traces symbolically without any change. The schedule
 * language (src/core) never edits forward methods; it mutates the
 * per-module ScheduleMeta (shards, syncs, checkpoint flags, traced graph)
 * and swaps submodules — exactly the decoupling the paper proposes.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/context.h"
#include "nn/value.h"

namespace slapo {
namespace nn {

class Module;
using ModulePtr = std::shared_ptr<Module>;

/** How a `.sync()` aggregates partial results at a module boundary. */
enum class SyncKind
{
    AllReduce,     ///< sum partial outputs (row-sharded linear)
    AllGather,     ///< concatenate shards along `axis`
    ReduceScatter, ///< sum then keep this rank's slice along `axis`
};

/** When the `.sync()` fires. */
enum class SyncDirection
{
    Forward,  ///< aggregate forward activations
    Backward, ///< aggregate input gradients
    Both,
};

/** One scheduled synchronization point. */
struct SyncSpec
{
    SyncDirection direction = SyncDirection::Forward;
    SyncKind kind = SyncKind::AllReduce;
    int64_t axis = -1; ///< gather/scatter axis (ignored for all-reduce)
};

/** Parameter sharding decision recorded by `.shard(name, axis)`. */
struct ShardSpec
{
    int64_t axis = 0;
    int world_size = 1;
    /**
     * Number of interleaved groups along the shard axis. A fused-QKV
     * weight of shape (3H, H) sharded with interleave=3 gives each rank
     * [q_r; k_r; v_r] rather than a contiguous slice, keeping the split
     * into thirds correct after sharding (Megatron's fused layout).
     */
    int64_t interleave = 1;
};

/**
 * Execution strategy attached to a module by schedule primitives. The
 * module definition itself never changes; this is the "schedule".
 */
struct ScheduleMeta
{
    /** param name -> shard decision. */
    std::map<std::string, ShardSpec> sharded_params;
    /** synchronization points applied to this module's output/grad. */
    std::vector<SyncSpec> syncs;
    /** activation checkpointing wraps this module. */
    bool checkpointed = false;
    /** `.pipeline_split()`: a stage boundary after this module. */
    bool pipeline_split_after = false;
    /** `.decompose()`: inline this leaf into primitive ops when tracing. */
    bool decomposed = false;
    /** static graph installed by `.trace()` (and rewritten by fuse etc.). */
    std::shared_ptr<graph::Graph> traced_graph;
};

/**
 * Base class of every model building block.
 *
 * Subclasses register parameters/children in their constructor and
 * implement forward(). Use call() — not forward() directly — so the
 * traced graph, sync hooks, profiler scopes, and checkpoint scopes all
 * apply.
 */
class Module : public std::enable_shared_from_this<Module>
{
  public:
    explicit Module(std::string type_name) : type_name_(std::move(type_name)) {}
    virtual ~Module() = default;
    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;

    /** The computation; write it once against nn::F ops. */
    virtual std::vector<Value> forward(const std::vector<Value>& inputs) = 0;

    /**
     * Execute with all scheduling applied: dispatches to the traced graph
     * if installed, wraps profiler/checkpoint scopes, applies forward
     * sync points. This is the only correct way to invoke a module.
     */
    std::vector<Value> call(const std::vector<Value>& inputs);

    /** Convenience for single-output modules. */
    Value callOne(const std::vector<Value>& inputs);

    // --- identity -----------------------------------------------------

    const std::string& typeName() const { return type_name_; }

    /**
     * Whether the symbolic tracer can capture this module's forward.
     * Mirrors the paper's "coding style" limitation (§5.1, GPT-Neo): some
     * real models defeat whole-graph tracers; we reproduce that with an
     * explicit flag so the TorchScript baseline fails where the paper's
     * did while per-submodule tracing still works.
     */
    bool traceable() const { return traceable_; }
    void setTraceable(bool v) { traceable_ = v; }

    /**
     * Hand-written efficient kernels (flash attention, fused bias-GeLU)
     * execute as a single launch and keep no quadratic intermediates;
     * the profiler collapses their ops into one KernelRecord.
     */
    virtual bool profileAsKernel() const { return false; }

    /** Efficient kernels recompute cheaply (flash attention backward). */
    virtual bool recomputeFree() const { return false; }

    // --- parameters -----------------------------------------------------

    /** Register a parameter tensor under `name`. */
    void registerParam(const std::string& name, Tensor tensor);

    bool hasParam(const std::string& name) const;
    /** Remove a parameter (and any shard decision recorded for it). */
    void removeParam(const std::string& name);
    Tensor& paramTensor(const std::string& name);
    const Tensor& paramTensor(const std::string& name) const;
    void setParamTensor(const std::string& name, Tensor tensor);
    std::vector<std::string> paramNames() const;

    /**
     * Access a parameter as a Value: eager outside tracing; a GetParam
     * node when this module is being inlined into a traced graph.
     */
    Value param(const std::string& name);

    // --- children -----------------------------------------------------

    /** Register an owned child module under `name`. */
    void registerChild(const std::string& name, ModulePtr module);

    bool hasChild(const std::string& name) const;
    ModulePtr child(const std::string& name) const;
    /** Swap a child (the `.replace()` primitive's mechanism). */
    void replaceChild(const std::string& name, ModulePtr module);
    const std::vector<std::pair<std::string, ModulePtr>>& children() const
    {
        return children_;
    }

    /**
     * Invoke a child from inside forward(). Under tracing this decides
     * between emitting a CallModule node and inlining, per TraceOptions.
     */
    std::vector<Value> callChild(const std::string& name,
                                 const std::vector<Value>& inputs);
    Value callChildOne(const std::string& name,
                       const std::vector<Value>& inputs);

    // --- tree traversal ---------------------------------------------------

    /** Resolve a dotted path ("encoder.layer.3.attention"); "" = this. */
    ModulePtr findByPath(const std::string& path);

    /** All (path, module) pairs in pre-order, including this ("" path). */
    std::vector<std::pair<std::string, Module*>> namedModules();

    /** All (path, param-name) pairs with their tensors, in pre-order. */
    std::vector<std::pair<std::string, Tensor*>> namedParams();

    /** Total parameter element count of the subtree. */
    int64_t numParams() const;

    /** Materialize every meta parameter in the subtree with random init. */
    void initializeParams(uint64_t seed);

    /**
     * Structural deep copy: clones the module tree and parameter tensors
     * (meta stays meta) and copies schedule metadata. Used by the
     * verifier (keep an unscheduled reference) and the distributed
     * runtime (per-rank replicas).
     */
    virtual ModulePtr clone() const = 0;

    // --- schedule metadata ----------------------------------------------

    ScheduleMeta& meta() { return meta_; }
    const ScheduleMeta& meta() const { return meta_; }

  protected:
    /** Helper for clone(): copy params, children, meta, flags into dst. */
    void cloneInto(Module* dst) const;

  private:
    std::vector<Value> runForward(const std::vector<Value>& inputs);
    std::vector<Value> applyForwardSyncs(std::vector<Value> outputs);

    std::string type_name_;
    bool traceable_ = true;
    std::vector<std::pair<std::string, Tensor>> params_;
    std::vector<std::pair<std::string, ModulePtr>> children_;
    ScheduleMeta meta_;
};

/** Collective helpers shared by sync hooks and parallel modules. */
namespace F {
Value allReduce(const Value& x);
Value allGather(const Value& x, int64_t axis);
Value reduceScatter(const Value& x, int64_t axis);
} // namespace F

} // namespace nn
} // namespace slapo
