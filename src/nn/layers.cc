#include "nn/layers.h"

#include <atomic>
#include <cmath>

#include "tensor/ops.h"

namespace slapo {
namespace nn {

uint64_t
nextDropoutSeed()
{
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1);
}

// --- Linear ---------------------------------------------------------------

Linear::Linear(int64_t in_features, int64_t out_features, bool bias)
    : Module("Linear"),
      in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias)
{
    registerParam("weight", Tensor::meta({out_features, in_features}));
    if (bias) {
        registerParam("bias", Tensor::meta({out_features}));
    }
}

std::vector<Value>
Linear::forward(const std::vector<Value>& inputs)
{
    const Value& x = inputs[0];
    if (meta().decomposed && has_bias_) {
        // Bias split out as a separate Add so graph-level passes (fuse
        // bias+gelu, bias+dropout+residual+LN) can grab it — §2.2 step ②.
        Value y = F::linear(x, param("weight"), Value());
        return {F::add(y, param("bias"))};
    }
    return {F::linear(x, param("weight"),
                      has_bias_ ? param("bias") : Value())};
}

ModulePtr
Linear::clone() const
{
    auto m = std::make_shared<Linear>(in_features_, out_features_, has_bias_);
    cloneInto(m.get());
    return m;
}

// --- LayerNorm ---------------------------------------------------------------

LayerNorm::LayerNorm(int64_t dim, double eps)
    : Module("LayerNorm"), dim_(dim), eps_(eps)
{
    registerParam("gamma", Tensor::meta({dim}));
    registerParam("beta", Tensor::meta({dim}));
}

std::vector<Value>
LayerNorm::forward(const std::vector<Value>& inputs)
{
    return {F::layerNorm(inputs[0], param("gamma"), param("beta"), eps_)};
}

ModulePtr
LayerNorm::clone() const
{
    auto m = std::make_shared<LayerNorm>(dim_, eps_);
    cloneInto(m.get());
    return m;
}

// --- Embedding ---------------------------------------------------------------

Embedding::Embedding(int64_t vocab, int64_t dim)
    : Module("Embedding"), vocab_(vocab), dim_(dim)
{
    registerParam("weight", Tensor::meta({vocab, dim}));
}

std::vector<Value>
Embedding::forward(const std::vector<Value>& inputs)
{
    const Value& ids = inputs[0];
    auto it = meta().sharded_params.find("weight");
    if (it != meta().sharded_params.end() && it->second.axis == 0) {
        // Vocab-parallel lookup: this rank's table covers rows
        // [rank * per, (rank + 1) * per); foreign ids contribute zero and
        // the scheduled all-reduce sync sums the partial embeddings.
        DistContext* dc = DistContext::current();
        const int rank = dc ? dc->rank : 0;
        const int64_t per = vocab_ / it->second.world_size;
        const double start = static_cast<double>(rank) * per;
        Value local = F::clampScalar(F::addScalar(ids, -start), 0,
                                     static_cast<double>(per - 1));
        Value emb = F::embedding(local, param("weight"));
        Value mask = F::rangeMask(ids, start, start + per);
        Shape mask_shape = ids.shape();
        mask_shape.push_back(1);
        return {F::mul(emb, F::reshape(mask, mask_shape))};
    }
    return {F::embedding(ids, param("weight"))};
}

void
Embedding::padVocabTo(int64_t new_vocab)
{
    if (new_vocab <= vocab_) {
        return;
    }
    Tensor& table = paramTensor("weight");
    if (table.isMeta()) {
        setParamTensor("weight", Tensor::meta({new_vocab, dim_}));
    } else {
        Tensor padded = Tensor::zeros({new_vocab, dim_});
        std::copy(table.data(), table.data() + table.numel(), padded.data());
        setParamTensor("weight", padded);
    }
    vocab_ = new_vocab;
}

ModulePtr
Embedding::clone() const
{
    auto m = std::make_shared<Embedding>(vocab_, dim_);
    cloneInto(m.get());
    // cloneInto copied the (possibly padded) table; keep vocab in sync.
    m->vocab_ = m->paramTensor("weight").shape()[0];
    return m;
}

// --- PositionalEmbedding ------------------------------------------------------

PositionalEmbedding::PositionalEmbedding(int64_t max_positions, int64_t dim)
    : Module("PositionalEmbedding"), max_positions_(max_positions), dim_(dim)
{
    registerParam("weight", Tensor::meta({max_positions, dim}));
}

std::vector<Value>
PositionalEmbedding::forward(const std::vector<Value>& inputs)
{
    const Value& x = inputs[0]; // [B, S, H]
    const int64_t seq = x.shape()[x.shape().size() - 2];
    SLAPO_CHECK(seq <= max_positions_,
                "PositionalEmbedding: sequence " << seq
                                                 << " exceeds max positions "
                                                 << max_positions_);
    Value pe = F::narrow(param("weight"), 0, 0, seq);
    return {F::add(x, F::reshape(pe, {1, seq, dim_}))};
}

ModulePtr
PositionalEmbedding::clone() const
{
    auto m = std::make_shared<PositionalEmbedding>(max_positions_, dim_);
    cloneInto(m.get());
    return m;
}

// --- Dropout ---------------------------------------------------------------

Dropout::Dropout(double p) : Module("Dropout"), p_(p), seed_(nextDropoutSeed())
{
}

std::vector<Value>
Dropout::forward(const std::vector<Value>& inputs)
{
    return {F::dropout(inputs[0], p_, static_cast<int64_t>(seed_))};
}

ModulePtr
Dropout::clone() const
{
    auto m = std::make_shared<Dropout>(p_);
    cloneInto(m.get());
    m->seed_ = seed_; // replicas must sample identical masks
    return m;
}

// --- Activation ---------------------------------------------------------------

const char*
Activation::nameOf(Kind kind)
{
    switch (kind) {
      case Kind::Gelu: return "GELU";
      case Kind::Relu: return "ReLU";
      case Kind::Tanh: return "TanhAct";
    }
    return "?";
}

Activation::Activation(Kind kind) : Module(nameOf(kind)), kind_(kind) {}

std::vector<Value>
Activation::forward(const std::vector<Value>& inputs)
{
    switch (kind_) {
      case Kind::Gelu: return {F::gelu(inputs[0])};
      case Kind::Relu: return {F::relu(inputs[0])};
      case Kind::Tanh: return {F::tanh(inputs[0])};
    }
    SLAPO_THROW("Activation: bad kind");
}

ModulePtr
Activation::clone() const
{
    auto m = std::make_shared<Activation>(kind_);
    cloneInto(m.get());
    return m;
}

// --- Sequential ---------------------------------------------------------------

Sequential::Sequential(std::vector<ModulePtr> modules) : Module("Sequential")
{
    for (auto& m : modules) {
        append(std::move(m));
    }
}

void
Sequential::append(ModulePtr module)
{
    registerChild(std::to_string(children().size()), std::move(module));
}

std::vector<Value>
Sequential::forward(const std::vector<Value>& inputs)
{
    std::vector<Value> current = inputs;
    for (const auto& [name, child] : children()) {
        current = callChild(name, current);
    }
    return current;
}

ModulePtr
Sequential::clone() const
{
    auto m = std::make_shared<Sequential>();
    cloneInto(m.get());
    return m;
}

// --- CoreAttention ---------------------------------------------------------------

CoreAttention::CoreAttention(int64_t head_dim, double dropout_p, bool causal)
    : CoreAttention("CoreAttention", head_dim, dropout_p, causal)
{
}

CoreAttention::CoreAttention(std::string type_name, int64_t head_dim,
                             double dropout_p, bool causal)
    : Module(std::move(type_name)),
      head_dim_(head_dim),
      dropout_p_(dropout_p),
      causal_(causal),
      dropout_seed_(nextDropoutSeed())
{
}

std::vector<Value>
CoreAttention::forward(const std::vector<Value>& inputs)
{
    SLAPO_CHECK(inputs.size() == 3,
                typeName() << ": expects (q, k, v), got " << inputs.size()
                           << " inputs");
    const Value& q = inputs[0];
    const Value& k = inputs[1];
    const Value& v = inputs[2];
    const Shape& s = q.shape(); // [B, S, H_local]
    SLAPO_CHECK(s.size() == 3, typeName() << ": expects [B, S, H] inputs");
    const int64_t batch = s[0];
    const int64_t seq = s[1];
    const int64_t hidden = s[2];
    SLAPO_CHECK(hidden % head_dim_ == 0,
                typeName() << ": hidden " << hidden
                           << " not divisible by head dim " << head_dim_);
    const int64_t heads = hidden / head_dim_;

    // Cross-attention may have a key/value sequence length differing
    // from the query's (T5 decoder), so split heads per tensor.
    auto split_heads = [&](const Value& x, std::vector<int64_t> perm) {
        const int64_t s_x = x.shape()[1];
        return F::permute(F::reshape(x, {batch, s_x, heads, head_dim_}),
                          std::move(perm));
    };
    Value qh = split_heads(q, {0, 2, 1, 3}); // [B, h, Sq, d]
    Value kh = split_heads(k, {0, 2, 3, 1}); // [B, h, d, Sk]
    Value vh = split_heads(v, {0, 2, 1, 3}); // [B, h, Sk, d]

    const double scale = 1.0 / std::sqrt(static_cast<double>(head_dim_));
    Profiler* prof = Profiler::current();
    const bool fused_scope =
        fused_softmax_ && prof != nullptr && TracingState::current() == nullptr;
    if (fused_scope) {
        prof->beginKernelScope("fused_scale_mask_softmax",
                               /*recompute_free=*/false);
    }
    Value scores = F::matmul(F::scale(qh, scale), kh); // [B, h, Sq, Sk]
    if (hasParam("rel_bias")) {
        scores = F::relPosBias(scores, param("rel_bias"));
    }
    if (causal_) {
        scores = F::causalMask(scores);
    }
    Value probs = F::softmax(scores);
    probs = F::dropout(probs, dropout_p_, static_cast<int64_t>(dropout_seed_));
    if (fused_scope) {
        prof->endKernelScope();
    }
    Value context = F::matmul(probs, vh); // [B, h, Sq, d]
    context = F::permute(context, {0, 2, 1, 3});
    return {F::reshape(context, {batch, seq, hidden})};
}

void
CoreAttention::enableRelativeBias(int64_t num_heads, int64_t buckets)
{
    SLAPO_CHECK(!hasParam("rel_bias"),
                typeName() << ": relative bias already enabled");
    registerParam("rel_bias", Tensor::meta({num_heads, 2 * buckets - 1}));
}

void
CoreAttention::disableRelativeBias()
{
    if (hasParam("rel_bias")) {
        removeParam("rel_bias");
    }
}

ModulePtr
CoreAttention::clone() const
{
    auto m = std::make_shared<CoreAttention>(head_dim_, dropout_p_, causal_);
    cloneInto(m.get());
    m->dropout_seed_ = dropout_seed_;
    m->fused_softmax_ = fused_softmax_;
    return m;
}

// --- EfficientAttention --------------------------------------------------------

EfficientAttention::EfficientAttention(int64_t head_dim, double dropout_p,
                                       bool causal)
    : CoreAttention("EfficientAttention", head_dim, dropout_p, causal)
{
}

ModulePtr
EfficientAttention::fromCore(const CoreAttention& core)
{
    auto m = std::make_shared<EfficientAttention>(
        core.headDim(), core.dropoutP(), core.causal());
    m->setDropoutSeed(core.dropoutSeed()); // bit-identical replacement
    if (core.hasRelativeBias()) {
        const Tensor& table = core.paramTensor("rel_bias");
        m->registerParam("rel_bias", table.clone());
        auto it = core.meta().sharded_params.find("rel_bias");
        if (it != core.meta().sharded_params.end()) {
            m->meta().sharded_params["rel_bias"] = it->second;
        }
        // xFormers' mem_eff_attention takes the bias as attn_bias; the
        // launch stays monolithic but recompute is no longer free.
    }
    return m;
}

ModulePtr
EfficientAttention::clone() const
{
    auto m = std::make_shared<EfficientAttention>(headDim(), dropoutP(),
                                                  causal());
    cloneInto(m.get());
    m->setDropoutSeed(dropoutSeed());
    return m;
}

// --- SelfAttention ---------------------------------------------------------------

SelfAttention::SelfAttention(int64_t hidden, int64_t num_heads,
                             double dropout_p, bool causal,
                             int64_t relative_buckets)
    : Module("SelfAttention"),
      hidden_(hidden),
      num_heads_(num_heads),
      dropout_p_(dropout_p),
      causal_(causal)
{
    SLAPO_CHECK(hidden % num_heads == 0,
                "SelfAttention: hidden not divisible by heads");
    registerChild("query", std::make_shared<Linear>(hidden, hidden));
    registerChild("key", std::make_shared<Linear>(hidden, hidden));
    registerChild("value", std::make_shared<Linear>(hidden, hidden));
    auto core =
        std::make_shared<CoreAttention>(hidden / num_heads, dropout_p, causal);
    if (relative_buckets > 0) {
        core->enableRelativeBias(num_heads, relative_buckets);
    }
    registerChild("core", core);
}

std::vector<Value>
SelfAttention::forward(const std::vector<Value>& inputs)
{
    const Value& x = inputs[0];
    Value q = callChildOne("query", {x});
    Value k = callChildOne("key", {x});
    Value v = callChildOne("value", {x});
    return {callChildOne("core", {q, k, v})};
}

ModulePtr
SelfAttention::clone() const
{
    auto m = std::make_shared<SelfAttention>(hidden_, num_heads_, dropout_p_,
                                             causal_);
    cloneInto(m.get());
    return m;
}

// --- FusedSelfAttention -----------------------------------------------------------

FusedSelfAttention::FusedSelfAttention(int64_t hidden, int64_t num_heads,
                                       double dropout_p, bool causal)
    : Module("FusedSelfAttention"),
      hidden_(hidden),
      num_heads_(num_heads),
      dropout_p_(dropout_p),
      causal_(causal)
{
    registerChild("qkv", std::make_shared<Linear>(hidden, 3 * hidden));
    registerChild("core", std::make_shared<CoreAttention>(
                              hidden / num_heads, dropout_p, causal));
}

ModulePtr
FusedSelfAttention::fromSelfAttention(SelfAttention& attn)
{
    auto q = std::static_pointer_cast<Linear>(attn.child("query"));
    auto k = std::static_pointer_cast<Linear>(attn.child("key"));
    auto v = std::static_pointer_cast<Linear>(attn.child("value"));
    auto core = std::static_pointer_cast<CoreAttention>(attn.child("core"));

    auto fused = std::make_shared<FusedSelfAttention>(
        attn.hidden(), attn.numHeads(), core->dropoutP(), core->causal());
    auto fused_core = std::static_pointer_cast<CoreAttention>(
        fused->child("core"));
    fused_core->setDropoutSeed(core->dropoutSeed());
    if (core->hasRelativeBias()) {
        fused_core->registerParam("rel_bias",
                                  core->paramTensor("rel_bias").clone());
    }

    auto fused_qkv = fused->child("qkv");
    auto concat_params = [&](const std::string& name) {
        const Tensor& tq = q->paramTensor(name);
        if (tq.isMeta()) {
            return; // meta stays meta (shape was set by the constructor)
        }
        fused_qkv->setParamTensor(
            name, ops::concat({tq, k->paramTensor(name), v->paramTensor(name)},
                              0));
    };
    concat_params("weight");
    concat_params("bias");
    return fused;
}

std::vector<Value>
FusedSelfAttention::forward(const std::vector<Value>& inputs)
{
    const Value& x = inputs[0];
    Value qkv = callChildOne("qkv", {x}); // [B, S, 3 * H_local]
    const int64_t h_local = qkv.shape().back() / 3;
    Value q = F::narrow(qkv, -1, 0, h_local);
    Value k = F::narrow(qkv, -1, h_local, h_local);
    Value v = F::narrow(qkv, -1, 2 * h_local, h_local);
    return {callChildOne("core", {q, k, v})};
}

ModulePtr
FusedSelfAttention::clone() const
{
    auto m = std::make_shared<FusedSelfAttention>(hidden_, num_heads_,
                                                  dropout_p_, causal_);
    cloneInto(m.get());
    return m;
}

// --- Projection ---------------------------------------------------------------

Projection::Projection(int64_t hidden, double dropout_p, bool pre_norm)
    : Module("Projection"),
      hidden_(hidden),
      dropout_p_(dropout_p),
      pre_norm_(pre_norm)
{
    registerChild("dense", std::make_shared<Linear>(hidden, hidden));
    registerChild("dropout", std::make_shared<Dropout>(dropout_p));
    if (!pre_norm) {
        registerChild("norm", std::make_shared<LayerNorm>(hidden));
    }
}

std::vector<Value>
Projection::forward(const std::vector<Value>& inputs)
{
    SLAPO_CHECK(inputs.size() == 2,
                "Projection: expects (context, residual), got "
                    << inputs.size() << " inputs");
    const Value& context = inputs[0];
    const Value& residual = inputs[1];
    Value y = callChildOne("dense", {context});
    y = callChildOne("dropout", {y});
    y = F::add(y, residual);
    if (!pre_norm_) {
        y = callChildOne("norm", {y});
    }
    return {y};
}

ModulePtr
Projection::clone() const
{
    auto m = std::make_shared<Projection>(hidden_, dropout_p_, pre_norm_);
    cloneInto(m.get());
    return m;
}

// --- FFN ---------------------------------------------------------------

FFN::FFN(int64_t hidden, int64_t intermediate, double dropout_p, bool pre_norm)
    : Module("FFN"),
      hidden_(hidden),
      intermediate_(intermediate),
      dropout_p_(dropout_p),
      pre_norm_(pre_norm)
{
    registerChild("fc1", std::make_shared<Linear>(hidden, intermediate));
    registerChild("act", std::make_shared<Activation>(Activation::Kind::Gelu));
    registerChild("fc2", std::make_shared<Linear>(intermediate, hidden));
    registerChild("dropout", std::make_shared<Dropout>(dropout_p));
    if (!pre_norm) {
        registerChild("norm", std::make_shared<LayerNorm>(hidden));
    }
}

std::vector<Value>
FFN::forward(const std::vector<Value>& inputs)
{
    const Value& x = inputs[0];
    // Pre-norm blocks pass (normed_x, residual); post-norm pass (x).
    const Value& residual = inputs.size() > 1 ? inputs[1] : inputs[0];
    Value y = callChildOne("fc1", {x});
    y = callChildOne("act", {y});
    y = callChildOne("fc2", {y});
    y = callChildOne("dropout", {y});
    y = F::add(y, residual);
    if (!pre_norm_) {
        y = callChildOne("norm", {y});
    }
    return {y};
}

ModulePtr
FFN::clone() const
{
    auto m = std::make_shared<FFN>(hidden_, intermediate_, dropout_p_,
                                   pre_norm_);
    cloneInto(m.get());
    return m;
}

// --- FusedBiasGelu ---------------------------------------------------------------

FusedBiasGelu::FusedBiasGelu(Tensor bias) : Module("FusedBiasGelu")
{
    registerParam("bias", std::move(bias));
}

std::vector<Value>
FusedBiasGelu::forward(const std::vector<Value>& inputs)
{
    return {F::gelu(F::add(inputs[0], param("bias")))};
}

ModulePtr
FusedBiasGelu::clone() const
{
    auto m = std::make_shared<FusedBiasGelu>(paramTensor("bias").clone());
    cloneInto(m.get());
    return m;
}

// --- VocabParallelLinear ----------------------------------------------------

VocabParallelLinear::VocabParallelLinear(int64_t in_features, int64_t vocab,
                                         bool bias, int world_size)
    : Module("VocabParallelLinear"),
      in_features_(in_features),
      vocab_(vocab),
      padded_vocab_((vocab + world_size - 1) / world_size * world_size),
      has_bias_(bias),
      world_size_(world_size)
{
    registerParam("weight", Tensor::meta({padded_vocab_, in_features}));
    if (bias) {
        registerParam("bias", Tensor::meta({padded_vocab_}));
    }
    ShardSpec spec;
    spec.axis = 0;
    spec.world_size = world_size;
    meta().sharded_params["weight"] = spec;
    if (bias) {
        meta().sharded_params["bias"] = spec;
    }
}

ModulePtr
VocabParallelLinear::fromLinear(Linear& linear, int world_size)
{
    auto head = std::make_shared<VocabParallelLinear>(
        linear.inFeatures(), linear.outFeatures(), linear.hasBias(),
        world_size);
    auto pad_copy = [&](const std::string& name, int64_t padded_rows) {
        const Tensor& src = linear.paramTensor(name);
        if (src.isMeta()) {
            return; // constructor already set the padded meta shape
        }
        Shape shape = src.shape();
        shape[0] = padded_rows;
        Tensor padded = Tensor::zeros(shape);
        std::copy(src.data(), src.data() + src.numel(), padded.data());
        head->setParamTensor(name, padded);
    };
    pad_copy("weight", head->paddedVocab());
    if (linear.hasBias()) {
        pad_copy("bias", head->paddedVocab());
    }
    return head;
}

std::vector<Value>
VocabParallelLinear::forward(const std::vector<Value>& inputs)
{
    Value logits = F::linear(inputs[0], param("weight"),
                             has_bias_ ? param("bias") : Value());
    DistContext* dc = DistContext::current();
    if (dc != nullptr && dc->world_size > 1) {
        logits = F::allGather(logits, -1);
    }
    if (logits.shape().back() != vocab_) {
        logits = F::narrow(logits, -1, 0, vocab_);
    }
    return {logits};
}

ModulePtr
VocabParallelLinear::clone() const
{
    auto m = std::make_shared<VocabParallelLinear>(in_features_, vocab_,
                                                   has_bias_, world_size_);
    cloneInto(m.get());
    return m;
}

// --- Conv2d ---------------------------------------------------------------

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t pad)
    : Module("Conv2d"),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad)
{
    registerParam("weight",
                  Tensor::meta({out_channels, in_channels, kernel, kernel}));
}

std::vector<Value>
Conv2d::forward(const std::vector<Value>& inputs)
{
    return {F::conv2d(inputs[0], param("weight"), stride_, pad_)};
}

ModulePtr
Conv2d::clone() const
{
    auto m = std::make_shared<Conv2d>(in_channels_, out_channels_, kernel_,
                                      stride_, pad_);
    cloneInto(m.get());
    return m;
}

// --- BatchNorm2d ---------------------------------------------------------------

BatchNorm2d::BatchNorm2d(int64_t channels, double eps)
    : Module("BatchNorm2d"), channels_(channels), eps_(eps)
{
    registerParam("gamma", Tensor::meta({channels}));
    registerParam("beta", Tensor::meta({channels}));
}

std::vector<Value>
BatchNorm2d::forward(const std::vector<Value>& inputs)
{
    return {F::batchNorm2d(inputs[0], param("gamma"), param("beta"), eps_)};
}

ModulePtr
BatchNorm2d::clone() const
{
    auto m = std::make_shared<BatchNorm2d>(channels_, eps_);
    cloneInto(m.get());
    return m;
}

} // namespace nn
} // namespace slapo
