#include "analysis/pipeline_check.h"

#include "graph/graph.h"

namespace slapo {
namespace analysis {

namespace {

using graph::Node;
using graph::NodeKind;

bool
hasAnnotatedStrictDescendant(nn::Module& module)
{
    for (auto& [path, m] : module.namedModules()) {
        if (!path.empty() && m->meta().pipeline_split_after) {
            return true;
        }
    }
    return false;
}

/** Chain-form check of one container's traced graph (SLP304/SLP305). */
void
checkChainForm(const std::string& path, const graph::Graph& graph,
               Diagnostics& diags)
{
    const Node* previous = nullptr;
    for (const Node* node : graph.nodes()) {
        switch (node->kind()) {
          case NodeKind::Placeholder:
            previous = node;
            break;
          case NodeKind::CallModule: {
            if (node->inputs().size() != 1 ||
                node->inputs()[0] != previous) {
                Diagnostic& d = diags.add(
                    "SLP304", Severity::Error,
                    "container is not a single-tensor linear chain at "
                    "this node — a data edge crosses the stage cut, so "
                    "forward activations (and their backward gradients) "
                    "would have to flow between stages outside the "
                    "pipeline",
                    path);
                d.node = node->name();
                d.node_id = node->id();
                d.primitive = node->provenance().primitive;
            }
            previous = node;
            break;
          }
          case NodeKind::Output: {
            if (node->inputs().size() != 1 ||
                node->inputs()[0] != previous) {
                Diagnostic& d = diags.add(
                    "SLP304", Severity::Error,
                    "container output is not the last child call — the "
                    "final stage would depend on an earlier stage's "
                    "intermediate value",
                    path);
                d.node = node->name();
                d.node_id = node->id();
                d.primitive = node->provenance().primitive;
            }
            break;
          }
          default: {
            Diagnostic& d = diags.add(
                "SLP305", Severity::Error,
                "container computes outside its children on a split "
                "path (move the computation into a submodule)",
                path);
            d.node = node->name();
            d.node_id = node->id();
            d.primitive = node->provenance().primitive;
            break;
          }
        }
    }
}

/**
 * Follow the rightmost execution spine from `module`; a split
 * annotation on any module whose last atom ends the whole model marks a
 * boundary after the final atom — an empty trailing stage.
 */
bool
trailingSplit(nn::Module& module)
{
    if (module.meta().pipeline_split_after) {
        return true;
    }
    if (!hasAnnotatedStrictDescendant(module)) {
        return false;
    }
    // Last executed child: from the traced chain if present, else the
    // registration order of a Sequential; other containers are not
    // statically resolvable — stay quiet.
    nn::ModulePtr last;
    if (module.meta().traced_graph) {
        for (const Node* node : module.meta().traced_graph->nodes()) {
            if (node->kind() == NodeKind::CallModule) {
                nn::ModulePtr child = module.child(node->target());
                if (child) {
                    last = child;
                }
            }
        }
    } else if (module.typeName() == "Sequential" &&
               !module.children().empty()) {
        last = module.children().back().second;
    }
    return last != nullptr && trailingSplit(*last);
}

} // namespace

void
checkPipeline(nn::Module& root, int world_size, Diagnostics& diags)
{
    int annotations = 0;
    for (auto& [path, m] : root.namedModules()) {
        if (m->meta().pipeline_split_after) {
            ++annotations;
            if (path.empty()) {
                diags.add("SLP302", Severity::Error,
                          ".pipeline_split() on the root module — the "
                          "boundary after the whole model leaves an "
                          "empty final stage",
                          path);
            }
        }
    }
    if (annotations == 0) {
        return;
    }
    const int stages = annotations + 1;
    if (stages > world_size) {
        diags.add("SLP301", Severity::Error,
                  std::to_string(annotations) +
                      " .pipeline_split() annotation(s) make " +
                      std::to_string(stages) +
                      " stages, but the world size is only " +
                      std::to_string(world_size),
                  "");
    }

    for (auto& [path, m] : root.namedModules()) {
        if (!hasAnnotatedStrictDescendant(*m)) {
            continue;
        }
        if (m->meta().traced_graph) {
            checkChainForm(path, *m->meta().traced_graph, diags);
        } else if (m->typeName() != "Sequential") {
            diags.add("SLP310", Severity::Note,
                      "container on a split path is untraced and not a "
                      "Sequential — its chain form is checked when the "
                      "partitioner traces it",
                      path);
        }
    }

    if (trailingSplit(root)) {
        diags.add("SLP303", Severity::Error,
                  "the last executed module is a stage boundary — the "
                  "trailing .pipeline_split() produces an empty final "
                  "stage",
                  "");
    }
}

} // namespace analysis
} // namespace slapo
