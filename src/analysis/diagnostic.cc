#include "analysis/diagnostic.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/json_util.h"

namespace slapo {
namespace analysis {

const char*
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Error: return "error";
      case Severity::Warning: return "warning";
      case Severity::Note: return "note";
    }
    return "unknown";
}

std::string
Diagnostic::toString() const
{
    std::ostringstream out;
    out << code << " " << severityName(severity) << ": " << message;
    out << " [module=" << (module_path.empty() ? "<root>" : module_path);
    if (!node.empty()) {
        out << " node=" << node;
    }
    if (!primitive.empty()) {
        out << " primitive=" << primitive;
    }
    out << "]";
    return out.str();
}

std::string
Diagnostic::toJson() const
{
    using obs::json::quoted;
    std::string out = "{";
    out += "\"code\":" + quoted(code);
    out += ",\"severity\":" + quoted(severityName(severity));
    out += ",\"message\":" + quoted(message);
    out += ",\"module\":" + quoted(module_path);
    if (!node.empty()) {
        out += ",\"node\":" + quoted(node);
        out += ",\"node_id\":" + std::to_string(node_id);
    }
    if (!primitive.empty()) {
        out += ",\"primitive\":" + quoted(primitive);
    }
    out += "}";
    return out;
}

Diagnostic&
Diagnostics::add(std::string code, Severity severity, std::string message,
                 std::string module_path)
{
    Diagnostic d;
    d.code = std::move(code);
    d.severity = severity;
    d.message = std::move(message);
    d.module_path = std::move(module_path);
    diags_.push_back(std::move(d));
    return diags_.back();
}

size_t
Diagnostics::count(Severity severity) const
{
    size_t n = 0;
    for (const Diagnostic& d : diags_) {
        n += d.severity == severity ? 1 : 0;
    }
    return n;
}

bool
Diagnostics::hasCode(const std::string& code) const
{
    for (const Diagnostic& d : diags_) {
        if (d.code == code) {
            return true;
        }
    }
    return false;
}

std::string
Diagnostics::errorCodes() const
{
    std::set<std::string> codes;
    for (const Diagnostic& d : diags_) {
        if (d.severity == Severity::Error) {
            codes.insert(d.code);
        }
    }
    std::string out;
    for (const std::string& c : codes) {
        if (!out.empty()) {
            out += ',';
        }
        out += c;
    }
    return out;
}

std::string
Diagnostics::toString() const
{
    std::ostringstream out;
    out << "schedule lint: " << errorCount() << " error(s), "
        << count(Severity::Warning) << " warning(s)";
    for (const Diagnostic& d : diags_) {
        out << "\n  " << d.toString();
    }
    return out.str();
}

std::string
Diagnostics::diagnosticsJson() const
{
    std::string out = "[";
    for (size_t i = 0; i < diags_.size(); ++i) {
        if (i > 0) {
            out += ',';
        }
        out += diags_[i].toJson();
    }
    out += "]";
    return out;
}

std::string
Diagnostics::toJson() const
{
    std::string out = "{\"kind\":\"lint\",\"schema_version\":2";
    out += ",\"errors\":" + std::to_string(errorCount());
    out += ",\"warnings\":" + std::to_string(count(Severity::Warning));
    out += ",\"notes\":" + std::to_string(count(Severity::Note));
    out += ",\"diagnostics\":" + diagnosticsJson();
    out += "}";
    return out;
}

StaticLintError::StaticLintError(Diagnostics diagnostics, std::string site)
    : SlapoError("static schedule lint failed at " + site + ": " +
                 diagnostics.toString()),
      diagnostics_(std::move(diagnostics)), site_(std::move(site))
{
}

} // namespace analysis
} // namespace slapo
