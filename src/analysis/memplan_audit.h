/**
 * @file
 * Alias-safety audit of a static memory plan (graph/memplan.h).
 *
 * Independently recomputes liveness over the graph and proves that the
 * plan's two kinds of actions can never corrupt a value another node
 * still needs:
 *
 *  - every `release_after` entry really is dead at that point (no later
 *    consumer, not a graph output)                      SLP401 / SLP402
 *  - every `inplace` mark satisfies the planner's full eligibility
 *    contract (eligible op, input 0 dies here, single sole-occurrence
 *    operand, matching shapes)                          SLP403
 *  - plan entries are well-formed (ids in range, released once) SLP404
 *
 * Planner bugs thereby surface as lint errors instead of silent
 * numerical corruption deep inside a training step.
 */
#pragma once

#include "analysis/diagnostic.h"
#include "graph/graph.h"
#include "graph/memplan.h"

namespace slapo {
namespace analysis {

/** Audit `plan` against `graph`. `module_path` is for diagnostics. */
void auditMemPlan(const graph::Graph& graph, const graph::MemPlan& plan,
                  const std::string& module_path, Diagnostics& diags);

/**
 * Build (or fetch the cached) plan for every traced graph under `root`
 * using its placeholder-declared shapes, and audit each one.
 */
void auditMemPlans(nn::Module& root, Diagnostics& diags);

} // namespace analysis
} // namespace slapo
