/**
 * @file
 * Static validation of `.pipeline_split()` annotations.
 *
 * Mirrors the rules core::partitionPipeline enforces while building
 * stages — but without tracing or executing anything, so the tuner and
 * the schedule gates can reject a bad split for free:
 *
 *  - SLP301  more stages than the world size can host
 *  - SLP302  split annotation on the root module (empty final stage)
 *  - SLP303  trailing split: the last executed atom is a boundary
 *  - SLP304  container on an annotation path is not a single-tensor
 *            linear chain (a cross-stage data edge — e.g. a residual
 *            connection spanning the cut — would need activations from
 *            another stage in both passes)
 *  - SLP305  container computes outside its children on the split path
 *  - SLP310  note: container not statically checkable (untraced)
 */
#pragma once

#include "analysis/diagnostic.h"
#include "nn/module.h"

namespace slapo {
namespace analysis {

/** Validate all pipeline-split annotations under `root`. */
void checkPipeline(nn::Module& root, int world_size, Diagnostics& diags);

} // namespace analysis
} // namespace slapo
