/**
 * @file
 * Sharding-consistency analysis over `.shard()` / `.sync()` decisions.
 *
 * Models each value's distribution across the tensor-parallel group as a
 * small lattice and transfers it through the model — module by module,
 * and op by op inside traced graphs — with zero tensor execution:
 *
 *     Unknown                (not statically determined)
 *     Replicated             (identical on every rank)
 *     ColSharded             (split along the last axis; Megatron's
 *                             column-parallel activations)
 *     RowSharded(axis)       (split along a leading axis)
 *     PartialSum             (every rank holds an addend; the true value
 *                             is the cross-rank sum — must be aggregated
 *                             by a `.sync()` before non-linear use)
 *
 * States are seeded by `.shard()` specs on parameters, transferred
 * through matmul / elementwise / reductions / reshapes, and discharged
 * by `.sync()` points (all-reduce, all-gather, reduce-scatter). The
 * analysis is deliberately conservative: when it cannot prove a state it
 * degrades to Unknown rather than guessing, so every error it *does*
 * report is a schedule that cannot be numerically correct.
 *
 * Codes: SLP201 bad shard axis/param, SLP202 extent not divisible by
 * world size x interleave, SLP203 shard world-size mismatch, SLP210
 * orphaned sync (no shard left in the subtree), SLP211 sync direction
 * mismatch, SLP212 sync kind mismatch, SLP220 redundant sync, SLP230
 * PartialSum consumed by a non-sync op, SLP231 PartialSum escapes
 * without a forward sync, SLP232 sharded value consumed where a
 * replicated one is required.
 */
#pragma once

#include "analysis/diagnostic.h"
#include "nn/module.h"

namespace slapo {
namespace analysis {

/** Lattice state of one value's distribution across ranks. */
struct DistState
{
    enum class Kind
    {
        Unknown,
        Replicated,
        RowSharded,
        ColSharded,
        PartialSum,
    };

    Kind kind = Kind::Unknown;
    /** Shard axis (RowSharded: from the front; ColSharded: always last). */
    int64_t axis = -1;

    static DistState unknown() { return {}; }
    static DistState replicated() { return {Kind::Replicated, -1}; }
    static DistState partial() { return {Kind::PartialSum, -1}; }
    /** Sharded along `axis` of a rank-`rank` tensor. */
    static DistState sharded(int64_t axis, size_t rank);

    bool is(Kind k) const { return kind == k; }
    const char* name() const;
};

/**
 * Run the full sharding analysis: per-spec structural checks plus the
 * lattice dataflow from the model inputs (assumed replicated) to its
 * outputs. `world_size` is the tensor-parallel group size the schedule
 * will execute under.
 */
void checkSharding(nn::Module& root, int world_size, Diagnostics& diags);

} // namespace analysis
} // namespace slapo
