/**
 * @file
 * Static shape / dtype inference over traced graphs (zero execution).
 *
 * Re-derives every node's output shape from the declared placeholder and
 * parameter shapes using the same per-op rules the interpreter's kernels
 * enforce at runtime (nn/functional.cc), and compares against the shape
 * the node *declares*. A schedule rewrite that left the graph
 * inconsistent — a `.replace()` whose subgraph emits the wrong extent, a
 * fused kernel whose inner graph no longer matches its node — surfaces
 * as a diagnostic naming the node, its Provenance stamp, and the module
 * path, instead of a kernel assertion deep inside a training step.
 *
 * Dtype inference is a two-point lattice {Any, Float}: ops that produce
 * definitely-real values (softmax, gelu, matmul, ...) taint their
 * output, and consumers that need integral inputs (embedding ids,
 * cross-entropy targets) report when fed a tainted value.
 *
 * Codes: SLP101 node shape contradiction, SLP102 parameter shape
 * mismatch, SLP103 impossible op inputs, SLP110 real-valued embedding
 * ids, SLP111 real-valued cross-entropy targets.
 */
#pragma once

#include "analysis/diagnostic.h"
#include "graph/graph.h"
#include "nn/module.h"

namespace slapo {
namespace analysis {

/**
 * Infer and check one traced graph. `module_path` is the dotted schedule
 * path of the module owning the graph (diagnostic location only).
 */
void inferGraphShapes(const graph::Graph& graph,
                      const std::string& module_path, Diagnostics& diags);

/** Run inferGraphShapes over every traced graph in the module tree. */
void inferShapes(nn::Module& root, Diagnostics& diags);

} // namespace analysis
} // namespace slapo
