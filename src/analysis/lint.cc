#include "analysis/lint.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string_view>

#include "analysis/memplan_audit.h"
#include "analysis/pipeline_check.h"
#include "analysis/shape_infer.h"
#include "analysis/sharding.h"
#include "obs/run_log.h"

namespace slapo {
namespace analysis {

namespace {

std::atomic<int> g_enabled_override{-1}; // -1 = unset, else 0/1

struct EnvConfig
{
    bool enabled = true;
    std::string report_path;
};

const EnvConfig&
envConfig()
{
    static const EnvConfig resolved = [] {
        EnvConfig config;
        const char* env = std::getenv("SLAPO_LINT");
        if (env != nullptr) {
            const std::string_view v(env);
            if (v == "0" || v == "off" || v == "false") {
                config.enabled = false;
            } else if (!v.empty() && v != "1" && v != "on" &&
                       v != "true") {
                config.report_path = std::string(v);
            }
        }
        return config;
    }();
    return resolved;
}

} // namespace

bool
lintEnabled()
{
    const int forced = g_enabled_override.load(std::memory_order_relaxed);
    if (forced >= 0) {
        return forced != 0;
    }
    return envConfig().enabled;
}

void
setLintEnabled(bool enabled)
{
    g_enabled_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

const std::string&
lintReportPath()
{
    return envConfig().report_path;
}

Diagnostics
lintModule(nn::Module& root, int world_size)
{
    Diagnostics diags;
    // Graph structure first: the later passes assume validated graphs
    // (topological order, single trailing output, shape counts).
    for (auto& [path, m] : root.namedModules()) {
        if (!m->meta().traced_graph) {
            continue;
        }
        try {
            m->meta().traced_graph->validate();
        } catch (const SlapoError& e) {
            diags.add("SLP001", Severity::Error,
                      std::string("graph validation failed: ") + e.what(),
                      path);
        }
    }
    inferShapes(root, diags);
    checkSharding(root, world_size, diags);
    checkPipeline(root, world_size, diags);
    auditMemPlans(root, diags);
    return diags;
}

Diagnostics
enforceLint(nn::Module& root, int world_size, const char* site)
{
    if (!lintEnabled()) {
        return Diagnostics{};
    }
    const auto start = std::chrono::steady_clock::now();
    Diagnostics diags = lintModule(root, world_size);
    const int64_t wall_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count();

    if (obs::RunLog* log = obs::runLog()) {
        obs::RunLogRecord record("lint");
        record.str("site", site)
            .num("world_size", static_cast<int64_t>(world_size))
            .num("errors", static_cast<int64_t>(diags.errorCount()))
            .num("warnings",
                 static_cast<int64_t>(diags.count(Severity::Warning)))
            .num("notes",
                 static_cast<int64_t>(diags.count(Severity::Note)))
            .num("wall_ns", wall_ns)
            .flag("passed", !diags.hasErrors());
        if (!diags.empty()) {
            record.raw("diagnostics", diags.diagnosticsJson());
        }
        log->write(record);
    }
    if (!lintReportPath().empty()) {
        // Serialize appends: gates can fire from concurrent trainers.
        static std::mutex report_mutex;
        std::lock_guard<std::mutex> lock(report_mutex);
        std::ofstream out(lintReportPath(), std::ios::app);
        if (out) {
            out << diags.toJson() << "\n";
        }
    }
    if (diags.hasErrors()) {
        throw StaticLintError(std::move(diags), site);
    }
    return diags;
}

} // namespace analysis
} // namespace slapo
