#include "analysis/shape_infer.h"

#include <optional>
#include <sstream>

namespace slapo {
namespace analysis {

namespace {

using graph::Node;
using graph::NodeKind;
using graph::OpKind;

/** Attach node location + provenance to a finding. */
Diagnostic&
report(Diagnostics& diags, const char* code, Severity severity,
       std::string message, const std::string& module_path, const Node* node)
{
    Diagnostic& d =
        diags.add(code, severity, std::move(message), module_path);
    d.node = node->name();
    d.node_id = node->id();
    d.primitive = node->provenance().primitive;
    return d;
}

int64_t
normalizeAxis(int64_t axis, size_t rank)
{
    return axis < 0 ? axis + static_cast<int64_t>(rank) : axis;
}

bool
axisInRange(int64_t axis, size_t rank)
{
    return axis >= 0 && axis < static_cast<int64_t>(rank);
}

/** Per-node inference state: propagated shapes + float taint per output. */
struct ValueInfo
{
    std::vector<Shape> shapes;
    std::vector<bool> is_float;
};

class GraphInfer
{
  public:
    GraphInfer(const graph::Graph& graph, const std::string& module_path,
               Diagnostics& diags)
        : graph_(graph), path_(module_path), diags_(diags)
    {
    }

    void run();

  private:
    const ValueInfo* infoOf(const Node* node) const
    {
        auto it = info_.find(node);
        return it == info_.end() ? nullptr : &it->second;
    }

    /** First-output shape of input `i`, or nullptr when unavailable. */
    const Shape* inShape(const Node* node, size_t i) const
    {
        if (i >= node->inputs().size()) {
            return nullptr;
        }
        const ValueInfo* info = infoOf(node->inputs()[i]);
        if (info == nullptr || info->shapes.empty()) {
            return nullptr;
        }
        return &info->shapes[0];
    }

    bool inFloat(const Node* node, size_t i) const
    {
        if (i >= node->inputs().size()) {
            return false;
        }
        const ValueInfo* info = infoOf(node->inputs()[i]);
        return info != nullptr && !info->is_float.empty() &&
               info->is_float[0];
    }

    void badInputs(const Node* node, const std::string& detail)
    {
        report(diags_, "SLP103", Severity::Error,
               "impossible inputs for op '" + node->signature() + "': " +
                   detail,
               path_, node);
    }

    /** Compare the computed shape against the node's declared shape. */
    void checkDeclared(const Node* node, const Shape& computed);

    void inferCallOp(const Node* node, ValueInfo& out);
    void inferFused(const Node* node, ValueInfo& out);

    const graph::Graph& graph_;
    const std::string& path_;
    Diagnostics& diags_;
    std::map<const Node*, ValueInfo> info_;
};

void
GraphInfer::checkDeclared(const Node* node, const Shape& computed)
{
    if (node->shapes().empty()) {
        return; // validate() reports missing shapes
    }
    if (node->shapes()[0] != computed) {
        report(diags_, "SLP101", Severity::Error,
               "shape contradiction: op '" + node->signature() +
                   "' computes " + shapeToString(computed) +
                   " but the node declares " +
                   shapeToString(node->shapes()[0]),
               path_, node);
    }
}

void
GraphInfer::inferCallOp(const Node* node, ValueInfo& out)
{
    const OpKind op = node->op();
    const size_t arity = node->inputs().size();
    const Shape* a = inShape(node, 0);
    const Shape* b = inShape(node, 1);

    // Default: propagate the declared shape, taint unknown.
    std::optional<Shape> computed;
    bool is_float = false;

    switch (op) {
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div: {
        if (arity != 2 || a == nullptr || b == nullptr) {
            badInputs(node, "binary op needs two inputs");
            break;
        }
        try {
            computed = broadcastShapes(*a, *b);
        } catch (const SlapoError&) {
            badInputs(node, "operands " + shapeToString(*a) + " and " +
                                shapeToString(*b) + " do not broadcast");
        }
        is_float = op == OpKind::Div || inFloat(node, 0) || inFloat(node, 1);
        break;
      }
      case OpKind::Scale:
      case OpKind::AddScalar:
      case OpKind::Gelu:
      case OpKind::Relu:
      case OpKind::Tanh:
      case OpKind::Clamp:
      case OpKind::RangeMask:
      case OpKind::CausalMask:
      case OpKind::Softmax:
      case OpKind::Dropout:
      case OpKind::Identity: {
        if (a == nullptr) {
            badInputs(node, "unary op needs one input");
            break;
        }
        computed = *a;
        switch (op) {
          case OpKind::Gelu:
          case OpKind::Tanh:
          case OpKind::Softmax:
          case OpKind::Dropout:
          case OpKind::Scale:
          case OpKind::CausalMask:
            is_float = true;
            break;
          case OpKind::RangeMask:
            is_float = false; // 0/1 mask, integral-safe
            break;
          default:
            is_float = inFloat(node, 0);
            break;
        }
        break;
      }
      case OpKind::RelPosBias: {
        if (arity != 2 || a == nullptr || b == nullptr) {
            badInputs(node, "rel_pos_bias needs (scores, table)");
            break;
        }
        if (a->size() != 4 || b->size() != 2 || (*a)[1] != (*b)[0]) {
            badInputs(node, "scores " + shapeToString(*a) +
                                " vs head-indexed table " +
                                shapeToString(*b));
            break;
        }
        computed = *a;
        is_float = true;
        break;
      }
      case OpKind::LayerNormOp:
      case OpKind::BatchNormOp: {
        if (arity != 3 || a == nullptr) {
            badInputs(node, "normalization needs (x, gamma, beta)");
            break;
        }
        const Shape* gamma = inShape(node, 1);
        const int64_t feat = op == OpKind::LayerNormOp
                                 ? (a->empty() ? 0 : a->back())
                                 : (a->size() > 1 ? (*a)[1] : 0);
        if (gamma != nullptr &&
            (gamma->size() != 1 || (*gamma)[0] != feat)) {
            badInputs(node, "gamma " + shapeToString(*gamma) +
                                " does not match feature extent " +
                                std::to_string(feat));
        }
        computed = *a;
        is_float = true;
        break;
      }
      case OpKind::Matmul: {
        if (arity != 2 || a == nullptr || b == nullptr) {
            badInputs(node, "matmul needs two inputs");
            break;
        }
        if (a->size() < 2 || b->size() < 2 ||
            a->back() != (*b)[b->size() - 2]) {
            badInputs(node, "inner extents of " + shapeToString(*a) +
                                " @ " + shapeToString(*b) +
                                " do not match");
            break;
        }
        Shape batch_a(a->begin(), a->end() - 2);
        Shape batch_b(b->begin(), b->end() - 2);
        try {
            Shape result = broadcastShapes(batch_a, batch_b);
            result.push_back((*a)[a->size() - 2]);
            result.push_back(b->back());
            computed = std::move(result);
        } catch (const SlapoError&) {
            badInputs(node, "batch extents of " + shapeToString(*a) +
                                " @ " + shapeToString(*b) +
                                " do not broadcast");
        }
        is_float = true;
        break;
      }
      case OpKind::LinearOp: {
        if ((arity != 2 && arity != 3) || a == nullptr || b == nullptr) {
            badInputs(node, "linear needs (x, weight[, bias])");
            break;
        }
        if (b->size() != 2 || a->empty() || a->back() != (*b)[1]) {
            badInputs(node, "input " + shapeToString(*a) +
                                " vs weight " + shapeToString(*b));
            break;
        }
        const Shape* bias = arity == 3 ? inShape(node, 2) : nullptr;
        if (bias != nullptr &&
            (bias->size() != 1 || (*bias)[0] != (*b)[0])) {
            badInputs(node, "bias " + shapeToString(*bias) +
                                " vs weight " + shapeToString(*b));
        }
        Shape result = *a;
        result.back() = (*b)[0];
        computed = std::move(result);
        is_float = true;
        break;
      }
      case OpKind::TransposeLast2: {
        if (a == nullptr || a->size() < 2) {
            badInputs(node, "transpose needs rank >= 2");
            break;
        }
        Shape result = *a;
        std::swap(result[result.size() - 1], result[result.size() - 2]);
        computed = std::move(result);
        is_float = inFloat(node, 0);
        break;
      }
      case OpKind::Reshape: {
        if (a == nullptr || !node->hasAttr("shape")) {
            badInputs(node, "reshape needs input and 'shape' attr");
            break;
        }
        Shape target = node->attrInts("shape");
        if (numelOf(target) != numelOf(*a)) {
            badInputs(node, "reshape " + shapeToString(*a) + " -> " +
                                shapeToString(target) +
                                " changes element count");
            break;
        }
        computed = std::move(target);
        is_float = inFloat(node, 0);
        break;
      }
      case OpKind::Permute: {
        if (a == nullptr || !node->hasAttr("perm")) {
            badInputs(node, "permute needs input and 'perm' attr");
            break;
        }
        const std::vector<int64_t>& perm = node->attrInts("perm");
        if (perm.size() != a->size()) {
            badInputs(node, "perm rank " + std::to_string(perm.size()) +
                                " vs input rank " +
                                std::to_string(a->size()));
            break;
        }
        Shape result(a->size());
        bool ok = true;
        std::vector<bool> seen(a->size(), false);
        for (size_t i = 0; i < perm.size(); ++i) {
            if (!axisInRange(perm[i], a->size()) || seen[perm[i]]) {
                ok = false;
                break;
            }
            seen[perm[i]] = true;
            result[i] = (*a)[perm[i]];
        }
        if (!ok) {
            badInputs(node, "'perm' is not a permutation of the axes");
            break;
        }
        computed = std::move(result);
        is_float = inFloat(node, 0);
        break;
      }
      case OpKind::Concat: {
        if (arity == 0 || a == nullptr || !node->hasAttr("axis")) {
            badInputs(node, "concat needs inputs and an 'axis' attr");
            break;
        }
        const int64_t axis = normalizeAxis(node->attrInt("axis"), a->size());
        if (!axisInRange(axis, a->size())) {
            badInputs(node, "concat axis out of range");
            break;
        }
        Shape result = *a;
        bool ok = true;
        bool any_float = inFloat(node, 0);
        for (size_t i = 1; i < arity; ++i) {
            const Shape* s = inShape(node, i);
            if (s == nullptr || s->size() != a->size()) {
                ok = false;
                break;
            }
            for (size_t d = 0; d < s->size(); ++d) {
                if (static_cast<int64_t>(d) != axis &&
                    (*s)[d] != (*a)[d]) {
                    ok = false;
                }
            }
            if (!ok) {
                break;
            }
            result[axis] += (*s)[axis];
            any_float = any_float || inFloat(node, i);
        }
        if (!ok) {
            badInputs(node, "concat operands disagree off the concat axis");
            break;
        }
        computed = std::move(result);
        is_float = any_float;
        break;
      }
      case OpKind::Narrow: {
        if (a == nullptr || !node->hasAttr("axis")) {
            badInputs(node, "narrow needs input and axis/start/length");
            break;
        }
        const int64_t axis = normalizeAxis(node->attrInt("axis"), a->size());
        const int64_t start = node->attrInt("start");
        const int64_t length = node->attrInt("length");
        if (!axisInRange(axis, a->size()) || start < 0 || length <= 0 ||
            start + length > (*a)[axis]) {
            badInputs(node, "narrow [" + std::to_string(start) + ", " +
                                std::to_string(start + length) +
                                ") exceeds axis extent " +
                                std::to_string((*a)[axis]));
            break;
        }
        Shape result = *a;
        result[axis] = length;
        computed = std::move(result);
        is_float = inFloat(node, 0);
        break;
      }
      case OpKind::EmbeddingOp: {
        if (arity != 2 || a == nullptr || b == nullptr) {
            badInputs(node, "embedding needs (ids, table)");
            break;
        }
        if (b->size() != 2) {
            badInputs(node, "embedding table must be 2-D, got " +
                                shapeToString(*b));
            break;
        }
        if (inFloat(node, 0)) {
            report(diags_, "SLP110", Severity::Error,
                   "embedding ids input is a real-valued tensor "
                   "(produced by floating-point compute); ids must stay "
                   "integral",
                   path_, node);
        }
        Shape result = *a;
        result.push_back(b->back());
        computed = std::move(result);
        is_float = true;
        break;
      }
      case OpKind::CrossEntropyOp:
      case OpKind::MseLossOp: {
        if (arity != 2 || a == nullptr || b == nullptr) {
            badInputs(node, "loss needs (prediction, target)");
            break;
        }
        if (op == OpKind::CrossEntropyOp && inFloat(node, 1)) {
            report(diags_, "SLP111", Severity::Error,
                   "cross-entropy targets are real-valued (produced by "
                   "floating-point compute); class targets must stay "
                   "integral",
                   path_, node);
        }
        computed = Shape{1};
        is_float = true;
        break;
      }
      case OpKind::Conv2dOp: {
        if (arity != 2 || a == nullptr || b == nullptr) {
            badInputs(node, "conv2d needs (x, w)");
            break;
        }
        if (a->size() != 4 || b->size() != 4 || (*a)[1] != (*b)[1]) {
            badInputs(node, "NCHW input " + shapeToString(*a) +
                                " vs OIHW weight " + shapeToString(*b));
            break;
        }
        const int64_t stride =
            node->hasAttr("stride") ? node->attrInt("stride") : 1;
        const int64_t pad = node->hasAttr("pad") ? node->attrInt("pad") : 0;
        const int64_t ho = ((*a)[2] + 2 * pad - (*b)[2]) / stride + 1;
        const int64_t wo = ((*a)[3] + 2 * pad - (*b)[3]) / stride + 1;
        if (ho <= 0 || wo <= 0) {
            badInputs(node, "kernel does not fit the padded input");
            break;
        }
        computed = Shape{(*a)[0], (*b)[0], ho, wo};
        is_float = true;
        break;
      }
      case OpKind::GlobalAvgPoolOp: {
        if (a == nullptr || a->size() != 4) {
            badInputs(node, "global average pool needs a 4-D input");
            break;
        }
        computed = Shape{(*a)[0], (*a)[1]};
        is_float = true;
        break;
      }
      case OpKind::AllReduce: {
        if (a != nullptr) {
            computed = *a;
        }
        is_float = inFloat(node, 0);
        break;
      }
      case OpKind::AllGather:
      case OpKind::ReduceScatter: {
        // The extent scaling factor is the tracing-time world size,
        // which the graph does not record; check divisibility instead
        // of the exact extent.
        is_float = inFloat(node, 0);
        if (a == nullptr || node->shapes().empty()) {
            break;
        }
        const Shape& declared = node->shapes()[0];
        const int64_t axis = normalizeAxis(
            node->hasAttr("axis") ? node->attrInt("axis") : -1, a->size());
        bool ok = declared.size() == a->size() && axisInRange(axis, a->size());
        for (size_t d = 0; ok && d < declared.size(); ++d) {
            if (static_cast<int64_t>(d) == axis) {
                const int64_t big = op == OpKind::AllGather ? declared[d]
                                                            : (*a)[d];
                const int64_t small = op == OpKind::AllGather ? (*a)[d]
                                                              : declared[d];
                ok = small > 0 && big % small == 0;
            } else {
                ok = declared[d] == (*a)[d];
            }
        }
        if (!ok) {
            report(diags_, "SLP101", Severity::Error,
                   "collective '" + node->signature() + "' declares " +
                       shapeToString(declared) +
                       " which is not a per-axis multiple/divisor of its "
                       "input " +
                       shapeToString(*a),
                   path_, node);
        }
        return; // declared shape is the propagated value; checked above
      }
    }

    if (computed.has_value()) {
        checkDeclared(node, *computed);
    }
    out.is_float.assign(std::max<size_t>(node->shapes().size(), 1),
                        is_float);
}

void
GraphInfer::inferFused(const Node* node, ValueInfo& out)
{
    graph::Graph* sub = node->subgraph();
    if (sub == nullptr) {
        badInputs(node, "fused op has no subgraph");
        return;
    }
    const auto& sub_inputs = sub->placeholders();
    if (sub_inputs.size() != node->inputs().size()) {
        badInputs(node,
                  "fused subgraph expects " +
                      std::to_string(sub_inputs.size()) + " inputs, node has " +
                      std::to_string(node->inputs().size()));
        return;
    }
    // The fused node's operands must match the subgraph's placeholder
    // declarations — the subgraph is checked internally against those.
    for (size_t i = 0; i < sub_inputs.size(); ++i) {
        const Shape* outer = inShape(node, i);
        if (outer == nullptr || sub_inputs[i]->shapes().empty()) {
            continue;
        }
        if (*outer != sub_inputs[i]->shapes()[0]) {
            report(diags_, "SLP101", Severity::Error,
                   "fused subgraph input " + std::to_string(i) +
                       " declares " +
                       shapeToString(sub_inputs[i]->shapes()[0]) +
                       " but receives " + shapeToString(*outer),
                   path_, node);
        }
    }
    inferGraphShapes(*sub, path_, diags_);
    // Subgraph outputs must line up with the fused node's declaration.
    const Node* sub_out = sub->outputNode();
    if (sub_out != nullptr &&
        sub_out->inputs().size() == node->shapes().size()) {
        for (size_t i = 0; i < node->shapes().size(); ++i) {
            const Node* ret = sub_out->inputs()[i];
            if (!ret->shapes().empty() &&
                ret->shapes()[0] != node->shapes()[i]) {
                report(diags_, "SLP101", Severity::Error,
                       "fused node output " + std::to_string(i) +
                           " declares " + shapeToString(node->shapes()[i]) +
                           " but its subgraph computes " +
                           shapeToString(ret->shapes()[0]),
                       path_, node);
            }
        }
    }
}

void
GraphInfer::run()
{
    for (const Node* node : graph_.nodes()) {
        ValueInfo out;
        out.shapes = node->shapes(); // propagate declarations
        out.is_float.assign(std::max<size_t>(node->shapes().size(), 1),
                            false);
        switch (node->kind()) {
          case NodeKind::Placeholder:
            break;
          case NodeKind::GetParam: {
            nn::Module* owner = node->module();
            if (owner == nullptr || !owner->hasParam(node->target())) {
                report(diags_, "SLP102", Severity::Error,
                       "get_param target '" + node->target() +
                           "' is not a parameter of the referenced module",
                       path_, node);
                break;
            }
            const Shape& actual =
                owner->paramTensor(node->target()).shape();
            if (!node->shapes().empty() && node->shapes()[0] != actual) {
                // A shard-materialized replica legitimately carries a
                // 1/world-size slice along the shard axis; anything else
                // is a real mismatch.
                bool shard_explained = false;
                auto it =
                    owner->meta().sharded_params.find(node->target());
                if (it != owner->meta().sharded_params.end()) {
                    const nn::ShardSpec& spec = it->second;
                    const Shape& declared = node->shapes()[0];
                    if (declared.size() == actual.size() &&
                        axisInRange(spec.axis, actual.size())) {
                        shard_explained = true;
                        for (size_t d = 0; d < actual.size(); ++d) {
                            if (static_cast<int64_t>(d) == spec.axis) {
                                shard_explained =
                                    shard_explained &&
                                    (declared[d] ==
                                         actual[d] * spec.world_size ||
                                     actual[d] ==
                                         declared[d] * spec.world_size);
                            } else {
                                shard_explained = shard_explained &&
                                                  declared[d] == actual[d];
                            }
                        }
                    }
                }
                if (!shard_explained) {
                    report(diags_, "SLP102", Severity::Error,
                           "parameter '" + node->target() + "' has shape " +
                               shapeToString(actual) +
                               " but the graph declares " +
                               shapeToString(node->shapes()[0]),
                           path_, node);
                }
            }
            std::fill(out.is_float.begin(), out.is_float.end(), true);
            break;
          }
          case NodeKind::CallOp:
            inferCallOp(node, out);
            break;
          case NodeKind::CallModule:
            break; // child output declarations are trusted here
          case NodeKind::FusedOp:
            inferFused(node, out);
            break;
          case NodeKind::TupleGet: {
            if (node->inputs().empty()) {
                break;
            }
            const Node* src = node->inputs()[0];
            const int64_t index =
                node->hasAttr("index") ? node->attrInt("index") : 0;
            if (index < 0 ||
                index >= static_cast<int64_t>(src->shapes().size())) {
                report(diags_, "SLP103", Severity::Error,
                       "tuple_get index " + std::to_string(index) +
                           " out of range for a " +
                           std::to_string(src->shapes().size()) +
                           "-output producer",
                       path_, node);
                break;
            }
            if (!node->shapes().empty() &&
                node->shapes()[0] != src->shapes()[index]) {
                report(diags_, "SLP101", Severity::Error,
                       "tuple_get declares " +
                           shapeToString(node->shapes()[0]) +
                           " but selects output of shape " +
                           shapeToString(src->shapes()[index]),
                       path_, node);
            }
            const ValueInfo* src_info = infoOf(src);
            if (src_info != nullptr &&
                index < static_cast<int64_t>(src_info->is_float.size())) {
                std::fill(out.is_float.begin(), out.is_float.end(),
                          src_info->is_float[index]);
            }
            break;
          }
          case NodeKind::Output:
            break;
        }
        info_.emplace(node, std::move(out));
    }
}

} // namespace

void
inferGraphShapes(const graph::Graph& graph, const std::string& module_path,
                 Diagnostics& diags)
{
    GraphInfer(graph, module_path, diags).run();
}

void
inferShapes(nn::Module& root, Diagnostics& diags)
{
    for (auto& [path, m] : root.namedModules()) {
        if (m->meta().traced_graph) {
            inferGraphShapes(*m->meta().traced_graph, path, diags);
        }
    }
}

} // namespace analysis
} // namespace slapo
