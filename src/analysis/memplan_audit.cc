#include "analysis/memplan_audit.h"

#include <algorithm>

#include "nn/module.h"

namespace slapo {
namespace analysis {

namespace {

using graph::MemPlan;
using graph::Node;
using graph::NodeKind;

Diagnostic&
reportAt(Diagnostics& diags, const char* code, std::string message,
         const std::string& module_path, const Node* node)
{
    Diagnostic& d =
        diags.add(code, Severity::Error, std::move(message), module_path);
    if (node != nullptr) {
        d.node = node->name();
        d.node_id = node->id();
        d.primitive = node->provenance().primitive;
    }
    return d;
}

} // namespace

void
auditMemPlan(const graph::Graph& graph, const MemPlan& plan,
             const std::string& module_path, Diagnostics& diags)
{
    const std::vector<Node*> nodes = graph.nodes();
    const Node* output = graph.outputNode();
    const int64_t bound = graph.idBound();

    // Independent liveness: recompute the last program-order use of
    // every producing node (a value with no consumers dies at its own
    // position). Divergence between this and the plan is the bug class
    // the audit exists to catch.
    std::vector<int64_t> last_use(static_cast<size_t>(bound), -1);
    std::vector<const Node*> by_id(static_cast<size_t>(bound), nullptr);
    std::vector<bool> output_operand(static_cast<size_t>(bound), false);
    for (size_t pos = 0; pos < nodes.size(); ++pos) {
        const Node* n = nodes[pos];
        if (n->id() >= 0 && n->id() < bound) {
            last_use[n->id()] = static_cast<int64_t>(pos);
            by_id[n->id()] = n;
        }
        for (const Node* in : n->inputs()) {
            if (in->id() >= 0 && in->id() < bound) {
                last_use[in->id()] = static_cast<int64_t>(pos);
                if (n == output) {
                    output_operand[in->id()] = true;
                }
            }
        }
    }
    if (output != nullptr && output->id() >= 0 && output->id() < bound) {
        output_operand[output->id()] = true;
    }

    if (static_cast<int64_t>(plan.actions.size()) > bound) {
        diags.add("SLP404", Severity::Error,
                  "memory plan has " + std::to_string(plan.actions.size()) +
                      " action slots for an id bound of " +
                      std::to_string(bound),
                  module_path);
    }

    std::vector<bool> released(static_cast<size_t>(bound), false);
    for (size_t pos = 0; pos < nodes.size(); ++pos) {
        const Node* n = nodes[pos];
        const MemPlan::NodeActions* act = plan.at(n->id());
        if (act == nullptr) {
            continue;
        }
        for (int64_t victim : act->release_after) {
            if (victim < 0 || victim >= bound || by_id[victim] == nullptr) {
                reportAt(diags, "SLP404",
                         "release of id " + std::to_string(victim) +
                             ", which is not a node of this graph",
                         module_path, n);
                continue;
            }
            if (released[victim]) {
                reportAt(diags, "SLP404",
                         "value '" + by_id[victim]->name() +
                             "' released twice",
                         module_path, n);
                continue;
            }
            released[victim] = true;
            if (output_operand[victim]) {
                reportAt(diags, "SLP402",
                         "release of '" + by_id[victim]->name() +
                             "', which is a graph output — the caller "
                             "still owns it",
                         module_path, n);
                continue;
            }
            if (last_use[victim] > static_cast<int64_t>(pos)) {
                reportAt(diags, "SLP401",
                         "release of '" + by_id[victim]->name() +
                             "' while node '" +
                             nodes[last_use[victim]]->name() +
                             "' still consumes it later",
                         module_path, n);
            }
        }
        if (!act->inplace) {
            continue;
        }
        // In-place marks must satisfy the planner's full contract; any
        // violation can alias a live buffer into a kernel that writes it.
        if (n->kind() != NodeKind::CallOp || n->inputs().empty() ||
            !graph::inplaceEligible(n->op())) {
            reportAt(diags, "SLP403",
                     "in-place mark on a node that is not an eligible "
                     "elementwise/row-local op",
                     module_path, n);
            continue;
        }
        const Node* src = n->inputs()[0];
        if (std::count(n->inputs().begin(), n->inputs().end(), src) != 1) {
            reportAt(diags, "SLP403",
                     "in-place mark would move '" + src->name() +
                         "' out from under its second read in the same "
                         "input list",
                     module_path, n);
            continue;
        }
        bool shapes_ok = src->numOutputs() == 1 && !n->shapes().empty() &&
                         !src->shapes().empty() &&
                         n->shapes()[0] == src->shapes()[0];
        for (size_t i = 1; shapes_ok && i < n->inputs().size(); ++i) {
            shapes_ok = n->inputs()[i]->numOutputs() == 1 &&
                        !n->inputs()[i]->shapes().empty() &&
                        n->inputs()[i]->shapes()[0] == n->shapes()[0];
        }
        if (!shapes_ok) {
            reportAt(diags, "SLP403",
                     "in-place mark with mismatched operand shapes "
                     "(broadcast reads the input after the output row "
                     "would have overwritten it)",
                     module_path, n);
            continue;
        }
        if (src->id() >= 0 && src->id() < bound &&
            last_use[src->id()] > static_cast<int64_t>(pos)) {
            reportAt(diags, "SLP403",
                     "unsafe in-place mark: input '" + src->name() +
                         "' is still live — node '" +
                         nodes[last_use[src->id()]]->name() +
                         "' reads it after this op would have "
                         "overwritten it",
                     module_path, n);
        }
    }
}

void
auditMemPlans(nn::Module& root, Diagnostics& diags)
{
    for (auto& [path, m] : root.namedModules()) {
        if (!m->meta().traced_graph) {
            continue;
        }
        graph::Graph& g = *m->meta().traced_graph;
        std::vector<Shape> input_shapes;
        for (const Node* p : g.placeholders()) {
            input_shapes.push_back(p->shapes().empty() ? Shape{}
                                                       : p->shapes()[0]);
        }
        auto plan = graph::memPlanFor(g, input_shapes);
        if (plan) {
            auditMemPlan(g, *plan, path, diags);
        }
        for (const Node* node : g.nodes()) {
            if (node->kind() == graph::NodeKind::FusedOp &&
                node->subgraph() != nullptr) {
                graph::Graph& sub = *node->subgraph();
                std::vector<Shape> sub_shapes;
                for (const Node* p : sub.placeholders()) {
                    sub_shapes.push_back(
                        p->shapes().empty() ? Shape{} : p->shapes()[0]);
                }
                auto sub_plan = graph::memPlanFor(sub, sub_shapes);
                if (sub_plan) {
                    auditMemPlan(sub, *sub_plan, path, diags);
                }
            }
        }
    }
}

} // namespace analysis
} // namespace slapo
