#include "analysis/sharding.h"

#include <sstream>

#include "graph/graph.h"

namespace slapo {
namespace analysis {

namespace {

using graph::Node;
using graph::NodeKind;
using graph::OpKind;

std::string
joinPath(const std::string& base, const std::string& name)
{
    return base.empty() ? name : base + "." + name;
}

/** Shard spec with an effective (> 1) tensor-parallel degree, or null. */
const nn::ShardSpec*
effectiveSpec(const nn::Module& m, const std::string& pname)
{
    auto it = m.meta().sharded_params.find(pname);
    if (it == m.meta().sharded_params.end() || it->second.world_size <= 1) {
        return nullptr;
    }
    return &it->second;
}

bool
hasForwardSync(const nn::Module& m)
{
    for (const nn::SyncSpec& s : m.meta().syncs) {
        if (s.direction != nn::SyncDirection::Backward) {
            return true;
        }
    }
    return false;
}

} // namespace

DistState
DistState::sharded(int64_t axis, size_t rank)
{
    if (axis < 0) {
        axis += static_cast<int64_t>(rank);
    }
    DistState s;
    s.axis = axis;
    s.kind = (rank > 0 && axis == static_cast<int64_t>(rank) - 1)
                 ? Kind::ColSharded
                 : Kind::RowSharded;
    return s;
}

const char*
DistState::name() const
{
    switch (kind) {
      case Kind::Unknown: return "unknown";
      case Kind::Replicated: return "replicated";
      case Kind::RowSharded: return "row-sharded";
      case Kind::ColSharded: return "col-sharded";
      case Kind::PartialSum: return "partial-sum";
    }
    return "unknown";
}

namespace {

using Kind = DistState::Kind;

/**
 * Structural checks over the recorded shard / sync specs; these hold
 * regardless of dataflow and double as the `unshard()` cleanup oracle.
 */
void
structuralChecks(nn::Module& root, int world_size, Diagnostics& diags)
{
    for (auto& [path, m] : root.namedModules()) {
        for (const auto& [pname, spec] : m->meta().sharded_params) {
            if (!m->hasParam(pname)) {
                diags.add("SLP201", Severity::Error,
                          "shard spec names '" + pname +
                              "', which is not a parameter of this module",
                          path);
                continue;
            }
            const Shape& shape = m->paramTensor(pname).shape();
            if (spec.axis < 0 ||
                spec.axis >= static_cast<int64_t>(shape.size())) {
                diags.add("SLP201", Severity::Error,
                          "shard axis " + std::to_string(spec.axis) +
                              " out of range for parameter '" + pname +
                              "' of shape " + shapeToString(shape),
                          path);
                continue;
            }
            if (spec.world_size <= 1) {
                continue; // degenerate spec: a no-op shard
            }
            const int64_t extent = shape[spec.axis];
            const int64_t groups = spec.interleave * spec.world_size;
            if (groups <= 0 || extent % groups != 0) {
                diags.add("SLP202", Severity::Error,
                          "parameter '" + pname + "' axis " +
                              std::to_string(spec.axis) + " extent " +
                              std::to_string(extent) +
                              " is not divisible by interleave x world "
                              "size = " +
                              std::to_string(spec.interleave) + " x " +
                              std::to_string(spec.world_size),
                          path);
            }
            if (world_size > 1 && spec.world_size != world_size) {
                diags.add("SLP203", Severity::Error,
                          "parameter '" + pname + "' is sharded for world "
                          "size " +
                              std::to_string(spec.world_size) +
                              " but the schedule executes under world "
                              "size " +
                              std::to_string(world_size),
                          path);
            }
        }
        if (!m->meta().syncs.empty()) {
            bool any_shard = false;
            for (auto& [sub_path, sub] : m->namedModules()) {
                (void)sub_path;
                if (!sub->meta().sharded_params.empty()) {
                    any_shard = true;
                    break;
                }
            }
            if (!any_shard) {
                diags.add("SLP210", Severity::Error,
                          "module has " +
                              std::to_string(m->meta().syncs.size()) +
                              " .sync() point(s) but no sharded parameter "
                              "anywhere in its subtree — orphaned sync "
                              "(aggregating replicated values corrupts "
                              "them)",
                          path);
            }
            for (size_t i = 0; i < m->meta().syncs.size(); ++i) {
                for (size_t j = i + 1; j < m->meta().syncs.size(); ++j) {
                    const nn::SyncSpec& a = m->meta().syncs[i];
                    const nn::SyncSpec& b = m->meta().syncs[j];
                    if (a.direction == b.direction && a.kind == b.kind &&
                        a.axis == b.axis) {
                        diags.add("SLP220", Severity::Warning,
                                  "duplicate .sync() spec applied twice at "
                                  "the same point",
                                  path);
                    }
                }
            }
        }
    }
}

/** The lattice dataflow walker (world_size > 1 only). */
class Walker
{
  public:
    Walker(int world_size, Diagnostics& diags)
        : world_size_(world_size), diags_(diags)
    {
    }

    /**
     * Analyze a module whose real input distribution the caller knows
     * (or Unknown). Applies the module's own forward `.sync()` points,
     * mirroring nn::Module::call().
     */
    DistState analyzeModule(const std::string& path, nn::Module& m,
                            const std::vector<DistState>& inputs,
                            bool ancestor_fwd);

    /**
     * Analyze a module in an unknown context (container child): inputs
     * Unknown, and a PartialSum output with no enclosing forward sync is
     * an escape error (SLP231).
     */
    void analyzeOrphan(const std::string& path, nn::Module& m,
                       bool ancestor_fwd);

  private:
    DistState inputAt(const std::vector<DistState>& in, size_t i) const
    {
        return i < in.size() ? in[i] : DistState::unknown();
    }

    DistState transferLeaf(const std::string& path, nn::Module& m,
                           const std::vector<DistState>& inputs);
    DistState analyzeGraph(const std::string& path, nn::Module& m,
                           const graph::Graph& graph,
                           const std::vector<DistState>& inputs,
                           bool ancestor_fwd);
    DistState transferOp(const Node* node,
                         const std::vector<DistState>& inputs,
                         const std::string& path);
    DistState applySyncs(const std::string& path, nn::Module& m,
                         DistState state);
    DistState applyCollective(OpKind kind, int64_t axis, DistState state,
                              const std::string& path, const Node* node);

    void reportPartialConsumer(const std::string& path, const Node* node,
                               const std::string& what)
    {
        Diagnostic& d = diags_.add(
            "SLP230", Severity::Error,
            "partial-sum value consumed by " + what +
                " — the cross-rank sum has not been aggregated; insert "
                ".sync(Forward) at the producing module first",
            path);
        if (node != nullptr) {
            d.node = node->name();
            d.node_id = node->id();
            d.primitive = node->provenance().primitive;
        }
    }

    void reportShardMismatch(const std::string& path, const Node* node,
                             const std::string& what)
    {
        Diagnostic& d = diags_.add(
            "SLP232", Severity::Error,
            what + " — a sharded value reaches an operation that needs "
                   "the full (replicated) tensor",
            path);
        if (node != nullptr) {
            d.node = node->name();
            d.node_id = node->id();
            d.primitive = node->provenance().primitive;
        }
    }

    int world_size_;
    Diagnostics& diags_;
};

void
Walker::analyzeOrphan(const std::string& path, nn::Module& m,
                      bool ancestor_fwd)
{
    const DistState out =
        analyzeModule(path, m, {DistState::unknown()}, ancestor_fwd);
    if (out.is(Kind::PartialSum) && !ancestor_fwd) {
        diags_.add("SLP231", Severity::Error,
                   "module output is a partial sum and no enclosing "
                   "module aggregates it — missing .sync(Forward) after "
                   ".shard()",
                   path);
    }
}

DistState
Walker::analyzeModule(const std::string& path, nn::Module& m,
                      const std::vector<DistState>& inputs,
                      bool ancestor_fwd)
{
    const bool fwd_here = ancestor_fwd || hasForwardSync(m);
    DistState out;
    if (m.meta().traced_graph) {
        out = analyzeGraph(path, m, *m.meta().traced_graph, inputs,
                           fwd_here);
    } else if (m.typeName() == "Sequential") {
        DistState s = inputAt(inputs, 0);
        for (const auto& [name, child] : m.children()) {
            s = analyzeModule(joinPath(path, name), *child, {s}, fwd_here);
        }
        out = s;
    } else if (m.children().empty()) {
        out = transferLeaf(path, m, inputs);
    } else {
        // Unknown container: children are checked independently (their
        // own shard/sync pairing must close locally); the container's
        // output cannot be tracked.
        for (const auto& [name, child] : m.children()) {
            analyzeOrphan(joinPath(path, name), *child, fwd_here);
        }
        out = DistState::unknown();
    }

    // Direction check: a partial-sum output with only backward syncs is
    // almost certainly a misdirected `.sync()`.
    if (out.is(Kind::PartialSum) && !m.meta().syncs.empty() &&
        !hasForwardSync(m)) {
        diags_.add("SLP211", Severity::Warning,
                   "module output is a partial sum but every .sync() here "
                   "is backward-only — the forward value stays "
                   "unaggregated",
                   path);
    }
    return applySyncs(path, m, out);
}

DistState
Walker::transferLeaf(const std::string& path, nn::Module& m,
                     const std::vector<DistState>& inputs)
{
    const std::string& type = m.typeName();
    const DistState in = inputAt(inputs, 0);

    if (type == "Linear") {
        const nn::ShardSpec* spec = effectiveSpec(m, "weight");
        if (in.is(Kind::PartialSum)) {
            reportPartialConsumer(path, nullptr, "linear layer '" + path +
                                                     "'");
            return DistState::unknown();
        }
        if (spec == nullptr) {
            if (in.is(Kind::ColSharded)) {
                reportShardMismatch(path, nullptr,
                                    "column-sharded activation fed into "
                                    "the unsharded linear layer '" +
                                        path + "'");
                return DistState::unknown();
            }
            return in; // replicated/row-sharded/unknown pass through
        }
        if (spec->axis == 0) { // column-parallel: output features split
            if (in.is(Kind::ColSharded)) {
                reportShardMismatch(path, nullptr,
                                    "column-sharded activation fed into "
                                    "the column-parallel linear layer '" +
                                        path +
                                        "' (its weight holds full input "
                                        "features)");
            }
            return DistState::sharded(-1, 2);
        }
        // axis 1: row-parallel — needs the column-sharded activation,
        // produces a partial sum.
        if (in.is(Kind::Replicated)) {
            reportShardMismatch(
                path, nullptr,
                "replicated activation fed into the row-parallel linear "
                "layer '" +
                    path + "' (its weight holds a slice of the input "
                           "features)");
        }
        return DistState::partial();
    }
    if (type == "Embedding" || type == "PositionalEmbedding") {
        const nn::ShardSpec* spec = effectiveSpec(m, "weight");
        if (in.is(Kind::PartialSum)) {
            reportPartialConsumer(path, nullptr, "embedding lookup '" +
                                                     path + "'");
            return DistState::unknown();
        }
        if (spec != nullptr && spec->axis == 0) {
            return DistState::partial(); // masked vocab-parallel lookup
        }
        if (spec != nullptr) {
            return DistState::sharded(-1, 2);
        }
        return in.is(Kind::Replicated) ? DistState::replicated()
                                       : DistState::unknown();
    }
    if (type == "VocabParallelLinear") {
        if (in.is(Kind::PartialSum)) {
            reportPartialConsumer(path, nullptr,
                                  "vocab-parallel head '" + path + "'");
            return DistState::unknown();
        }
        if (in.is(Kind::ColSharded)) {
            reportShardMismatch(path, nullptr,
                                "column-sharded activation fed into the "
                                "vocab-parallel head '" +
                                    path + "'");
            return DistState::unknown();
        }
        // Gathers its own output internally: always full logits.
        return in.is(Kind::Replicated) ? DistState::replicated()
                                       : DistState::unknown();
    }
    if (type == "LayerNorm" || type == "BatchNorm2d") {
        if (in.is(Kind::PartialSum)) {
            reportPartialConsumer(path, nullptr,
                                  "normalization layer '" + path + "'");
            return DistState::unknown();
        }
        if (in.is(Kind::ColSharded)) {
            reportShardMismatch(path, nullptr,
                                "normalization layer '" + path +
                                    "' would normalize over a sliced "
                                    "feature axis");
            return DistState::unknown();
        }
        return in;
    }
    if (type == "GELU" || type == "ReLU" || type == "TanhAct" ||
        type == "Dropout" || type == "FusedBiasGelu") {
        if (in.is(Kind::PartialSum)) {
            reportPartialConsumer(path, nullptr,
                                  "the non-linear op '" + type + "' at '" +
                                      path + "'");
            return DistState::unknown();
        }
        return in;
    }
    // Unknown leaf (attention cores, custom modules): cannot transfer.
    return DistState::unknown();
}

DistState
Walker::applyCollective(OpKind kind, int64_t axis, DistState state,
                        const std::string& path, const Node* node)
{
    auto warnRedundant = [&](const std::string& msg) {
        Diagnostic& d = diags_.add("SLP220", Severity::Warning, msg, path);
        if (node != nullptr) {
            d.node = node->name();
            d.node_id = node->id();
            d.primitive = node->provenance().primitive;
        }
    };
    auto errKind = [&](const std::string& msg) {
        Diagnostic& d = diags_.add("SLP212", Severity::Error, msg, path);
        if (node != nullptr) {
            d.node = node->name();
            d.node_id = node->id();
            d.primitive = node->provenance().primitive;
        }
    };

    switch (kind) {
      case OpKind::AllReduce:
        if (state.is(Kind::PartialSum)) {
            return DistState::replicated();
        }
        if (state.is(Kind::Replicated)) {
            warnRedundant("all-reduce of an already-replicated value — "
                          "redundant sync (and the sum scales the value "
                          "by world size)");
            return DistState::unknown();
        }
        if (state.is(Kind::RowSharded) || state.is(Kind::ColSharded)) {
            errKind("all-reduce of a sharded value sums ranks holding "
                    "*different* slices; use all_gather to reassemble "
                    "shards");
            return DistState::unknown();
        }
        return DistState::replicated();
      case OpKind::AllGather:
        if (state.is(Kind::PartialSum)) {
            errKind("all-gather cannot aggregate a partial sum — the "
                    "ranks hold addends, not slices; use all_reduce");
            return DistState::unknown();
        }
        if (state.is(Kind::Replicated)) {
            warnRedundant("all-gather of an already-replicated value — "
                          "redundant sync (concatenates identical "
                          "copies)");
            return DistState::unknown();
        }
        if (state.is(Kind::RowSharded) && axis >= 0 && state.axis != axis) {
            errKind("all-gather axis " + std::to_string(axis) +
                    " does not match the shard axis " +
                    std::to_string(state.axis));
            return DistState::unknown();
        }
        return DistState::replicated();
      case OpKind::ReduceScatter:
        if (state.is(Kind::RowSharded) || state.is(Kind::ColSharded)) {
            errKind("reduce-scatter of an already-sharded value");
            return DistState::unknown();
        }
        if (state.is(Kind::Replicated)) {
            warnRedundant("reduce-scatter of a replicated value — "
                          "redundant sync (scales the kept slice by "
                          "world size)");
            return DistState::unknown();
        }
        return axis < 0 ? DistState::sharded(-1, 2)
                        : DistState::sharded(axis, axis + 2);
      default:
        return state;
    }
}

DistState
Walker::applySyncs(const std::string& path, nn::Module& m, DistState state)
{
    for (const nn::SyncSpec& sync : m.meta().syncs) {
        if (sync.direction == nn::SyncDirection::Backward) {
            continue; // gradient-side; no forward dataflow effect
        }
        OpKind kind = OpKind::AllReduce;
        if (sync.kind == nn::SyncKind::AllGather) {
            kind = OpKind::AllGather;
        } else if (sync.kind == nn::SyncKind::ReduceScatter) {
            kind = OpKind::ReduceScatter;
        }
        state = applyCollective(kind, sync.axis, state, path, nullptr);
    }
    return state;
}

/** True if `node` is a 0/1 mask (range/causal mask through view ops). */
bool
isMaskLineage(const Node* node)
{
    for (int depth = 0; node != nullptr && depth < 16; ++depth) {
        if (node->kind() == NodeKind::CallOp) {
            switch (node->op()) {
              case OpKind::RangeMask:
                return true;
              case OpKind::Reshape:
              case OpKind::Permute:
              case OpKind::Identity:
              case OpKind::TransposeLast2:
              case OpKind::Narrow:
                node = node->inputs().empty() ? nullptr : node->inputs()[0];
                continue;
              default:
                return false;
            }
        }
        return false;
    }
    return false;
}

DistState
Walker::transferOp(const Node* node, const std::vector<DistState>& in,
                   const std::string& path)
{
    const OpKind op = node->op();
    const DistState a = inputAt(in, 0);
    const DistState b = inputAt(in, 1);

    auto joinElementwise = [&](const DistState& x,
                               const DistState& y) -> DistState {
        if (x.kind == y.kind && (x.kind != Kind::RowSharded ||
                                 x.axis == y.axis)) {
            return x;
        }
        // Broadcasting makes "col-sharded" rank-relative: a [H/ws] bias
        // added to a [B,S,H/ws] activation is the same split.
        if (x.is(Kind::ColSharded) && y.is(Kind::ColSharded)) {
            return DistState::sharded(-1, 2);
        }
        if (x.is(Kind::Unknown) || y.is(Kind::Unknown)) {
            return DistState::unknown();
        }
        // Definite but different states: replicated + sharded mixes are
        // shape-incompatible at best, silently wrong at worst.
        if ((x.is(Kind::Replicated) &&
             (y.is(Kind::ColSharded) || y.is(Kind::RowSharded))) ||
            (y.is(Kind::Replicated) &&
             (x.is(Kind::ColSharded) || x.is(Kind::RowSharded)))) {
            // Broadcast against a replicated scalar-ish operand is fine;
            // we cannot separate that case statically, stay quiet.
            return DistState::unknown();
        }
        return DistState::unknown();
    };

    switch (op) {
      case OpKind::Add:
      case OpKind::Sub: {
        const bool pa = a.is(Kind::PartialSum);
        const bool pb = b.is(Kind::PartialSum);
        if (pa && pb) {
            return DistState::partial(); // sum of partials is partial
        }
        if (pa || pb) {
            const DistState& other = pa ? b : a;
            if (other.is(Kind::Unknown)) {
                // Cannot prove the other side full; stay partial so the
                // escape check still fires if nothing aggregates it.
                return DistState::partial();
            }
            reportPartialConsumer(path, node,
                                  "an add/sub against a full value (the "
                                  "other operand is not a partial sum)");
            return DistState::unknown();
        }
        return joinElementwise(a, b);
      }
      case OpKind::Mul:
      case OpKind::Div: {
        const bool pa = a.is(Kind::PartialSum);
        const bool pb = b.is(Kind::PartialSum);
        if (pa || pb) {
            // Masked vocab-parallel lookups multiply the partial
            // embedding rows by a 0/1 mask — linear, and thus safe.
            const Node* other_node =
                node->inputs().size() == 2
                    ? node->inputs()[pa ? 1 : 0]
                    : nullptr;
            if (op == OpKind::Mul && !(pa && pb) &&
                isMaskLineage(other_node)) {
                return DistState::partial();
            }
            reportPartialConsumer(path, node,
                                  std::string(op == OpKind::Mul
                                                  ? "a multiply"
                                                  : "a divide") +
                                      " (non-linear in the cross-rank "
                                      "sum)");
            return DistState::unknown();
        }
        return joinElementwise(a, b);
      }
      case OpKind::Scale:
      case OpKind::Identity:
        return a;
      case OpKind::AddScalar:
      case OpKind::Gelu:
      case OpKind::Relu:
      case OpKind::Tanh:
      case OpKind::Clamp:
      case OpKind::RangeMask:
      case OpKind::CausalMask:
      case OpKind::Dropout:
        if (a.is(Kind::PartialSum)) {
            reportPartialConsumer(path, node,
                                  "the non-linear op '" +
                                      node->signature() + "'");
            return DistState::unknown();
        }
        return a;
      case OpKind::Softmax:
      case OpKind::LayerNormOp:
      case OpKind::BatchNormOp:
        if (a.is(Kind::PartialSum)) {
            reportPartialConsumer(path, node,
                                  "the normalization op '" +
                                      node->signature() + "'");
            return DistState::unknown();
        }
        if (a.is(Kind::ColSharded)) {
            reportShardMismatch(path, node,
                                "'" + node->signature() +
                                    "' normalizes over a sliced feature "
                                    "axis");
            return DistState::unknown();
        }
        return a;
      case OpKind::RelPosBias:
        if (a.is(Kind::PartialSum)) {
            reportPartialConsumer(path, node, "a relative-position bias");
            return DistState::unknown();
        }
        return a;
      case OpKind::LinearOp: {
        if (a.is(Kind::PartialSum)) {
            reportPartialConsumer(path, node, "a linear projection");
            return DistState::unknown();
        }
        if (b.is(Kind::RowSharded) && b.axis == 0) { // column-parallel
            if (a.is(Kind::ColSharded)) {
                reportShardMismatch(path, node,
                                    "column-sharded activation into a "
                                    "column-parallel linear");
            }
            return DistState::sharded(-1, 2);
        }
        if (b.is(Kind::ColSharded)) { // weight (out, in) split on in
            if (a.is(Kind::Replicated)) {
                reportShardMismatch(path, node,
                                    "replicated activation into a "
                                    "row-parallel linear");
            }
            return DistState::partial();
        }
        if (b.is(Kind::Replicated)) {
            if (a.is(Kind::ColSharded)) {
                reportShardMismatch(path, node,
                                    "column-sharded activation into an "
                                    "unsharded linear");
                return DistState::unknown();
            }
            return a;
        }
        return DistState::unknown();
      }
      case OpKind::Matmul: {
        if (a.is(Kind::PartialSum) || b.is(Kind::PartialSum)) {
            reportPartialConsumer(path, node, "a matmul");
            return DistState::unknown();
        }
        if (a.is(Kind::Replicated) && b.is(Kind::Replicated)) {
            return DistState::replicated();
        }
        if (a.is(Kind::ColSharded) && b.is(Kind::RowSharded)) {
            return DistState::partial(); // contraction over the shard
        }
        return DistState::unknown();
      }
      case OpKind::TransposeLast2:
      case OpKind::Permute:
      case OpKind::Reshape:
      case OpKind::Narrow:
        // Pure data movement: partial-ness survives; shard-axis tracking
        // through layout changes is out of scope, degrade to unknown.
        if (a.is(Kind::PartialSum) || a.is(Kind::Replicated)) {
            return a;
        }
        return DistState::unknown();
      case OpKind::Concat: {
        bool all_rep = !in.empty();
        bool all_partial = !in.empty();
        for (size_t i = 0; i < node->inputs().size(); ++i) {
            all_rep = all_rep && inputAt(in, i).is(Kind::Replicated);
            all_partial =
                all_partial && inputAt(in, i).is(Kind::PartialSum);
        }
        if (all_rep) {
            return DistState::replicated();
        }
        if (all_partial) {
            return DistState::partial();
        }
        return DistState::unknown();
      }
      case OpKind::EmbeddingOp: {
        if (a.is(Kind::PartialSum)) {
            reportPartialConsumer(path, node, "an embedding-ids input");
            return DistState::unknown();
        }
        if (b.is(Kind::RowSharded) && b.axis == 0) {
            return DistState::partial(); // vocab-parallel masked lookup
        }
        if (b.is(Kind::ColSharded)) {
            return DistState::sharded(-1, 2);
        }
        if (b.is(Kind::Replicated)) {
            return a.is(Kind::Replicated) ? DistState::replicated()
                                          : DistState::unknown();
        }
        return DistState::unknown();
      }
      case OpKind::CrossEntropyOp:
      case OpKind::MseLossOp:
        if (a.is(Kind::PartialSum)) {
            reportPartialConsumer(path, node, "a loss head");
            return DistState::unknown();
        }
        if (a.is(Kind::ColSharded) || a.is(Kind::RowSharded)) {
            reportShardMismatch(path, node,
                                "loss computed over a sharded "
                                "prediction");
            return DistState::unknown();
        }
        return a.is(Kind::Replicated) && b.is(Kind::Replicated)
                   ? DistState::replicated()
                   : DistState::unknown();
      case OpKind::Conv2dOp:
      case OpKind::GlobalAvgPoolOp:
        if (a.is(Kind::PartialSum)) {
            reportPartialConsumer(path, node, "a convolution/pooling op");
            return DistState::unknown();
        }
        return a.is(Kind::Replicated) ? DistState::replicated()
                                      : DistState::unknown();
      case OpKind::AllReduce:
      case OpKind::AllGather:
      case OpKind::ReduceScatter: {
        int64_t axis = node->hasAttr("axis") ? node->attrInt("axis") : -1;
        if (axis >= 0 && !node->shapes().empty()) {
            // normalize against the output rank for matching
            axis = axis < static_cast<int64_t>(node->shapes()[0].size())
                       ? axis
                       : -1;
        }
        return applyCollective(op, axis, a, path, node);
      }
    }
    return DistState::unknown();
}

DistState
Walker::analyzeGraph(const std::string& path, nn::Module& m,
                     const graph::Graph& graph,
                     const std::vector<DistState>& inputs, bool ancestor_fwd)
{
    std::map<const Node*, DistState> states;
    size_t placeholder_index = 0;
    DistState result = DistState::unknown();
    for (const Node* node : graph.nodes()) {
        DistState s = DistState::unknown();
        switch (node->kind()) {
          case NodeKind::Placeholder:
            s = inputAt(inputs, placeholder_index++);
            break;
          case NodeKind::GetParam: {
            nn::Module* owner =
                node->module() != nullptr ? node->module() : &m;
            const nn::ShardSpec* spec =
                effectiveSpec(*owner, node->target());
            if (spec != nullptr && !node->shapes().empty()) {
                s = DistState::sharded(spec->axis,
                                       node->shapes()[0].size());
            } else {
                s = DistState::replicated();
            }
            break;
          }
          case NodeKind::CallOp: {
            std::vector<DistState> op_in;
            op_in.reserve(node->inputs().size());
            for (const Node* input : node->inputs()) {
                auto it = states.find(input);
                op_in.push_back(it == states.end() ? DistState::unknown()
                                                   : it->second);
            }
            s = transferOp(node, op_in, path);
            break;
          }
          case NodeKind::CallModule: {
            std::vector<DistState> call_in;
            call_in.reserve(node->inputs().size());
            for (const Node* input : node->inputs()) {
                auto it = states.find(input);
                call_in.push_back(it == states.end()
                                      ? DistState::unknown()
                                      : it->second);
            }
            if (node->module() != nullptr) {
                s = analyzeModule(joinPath(path, node->target()),
                                  *node->module(), call_in, ancestor_fwd);
            }
            break;
          }
          case NodeKind::FusedOp: {
            std::vector<DistState> sub_in;
            sub_in.reserve(node->inputs().size());
            for (const Node* input : node->inputs()) {
                auto it = states.find(input);
                sub_in.push_back(it == states.end() ? DistState::unknown()
                                                    : it->second);
            }
            if (node->subgraph() != nullptr) {
                s = analyzeGraph(path, m, *node->subgraph(), sub_in,
                                 ancestor_fwd);
            }
            break;
          }
          case NodeKind::TupleGet:
            s = DistState::unknown();
            break;
          case NodeKind::Output:
            if (!node->inputs().empty()) {
                auto it = states.find(node->inputs()[0]);
                result = it == states.end() ? DistState::unknown()
                                            : it->second;
            }
            break;
        }
        states.emplace(node, s);
    }
    return result;
}

} // namespace

void
checkSharding(nn::Module& root, int world_size, Diagnostics& diags)
{
    structuralChecks(root, world_size, diags);
    if (world_size <= 1) {
        return; // no tensor-parallel group: the lattice is trivial
    }
    Walker walker(world_size, diags);
    const DistState out = walker.analyzeModule(
        "", root, {DistState::replicated()}, /*ancestor_fwd=*/false);
    if (out.is(DistState::Kind::PartialSum)) {
        diags.add("SLP231", Severity::Error,
                  "the model output is a partial sum — missing "
                  ".sync(Forward) after .shard()",
                  "");
    }
}

} // namespace analysis
} // namespace slapo
