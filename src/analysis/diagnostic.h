/**
 * @file
 * Shared diagnostics for the static schedule analyses (docs/VERIFICATION.md).
 *
 * Every analysis in src/analysis/ reports through one `Diagnostic` type
 * with a stable `SLPnnn` code, a severity, and the location that makes
 * the finding actionable: the dotted module path the schedule language
 * addresses, plus (when the finding is about a graph node) the node
 * name, id and its Provenance stamp — so "which primitive broke it" is
 * part of the report, not archaeology.
 *
 * Code ranges:
 *   SLP0xx  graph structure (validate() failures)
 *   SLP1xx  shape / dtype inference
 *   SLP2xx  sharding consistency (lattice analysis + shard/sync specs)
 *   SLP3xx  pipeline partitioning
 *   SLP4xx  memory-plan alias safety
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.h"

namespace slapo {
namespace analysis {

enum class Severity
{
    Error,   ///< the schedule cannot execute correctly; gates throw
    Warning, ///< legal but suspicious (redundant sync, scaled value)
    Note,    ///< analysis limitation (subtree not statically checkable)
};

const char* severityName(Severity severity);

/** One finding. */
struct Diagnostic
{
    std::string code; ///< stable "SLP230"-style identifier
    Severity severity = Severity::Error;
    std::string message;
    /** Dotted schedule path of the module the finding is about ("" = root). */
    std::string module_path;
    /** Offending graph node, when the finding is node-level. */
    std::string node;
    int64_t node_id = -1;
    /** Provenance primitive that produced the node ("" = baseline). */
    std::string primitive;

    std::string toString() const;
    std::string toJson() const;
};

/** Ordered collection of findings produced by one lint run. */
class Diagnostics
{
  public:
    /** Append a finding; returns it for optional node/provenance fill-in. */
    Diagnostic& add(std::string code, Severity severity, std::string message,
                    std::string module_path = "");

    const std::vector<Diagnostic>& all() const { return diags_; }
    bool empty() const { return diags_.empty(); }
    size_t count(Severity severity) const;
    size_t errorCount() const { return count(Severity::Error); }
    bool hasErrors() const { return errorCount() > 0; }
    bool hasCode(const std::string& code) const;

    /** Comma-joined sorted unique error codes ("SLP202,SLP230"). */
    std::string errorCodes() const;

    /** Human-readable multi-line report. */
    std::string toString() const;

    /** JSON array of the individual findings (run-log embedding). */
    std::string diagnosticsJson() const;

    /**
     * Standalone JSON report object (SLAPO_LINT=<file> emission):
     * {"kind":"lint","schema_version":2,"errors":..,"warnings":..,
     *  "notes":..,"diagnostics":[...]}.
     */
    std::string toJson() const;

  private:
    std::vector<Diagnostic> diags_;
};

/**
 * Thrown by the lint gates when a schedule has error-severity findings.
 * Subclasses SlapoError so existing catch sites and EXPECT_THROW
 * contracts keep holding; carries the full report for callers (the
 * tuner) that want the codes rather than the flattened message.
 */
class StaticLintError : public SlapoError
{
  public:
    StaticLintError(Diagnostics diagnostics, std::string site);

    const Diagnostics& diagnostics() const { return diagnostics_; }
    /** Gate that rejected the schedule ("verify.end_to_end", ...). */
    const std::string& site() const { return site_; }

  private:
    Diagnostics diagnostics_;
    std::string site_;
};

} // namespace analysis
} // namespace slapo
