/**
 * @file
 * The static schedule lint: orchestrates every analysis in
 * src/analysis/ over a scheduled model with zero tensor execution
 * (docs/VERIFICATION.md, stage one).
 *
 * `lintModule()` runs graph validation (SLP001), shape/dtype inference
 * (SLP1xx), sharding consistency (SLP2xx), pipeline-split checks
 * (SLP3xx), and the memory-plan alias audit (SLP4xx), returning the
 * combined diagnostics. `enforceLint()` is the mandatory gate wired
 * into schedule materialization (core/verify.cc, runtime replication,
 * pipeline partitioning) and tuner trial admission: it additionally
 * writes a `lint` run-log record, honors the `SLAPO_LINT` knob, and
 * throws StaticLintError when any error-severity finding exists.
 *
 * SLAPO_LINT values:
 *   0|off|false   disable the gates entirely (diagnostics still
 *                 available programmatically via lintModule)
 *   1|on|<unset>  enabled (default)
 *   <path>        enabled, and every enforceLint() run appends its JSON
 *                 report to <path>
 */
#pragma once

#include <string>

#include "analysis/diagnostic.h"
#include "nn/module.h"

namespace slapo {
namespace analysis {

/** Gate enablement: SLAPO_LINT env (default on) unless overridden. */
bool lintEnabled();

/** Programmatic override of SLAPO_LINT on/off (tests; thread-safe). */
void setLintEnabled(bool enabled);

/** JSON report path configured via SLAPO_LINT=<path> ("" = none). */
const std::string& lintReportPath();

/**
 * Run every static analysis over `root` and its schedule state.
 * `world_size` is the tensor/pipeline-parallel world the schedule will
 * execute under (1 = single process; sharding dataflow is skipped).
 */
Diagnostics lintModule(nn::Module& root, int world_size);

/**
 * Mandatory gate: lint and throw StaticLintError if any error-severity
 * diagnostic is found. No-op when lint is disabled. `site` names the
 * caller in the error, the run-log `lint` record, and the JSON report
 * ("verify.end_to_end", "executor.replicate", "tuner.trial",
 * "pipeline.partition").
 *
 * @returns the diagnostics (warnings/notes) when the schedule passes.
 */
Diagnostics enforceLint(nn::Module& root, int world_size,
                        const char* site);

} // namespace analysis
} // namespace slapo
