#include "runtime/dist_executor.h"

#include <chrono>
#include <exception>
#include <optional>
#include <thread>

#include "analysis/lint.h"
#include "obs/mem_profiler.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "support/failpoint.h"
#include "tensor/ops.h"

namespace slapo {
namespace runtime {

DistExecutor::DistExecutor(int world_size, ProcessGroupOptions options)
    : world_size_(world_size), group_(world_size, options)
{
    SLAPO_CHECK(world_size >= 1, "DistExecutor: world size must be >= 1");
}

void
DistExecutor::shardParamsForRank(nn::Module& replica, int rank, int world_size)
{
    // Shard slices are this rank's parameter storage: tag them so the
    // peak report shows .shard() shrinking per-rank parameter bytes.
    obs::MemCategoryScope mem_cat(obs::MemCategory::Parameter);
    for (auto& [path, module] : replica.namedModules()) {
        for (const auto& [pname, spec] : module->meta().sharded_params) {
            // Register the slice under its full dotted path so the
            // provenance prefix lookup resolves it to .shard().
            std::optional<obs::ModuleScope> mem_path;
            if (obs::ModuleScope::active()) {
                mem_path.emplace(path.empty() ? pname : path + "." + pname);
            }
            SLAPO_CHECK(spec.world_size == world_size,
                        "shard spec world size " << spec.world_size
                                                 << " != executor world "
                                                 << world_size);
            Tensor& param = module->paramTensor(pname);
            if (param.isMeta()) {
                Shape s = param.shape();
                s[spec.axis] /= world_size;
                module->setParamTensor(pname, Tensor::meta(s));
                continue;
            }
            const int64_t extent = param.size(spec.axis);
            const int64_t groups = spec.interleave;
            SLAPO_CHECK(extent % (groups * world_size) == 0,
                        "cannot shard axis extent " << extent << " into "
                                                    << groups << "x"
                                                    << world_size);
            const int64_t group_len = extent / groups;
            const int64_t shard_len = group_len / world_size;
            std::vector<Tensor> pieces;
            for (int64_t g = 0; g < groups; ++g) {
                pieces.push_back(ops::narrow(param, spec.axis,
                                             g * group_len + rank * shard_len,
                                             shard_len));
            }
            module->setParamTensor(
                pname, pieces.size() == 1 ? pieces[0]
                                          : ops::concat(pieces, spec.axis));
        }
        // Row-parallel Linear: an unsharded bias would be summed
        // world_size times by the output all-reduce; pre-scale it.
        auto wit = module->meta().sharded_params.find("weight");
        if (module->typeName() == "Linear" && wit != module->meta().sharded_params.end() &&
            wit->second.axis == 1 && module->hasParam("bias") &&
            module->meta().sharded_params.count("bias") == 0) {
            Tensor& bias = module->paramTensor("bias");
            if (bias.materialized()) {
                bias.scaleInPlace(1.0f / static_cast<float>(world_size));
            }
        }
    }
}

std::vector<nn::ModulePtr>
DistExecutor::replicate(const nn::Module& model) const
{
    // Static gate: the unsharded schedule must lint clean before any
    // replica is cloned or a parameter slice is cut. (namedModules is
    // non-const; the lint never mutates the model.)
    analysis::enforceLint(const_cast<nn::Module&>(model), world_size_,
                          "executor.replicate");

    std::vector<nn::ModulePtr> replicas;
    replicas.reserve(world_size_);
    for (int r = 0; r < world_size_; ++r) {
        nn::ModulePtr replica = model.clone();
        shardParamsForRank(*replica, r, world_size_);
        replicas.push_back(std::move(replica));
    }
    return replicas;
}

void
DistExecutor::run(const std::vector<nn::ModulePtr>& replicas, const RankFn& fn)
{
    SLAPO_CHECK(static_cast<int>(replicas.size()) == world_size_,
                "run: need one replica per rank");
    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(world_size_);
    // Per-rank body wall time, filled in on successful completion; used
    // after the join to attribute each rank's unused window (thread
    // spawn latency, join wait) as executor overhead in step reports.
    std::vector<int64_t> body_walls(world_size_, -1);
    const auto run_start = std::chrono::steady_clock::now();
    for (int r = 0; r < world_size_; ++r) {
        threads.emplace_back([this, r, &replicas, &fn, &errors,
                              &body_walls] {
            // Each rank gets its own process row in the trace (pid 1+r;
            // pid 0 is the main process).
            obs::setThreadTrack(1 + r, "rank " + std::to_string(r));
            obs::setMemThreadRank(r);
            nn::DistContext context;
            context.rank = r;
            context.world_size = world_size_;
            context.group = &group_;
            // Pin the world epoch this thread belongs to: if the group
            // is elastically rebuilt while (buggy) stale threads are
            // still around, their deposits are rejected, not mixed in.
            context.membership_generation = group_.membershipGeneration();
            nn::DistGuard guard(&context);
            try {
                support::failpoint::hit("executor.rank", r);
                obs::TraceSpan span("executor.rank", "executor");
                if (span.live()) {
                    span.arg("rank", static_cast<int64_t>(r));
                }
                // Account for rank-body time the op timers below don't
                // see (engine setup/teardown, user loop code) so step
                // reports attribute the whole body, not just its ops.
                obs::OpProfiler* prof = obs::OpProfiler::current();
                const int64_t recorded_before =
                    obs::OpProfiler::threadRecordedNs();
                const auto body_start = std::chrono::steady_clock::now();
                fn(r, *replicas[r], group_);
                if (prof != nullptr) {
                    const int64_t wall =
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - body_start)
                            .count();
                    body_walls[r] = wall;
                    const int64_t attributed =
                        obs::OpProfiler::threadRecordedNs() - recorded_before;
                    if (wall > attributed) {
                        prof->record("executor.body", "", "baseline",
                                     wall - attributed);
                    }
                }
            } catch (const support::failpoint::RankLostError& e) {
                errors[r] = std::current_exception();
                // Permanent loss: mark the rank gone (survives the
                // post-join reset) and unblock its peers.
                group_.declareLost(r, e.what());
            } catch (const std::exception& e) {
                errors[r] = std::current_exception();
                // Contain the failure: unblock peers stuck waiting for
                // this rank in a collective.
                group_.abort("executor.rank", r, e.what());
            } catch (...) {
                errors[r] = std::current_exception();
                group_.abort("executor.rank", r, "unknown error");
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    // Attribute each rank's unused window — thread spawn latency before
    // its body started, join wait after it finished — as executor
    // overhead. One row per rank so the step report's per-rank mean
    // (profiler totals / world size) covers the full run() wall.
    if (obs::OpProfiler* prof = obs::OpProfiler::current()) {
        const int64_t run_wall =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - run_start)
                .count();
        for (int64_t body : body_walls) {
            if (body >= 0 && run_wall > body) {
                prof->record("executor.spawn", "", "baseline",
                             run_wall - body);
            }
        }
    }
    // Rethrow the *originating* failure: a non-CollectiveError if any
    // rank has one (victim ranks observe secondary CollectiveErrors),
    // else the first CollectiveError — all copies carry the origin's
    // (site, rank, generation) anyway.
    std::exception_ptr primary;
    std::exception_ptr first;
    for (auto& e : errors) {
        if (!e) {
            continue;
        }
        if (!first) {
            first = e;
        }
        if (!primary) {
            try {
                std::rethrow_exception(e);
            } catch (const CollectiveError&) {
            } catch (...) {
                primary = e;
            }
        }
    }
    if (first) {
        group_.reset(); // leave the group reusable for a retried step
        std::rethrow_exception(primary ? primary : first);
    }
}

std::vector<int>
DistExecutor::shrink()
{
    const std::vector<int> lost = group_.lostRanks();
    SLAPO_CHECK(!lost.empty(),
                "DistExecutor::shrink: no rank is declared lost");
    std::vector<int> survivors;
    survivors.reserve(static_cast<size_t>(world_size_) - lost.size());
    size_t li = 0;
    for (int r = 0; r < world_size_; ++r) {
        if (li < lost.size() && lost[li] == r) {
            ++li;
        } else {
            survivors.push_back(r);
        }
    }
    group_.rebuild(survivors);
    world_size_ = static_cast<int>(survivors.size());
    return survivors;
}

std::vector<std::vector<Tensor>>
DistExecutor::forward(const nn::Module& model, const std::vector<Tensor>& inputs)
{
    auto replicas = replicate(model);
    std::vector<std::vector<Tensor>> outputs(world_size_);
    run(replicas, [&](int rank, nn::Module& m, ProcessGroup&) {
        std::vector<nn::Value> values;
        values.reserve(inputs.size());
        for (const Tensor& t : inputs) {
            values.emplace_back(t);
        }
        for (nn::Value& v : m.call(values)) {
            outputs[rank].push_back(v.tensor());
        }
    });
    return outputs;
}

} // namespace runtime
} // namespace slapo
