#include "runtime/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>

#include "obs/metrics.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "runtime/checkpoint.h"
#include "support/failpoint.h"

namespace slapo {
namespace runtime {

namespace {

using StepClock = std::chrono::steady_clock;

double
msSince(StepClock::time_point t0)
{
    return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
               StepClock::now() - t0)
        .count();
}

/**
 * Global L2 norm of the gradient set. Accumulated sequentially in
 * double, in parameter order — no parallel reduction — so the result is
 * bitwise identical across kernel thread counts as long as the grads
 * themselves are (which the determinism contract guarantees).
 */
double
globalGradNorm(const std::vector<Tensor>& grads)
{
    double sum = 0.0;
    for (const Tensor& g : grads) {
        const float* data = g.data();
        const int64_t n = g.numel();
        for (int64_t i = 0; i < n; ++i) {
            const double v = static_cast<double>(data[i]);
            sum += v * v;
        }
    }
    return std::sqrt(sum);
}

/**
 * Gradient-allreduce bucket size in bytes. SLAPO_BUCKET_BYTES overrides
 * the 4 MiB default; <= 0 disables coalescing (one allreduce per
 * parameter, the pre-bucketing behaviour). Re-read on every step so
 * tests can flip it without process-lifetime caching.
 */
int64_t
gradBucketBytes()
{
    const char* env = std::getenv("SLAPO_BUCKET_BYTES");
    if (env == nullptr || *env == '\0') {
        return int64_t{4} << 20;
    }
    return static_cast<int64_t>(std::strtoll(env, nullptr, 10));
}

/**
 * Average per-parameter gradients across ranks by packing them, in
 * parameter order, into flat fixed-size buckets and running one
 * allreduce per bucket instead of one per parameter. Packing is
 * element-wise, and allReduce sums every element independently in rank
 * order, so the result is bitwise identical to the per-parameter loop;
 * only the rendezvous count changes (#buckets instead of #params).
 * Each bucket records its own "pg.allreduce.bucket" flight-recorder
 * event with the bucket length as its shape.
 */
std::vector<Tensor>
bucketedGradAllReduce(ProcessGroup& group, int rank,
                      const std::vector<Tensor>& local, int world)
{
    const float inv_world = 1.0f / static_cast<float>(world);
    const int64_t bucket_bytes = gradBucketBytes();
    std::vector<Tensor> grads;
    grads.reserve(local.size());
    if (bucket_bytes <= 0) {
        for (const Tensor& g : local) {
            Tensor r = group.allReduce(rank, g);
            r.scaleInPlace(inv_world);
            grads.push_back(std::move(r));
        }
        return grads;
    }
    const int64_t bucket_elems = std::max<int64_t>(
        1, bucket_bytes / static_cast<int64_t>(sizeof(float)));
    int64_t total = 0;
    for (const Tensor& g : local) {
        grads.push_back(Tensor::empty(g.shape()));
        total += g.numel();
    }
    // Pack cursor (param pp, offset pc) and unpack cursor (up, uc)
    // advance through the same flat element stream one bucket apart.
    size_t pp = 0, up = 0;
    int64_t pc = 0, uc = 0;
    for (int64_t off = 0; off < total; off += bucket_elems) {
        const int64_t n = std::min(bucket_elems, total - off);
        Tensor bucket = Tensor::empty({n});
        float* b = bucket.data();
        for (int64_t filled = 0; filled < n;) {
            const int64_t take = std::min(local[pp].numel() - pc, n - filled);
            std::memcpy(b + filled, local[pp].data() + pc,
                        static_cast<size_t>(take) * sizeof(float));
            filled += take;
            pc += take;
            if (pc == local[pp].numel()) {
                ++pp;
                pc = 0;
            }
        }
        Tensor reduced = group.allReduceBucket(rank, bucket);
        reduced.scaleInPlace(inv_world);
        const float* r = reduced.data();
        for (int64_t drained = 0; drained < n;) {
            const int64_t take = std::min(grads[up].numel() - uc, n - drained);
            std::memcpy(grads[up].data() + uc, r + drained,
                        static_cast<size_t>(take) * sizeof(float));
            drained += take;
            uc += take;
            if (uc == grads[up].numel()) {
                ++up;
                uc = 0;
            }
        }
    }
    return grads;
}

/** Input elements consumed by one step (first tensor of each tuple —
 * the token ids for the language models trained here). */
int64_t
countTokens(const std::vector<std::vector<Tensor>>& batches)
{
    int64_t tokens = 0;
    for (const std::vector<Tensor>& inputs : batches) {
        if (!inputs.empty()) {
            tokens += inputs[0].numel();
        }
    }
    return tokens;
}

/** What a thrown step error says (for the run-log recovery record). */
std::string
describeCurrentException()
{
    try {
        throw;
    } catch (const std::exception& e) {
        return e.what();
    } catch (...) {
        return "unknown error";
    }
}

/**
 * The recovery state machine shared by both trainers
 * (docs/ROBUSTNESS.md): RUN a step; on failure RESTORE the newest
 * loadable checkpoint (corrupt files are skipped) and REPLAY from its
 * step. Deterministic steps + bit-exact checkpoints make the replayed
 * trajectory identical to an uninterrupted run.
 */
TrainRunStats
runWithRecovery(
    const RecoveryOptions& recovery, const BatchProvider& batches,
    int64_t num_steps,
    const std::function<TrainStepStats(const std::vector<std::vector<Tensor>>&)>&
        do_step,
    const std::function<CheckpointState(int64_t)>& capture,
    const std::function<void(const CheckpointState&)>& restore)
{
    SLAPO_CHECK(batches != nullptr, "trainSteps: null batch provider");
    const bool enabled = !recovery.checkpoint_dir.empty();
    const std::filesystem::path dir(recovery.checkpoint_dir);
    if (enabled) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
    }
    auto save_at = [&](int64_t step) {
        obs::TraceSpan span("trainer.checkpoint", "trainer");
        if (span.live()) {
            span.arg("step", step);
        }
        // saveCheckpoint itself appends the "checkpoint.save" run-log
        // record (it knows path, bytes, and timing exactly).
        saveCheckpoint((dir / checkpointFileName(step)).string(),
                       capture(step));
    };

    TrainRunStats stats;
    int64_t step = 0;
    while (step < num_steps) {
        if (enabled && recovery.checkpoint_every > 0 &&
            step % recovery.checkpoint_every == 0) {
            save_at(step);
        }
        try {
            stats.last = do_step(batches(step));
            ++step;
            ++stats.steps_run;
        } catch (...) {
            std::exception_ptr original = std::current_exception();
            const std::string error_text = describeCurrentException();
            const int64_t failed_step = step;
            if (!enabled || stats.recoveries >= recovery.max_retries) {
                std::rethrow_exception(original);
            }
            bool restored = false;
            obs::TraceSpan restore_span("trainer.restore", "trainer");
            auto checkpoints = listCheckpoints(recovery.checkpoint_dir);
            for (auto it = checkpoints.rbegin(); it != checkpoints.rend();
                 ++it) {
                try {
                    // loadCheckpoint appends the "checkpoint.restore"
                    // run-log record on success.
                    CheckpointState state = loadCheckpoint(it->second);
                    restore(state);
                    step = state.step;
                    restored = true;
                    break;
                } catch (const CheckpointError&) {
                    continue; // corrupt/unreadable: fall back to older
                }
            }
            if (!restored) {
                std::rethrow_exception(original);
            }
            ++stats.recoveries;
            if (obs::RunLog* log = obs::runLog()) {
                obs::RunLogRecord record("recovery");
                record.num("attempt", static_cast<int64_t>(stats.recoveries))
                    .num("failed_step", failed_step)
                    .str("error", error_text)
                    .num("restored_to_step", step);
                log->write(record);
            }
        }
    }
    if (enabled && recovery.checkpoint_every > 0) {
        save_at(num_steps); // durable final state for a later resume
    }
    return stats;
}

} // namespace

Trainer::Trainer(nn::ModulePtr model, AdamWConfig config,
                 RecoveryOptions recovery)
    : model_(std::move(model)), optimizer_(config),
      recovery_(std::move(recovery))
{
    SLAPO_CHECK(model_ != nullptr, "Trainer: null model");
    params_ = model_->namedParams();
    for (auto& [path, tensor] : params_) {
        SLAPO_CHECK(tensor->materialized(),
                    "Trainer: parameter '" << path
                                           << "' is meta; call "
                                              "initializeParams first");
        optimizer_.addParam(*tensor);
    }
}

TrainStepStats
Trainer::step(const std::vector<std::vector<Tensor>>& micro_batches)
{
    support::failpoint::hit("trainer.step");
    SLAPO_CHECK(!micro_batches.empty(), "Trainer: no micro-batches");
    obs::TraceSpan step_span("trainer.step", "trainer");
    const auto step_start = StepClock::now();
    TrainStepStats stats;
    stats.micro_batches = static_cast<int64_t>(micro_batches.size());
    stats.tokens = countTokens(micro_batches);

    std::vector<Tensor> grads;
    int64_t micro_index = 0;
    for (const std::vector<Tensor>& inputs : micro_batches) {
        obs::TraceSpan micro_span("trainer.micro_batch", "trainer");
        if (micro_span.live()) {
            micro_span.arg("micro_batch", micro_index);
        }
        ++micro_index;
        AutogradEngine engine;
        GradResult result = engine.run(*model_, inputs);
        stats.loss += result.outputs[0].at(0);
        stats.stored_activation_bytes =
            std::max(stats.stored_activation_bytes,
                     result.stored_activation_bytes);
        stats.recomputed_nodes += result.recomputed_nodes;
        if (grads.empty()) {
            for (auto& [path, tensor] : params_) {
                grads.push_back(AutogradEngine::gradFor(result, *tensor));
            }
        } else {
            for (size_t i = 0; i < params_.size(); ++i) {
                grads[i].addInPlace(
                    AutogradEngine::gradFor(result, *params_[i].second));
            }
        }
    }
    const float inv = 1.0f / static_cast<float>(micro_batches.size());
    for (Tensor& g : grads) {
        g.scaleInPlace(inv);
    }
    stats.grad_norm = globalGradNorm(grads);
    {
        obs::TraceSpan optim_span("trainer.optim", "trainer");
        optimizer_.step(grads);
    }
    stats.loss /= static_cast<double>(micro_batches.size());
    if (obs::RunLog* log = obs::runLog()) {
        obs::StepRecord record;
        record.step = optimizer_.stepCount() - 1;
        record.loss = stats.loss;
        record.grad_norm = stats.grad_norm;
        record.micro_batches = stats.micro_batches;
        record.tokens = stats.tokens;
        record.step_ms = msSince(step_start);
        record.mem_peak_bytes = obs::metrics().tensor_live_bytes.peak();
        record.world_size = 1;
        log->logStep(record);
    }
    return stats;
}

TrainRunStats
Trainer::trainSteps(const BatchProvider& batches, int64_t num_steps)
{
    return runWithRecovery(
        recovery_, batches, num_steps,
        [this](const std::vector<std::vector<Tensor>>& micros) {
            return step(micros);
        },
        [this](int64_t at_step) {
            return captureTrainerState(at_step, params_, optimizer_);
        },
        [this](const CheckpointState& state) {
            restoreTrainerState(state, params_, optimizer_);
        });
}

DataParallelTrainer::DataParallelTrainer(const nn::Module& model,
                                         int world_size, AdamWConfig config,
                                         RecoveryOptions recovery)
    : executor_(world_size), recovery_(std::move(recovery))
{
    // Pure data parallelism: every rank holds the full model. Combining
    // with tensor parallelism needs distinct DP/TP process groups, which
    // the performance simulator models; the numeric TP path is covered
    // by DistExecutor + AutogradEngine directly.
    for (auto& [path, m] : const_cast<nn::Module&>(model).namedModules()) {
        SLAPO_CHECK(m->meta().sharded_params.empty(),
                    "DataParallelTrainer: model has tensor-parallel shards "
                    "('" << path << "'); use DistExecutor for TP training");
    }
    replicas_ = executor_.replicate(model);
    for (int r = 0; r < world_size; ++r) {
        params_.push_back(replicas_[r]->namedParams());
        optimizers_.push_back(std::make_unique<AdamW>(config));
        for (auto& [path, tensor] : params_.back()) {
            SLAPO_CHECK(tensor->materialized(),
                        "DataParallelTrainer: parameter '"
                            << path << "' is meta; initialize before "
                                       "replicating");
            optimizers_.back()->addParam(*tensor);
        }
    }
}

TrainStepStats
DataParallelTrainer::step(
    const std::vector<std::vector<Tensor>>& per_rank_inputs)
{
    support::failpoint::hit("dp_trainer.step");
    obs::TraceSpan step_span("dp_trainer.step", "trainer");
    const auto step_start = StepClock::now();
    const int world = executor_.worldSize();
    SLAPO_CHECK(static_cast<int>(per_rank_inputs.size()) == world,
                "DataParallelTrainer: need one input tuple per rank");
    std::vector<double> losses(world);
    std::vector<int64_t> recomputed(world);
    double grad_norm = 0.0; // written by rank 0 only

    executor_.run(replicas_, [&](int rank, nn::Module& replica,
                                 ProcessGroup& group) {
        AutogradEngine engine;
        GradResult result = engine.run(replica, per_rank_inputs[rank]);
        losses[rank] = result.outputs[0].at(0);
        recomputed[rank] = result.recomputed_nodes;
        // Average data-parallel gradients, then step this rank's
        // optimizer; identical updates keep the replicas in lock-step.
        std::vector<Tensor> grads;
        {
            obs::TraceSpan allreduce_span("trainer.grad_allreduce",
                                          "trainer");
            std::vector<Tensor> local;
            local.reserve(params_[rank].size());
            for (auto& [path, tensor] : params_[rank]) {
                local.push_back(AutogradEngine::gradFor(result, *tensor));
            }
            grads = bucketedGradAllReduce(group, rank, local, world);
        }
        if (rank == 0) {
            // Post-allreduce grads are identical on every rank; rank 0's
            // norm is the global one.
            grad_norm = globalGradNorm(grads);
        }
        obs::TraceSpan optim_span("trainer.optim", "trainer");
        optimizers_[rank]->step(grads);
    });

    TrainStepStats stats;
    stats.micro_batches = world;
    stats.tokens = countTokens(per_rank_inputs);
    stats.grad_norm = grad_norm;
    for (int r = 0; r < world; ++r) {
        stats.loss += losses[r];
        stats.recomputed_nodes += recomputed[r];
    }
    stats.loss /= world;
    if (obs::RunLog* log = obs::runLog()) {
        obs::StepRecord record;
        record.step = optimizers_[0]->stepCount() - 1;
        record.loss = stats.loss;
        record.grad_norm = stats.grad_norm;
        record.micro_batches = stats.micro_batches;
        record.tokens = stats.tokens;
        record.step_ms = msSince(step_start);
        record.mem_peak_bytes = obs::metrics().tensor_live_bytes.peak();
        record.world_size = world;
        log->logStep(record);
    }
    return stats;
}

obs::DistMetricsReport
DataParallelTrainer::gatherMetrics()
{
    const int world = executor_.worldSize();
    const std::vector<std::string> names = obs::distMetricNames();
    std::vector<std::vector<int64_t>> per_rank(world);

    executor_.run(replicas_, [&](int rank, nn::Module& /*replica*/,
                                 ProcessGroup& group) {
        const RankPgStats mine = group.rankStats(rank);
        const obs::Metrics& m = obs::metrics();
        const std::vector<int64_t> values = {
            mine.count,
            mine.wait_ns,
            mine.copy_ns,
            m.tensor_allocated_bytes.get(),
            m.tensor_live_bytes.peak(),
            m.pipeline_queue_wait_ns.get(),
        };
        // Move the packed snapshots through the group itself: the
        // aggregation uses (and therefore exercises) the same collective
        // path it reports on.
        const std::vector<float> packed = obs::packInt64s(values);
        Tensor mine_t = Tensor::fromValues(
            {1, static_cast<int64_t>(packed.size())}, packed);
        Tensor gathered = group.allGather(rank, mine_t, 0);
        if (rank == 0) {
            const float* data = gathered.data();
            const size_t floats_per_rank =
                names.size() * obs::kFloatsPerInt64;
            for (int r = 0; r < world; ++r) {
                per_rank[r] = obs::unpackInt64s(
                    data + static_cast<size_t>(r) * floats_per_rank,
                    names.size());
            }
        }
    });

    return obs::buildDistMetricsReport(names, per_rank);
}

TrainRunStats
DataParallelTrainer::trainSteps(const BatchProvider& batches,
                                int64_t num_steps)
{
    TrainRunStats stats = runWithRecovery(
        recovery_, batches, num_steps,
        [this](const std::vector<std::vector<Tensor>>& per_rank) {
            return step(per_rank);
        },
        // Replicas are in lock-step between steps, so rank 0's state is
        // the global state.
        [this](int64_t at_step) {
            return captureTrainerState(at_step, params_[0], *optimizers_[0]);
        },
        // A failed step can leave ranks diverged (some optimizers
        // stepped, some not); restoring the checkpoint into every rank
        // re-synchronizes them.
        [this](const CheckpointState& state) {
            for (size_t r = 0; r < params_.size(); ++r) {
                restoreTrainerState(state, params_[r], *optimizers_[r]);
            }
        });
    if (obs::RunLog* log = obs::runLog()) {
        log->writeLine(gatherMetrics().toJson());
    }
    return stats;
}

} // namespace runtime
} // namespace slapo
