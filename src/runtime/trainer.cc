#include "runtime/trainer.h"

#include <algorithm>

namespace slapo {
namespace runtime {

Trainer::Trainer(nn::ModulePtr model, AdamWConfig config)
    : model_(std::move(model)), optimizer_(config)
{
    SLAPO_CHECK(model_ != nullptr, "Trainer: null model");
    params_ = model_->namedParams();
    for (auto& [path, tensor] : params_) {
        SLAPO_CHECK(tensor->materialized(),
                    "Trainer: parameter '" << path
                                           << "' is meta; call "
                                              "initializeParams first");
        optimizer_.addParam(*tensor);
    }
}

TrainStepStats
Trainer::step(const std::vector<std::vector<Tensor>>& micro_batches)
{
    SLAPO_CHECK(!micro_batches.empty(), "Trainer: no micro-batches");
    TrainStepStats stats;
    stats.micro_batches = static_cast<int64_t>(micro_batches.size());

    std::vector<Tensor> grads;
    for (const std::vector<Tensor>& inputs : micro_batches) {
        AutogradEngine engine;
        GradResult result = engine.run(*model_, inputs);
        stats.loss += result.outputs[0].at(0);
        stats.stored_activation_bytes =
            std::max(stats.stored_activation_bytes,
                     result.stored_activation_bytes);
        stats.recomputed_nodes += result.recomputed_nodes;
        if (grads.empty()) {
            for (auto& [path, tensor] : params_) {
                grads.push_back(AutogradEngine::gradFor(result, *tensor));
            }
        } else {
            for (size_t i = 0; i < params_.size(); ++i) {
                grads[i].addInPlace(
                    AutogradEngine::gradFor(result, *params_[i].second));
            }
        }
    }
    const float inv = 1.0f / static_cast<float>(micro_batches.size());
    for (Tensor& g : grads) {
        g.scaleInPlace(inv);
    }
    optimizer_.step(grads);
    stats.loss /= static_cast<double>(micro_batches.size());
    return stats;
}

DataParallelTrainer::DataParallelTrainer(const nn::Module& model,
                                         int world_size, AdamWConfig config)
    : executor_(world_size)
{
    // Pure data parallelism: every rank holds the full model. Combining
    // with tensor parallelism needs distinct DP/TP process groups, which
    // the performance simulator models; the numeric TP path is covered
    // by DistExecutor + AutogradEngine directly.
    for (auto& [path, m] : const_cast<nn::Module&>(model).namedModules()) {
        SLAPO_CHECK(m->meta().sharded_params.empty(),
                    "DataParallelTrainer: model has tensor-parallel shards "
                    "('" << path << "'); use DistExecutor for TP training");
    }
    replicas_ = executor_.replicate(model);
    for (int r = 0; r < world_size; ++r) {
        params_.push_back(replicas_[r]->namedParams());
        optimizers_.push_back(std::make_unique<AdamW>(config));
        for (auto& [path, tensor] : params_.back()) {
            SLAPO_CHECK(tensor->materialized(),
                        "DataParallelTrainer: parameter '"
                            << path << "' is meta; initialize before "
                                       "replicating");
            optimizers_.back()->addParam(*tensor);
        }
    }
}

TrainStepStats
DataParallelTrainer::step(
    const std::vector<std::vector<Tensor>>& per_rank_inputs)
{
    const int world = executor_.worldSize();
    SLAPO_CHECK(static_cast<int>(per_rank_inputs.size()) == world,
                "DataParallelTrainer: need one input tuple per rank");
    std::vector<double> losses(world);
    std::vector<int64_t> recomputed(world);

    executor_.run(replicas_, [&](int rank, nn::Module& replica,
                                 ProcessGroup& group) {
        AutogradEngine engine;
        GradResult result = engine.run(replica, per_rank_inputs[rank]);
        losses[rank] = result.outputs[0].at(0);
        recomputed[rank] = result.recomputed_nodes;
        // Average data-parallel gradients, then step this rank's
        // optimizer; identical updates keep the replicas in lock-step.
        std::vector<Tensor> grads;
        for (auto& [path, tensor] : params_[rank]) {
            Tensor g = AutogradEngine::gradFor(result, *tensor);
            g = group.allReduce(rank, g);
            g.scaleInPlace(1.0f / static_cast<float>(world));
            grads.push_back(std::move(g));
        }
        optimizers_[rank]->step(grads);
    });

    TrainStepStats stats;
    stats.micro_batches = world;
    for (int r = 0; r < world; ++r) {
        stats.loss += losses[r];
        stats.recomputed_nodes += recomputed[r];
    }
    stats.loss /= world;
    return stats;
}

} // namespace runtime
} // namespace slapo
