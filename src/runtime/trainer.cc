#include "runtime/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <thread>
#include <utility>

#include <optional>

#include "obs/mem_profiler.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "runtime/checkpoint.h"
#include "support/failpoint.h"

namespace slapo {
namespace runtime {

namespace {

using StepClock = std::chrono::steady_clock;

double
msSince(StepClock::time_point t0)
{
    return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
               StepClock::now() - t0)
        .count();
}

/**
 * Global L2 norm of the gradient set. Accumulated sequentially in
 * double, in parameter order — no parallel reduction — so the result is
 * bitwise identical across kernel thread counts as long as the grads
 * themselves are (which the determinism contract guarantees).
 */
double
globalGradNorm(const std::vector<Tensor>& grads)
{
    double sum = 0.0;
    for (const Tensor& g : grads) {
        const float* data = g.data();
        const int64_t n = g.numel();
        for (int64_t i = 0; i < n; ++i) {
            const double v = static_cast<double>(data[i]);
            sum += v * v;
        }
    }
    return std::sqrt(sum);
}

/**
 * Gradient-allreduce bucket size in bytes. SLAPO_BUCKET_BYTES overrides
 * the 4 MiB default; <= 0 disables coalescing (one allreduce per
 * parameter, the pre-bucketing behaviour). Re-read on every step so
 * tests can flip it without process-lifetime caching.
 */
int64_t
gradBucketBytes()
{
    const char* env = std::getenv("SLAPO_BUCKET_BYTES");
    if (env == nullptr || *env == '\0') {
        return int64_t{4} << 20;
    }
    return static_cast<int64_t>(std::strtoll(env, nullptr, 10));
}

/**
 * Average per-parameter gradients across ranks by packing them, in
 * parameter order, into flat fixed-size buckets and running one
 * allreduce per bucket instead of one per parameter. Packing is
 * element-wise, and allReduce sums every element independently in rank
 * order, so the result is bitwise identical to the per-parameter loop;
 * only the rendezvous count changes (#buckets instead of #params).
 * Each bucket records its own "pg.allreduce.bucket" flight-recorder
 * event with the bucket length as its shape.
 */
std::vector<Tensor>
bucketedGradAllReduce(ProcessGroup& group, int rank,
                      const std::vector<Tensor>& local, int world)
{
    // Everything allocated here is gradient storage except the flat
    // pack/reduce buckets, which are tagged comm-buffer below.
    obs::MemCategoryScope mem_cat(obs::MemCategory::Gradient);
    const float inv_world = 1.0f / static_cast<float>(world);
    const int64_t bucket_bytes = gradBucketBytes();
    std::vector<Tensor> grads;
    grads.reserve(local.size());
    if (bucket_bytes <= 0) {
        for (const Tensor& g : local) {
            Tensor r = group.allReduce(rank, g);
            r.scaleInPlace(inv_world);
            grads.push_back(std::move(r));
        }
        return grads;
    }
    const int64_t bucket_elems = std::max<int64_t>(
        1, bucket_bytes / static_cast<int64_t>(sizeof(float)));
    int64_t total = 0;
    for (const Tensor& g : local) {
        grads.push_back(Tensor::empty(g.shape()));
        total += g.numel();
    }
    // Pack cursor (param pp, offset pc) and unpack cursor (up, uc)
    // advance through the same flat element stream one bucket apart.
    size_t pp = 0, up = 0;
    int64_t pc = 0, uc = 0;
    for (int64_t off = 0; off < total; off += bucket_elems) {
        const int64_t n = std::min(bucket_elems, total - off);
        std::optional<Tensor> bucket_storage;
        {
            obs::MemCategoryScope bucket_cat(obs::MemCategory::CommBuffer);
            bucket_storage.emplace(Tensor::empty({n}));
        }
        Tensor& bucket = *bucket_storage;
        float* b = bucket.data();
        for (int64_t filled = 0; filled < n;) {
            const int64_t take = std::min(local[pp].numel() - pc, n - filled);
            std::memcpy(b + filled, local[pp].data() + pc,
                        static_cast<size_t>(take) * sizeof(float));
            filled += take;
            pc += take;
            if (pc == local[pp].numel()) {
                ++pp;
                pc = 0;
            }
        }
        std::optional<Tensor> reduced_storage;
        {
            obs::MemCategoryScope bucket_cat(obs::MemCategory::CommBuffer);
            reduced_storage.emplace(group.allReduceBucket(rank, bucket));
        }
        Tensor& reduced = *reduced_storage;
        reduced.scaleInPlace(inv_world);
        const float* r = reduced.data();
        for (int64_t drained = 0; drained < n;) {
            const int64_t take = std::min(grads[up].numel() - uc, n - drained);
            std::memcpy(grads[up].data() + uc, r + drained,
                        static_cast<size_t>(take) * sizeof(float));
            drained += take;
            uc += take;
            if (uc == grads[up].numel()) {
                ++up;
                uc = 0;
            }
        }
    }
    return grads;
}

/** Input elements consumed by one step (first tensor of each tuple —
 * the token ids for the language models trained here). */
int64_t
countTokens(const std::vector<std::vector<Tensor>>& batches)
{
    int64_t tokens = 0;
    for (const std::vector<Tensor>& inputs : batches) {
        if (!inputs.empty()) {
            tokens += inputs[0].numel();
        }
    }
    return tokens;
}

/** What a thrown step error says (for the run-log recovery record). */
std::string
describeException(const std::exception_ptr& error)
{
    try {
        std::rethrow_exception(error);
    } catch (const std::exception& e) {
        return e.what();
    } catch (...) {
        return "unknown error";
    }
}

/** Deterministic (jitter-free) exponential backoff before restore sweep
 * `attempt` (1-based): 0 for the first sweep, then restore_backoff_ms
 * doubling per further sweep. */
int64_t
restoreBackoffMs(const RecoveryOptions& recovery, int attempt)
{
    if (attempt <= 1 || recovery.restore_backoff_ms <= 0) {
        return 0;
    }
    return recovery.restore_backoff_ms << (attempt - 2);
}

/**
 * The recovery state machine shared by both trainers
 * (docs/ROBUSTNESS.md): RUN a step; on failure classify the loss
 * (`on_rank_loss` shrinks the world if ranks are permanently gone),
 * RESTORE the newest loadable checkpoint (corrupt files are skipped;
 * up to max_restore_attempts sweeps with deterministic backoff) and
 * REPLAY from its step. Deterministic steps + bit-exact checkpoints
 * make the replayed trajectory identical to an uninterrupted run.
 * Exhausting retries or restore attempts emits a "recovery.giveup"
 * run-log record and rethrows the step's error.
 */
TrainRunStats
runWithRecovery(
    const RecoveryOptions& recovery, const BatchProvider& batches,
    int64_t num_steps,
    const std::function<TrainStepStats(const std::vector<std::vector<Tensor>>&)>&
        do_step,
    const std::function<CheckpointState(int64_t)>& capture,
    const std::function<void(const CheckpointState&)>& restore,
    const std::function<bool(const std::exception_ptr&)>& on_rank_loss)
{
    SLAPO_CHECK(batches != nullptr, "trainSteps: null batch provider");
    const bool enabled = !recovery.checkpoint_dir.empty();
    const std::filesystem::path dir(recovery.checkpoint_dir);
    if (enabled) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
    }
    auto save_at = [&](int64_t step) {
        obs::TraceSpan span("trainer.checkpoint", "trainer");
        if (span.live()) {
            span.arg("step", step);
        }
        // saveCheckpoint itself appends the "checkpoint.save" run-log
        // record (it knows path, bytes, and timing exactly).
        saveCheckpoint((dir / checkpointFileName(step)).string(),
                       capture(step));
    };

    TrainRunStats stats;
    auto give_up = [&](int restore_attempts, int64_t failed_step,
                       const std::string& error_text) {
        if (obs::RunLog* log = obs::runLog()) {
            obs::RunLogRecord record("recovery.giveup");
            record.num("restore_attempts",
                       static_cast<int64_t>(restore_attempts))
                .num("recoveries", static_cast<int64_t>(stats.recoveries))
                .num("failed_step", failed_step)
                .str("error", error_text);
            log->write(record);
        }
    };

    int64_t step = 0;
    int handler_failures = 0;
    while (step < num_steps) {
        if (enabled && recovery.checkpoint_every > 0 &&
            step % recovery.checkpoint_every == 0) {
            save_at(step);
        }
        std::exception_ptr pending;
        try {
            stats.last = do_step(batches(step));
            ++step;
            ++stats.steps_run;
            handler_failures = 0;
        } catch (...) {
            pending = std::current_exception();
        }
        // Failure handler. It may itself fail — a failpoint armed on an
        // elastic.* site, or another rank dying during the restore
        // sweep; each such failure loops back in as the new pending
        // error, bounded by max_retries consecutive handler failures.
        while (pending) {
            const std::exception_ptr original =
                std::exchange(pending, nullptr);
            const std::string error_text = describeException(original);
            const int64_t failed_step = step;
            if (!enabled) {
                std::rethrow_exception(original);
            }
            if (stats.recoveries >= recovery.max_retries ||
                handler_failures > recovery.max_retries) {
                give_up(0, failed_step, error_text);
                std::rethrow_exception(original);
            }
            obs::TraceSpan restore_span("trainer.restore", "trainer");
            int attempts = 0;
            int64_t restored_step = -1;
            try {
                if (on_rank_loss && on_rank_loss(original)) {
                    ++stats.elastic_rebuilds;
                }
                const int max_attempts =
                    std::max(1, recovery.max_restore_attempts);
                for (int attempt = 1;
                     attempt <= max_attempts && restored_step < 0;
                     ++attempt) {
                    ++attempts;
                    const int64_t backoff =
                        restoreBackoffMs(recovery, attempt);
                    if (backoff > 0) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(backoff));
                    }
                    auto checkpoints =
                        listCheckpoints(recovery.checkpoint_dir);
                    for (auto it = checkpoints.rbegin();
                         it != checkpoints.rend(); ++it) {
                        try {
                            // loadCheckpoint appends the
                            // "checkpoint.restore" run-log record.
                            CheckpointState state =
                                loadCheckpoint(it->second);
                            restore(state);
                            restored_step = state.step;
                            break;
                        } catch (const CheckpointError&) {
                            continue; // corrupt: fall back to older
                        }
                    }
                }
            } catch (...) {
                pending = std::current_exception();
                ++handler_failures;
                continue;
            }
            if (restored_step < 0) {
                give_up(attempts, failed_step, error_text);
                std::rethrow_exception(original);
            }
            step = restored_step;
            ++stats.recoveries;
            obs::metrics().recovery_restores.add(1);
            handler_failures = 0;
            if (obs::RunLog* log = obs::runLog()) {
                obs::RunLogRecord record("recovery");
                record.num("attempt", static_cast<int64_t>(stats.recoveries))
                    .num("failed_step", failed_step)
                    .str("error", error_text)
                    .num("restored_to_step", step);
                log->write(record);
            }
        }
    }
    if (enabled && recovery.checkpoint_every > 0) {
        save_at(num_steps); // durable final state for a later resume
    }
    return stats;
}

} // namespace

Trainer::Trainer(nn::ModulePtr model, AdamWConfig config,
                 RecoveryOptions recovery)
    : model_(std::move(model)), optimizer_(config),
      recovery_(std::move(recovery))
{
    SLAPO_CHECK(model_ != nullptr, "Trainer: null model");
    params_ = model_->namedParams();
    for (auto& [path, tensor] : params_) {
        SLAPO_CHECK(tensor->materialized(),
                    "Trainer: parameter '" << path
                                           << "' is meta; call "
                                              "initializeParams first");
        optimizer_.addParam(*tensor);
    }
}

TrainStepStats
Trainer::step(const std::vector<std::vector<Tensor>>& micro_batches)
{
    support::failpoint::hit("trainer.step");
    SLAPO_CHECK(!micro_batches.empty(), "Trainer: no micro-batches");
    obs::TraceSpan step_span("trainer.step", "trainer");
    const auto step_start = StepClock::now();
    // Attribution window: a fresh profiler + metrics window per step.
    // Disabled cost is the one relaxed atomic load in stepReportsEnabled.
    std::optional<obs::StepReportBuilder> report_builder;
    if (obs::stepReportsEnabled()) {
        report_builder.emplace(/*world_size=*/1);
    }
    // In-step memory window: peak + per-category bytes at the peak for
    // the run-log step record. No-op unless memProfilingEnabled().
    std::optional<obs::MemWindow> mem_window;
    if (obs::memProfilingEnabled()) {
        mem_window.emplace();
    }
    TrainStepStats stats;
    stats.micro_batches = static_cast<int64_t>(micro_batches.size());
    stats.tokens = countTokens(micro_batches);

    std::vector<Tensor> grads;
    int64_t micro_index = 0;
    for (const std::vector<Tensor>& inputs : micro_batches) {
        obs::TraceSpan micro_span("trainer.micro_batch", "trainer");
        if (micro_span.live()) {
            micro_span.arg("micro_batch", micro_index);
        }
        ++micro_index;
        AutogradEngine engine;
        GradResult result = engine.run(*model_, inputs);
        stats.loss += result.outputs[0].at(0);
        stats.stored_activation_bytes =
            std::max(stats.stored_activation_bytes,
                     result.stored_activation_bytes);
        stats.recomputed_nodes += result.recomputed_nodes;
        obs::OpProfiler* prof = obs::OpProfiler::current();
        const auto reduce_start = StepClock::now();
        if (grads.empty()) {
            for (auto& [path, tensor] : params_) {
                grads.push_back(AutogradEngine::gradFor(result, *tensor));
            }
        } else {
            for (size_t i = 0; i < params_.size(); ++i) {
                grads[i].addInPlace(
                    AutogradEngine::gradFor(result, *params_[i].second));
            }
        }
        if (prof != nullptr) {
            // Gradient extraction / accumulation across micro-batches is
            // unscheduled trainer work: attribute it to baseline so step
            // reports cover it instead of leaving it in "other".
            prof->record("grad.reduce", "", "baseline",
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             StepClock::now() - reduce_start)
                             .count());
        }
    }
    {
        obs::OpProfiler* prof = obs::OpProfiler::current();
        const auto reduce_start = StepClock::now();
        const float inv = 1.0f / static_cast<float>(micro_batches.size());
        for (Tensor& g : grads) {
            g.scaleInPlace(inv);
        }
        stats.grad_norm = globalGradNorm(grads);
        if (prof != nullptr) {
            prof->record("grad.reduce", "", "baseline",
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             StepClock::now() - reduce_start)
                             .count());
        }
    }
    {
        obs::TraceSpan optim_span("trainer.optim", "trainer");
        obs::OpProfiler* prof = obs::OpProfiler::current();
        const auto optim_start = StepClock::now();
        optimizer_.step(grads);
        if (prof != nullptr) {
            // Unscheduled step work: attribute explicitly to baseline so
            // the report's coverage includes the optimizer.
            prof->record("optimizer.step", "", "baseline",
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             StepClock::now() - optim_start)
                             .count());
        }
    }
    stats.loss /= static_cast<double>(micro_batches.size());
    if (obs::RunLog* log = obs::runLog()) {
        obs::StepRecord record;
        record.step = optimizer_.stepCount() - 1;
        record.loss = stats.loss;
        record.grad_norm = stats.grad_norm;
        record.micro_batches = stats.micro_batches;
        record.tokens = stats.tokens;
        record.step_ms = msSince(step_start);
        if (mem_window && mem_window->active()) {
            record.mem_peak_bytes = mem_window->peakBytes();
            record.mem_live_bytes = obs::memLiveBytes();
            record.mem_retained_bytes = obs::metrics().alloc_pooled_bytes.get();
            record.mem_categories_json = mem_window->categoriesJson();
        } else {
            record.mem_peak_bytes = obs::metrics().tensor_live_bytes.peak();
        }
        record.world_size = 1;
        log->logStep(record);
    }
    if (report_builder) {
        last_report_ = report_builder->finish(optimizer_.stepCount() - 1);
        obs::maybeWriteStepReport(last_report_);
    }
    return stats;
}

TrainRunStats
Trainer::trainSteps(const BatchProvider& batches, int64_t num_steps)
{
    return runWithRecovery(
        recovery_, batches, num_steps,
        [this](const std::vector<std::vector<Tensor>>& micros) {
            return step(micros);
        },
        [this](int64_t at_step) {
            return captureTrainerState(at_step, params_, optimizer_);
        },
        [this](const CheckpointState& state) {
            restoreTrainerState(state, params_, optimizer_);
        },
        nullptr); // single process: rank loss cannot happen
}

DataParallelTrainer::DataParallelTrainer(const nn::Module& model,
                                         int world_size, AdamWConfig config,
                                         RecoveryOptions recovery)
    : executor_(world_size), recovery_(std::move(recovery))
{
    // Pure data parallelism: every rank holds the full model. Combining
    // with tensor parallelism needs distinct DP/TP process groups, which
    // the performance simulator models; the numeric TP path is covered
    // by DistExecutor + AutogradEngine directly.
    for (auto& [path, m] : const_cast<nn::Module&>(model).namedModules()) {
        SLAPO_CHECK(m->meta().sharded_params.empty(),
                    "DataParallelTrainer: model has tensor-parallel shards "
                    "('" << path << "'); use DistExecutor for TP training");
    }
    replicas_ = executor_.replicate(model);
    base_world_ = world_size;
    for (int r = 0; r < world_size; ++r) {
        params_.push_back(replicas_[r]->namedParams());
        optimizers_.push_back(std::make_unique<AdamW>(config));
        for (auto& [path, tensor] : params_.back()) {
            SLAPO_CHECK(tensor->materialized(),
                        "DataParallelTrainer: parameter '"
                            << path << "' is meta; initialize before "
                                       "replicating");
            optimizers_.back()->addParam(*tensor);
        }
        // The data partition starts one shard per rank; elastic shrinks
        // reassign shards but never change base_world_ (the shard count).
        shard_map_.push_back({r});
        orig_rank_.push_back(r);
    }
}

TrainStepStats
DataParallelTrainer::step(
    const std::vector<std::vector<Tensor>>& per_shard_inputs)
{
    support::failpoint::hit("dp_trainer.step");
    obs::TraceSpan step_span("dp_trainer.step", "trainer");
    const auto step_start = StepClock::now();
    const int world = executor_.worldSize();
    std::optional<obs::StepReportBuilder> report_builder;
    if (obs::stepReportsEnabled()) {
        report_builder.emplace(world);
    }
    std::optional<obs::MemWindow> mem_window;
    if (obs::memProfilingEnabled()) {
        mem_window.emplace();
    }
    SLAPO_CHECK(static_cast<int>(per_shard_inputs.size()) == base_world_,
                "DataParallelTrainer: need one input tuple per data shard ("
                    << base_world_ << "), got " << per_shard_inputs.size());
    std::vector<double> shard_losses(base_world_, 0.0);
    std::vector<int64_t> recomputed(world, 0);
    double grad_norm = 0.0; // written by rank 0 only

    executor_.run(replicas_, [&](int rank, nn::Module& replica,
                                 ProcessGroup& group) {
        // Run this rank's shards sequentially (gradient accumulation in
        // ascending shard order — one shard per rank until an elastic
        // shrink hands survivors orphaned shards), then average across
        // *shards* and step this rank's optimizer; identical updates
        // keep the replicas in lock-step. Distinct ranks write distinct
        // shard_losses slots, so no synchronization is needed.
        std::vector<Tensor> local;
        for (int shard : shard_map_[rank]) {
            AutogradEngine engine;
            GradResult result = engine.run(replica, per_shard_inputs[shard]);
            shard_losses[shard] = result.outputs[0].at(0);
            recomputed[rank] += result.recomputed_nodes;
            if (local.empty()) {
                local.reserve(params_[rank].size());
                for (auto& [path, tensor] : params_[rank]) {
                    local.push_back(AutogradEngine::gradFor(result, *tensor));
                }
            } else {
                for (size_t i = 0; i < params_[rank].size(); ++i) {
                    local[i].addInPlace(
                        AutogradEngine::gradFor(result,
                                                *params_[rank][i].second));
                }
            }
        }
        std::vector<Tensor> grads;
        obs::OpProfiler* prof = obs::OpProfiler::current();
        {
            obs::TraceSpan allreduce_span("trainer.grad_allreduce",
                                          "trainer");
            const auto ar_start = StepClock::now();
            // Scale by 1/#shards, not 1/#ranks: the update is a mean
            // over the fixed data partition, so the math is well-defined
            // at any (shrunken) world size.
            grads = bucketedGradAllReduce(group, rank, local, base_world_);
            if (prof != nullptr) {
                // The data-parallel gradient exchange is communication
                // no schedule primitive inserted — its own attribution
                // bucket in the step report.
                prof->record(
                    "grad.exchange", "", "data_parallel",
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        StepClock::now() - ar_start)
                        .count());
            }
        }
        if (rank == 0) {
            // Post-allreduce grads are identical on every rank; rank 0's
            // norm is the global one.
            grad_norm = globalGradNorm(grads);
        }
        obs::TraceSpan optim_span("trainer.optim", "trainer");
        const auto optim_start = StepClock::now();
        optimizers_[rank]->step(grads);
        if (prof != nullptr) {
            prof->record("optimizer.step", "", "baseline",
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             StepClock::now() - optim_start)
                             .count());
        }
    });

    TrainStepStats stats;
    stats.micro_batches = base_world_;
    stats.tokens = countTokens(per_shard_inputs);
    stats.grad_norm = grad_norm;
    // Sum losses in shard order — invariant across world sizes and
    // kernel thread counts.
    for (int s = 0; s < base_world_; ++s) {
        stats.loss += shard_losses[s];
    }
    for (int r = 0; r < world; ++r) {
        stats.recomputed_nodes += recomputed[r];
    }
    stats.loss /= base_world_;
    if (obs::RunLog* log = obs::runLog()) {
        obs::StepRecord record;
        record.step = optimizers_[0]->stepCount() - 1;
        record.loss = stats.loss;
        record.grad_norm = stats.grad_norm;
        record.micro_batches = stats.micro_batches;
        record.tokens = stats.tokens;
        record.step_ms = msSince(step_start);
        if (mem_window && mem_window->active()) {
            record.mem_peak_bytes = mem_window->peakBytes();
            record.mem_live_bytes = obs::memLiveBytes();
            record.mem_retained_bytes = obs::metrics().alloc_pooled_bytes.get();
            record.mem_categories_json = mem_window->categoriesJson();
        } else {
            record.mem_peak_bytes = obs::metrics().tensor_live_bytes.peak();
        }
        record.world_size = world;
        log->logStep(record);
    }
    if (report_builder) {
        last_report_ = report_builder->finish(optimizers_[0]->stepCount() - 1);
        // Straggler detection: attach the cross-rank min/max/mean/spread
        // of the collective counters (runs the same gather collectives
        // the report describes — only while reports are enabled).
        last_report_.per_rank_json = gatherMetrics().toJson();
        obs::maybeWriteStepReport(last_report_);
    }
    return stats;
}

obs::DistMetricsReport
DataParallelTrainer::gatherMetrics()
{
    const int world = executor_.worldSize();
    const std::vector<std::string> names = obs::distMetricNames();
    std::vector<std::vector<int64_t>> per_rank(world);

    executor_.run(replicas_, [&](int rank, nn::Module& /*replica*/,
                                 ProcessGroup& group) {
        const RankPgStats mine = group.rankStats(rank);
        const obs::Metrics& m = obs::metrics();
        const std::vector<int64_t> values = {
            mine.count,
            mine.wait_ns,
            mine.copy_ns,
            m.tensor_allocated_bytes.get(),
            m.tensor_live_bytes.peak(),
            m.pipeline_queue_wait_ns.get(),
        };
        // Move the packed snapshots through the group itself: the
        // aggregation uses (and therefore exercises) the same collective
        // path it reports on.
        const std::vector<float> packed = obs::packInt64s(values);
        Tensor mine_t = Tensor::fromValues(
            {1, static_cast<int64_t>(packed.size())}, packed);
        Tensor gathered = group.allGather(rank, mine_t, 0);
        if (rank == 0) {
            const float* data = gathered.data();
            const size_t floats_per_rank =
                names.size() * obs::kFloatsPerInt64;
            for (int r = 0; r < world; ++r) {
                per_rank[r] = obs::unpackInt64s(
                    data + static_cast<size_t>(r) * floats_per_rank,
                    names.size());
            }
        }
    });

    return obs::buildDistMetricsReport(names, per_rank);
}

bool
DataParallelTrainer::handleRankLoss(const std::exception_ptr& failure)
{
    if (!recovery_.elastic) {
        return false;
    }
    ProcessGroup& group = executor_.group();
    if (group.lostRanks().empty()) {
        // No loss declared. If the step died with a *current-world*
        // collective error, give the origin rank the liveness deadline
        // to be declared lost ("gone") before concluding it was merely
        // slow ("replay at the same world size"). Stale-generation
        // errors name ranks of a world that no longer exists, so their
        // origin is not consulted.
        int origin = -1;
        try {
            std::rethrow_exception(failure);
        } catch (const CollectiveError& e) {
            if (e.memberGeneration() == 0 ||
                e.memberGeneration() == group.membershipGeneration()) {
                origin = e.rank();
            }
        } catch (...) {
        }
        if (origin < 0 || origin >= executor_.worldSize() ||
            !group.confirmLost(origin, recovery_.liveness_deadline_ms)) {
            // Slow, not gone. Repair a possibly half-finished earlier
            // shrink (rebalanceShards is idempotent) and let the
            // same-world replay proceed.
            rebalanceShards();
            return false;
        }
    }
    elasticShrink();
    return true;
}

void
DataParallelTrainer::remapSurvivors(const std::vector<int>& survivors)
{
    std::vector<nn::ModulePtr> replicas;
    std::vector<std::unique_ptr<AdamW>> optimizers;
    std::vector<std::vector<std::pair<std::string, Tensor*>>> params;
    std::vector<std::vector<int>> shards;
    std::vector<int> orig;
    replicas.reserve(survivors.size());
    optimizers.reserve(survivors.size());
    params.reserve(survivors.size());
    shards.reserve(survivors.size());
    orig.reserve(survivors.size());
    for (int prev : survivors) {
        replicas.push_back(std::move(replicas_[prev]));
        optimizers.push_back(std::move(optimizers_[prev]));
        params.push_back(std::move(params_[prev]));
        shards.push_back(std::move(shard_map_[prev]));
        orig.push_back(orig_rank_[prev]);
    }
    replicas_ = std::move(replicas);
    optimizers_ = std::move(optimizers);
    params_ = std::move(params);
    shard_map_ = std::move(shards);
    orig_rank_ = std::move(orig);

    // Memory attribution after the shrink: a survivor's replica now
    // runs as a *new* rank index, so re-tag its live parameter storage
    // to the post-rebuild rank (orphaned shards inherited via shard_map_
    // reuse the survivor's own replica — no extra tensors to move).
    if (obs::memProfilingEnabled()) {
        for (size_t r = 0; r < params_.size(); ++r) {
            for (auto& [path, tensor] : params_[r]) {
                if (tensor->materialized()) {
                    obs::memRetagRank(tensor->storageKey(),
                                      static_cast<int>(r));
                }
            }
        }
    }
}

void
DataParallelTrainer::rebalanceShards()
{
    const int world = static_cast<int>(shard_map_.size());
    std::vector<char> assigned(base_world_, 0);
    for (const std::vector<int>& shards : shard_map_) {
        for (int s : shards) {
            assigned[s] = 1;
        }
    }
    for (int s = 0; s < base_world_; ++s) {
        if (assigned[s]) {
            continue;
        }
        // Orphaned by a lost rank: hand it to the least-loaded survivor
        // (ties → lowest rank) so accumulation work stays balanced and
        // the assignment is a pure function of (survivors, lost shards).
        int target = 0;
        for (int r = 1; r < world; ++r) {
            if (shard_map_[r].size() < shard_map_[target].size()) {
                target = r;
            }
        }
        shard_map_[target].push_back(s);
    }
    for (std::vector<int>& shards : shard_map_) {
        std::sort(shards.begin(), shards.end());
    }
}

void
DataParallelTrainer::elasticShrink()
{
    ProcessGroup& group = executor_.group();
    obs::TraceSpan span("elastic.rebuild", "trainer");
    const auto t0 = StepClock::now();
    const int old_world = executor_.worldSize();
    std::vector<int> lost_orig;
    // abort happened upstream (the failed step); from here every arrow
    // of the state machine — drain → agree-on-survivors/rebuild →
    // rebalance → resume — is failpoint-injectable, and a rank dying
    // *during* the rendezvous simply loops back into another shrink.
    while (true) {
        for (int r : group.lostRanks()) {
            lost_orig.push_back(orig_rank_[r]);
        }
        // Drain: all rank threads are already joined (DistExecutor::run
        // joins before rethrowing), so in-flight collectives have
        // settled; the site marks the arrow for fault injection.
        support::failpoint::hit("elastic.drain");
        support::failpoint::hit("elastic.rebuild");
        const std::vector<int> survivors = executor_.shrink();
        SLAPO_CHECK(!survivors.empty(),
                    "elastic recovery: every rank was lost");
        remapSurvivors(survivors);
        support::failpoint::hit("elastic.rebalance");
        rebalanceShards();
        // Survivor rendezvous: every new rank gathers the full original
        // id list through the *rebuilt* group and checks it against the
        // membership the main thread computed — the agree-on-survivors
        // barrier. Old-generation deposits are rejected by the group, so
        // agreement here is agreement about the new world.
        const std::vector<int> expected = orig_rank_;
        try {
            executor_.run(replicas_, [&](int rank, nn::Module&,
                                         ProcessGroup& g) {
                support::failpoint::hit("elastic.rendezvous", rank);
                Tensor mine = Tensor::fromValues(
                    {1, 1}, {static_cast<float>(expected[rank])});
                Tensor all = g.allGather(rank, mine, 0);
                for (size_t i = 0; i < expected.size(); ++i) {
                    SLAPO_CHECK(all.at(static_cast<int64_t>(i)) ==
                                    static_cast<float>(expected[i]),
                                "elastic rendezvous: membership "
                                "disagreement at new rank " << i);
                }
            });
        } catch (const support::failpoint::RankLostError&) {
            continue; // another rank died while agreeing: shrink again
        } catch (const CollectiveError&) {
            if (!group.lostRanks().empty()) {
                continue; // the rendezvous failed because a peer died
            }
            throw;
        }
        break;
    }
    std::sort(lost_orig.begin(), lost_orig.end());
    obs::metrics().elastic_rebuilds.add(1);
    obs::metrics().elastic_lost_ranks.add(
        static_cast<int64_t>(lost_orig.size()));
    if (span.live()) {
        span.arg("old_world", static_cast<int64_t>(old_world));
        span.arg("new_world", static_cast<int64_t>(executor_.worldSize()));
    }
    if (obs::RunLog* log = obs::runLog()) {
        std::string lost_json = "[";
        for (size_t i = 0; i < lost_orig.size(); ++i) {
            lost_json += (i ? "," : "") + std::to_string(lost_orig[i]);
        }
        lost_json += "]";
        obs::RunLogRecord record("elastic.rebuild");
        record.raw("lost_ranks", lost_json)
            .num("old_world", static_cast<int64_t>(old_world))
            .num("new_world", static_cast<int64_t>(executor_.worldSize()))
            .num("generation", group.membershipGeneration())
            .num("rebuild_ms", msSince(t0));
        log->write(record);
    }
}

TrainRunStats
DataParallelTrainer::trainSteps(const BatchProvider& batches,
                                int64_t num_steps)
{
    TrainRunStats stats = runWithRecovery(
        recovery_, batches, num_steps,
        [this](const std::vector<std::vector<Tensor>>& per_shard) {
            return step(per_shard);
        },
        // Replicas are in lock-step between steps, so rank 0's state is
        // the global state.
        [this](int64_t at_step) {
            return captureTrainerState(at_step, params_[0], *optimizers_[0],
                                       executor_.worldSize());
        },
        // A failed step can leave ranks diverged (some optimizers
        // stepped, some not); every rank restores the checkpoint in
        // parallel — re-synchronizing them — and the closing barrier
        // proves the whole (possibly shrunken) world came back: the
        // resume arrow. The per-rank "elastic.restore" site makes
        // death-during-restore injectable.
        [this](const CheckpointState& state) {
            executor_.run(replicas_, [&](int rank, nn::Module&,
                                         ProcessGroup& group) {
                support::failpoint::hit("elastic.restore", rank);
                restoreTrainerState(state, params_[rank], *optimizers_[rank]);
                group.barrier();
            });
        },
        [this](const std::exception_ptr& failure) {
            return handleRankLoss(failure);
        });
    if (obs::RunLog* log = obs::runLog()) {
        log->writeLine(gatherMetrics().toJson());
    }
    return stats;
}

} // namespace runtime
} // namespace slapo
