/**
 * @file
 * Multi-rank numeric execution of a scheduled model — the reproduction of
 * "launch one process per device" (§3.3.2) with threads as ranks.
 *
 * Given a model whose schedule recorded `.shard()` / `.sync()` decisions,
 * the executor builds one replica per rank with parameters *physically
 * sharded* (narrowed) according to each ShardSpec, then runs every rank
 * on its own thread with a DistContext installed so nn::F collectives and
 * the autograd engine exchange data through a ProcessGroup. This is what
 * the verifier uses to check that a tensor-parallel schedule computes the
 * same function as the original single-device model.
 */
#pragma once

#include <functional>
#include <vector>

#include "nn/module.h"
#include "runtime/process_group.h"

namespace slapo {
namespace runtime {

/** Thread-per-rank executor over a software ProcessGroup. */
class DistExecutor
{
  public:
    explicit DistExecutor(int world_size, ProcessGroupOptions options = {});

    int worldSize() const { return world_size_; }

    /** The executor's collective group (e.g. to tune its timeout). */
    ProcessGroup& group() { return group_; }

    /**
     * Clone the scheduled model once per rank and narrow every sharded
     * parameter to the rank's slice (honoring ShardSpec::interleave; a
     * row-parallel Linear's unsharded bias is pre-scaled by 1/world so
     * the all-reduce adds it exactly once).
     */
    std::vector<nn::ModulePtr> replicate(const nn::Module& model) const;

    /** Per-rank worker: runs on its own thread with DistContext set. */
    using RankFn =
        std::function<void(int rank, nn::Module& model, ProcessGroup& group)>;

    /**
     * Run `fn` on all ranks. Failure containment: the first rank whose
     * body throws aborts the ProcessGroup, so peers blocked in a
     * collective fail fast with a CollectiveError instead of hanging.
     * All rank threads are always joined; the originating failure is
     * rethrown (victims' CollectiveErrors are secondary) and the group
     * is reset so the executor stays usable for a retry.
     *
     * A rank that throws RankLostError (failpoint `die` mode) is
     * additionally declared *permanently lost* on the group before the
     * abort — lost declarations survive the reset, so an elastic
     * recovery layer can distinguish "gone" (shrink the world) from
     * "slow/crashed" (replay at the same world size).
     */
    void run(const std::vector<nn::ModulePtr>& replicas, const RankFn& fn);

    /**
     * Elastic shrink after permanent rank loss: rebuild the group over
     * every rank not declared lost (renumbered 0..n-1) and respawn
     * future `run` calls with the new world size. Call only between
     * runs (all rank threads joined). Returns the survivors' *previous*
     * rank ids, ascending — index = new rank — so callers can remap
     * replicas and shard assignments.
     */
    std::vector<int> shrink();

    /**
     * Replicate + forward on every rank with identical inputs; returns
     * outputs[rank][output_index].
     */
    std::vector<std::vector<Tensor>> forward(const nn::Module& model,
                                             const std::vector<Tensor>& inputs);

    /** Shard the parameters of one replica in place (exposed for tests). */
    static void shardParamsForRank(nn::Module& replica, int rank,
                                   int world_size);

  private:
    int world_size_;
    ProcessGroup group_;
};

} // namespace runtime
} // namespace slapo
