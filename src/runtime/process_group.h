/**
 * @file
 * Software collectives over threads — the reproduction's NCCL.
 *
 * The paper's distributed runs launch one process per device; here each
 * simulated rank is a thread executing its own replica of the scheduled
 * model (see runtime/dist_executor.h). A ProcessGroup is a rendezvous
 * point: every rank deposits its tensor, the last arrival computes the
 * collective, and all ranks pick up their result. Determinism: reductions
 * always sum in rank order.
 */
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"

namespace slapo {
namespace runtime {

/** A fixed-size group of ranks exchanging collectives. */
class ProcessGroup
{
  public:
    explicit ProcessGroup(int world_size);

    int worldSize() const { return world_size_; }

    /** Elementwise sum across ranks; every rank gets the full result. */
    Tensor allReduce(int rank, const Tensor& tensor);

    /** Concatenate rank shards along `axis`; every rank gets the result. */
    Tensor allGather(int rank, const Tensor& tensor, int64_t axis);

    /** Sum across ranks, then return this rank's slice along `axis`. */
    Tensor reduceScatter(int rank, const Tensor& tensor, int64_t axis);

    /** Every rank receives root's tensor. */
    Tensor broadcast(int rank, const Tensor& tensor, int root);

    /** Synchronize all ranks without exchanging data. */
    void barrier();

  private:
    using ComputeFn =
        std::function<std::vector<Tensor>(const std::vector<Tensor>&)>;

    /** Deposit, wait for all ranks, return this rank's result. */
    Tensor rendezvous(int rank, const Tensor& tensor, const ComputeFn& compute);

    int world_size_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Tensor> slots_;
    std::vector<Tensor> results_;
    int arrived_ = 0;
    int64_t generation_ = 0;
};

} // namespace runtime
} // namespace slapo
