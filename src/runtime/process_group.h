/**
 * @file
 * Software collectives over threads — the reproduction's NCCL.
 *
 * The paper's distributed runs launch one process per device; here each
 * simulated rank is a thread executing its own replica of the scheduled
 * model (see runtime/dist_executor.h). A ProcessGroup is a rendezvous
 * point: every rank deposits its tensor, the last arrival computes the
 * collective, and all ranks pick up their result. Determinism: reductions
 * always sum in rank order.
 *
 * Fault tolerance (docs/ROBUSTNESS.md): a rendezvous never blocks
 * forever. Deposits are validated against the first arrival's shape, a
 * configurable timeout bounds every wait, and `abort()` broadcasts the
 * first failure to all peers as a typed CollectiveError carrying (site,
 * origin rank, generation). After all rank threads have joined, `reset()`
 * makes the group reusable for the next (retried) collective sequence.
 * Every collective entry is also a failpoint site ("pg.<collective>",
 * see support/failpoint.h) so recovery paths are deterministically
 * testable.
 *
 * Elastic membership: each group carries a *membership generation*
 * (world epoch, starting at 1). A rank declared permanently lost
 * (`declareLost`) stays marked until `rebuild(survivors)` replaces the
 * world with the surviving ranks — renumbered 0..n-1, counters carried
 * over, generation bumped — so the same group object survives a
 * shrink. Deposits from threads spawned into an older generation
 * (DistContext::membership_generation) are rejected with a
 * stale-generation CollectiveError, never silently mixed into the new
 * world.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "tensor/tensor.h"

namespace slapo {
namespace runtime {

/** One rank's collective counters (global metrics aggregate all ranks;
 * these keep the per-rank split that cross-rank skew reports need). */
struct RankPgStats
{
    int64_t count = 0;   ///< collectives this rank entered
    int64_t wait_ns = 0; ///< time this rank blocked on peers
    int64_t copy_ns = 0; ///< this rank's reduction/copy time
};

/** Tunables of a ProcessGroup's failure behaviour. */
struct ProcessGroupOptions
{
    /**
     * Max milliseconds a rank waits inside one collective for its peers
     * before it aborts the group with a CollectiveError. <= 0 waits
     * forever (the pre-fault-tolerance behaviour).
     */
    int64_t timeout_ms = 60000;
};

/** A fixed-size group of ranks exchanging collectives. */
class ProcessGroup
{
  public:
    explicit ProcessGroup(int world_size, ProcessGroupOptions options = {});

    int worldSize() const { return world_size_; }

    /** Change the rendezvous timeout (takes effect on the next wait). */
    void setTimeout(int64_t timeout_ms);

    /** Elementwise sum across ranks; every rank gets the full result. */
    Tensor allReduce(int rank, const Tensor& tensor);

    /**
     * allReduce under the distinct site "pg.allreduce.bucket". Used by
     * the data-parallel trainer's coalesced gradient exchange so each
     * flat bucket shows up as its own flight-recorder/failpoint event,
     * separable from single-tensor reductions in dumps and fault specs.
     */
    Tensor allReduceBucket(int rank, const Tensor& tensor);

    /** Concatenate rank shards along `axis`; every rank gets the result. */
    Tensor allGather(int rank, const Tensor& tensor, int64_t axis);

    /** Sum across ranks, then return this rank's slice along `axis`. */
    Tensor reduceScatter(int rank, const Tensor& tensor, int64_t axis);

    /** Every rank receives root's tensor. */
    Tensor broadcast(int rank, const Tensor& tensor, int root);

    /** Synchronize all ranks without exchanging data. */
    void barrier();

    /**
     * Broadcast a failure to the group: every rank blocked in — or later
     * entering — a collective throws a CollectiveError carrying this
     * (site, rank, reason). First abort wins; later ones are ignored.
     * Safe to call from any thread (typically a failed rank's handler).
     */
    void abort(const std::string& site, int rank, const std::string& reason);

    /** True once the group has been aborted and not yet reset. */
    bool aborted() const;

    /** Rank that first aborted the group (-1 if not aborted). */
    int abortRank() const;

    /**
     * Declare `rank` permanently lost (machine gone, never returning).
     * Also aborts the group (peers fail fast) and survives `reset()` —
     * only `rebuild()` clears it. Safe from any thread; typically the
     * DistExecutor's handler for RankLostError.
     */
    void declareLost(int rank, const std::string& reason);

    /** Ranks declared lost in the current membership, ascending. */
    std::vector<int> lostRanks() const;

    /**
     * The liveness deadline: block up to `deadline_ms` for `rank` to be
     * declared lost. Returns true if (or as soon as) it is — the rank is
     * *gone* and the world must shrink; false once the deadline passes
     * without a declaration — the rank is merely *slow* (a timeout
     * victim, a transient crash) and a same-world replay is correct.
     */
    bool confirmLost(int rank, int64_t deadline_ms) const;

    /**
     * Membership generation (world epoch), starting at 1 and bumped by
     * every `rebuild()`. Carried inside every CollectiveError the group
     * raises, so handlers can tell a stale-generation error from one
     * about the current world.
     */
    int64_t membershipGeneration() const;

    /**
     * Replace the world with `survivors` (current-rank ids, ascending):
     * survivor i becomes rank i of a world of survivors.size(). Bumps
     * the membership generation — deposits from stale threads are
     * rejected from now on — clears lost/abort state and any
     * half-deposited collective, carries the survivors' stat counters
     * over (minus aborted-step wait pollution, as in reset()), and
     * starts a fresh flight recorder labeled with the new generation
     * (the dying generation's dump was already captured at abort time).
     * Call only after every rank thread has been joined.
     */
    void rebuild(const std::vector<int>& survivors);

    /**
     * Clear the abort flag and any half-deposited collective so the
     * group can be reused. Call only after every rank thread has been
     * joined — concurrent use during reset is undefined. The flight
     * recorder's rings are deliberately kept (post-mortem value); only
     * its one-dump-per-failure latch is re-armed. Per-rank wait time
     * accumulated while hanging in the aborted collective is subtracted
     * from the RankPgStats counters, so post-recovery skew reports are
     * not polluted by the hang. Lost-rank declarations survive (they
     * describe the world, not the step); only rebuild() clears them.
     */
    void reset();

    /**
     * This group's collective flight recorder (obs/flight_recorder.h):
     * every rendezvous records enter/exit; on the group's first
     * abort/timeout one merged JSON dump goes to the flight-dump path.
     */
    obs::FlightRecorder& flightRecorder() { return *flight_; }
    const obs::FlightRecorder& flightRecorder() const { return *flight_; }

    /** Per-rank collective counters (rank-skew reporting). Note that
     * barrier() records under rank 0 for every participant. */
    RankPgStats rankStats(int rank) const;

  private:
    using ComputeFn =
        std::function<std::vector<Tensor>(const std::vector<Tensor>&)>;
    /** Returns "" when `mine` is compatible with reference deposit `ref`,
     * else a description of the mismatch. */
    using ValidateFn =
        std::function<std::string(const Tensor& ref, const Tensor& mine)>;

    /** Deposit, wait for all ranks, return this rank's result. */
    Tensor rendezvous(const char* site, int rank, const Tensor& tensor,
                      const ValidateFn& validate, const ComputeFn& compute);

    /** Pre-locked abort; first caller records the origin info. */
    void abortLocked(const std::string& site, int rank,
                     const std::string& reason);

    /** Throw the recorded abort as a CollectiveError (requires aborted_).
     * `waited_ms` = how long this rank was blocked (-1 = unknown). */
    [[noreturn]] void throwAborted(int64_t waited_ms = -1) const;

    /** Build the generation-labeled flight recorder ("pg" for gen 1,
     * "pg.gen<N>" after a rebuild). */
    void makeFlightRecorder();

    int world_size_;
    int64_t timeout_ms_;
    mutable std::mutex mutex_;
    mutable std::condition_variable cv_;
    std::vector<Tensor> slots_;
    std::vector<Tensor> results_;
    int arrived_ = 0;
    int first_rank_ = -1; ///< first depositor of the open collective
    int64_t generation_ = 0;
    int64_t membership_generation_ = 1; ///< world epoch; rebuild() bumps

    bool aborted_ = false;
    std::string abort_site_;
    int abort_rank_ = -1;
    int64_t abort_generation_ = 0;
    int64_t abort_member_generation_ = 0;
    std::string abort_reason_;

    /** Per current rank: declared permanently lost (survives reset;
     * cleared by rebuild). */
    std::vector<char> lost_;

    std::unique_ptr<obs::FlightRecorder> flight_; ///< recreated on rebuild

    /** Per-rank atomic counter cells. Rank threads are recreated on
     * every DistExecutor::run, so thread-locals would reset; these live
     * with the group. `aborted_wait_ns` stages the wait a rank burned
     * hanging in a collective that was later aborted; reset()/rebuild()
     * subtract it from wait_ns so skew reports see only real waits. */
    struct RankCounters
    {
        std::atomic<int64_t> count{0};
        std::atomic<int64_t> wait_ns{0};
        std::atomic<int64_t> copy_ns{0};
        std::atomic<int64_t> aborted_wait_ns{0};
    };
    std::unique_ptr<RankCounters[]> rank_counters_;
};

} // namespace runtime
} // namespace slapo
