/**
 * @file
 * Bit-exact training checkpoints — serialize model parameters, AdamW
 * moments, and the step counters to a versioned binary file so a failed
 * run resumes with *bitwise identical* results (docs/ROBUSTNESS.md).
 *
 * File format (little-endian, version 2):
 *   u32 magic "SLPC"   u32 version   i64 step   i64 optimizer_steps
 *   i64 world_size     (v2+; the data-parallel world that saved the
 *                       state — 1 for the single-process Trainer. Not a
 *                       restore constraint: replicas are full copies, so
 *                       an elastic trainer restores a 4-rank checkpoint
 *                       into 3 survivors; the mismatch is surfaced in
 *                       the run log, not rejected.)
 *   u64 num_tensors
 *   per tensor: u32 name_len, name bytes, u32 ndim, i64 dims[ndim],
 *               u32 crc32(payload), f32 payload[numel]
 *
 * Version-1 files (no world_size field) still load; they report
 * world_size = 0 (unknown).
 *
 * Durability: the file is written to `<path>.tmp` and atomically renamed
 * into place, so a crash mid-write can never destroy the previous good
 * checkpoint. Every tensor payload carries its own CRC-32; a flipped bit
 * anywhere makes `loadCheckpoint` throw CheckpointError, and the
 * trainer's recovery loop falls back to the next-older checkpoint.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/optim.h"
#include "tensor/tensor.h"

namespace slapo {
namespace runtime {

/** Checkpoint magic number ("SLPC" big-endian in the file header). */
constexpr uint32_t kCheckpointMagic = 0x534C5043u;
/** Current checkpoint format version (v2 added `world_size`). */
constexpr uint32_t kCheckpointVersion = 2;

/** One named tensor inside a checkpoint. */
struct CheckpointEntry
{
    std::string name;
    Tensor tensor;
};

/** Everything needed to resume training bit-exactly. */
struct CheckpointState
{
    /** Trainer step the state corresponds to (state *before* this step). */
    int64_t step = 0;
    /** AdamW bias-correction counter. */
    int64_t optimizer_steps = 0;
    /** World size that saved the state (1 = single process, 0 = unknown
     * — a version-1 file). Informational: elastic recovery restores
     * into a *smaller* world after rank loss. */
    int64_t world_size = 1;
    /** Parameters and optimizer moments, in a fixed order. */
    std::vector<CheckpointEntry> tensors;
};

/** Serialize `state` to `path` (atomic tmp-file + rename, per-tensor CRC).
 * Throws CheckpointError on I/O failure. */
void saveCheckpoint(const std::string& path, const CheckpointState& state);

/** Load and verify a checkpoint. Throws CheckpointError on a missing
 * file, bad magic/version, truncation, or CRC mismatch. */
CheckpointState loadCheckpoint(const std::string& path);

/** Checkpoint file name for a given step, e.g. "ckpt-000042.slpc". */
std::string checkpointFileName(int64_t step);

/** All "ckpt-*.slpc" files in `dir` as (step, path), ascending by step.
 * Returns empty (not an error) if the directory does not exist. */
std::vector<std::pair<int64_t, std::string>> listCheckpoints(
    const std::string& dir);

/**
 * Snapshot trainer state: every named parameter plus its AdamW moments
 * (entries "<path>", "<path>.m", "<path>.v" per parameter, in
 * registration order — AdamW slot i must correspond to params[i]).
 * `world_size` is stamped into the checkpoint header (v2).
 */
CheckpointState captureTrainerState(
    int64_t step, const std::vector<std::pair<std::string, Tensor*>>& params,
    AdamW& optimizer, int64_t world_size = 1);

/**
 * Inverse of captureTrainerState: copy the checkpointed values back into
 * the live parameter/moment storages (in place — storage identity, and
 * therefore optimizer/module aliasing, is preserved) and restore the
 * optimizer step counter. Throws CheckpointError on any layout mismatch.
 */
void restoreTrainerState(
    const CheckpointState& state,
    const std::vector<std::pair<std::string, Tensor*>>& params,
    AdamW& optimizer);

} // namespace runtime
} // namespace slapo
