#include "runtime/pipeline_runtime.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "obs/mem_profiler.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "support/failpoint.h"

namespace slapo {
namespace runtime {

namespace {

/** Bounded MPSC queue of micro-batch tuples between two stages. */
class TupleQueue
{
  public:
    explicit TupleQueue(size_t capacity) : capacity_(capacity) {}

    /** Blocks while full; silently drops the tuple once aborted.
     * Returns the queue depth right after the push (0 if dropped). */
    size_t
    push(std::vector<Tensor> tuple)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock,
                       [&] { return items_.size() < capacity_ || aborted_; });
        if (aborted_) {
            return 0;
        }
        items_.push_back(std::move(tuple));
        not_empty_.notify_one();
        return items_.size();
    }

    /** Returns nullopt once closed and drained, or immediately after an
     * abort (in-flight tuples are discarded — fail fast). */
    std::optional<std::vector<Tensor>>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock,
                        [&] { return !items_.empty() || closed_ || aborted_; });
        if (aborted_ || items_.empty()) {
            return std::nullopt;
        }
        std::vector<Tensor> tuple = std::move(items_.front());
        items_.pop_front();
        not_full_.notify_one();
        return tuple;
    }

    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        not_empty_.notify_all();
    }

    /** Failure containment: unblock every producer and consumer. */
    void
    abort()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        aborted_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

  private:
    size_t capacity_;
    std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<std::vector<Tensor>> items_;
    bool closed_ = false;
    bool aborted_ = false;
};

int64_t
nsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Pop with bubble accounting: the time a stage thread spends here is
 * time it is starved for input (pipeline.queue_wait_ns). */
std::optional<std::vector<Tensor>>
timedPop(TupleQueue& queue)
{
    obs::TraceSpan span("queue.pop", "pipeline");
    const auto t0 = std::chrono::steady_clock::now();
    auto tuple = queue.pop();
    obs::metrics().pipeline_queue_wait_ns.add(nsSince(t0));
    return tuple;
}

/** Push with back-pressure accounting and queue-depth watermark. */
void
timedPush(TupleQueue& queue, std::vector<Tensor> tuple)
{
    obs::TraceSpan span("queue.push", "pipeline");
    const auto t0 = std::chrono::steady_clock::now();
    const size_t depth = queue.push(std::move(tuple));
    obs::metrics().pipeline_push_wait_ns.add(nsSince(t0));
    obs::metrics().pipeline_queue_depth.observe(static_cast<int64_t>(depth));
    obs::traceCounter("pipeline.queue_depth", static_cast<int64_t>(depth));
}

} // namespace

PipelineRuntime::PipelineRuntime(std::vector<nn::ModulePtr> stages,
                                 size_t queue_capacity)
    : stages_(std::move(stages)), queue_capacity_(queue_capacity)
{
    SLAPO_CHECK(!stages_.empty(), "PipelineRuntime: no stages");
    SLAPO_CHECK(queue_capacity_ >= 1, "PipelineRuntime: bad queue capacity");
}

PipelineRunResult
PipelineRuntime::forward(const std::vector<std::vector<Tensor>>& micro_batches)
{
    const auto forward_start = std::chrono::steady_clock::now();
    obs::MetricsDelta metrics_window;
    const size_t num_stages = stages_.size();
    // Queue i feeds stage i; queue num_stages collects outputs.
    std::vector<std::unique_ptr<TupleQueue>> queues;
    for (size_t i = 0; i <= num_stages; ++i) {
        queues.push_back(std::make_unique<TupleQueue>(queue_capacity_));
    }

    std::atomic<int> in_flight{0};
    std::atomic<int> peak{0};
    std::vector<std::exception_ptr> errors(num_stages);

    std::vector<std::thread> workers;
    for (size_t s = 0; s < num_stages; ++s) {
        workers.emplace_back([&, s] {
            // Pipeline stage threads share pid 0 ("slapo") and get a
            // labelled track each in the trace.
            obs::setThreadTrack(0, "stage " + std::to_string(s));
            // Memory profiler: attribute this worker's allocations to
            // its pipeline stage (separate "rank" track per stage).
            obs::setMemThreadRank(static_cast<int>(s));
            int64_t micro_index = 0;
            try {
                while (auto tuple = timedPop(*queues[s])) {
                    // Stage handoff failpoint: rank = stage index, one
                    // invocation per micro-batch this stage consumes.
                    support::failpoint::hit("pipeline.stage",
                                            static_cast<int>(s));
                    if (s == 0) {
                        const int now = in_flight.fetch_add(1) + 1;
                        int expected = peak.load();
                        while (now > expected &&
                               !peak.compare_exchange_weak(expected, now)) {
                        }
                    }
                    std::vector<nn::Value> values;
                    values.reserve(tuple->size());
                    for (Tensor& t : *tuple) {
                        values.emplace_back(std::move(t));
                    }
                    std::vector<nn::Value> outputs;
                    {
                        obs::TraceSpan body_span("stage.run", "pipeline");
                        if (body_span.live()) {
                            body_span.arg("stage", static_cast<int64_t>(s));
                            body_span.arg("micro_batch", micro_index);
                        }
                        // Stage bodies run through Module::call, below
                        // the graph interpreter's per-node timers, so
                        // record the stage itself — attributed to the
                        // pipeline_split primitive that created the
                        // boundary (docs/OBSERVABILITY.md).
                        obs::OpProfiler* prof = obs::OpProfiler::current();
                        const auto body_start =
                            std::chrono::steady_clock::now();
                        outputs = stages_[s]->call(values);
                        if (prof != nullptr) {
                            const int64_t ns =
                                std::chrono::duration_cast<
                                    std::chrono::nanoseconds>(
                                    std::chrono::steady_clock::now() -
                                    body_start)
                                    .count();
                            prof->record("pipeline.stage",
                                         "stage" + std::to_string(s),
                                         "pipeline_split", ns);
                        }
                    }
                    ++micro_index;
                    std::vector<Tensor> next;
                    next.reserve(outputs.size());
                    for (nn::Value& v : outputs) {
                        next.push_back(v.tensor());
                    }
                    if (s + 1 == num_stages) {
                        in_flight.fetch_sub(1);
                    }
                    timedPush(*queues[s + 1], std::move(next));
                }
                queues[s + 1]->close();
            } catch (...) {
                errors[s] = std::current_exception();
                // A dead stage starves its consumers *and* back-pressures
                // its producers (bounded queues). Abort every queue so
                // the feeder, the peers, and the collector all unblock —
                // the run fails in milliseconds instead of deadlocking.
                for (auto& q : queues) {
                    q->abort();
                }
            }
        });
    }

    // Feed micro-batches from a dedicated thread (bounded queues apply
    // GPipe back-pressure). The collector below must drain outputs
    // concurrently: with the whole pipeline holding at most
    // (num_stages + 1) * capacity + num_stages tuples, feeding everything
    // before draining would deadlock once micro_batches exceeds that.
    std::thread feeder([&] {
        obs::setThreadTrack(0, "feeder");
        try {
            for (const auto& micro : micro_batches) {
                timedPush(*queues[0], micro);
            }
        } catch (...) {
            for (auto& q : queues) {
                q->abort();
            }
        }
        queues[0]->close();
    });

    PipelineRunResult result;
    while (auto tuple = queues[num_stages]->pop()) {
        result.outputs.push_back(std::move(*tuple));
    }
    feeder.join();
    for (auto& worker : workers) {
        worker.join();
    }
    for (auto& error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
    SLAPO_CHECK(result.outputs.size() == micro_batches.size(),
                "PipelineRuntime: lost micro-batches (stage failure?)");
    result.peak_in_flight = peak.load();
    if (obs::RunLog* log = obs::runLog()) {
        const double wall_ms =
            std::chrono::duration_cast<
                std::chrono::duration<double, std::milli>>(
                std::chrono::steady_clock::now() - forward_start)
                .count();
        obs::RunLogRecord record("pipeline.forward");
        record.num("stages", static_cast<int64_t>(num_stages))
            .num("micro_batches",
                 static_cast<int64_t>(micro_batches.size()))
            .num("wall_ms", wall_ms)
            .num("bubble_ns",
                 metrics_window.get("pipeline.queue_wait_ns"))
            .num("push_wait_ns",
                 metrics_window.get("pipeline.push_wait_ns"))
            .num("peak_in_flight",
                 static_cast<int64_t>(result.peak_in_flight));
        log->write(record);
    }
    return result;
}

} // namespace runtime
} // namespace slapo
