#include "runtime/pipeline_runtime.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "support/failpoint.h"

namespace slapo {
namespace runtime {

namespace {

/** Bounded MPSC queue of micro-batch tuples between two stages. */
class TupleQueue
{
  public:
    explicit TupleQueue(size_t capacity) : capacity_(capacity) {}

    /** Blocks while full; silently drops the tuple once aborted. */
    void
    push(std::vector<Tensor> tuple)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock,
                       [&] { return items_.size() < capacity_ || aborted_; });
        if (aborted_) {
            return;
        }
        items_.push_back(std::move(tuple));
        not_empty_.notify_one();
    }

    /** Returns nullopt once closed and drained, or immediately after an
     * abort (in-flight tuples are discarded — fail fast). */
    std::optional<std::vector<Tensor>>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock,
                        [&] { return !items_.empty() || closed_ || aborted_; });
        if (aborted_ || items_.empty()) {
            return std::nullopt;
        }
        std::vector<Tensor> tuple = std::move(items_.front());
        items_.pop_front();
        not_full_.notify_one();
        return tuple;
    }

    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        not_empty_.notify_all();
    }

    /** Failure containment: unblock every producer and consumer. */
    void
    abort()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        aborted_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

  private:
    size_t capacity_;
    std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<std::vector<Tensor>> items_;
    bool closed_ = false;
    bool aborted_ = false;
};

} // namespace

PipelineRuntime::PipelineRuntime(std::vector<nn::ModulePtr> stages,
                                 size_t queue_capacity)
    : stages_(std::move(stages)), queue_capacity_(queue_capacity)
{
    SLAPO_CHECK(!stages_.empty(), "PipelineRuntime: no stages");
    SLAPO_CHECK(queue_capacity_ >= 1, "PipelineRuntime: bad queue capacity");
}

PipelineRunResult
PipelineRuntime::forward(const std::vector<std::vector<Tensor>>& micro_batches)
{
    const size_t num_stages = stages_.size();
    // Queue i feeds stage i; queue num_stages collects outputs.
    std::vector<std::unique_ptr<TupleQueue>> queues;
    for (size_t i = 0; i <= num_stages; ++i) {
        queues.push_back(std::make_unique<TupleQueue>(queue_capacity_));
    }

    std::atomic<int> in_flight{0};
    std::atomic<int> peak{0};
    std::vector<std::exception_ptr> errors(num_stages);

    std::vector<std::thread> workers;
    for (size_t s = 0; s < num_stages; ++s) {
        workers.emplace_back([&, s] {
            try {
                while (auto tuple = queues[s]->pop()) {
                    // Stage handoff failpoint: rank = stage index, one
                    // invocation per micro-batch this stage consumes.
                    support::failpoint::hit("pipeline.stage",
                                            static_cast<int>(s));
                    if (s == 0) {
                        const int now = in_flight.fetch_add(1) + 1;
                        int expected = peak.load();
                        while (now > expected &&
                               !peak.compare_exchange_weak(expected, now)) {
                        }
                    }
                    std::vector<nn::Value> values;
                    values.reserve(tuple->size());
                    for (Tensor& t : *tuple) {
                        values.emplace_back(std::move(t));
                    }
                    std::vector<nn::Value> outputs = stages_[s]->call(values);
                    std::vector<Tensor> next;
                    next.reserve(outputs.size());
                    for (nn::Value& v : outputs) {
                        next.push_back(v.tensor());
                    }
                    if (s + 1 == num_stages) {
                        in_flight.fetch_sub(1);
                    }
                    queues[s + 1]->push(std::move(next));
                }
                queues[s + 1]->close();
            } catch (...) {
                errors[s] = std::current_exception();
                // A dead stage starves its consumers *and* back-pressures
                // its producers (bounded queues). Abort every queue so
                // the feeder, the peers, and the collector all unblock —
                // the run fails in milliseconds instead of deadlocking.
                for (auto& q : queues) {
                    q->abort();
                }
            }
        });
    }

    // Feed micro-batches from a dedicated thread (bounded queues apply
    // GPipe back-pressure). The collector below must drain outputs
    // concurrently: with the whole pipeline holding at most
    // (num_stages + 1) * capacity + num_stages tuples, feeding everything
    // before draining would deadlock once micro_batches exceeds that.
    std::thread feeder([&] {
        try {
            for (const auto& micro : micro_batches) {
                queues[0]->push(micro);
            }
        } catch (...) {
            for (auto& q : queues) {
                q->abort();
            }
        }
        queues[0]->close();
    });

    PipelineRunResult result;
    while (auto tuple = queues[num_stages]->pop()) {
        result.outputs.push_back(std::move(*tuple));
    }
    feeder.join();
    for (auto& worker : workers) {
        worker.join();
    }
    for (auto& error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
    SLAPO_CHECK(result.outputs.size() == micro_batches.size(),
                "PipelineRuntime: lost micro-batches (stage failure?)");
    result.peak_in_flight = peak.load();
    return result;
}

} // namespace runtime
} // namespace slapo
