/**
 * @file
 * A specialized pipeline runtime (§2.1: "pipeline parallelism needs a
 * specialized runtime to schedule and synchronize data"): one worker
 * thread per stage, bounded queues between neighbours, micro-batches
 * streamed GPipe-style through the stages. This is the numeric
 * counterpart of sim::PipelineRuntime's timing model — it demonstrates
 * that partitioned + dialect-wrapped stages really compute the original
 * function when executed concurrently, micro-batch by micro-batch.
 */
#pragma once

#include <vector>

#include "nn/module.h"

namespace slapo {
namespace runtime {

/** Result of one pipelined forward pass. */
struct PipelineRunResult
{
    /** Stage-final output tuples, one per micro-batch, in order. */
    std::vector<std::vector<Tensor>> outputs;
    /**
     * Max number of micro-batches that were simultaneously in flight
     * across stages — > 1 proves stages really overlapped.
     */
    int peak_in_flight = 0;
};

/**
 * Thread-per-stage pipelined forward executor.
 *
 * Each stage module must follow the DeepSpeed tuple convention (see
 * dialects::wrapForDeepSpeedPipeline): consume one tensor tuple, produce
 * the next stage's tuple.
 */
class PipelineRuntime
{
  public:
    /**
     * @param stages stage modules, executed in order on their own threads.
     * @param queue_capacity bound of the inter-stage queues (back-pressure).
     */
    explicit PipelineRuntime(std::vector<nn::ModulePtr> stages,
                             size_t queue_capacity = 4);

    /** Stream `micro_batches` through the pipeline. */
    PipelineRunResult forward(
        const std::vector<std::vector<Tensor>>& micro_batches);

    size_t numStages() const { return stages_.size(); }

  private:
    std::vector<nn::ModulePtr> stages_;
    size_t queue_capacity_;
};

} // namespace runtime
} // namespace slapo
