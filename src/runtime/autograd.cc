#include "runtime/autograd.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>

#include "graph/memplan.h"
#include "nn/functional.h"
#include "nn/interpreter.h"
#include "nn/tracer.h"
#include "obs/mem_profiler.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "runtime/process_group.h"
#include "tensor/ops.h"

namespace slapo {
namespace runtime {

using graph::Graph;
using graph::Node;
using graph::NodeKind;
using graph::OpKind;
using nn::Module;
using nn::SyncDirection;
using nn::SyncKind;
using nn::SyncSpec;
using nn::Value;

/** Per-graph activation store kept between forward and backward. */
struct AutogradEngine::Frame
{
    /** Whether stored tensors count toward the activation-bytes metric. */
    bool counted = true;
    /**
     * Dense per-node-id activation store (indexed by Node::id, sized by
     * Graph::idBound): one indexed load per access on the hot
     * forward/backward loops instead of a std::map tree walk.
     */
    std::vector<std::vector<Tensor>> env;
    std::vector<char> defined;
    std::map<const Node*, std::unique_ptr<Frame>> children;

    void
    init(int64_t id_bound)
    {
        if (static_cast<int64_t>(env.size()) < id_bound) {
            env.resize(id_bound);
            defined.resize(id_bound, 0);
        }
    }

    bool
    has(const Node* n) const
    {
        return n->id() >= 0 &&
               n->id() < static_cast<int64_t>(defined.size()) &&
               defined[n->id()];
    }

    std::vector<Tensor>&
    at(const Node* n)
    {
        SLAPO_ASSERT(has(n), "autograd: missing activation for " << n->name());
        return env[n->id()];
    }

    void
    put(const Node* n, std::vector<Tensor> values)
    {
        SLAPO_ASSERT(n->id() >= 0 &&
                         n->id() < static_cast<int64_t>(env.size()),
                     "autograd: node id out of range for " << n->name());
        env[n->id()] = std::move(values);
        defined[n->id()] = 1;
    }

    void
    evict(const Node* n)
    {
        if (has(n)) {
            env[n->id()].clear();
            defined[n->id()] = 0;
        }
    }
};

namespace {

/**
 * Per-node timing for the autograd loops: a trace span plus an
 * OpProfiler record under the thread's module-path scope. `suffix`
 * separates backward executions (".bwd") from forward ones in the
 * aggregate report. Disabled cost: two relaxed atomic loads.
 */
class OpTimer
{
  public:
    OpTimer(const char* op, const char* suffix,
            const std::string& primitive = std::string())
        : profiler_(obs::OpProfiler::current())
    {
        if (profiler_ != nullptr || obs::tracingEnabled()) {
            name_ = op;
            name_ += suffix;
            primitive_ = primitive;
            span_.emplace(name_, "op");
            if (!obs::ModuleScope::currentPath().empty()) {
                span_->arg("module", obs::ModuleScope::currentPath());
            }
            if (!primitive_.empty()) {
                span_->arg("primitive", primitive_);
            }
            start_ = std::chrono::steady_clock::now();
        }
    }

    ~OpTimer()
    {
        if (profiler_ != nullptr) {
            const int64_t ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            profiler_->record(name_, obs::ModuleScope::currentPath(),
                              primitive_, ns);
        }
    }

  private:
    obs::OpProfiler* profiler_;
    std::string name_;
    std::string primitive_;
    std::optional<obs::TraceSpan> span_;
    std::chrono::steady_clock::time_point start_;
};

/** Numeric collective honoring the thread's DistContext (or identity). */
Tensor
applyCollective(SyncKind kind, int64_t axis, const Tensor& t)
{
    nn::DistContext* dc = nn::DistContext::current();
    if (dc == nullptr || dc->world_size == 1) {
        return t;
    }
    SLAPO_CHECK(dc->group != nullptr, "sync requires a live ProcessGroup");
    switch (kind) {
      case SyncKind::AllReduce: return dc->group->allReduce(dc->rank, t);
      case SyncKind::AllGather: return dc->group->allGather(dc->rank, t, axis);
      case SyncKind::ReduceScatter:
        return dc->group->reduceScatter(dc->rank, t, axis);
    }
    SLAPO_THROW("bad sync kind");
}

Tensor
applyForwardSyncs(const std::vector<SyncSpec>& syncs, Tensor t)
{
    for (const SyncSpec& sync : syncs) {
        if (sync.direction == SyncDirection::Forward ||
            sync.direction == SyncDirection::Both) {
            t = applyCollective(sync.kind, sync.axis, t);
        }
    }
    return t;
}

Tensor
applyBackwardSyncs(const std::vector<SyncSpec>& syncs, Tensor grad)
{
    for (const SyncSpec& sync : syncs) {
        if (sync.direction == SyncDirection::Backward ||
            sync.direction == SyncDirection::Both) {
            // The conjugate of a forward all-reduce boundary is an
            // all-reduce of the boundary's input gradient (Megatron f/g).
            grad = applyCollective(SyncKind::AllReduce, -1, grad);
        }
    }
    return grad;
}

std::vector<int64_t>
inversePerm(const std::vector<int64_t>& perm)
{
    std::vector<int64_t> inv(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) {
        inv[perm[i]] = static_cast<int64_t>(i);
    }
    return inv;
}

/** Gradient rule for one primitive op. `x` are forward inputs, `y` the
 * forward output, `g` the upstream gradient. */
std::vector<Tensor>
opBackward(const Node& node, const std::vector<Tensor>& x, const Tensor& y,
           const Tensor& g)
{
    switch (node.op()) {
      case OpKind::Add:
        return {ops::reduceToShape(g, x[0].shape()),
                ops::reduceToShape(g, x[1].shape())};
      case OpKind::Sub:
        return {ops::reduceToShape(g, x[0].shape()),
                ops::scale(ops::reduceToShape(g, x[1].shape()), -1.0f)};
      case OpKind::Mul:
        return {ops::reduceToShape(ops::mul(g, x[1]), x[0].shape()),
                ops::reduceToShape(ops::mul(g, x[0]), x[1].shape())};
      case OpKind::Div: {
        Tensor ga = ops::reduceToShape(ops::div(g, x[1]), x[0].shape());
        Tensor gb = ops::reduceToShape(
            ops::scale(ops::mul(g, ops::div(x[0], ops::mul(x[1], x[1]))), -1.0f),
            x[1].shape());
        return {std::move(ga), std::move(gb)};
      }
      case OpKind::Scale:
        return {ops::scale(g, static_cast<float>(node.attrFloat("factor")))};
      case OpKind::AddScalar:
        return {g.clone()};
      case OpKind::Gelu:
        return {ops::geluBackward(g, x[0])};
      case OpKind::Relu:
        return {ops::reluBackward(g, x[0])};
      case OpKind::Tanh:
        return {ops::tanhBackward(g, y)};
      case OpKind::Clamp:
        return {ops::mul(g, ops::rangeMask(
                                x[0],
                                static_cast<float>(node.attrFloat("lo")),
                                static_cast<float>(node.attrFloat("hi"))))};
      case OpKind::RangeMask:
        return {Tensor::zeros(x[0].shape())};
      case OpKind::CausalMask:
        return {g.clone()};
      case OpKind::RelPosBias:
        return {g.clone(),
                ops::relPosBiasTableBackward(g, x[1].shape())};
      case OpKind::Softmax:
        return {ops::softmaxBackward(g, y)};
      case OpKind::LayerNormOp: {
        ops::LayerNormGrads lg = ops::layerNormBackward(
            g, x[0], x[1], static_cast<float>(node.attrFloat("eps")));
        return {std::move(lg.grad_x), std::move(lg.grad_gamma),
                std::move(lg.grad_beta)};
      }
      case OpKind::Dropout:
        return {ops::dropoutBackward(
            g, static_cast<float>(node.attrFloat("p")),
            static_cast<uint64_t>(node.attrInt("seed")))};
      case OpKind::Matmul: {
        Tensor ga = ops::reduceToShape(
            ops::matmul(g, ops::transposeLast2(x[1])), x[0].shape());
        Tensor gb = ops::reduceToShape(
            ops::matmul(ops::transposeLast2(x[0]), g), x[1].shape());
        return {std::move(ga), std::move(gb)};
      }
      case OpKind::LinearOp: {
        const bool has_bias = x.size() > 2;
        ops::LinearGrads lg = ops::linearBackward(g, x[0], x[1], has_bias);
        std::vector<Tensor> grads = {std::move(lg.grad_x),
                                     std::move(lg.grad_weight)};
        if (has_bias) {
            grads.push_back(std::move(lg.grad_bias));
        }
        return grads;
      }
      case OpKind::TransposeLast2:
        return {ops::transposeLast2(g)};
      case OpKind::Reshape:
        return {g.reshape(x[0].shape())};
      case OpKind::Permute:
        return {ops::permute(g, inversePerm(node.attrInts("perm")))};
      case OpKind::Concat: {
        const int64_t axis = node.attrInt("axis");
        std::vector<Tensor> grads;
        int64_t offset = 0;
        for (const Tensor& in : x) {
            grads.push_back(ops::narrow(g, axis, offset, in.size(axis)));
            offset += in.size(axis);
        }
        return grads;
      }
      case OpKind::Narrow:
        return {ops::narrowBackward(g, x[0].shape(), node.attrInt("axis"),
                                    node.attrInt("start"))};
      case OpKind::EmbeddingOp:
        return {Tensor::zeros(x[0].shape()),
                ops::embeddingBackward(g, x[0], x[1].size(0))};
      case OpKind::CrossEntropyOp:
        return {ops::scale(ops::crossEntropyBackward(x[0], x[1]), g.at(0)),
                Tensor::zeros(x[1].shape())};
      case OpKind::MseLossOp:
        return {ops::scale(ops::mseLossBackward(x[0], x[1]), g.at(0)),
                Tensor::zeros(x[1].shape())};
      case OpKind::Identity:
        return {g.clone()};
      case OpKind::AllReduce:
        // d(all_reduce)/dx is the identity per rank; the scheduler's
        // conjugate sync point covers the reduction of the other side.
        return {g.clone()};
      case OpKind::AllGather: {
        nn::DistContext* dc = nn::DistContext::current();
        const int64_t axis = node.attrInt("axis");
        const int64_t rank = dc ? dc->rank : 0;
        const int64_t ax =
            axis < 0 ? axis + static_cast<int64_t>(x[0].shape().size()) : axis;
        const int64_t len = x[0].size(ax);
        return {ops::narrow(g, ax, rank * len, len)};
      }
      case OpKind::ReduceScatter: {
        nn::DistContext* dc = nn::DistContext::current();
        if (dc == nullptr || dc->world_size == 1) {
            return {g.clone()};
        }
        SLAPO_CHECK(dc->group, "reduce_scatter backward needs a group");
        return {dc->group->allGather(dc->rank, g, node.attrInt("axis"))};
      }
      default:
        SLAPO_THROW("autograd: backward not implemented for op "
                    << opKindName(node.op())
                    << " (vision ops are forward/simulation only)");
    }
}

} // namespace

std::shared_ptr<Graph>
AutogradEngine::graphFor(Module& module, const std::vector<Shape>& shapes)
{
    if (module.meta().traced_graph) {
        return module.meta().traced_graph;
    }
    auto it = graph_cache_.find(&module);
    if (it != graph_cache_.end()) {
        return it->second;
    }
    auto g = traceModule(module, shapes);
    graph_cache_[&module] = g;
    return g;
}

std::vector<Tensor>
AutogradEngine::forwardGraph(const Graph& g, Module* owner,
                             const std::vector<Tensor>& inputs, Frame* frame)
{
    SLAPO_ASSERT(frame != nullptr, "forwardGraph: null frame");
    frame->init(g.idBound());

    const auto placeholders = g.placeholders();
    SLAPO_CHECK(placeholders.size() == inputs.size(),
                "autograd: graph expects " << placeholders.size()
                                           << " inputs, got " << inputs.size());
    for (size_t i = 0; i < placeholders.size(); ++i) {
        frame->put(placeholders[i], {inputs[i]});
    }

    auto in_tensors = [&](const Node* n) {
        std::vector<Tensor> ts;
        for (const Node* in : n->inputs()) {
            ts.push_back(frame->at(in)[0]);
        }
        return ts;
    };

    std::vector<Tensor> outputs;
    for (Node* node : g.nodes()) {
        switch (node->kind()) {
          case NodeKind::Placeholder:
            break;
          case NodeKind::GetParam: {
            Module* m = node->module() ? node->module() : owner;
            frame->put(node, {m->paramTensor(node->target())});
            break;
          }
          case NodeKind::CallOp: {
            OpTimer timer(opKindName(node->op()), "",
                          node->provenance().primitive);
            obs::MemNodeScope mem_scope(node->id(),
                                        &node->provenance().primitive);
            std::vector<Value> ins;
            for (const Node* in : node->inputs()) {
                ins.emplace_back(frame->at(in)[0]);
            }
            Tensor out = nn::interpretOp(*node, ins).tensor();
            if (frame->counted && !node->checkpointed()) {
                result_.stored_activation_bytes += out.bytes();
            }
            frame->put(node, {std::move(out)});
            break;
          }
          case NodeKind::CallModule: {
            Module* child = node->module();
            SLAPO_ASSERT(child, "call_module without module binding");
            std::vector<Tensor> ins = in_tensors(node);
            std::vector<Shape> shapes;
            for (const Tensor& t : ins) shapes.push_back(t.shape());
            auto child_graph = graphFor(*child, shapes);

            const bool checkpointed =
                node->checkpointed() || child->meta().checkpointed;
            auto child_frame = std::make_unique<Frame>();
            child_frame->counted = frame->counted && !checkpointed;
            obs::ModuleScope scope(node->target());
            std::vector<Tensor> outs =
                forwardGraph(*child_graph, child, ins, child_frame.get());
            if (!outs.empty() && !child->meta().syncs.empty()) {
                // Collective boundaries inserted by .sync(): time them as
                // their own row so the step report can separate the cost
                // of aggregation from the sharded compute it follows.
                OpTimer sync_timer("sync", "", "sync");
                outs[0] = applyForwardSyncs(child->meta().syncs, outs[0]);
            }
            if (!checkpointed) {
                frame->children[node] = std::move(child_frame);
            }
            frame->put(node, std::move(outs));
            break;
          }
          case NodeKind::FusedOp: {
            std::vector<Tensor> ins = in_tensors(node);
            auto sub_frame = std::make_unique<Frame>();
            sub_frame->counted = frame->counted;
            std::vector<Tensor> outs =
                forwardGraph(*node->subgraph(), owner, ins, sub_frame.get());
            frame->children[node] = std::move(sub_frame);
            frame->put(node, std::move(outs));
            break;
          }
          case NodeKind::TupleGet: {
            frame->put(node,
                       {frame->at(node->inputs()[0])[node->attrInt("index")]});
            break;
          }
          case NodeKind::Output: {
            for (const Node* in : node->inputs()) {
                outputs.push_back(frame->at(in)[0]);
            }
            // .checkpoint(subgraph): evict the flagged activations now
            // that the forward is done; backward rematerializes them
            // lazily from their (retained) region inputs.
            for (Node* n : g.nodes()) {
                if (n->kind() == NodeKind::CallOp && n->checkpointed() &&
                    g.usersOf(n).size() > 0) {
                    frame->evict(n);
                }
            }
            return outputs;
          }
        }
    }
    SLAPO_THROW("autograd: graph has no output node");
}

std::vector<Tensor>
AutogradEngine::backwardGraph(const Graph& g, Module* owner, Frame& frame,
                              const std::vector<Tensor>& grad_outputs)
{
    // Dense per-node-id gradient slots, mirroring Frame's layout.
    std::vector<std::vector<Tensor>> gslots(g.idBound());
    std::vector<char> gdef(g.idBound(), 0);

    // Memory attribution: everything the reverse walk allocates is
    // gradient-flavoured (grad slots, backward-rule temporaries, even
    // checkpoint rematerialization — transient recompute, not stored
    // forward state), so activation bytes in the peak report reflect
    // only the *retained* forward tape (obs/mem_profiler.h).
    obs::MemCategoryScope mem_cat(obs::MemCategory::Gradient);

    auto accumulate = [&](const Node* node, size_t index, const Tensor& grad) {
        SLAPO_ASSERT(node->id() >= 0 &&
                         node->id() < static_cast<int64_t>(gslots.size()),
                     "backward: node id out of range for " << node->name());
        auto& slots = gslots[node->id()];
        gdef[node->id()] = 1;
        if (slots.size() <= index) {
            slots.resize(std::max(slots.size(), index + 1));
        }
        if (!slots[index].materialized()) {
            slots[index] = grad.clone();
        } else {
            slots[index].addInPlace(grad);
        }
    };

    // Lazy rematerialization of activations evicted by
    // .checkpoint(subgraph): recompute from retained region inputs.
    std::function<Tensor(const Node*)> value = [&](const Node* n) -> Tensor {
        if (frame.has(n)) {
            return frame.at(n)[0];
        }
        SLAPO_ASSERT(n->kind() == NodeKind::CallOp,
                     "missing non-op activation for " << n->name());
        std::vector<Value> ins;
        for (const Node* in : n->inputs()) {
            ins.emplace_back(value(in));
        }
        Tensor out = nn::interpretOp(*n, ins).tensor();
        frame.put(n, {out});
        ++result_.recomputed_nodes;
        return out;
    };

    auto nodes = g.nodes();
    // Seed: the output node's inputs receive the upstream gradients.
    const Node* out_node = g.outputNode();
    SLAPO_ASSERT(out_node, "backward: no output node");
    SLAPO_CHECK(out_node->inputs().size() == grad_outputs.size(),
                "backward: gradient count mismatch");
    for (size_t i = 0; i < grad_outputs.size(); ++i) {
        accumulate(out_node->inputs()[i], 0, grad_outputs[i]);
    }

    std::vector<Tensor> input_grads(g.placeholders().size());

    // Last-use release of tape intermediates: the reverse walk guarantees
    // every user of `node` has already run its backward by the time we
    // reach it, so after processing (or skipping) a node its stored
    // activation, child frame, and upstream-gradient slot are dead — drop
    // them so their storage returns to the allocator pool mid-backward
    // instead of at frame destruction. Purely a lifetime change: results
    // are bit-identical with the release on or off.
    const bool release_tape = graph::memPlanEnabled();
    auto release_node = [&](Node* node) {
        if (!release_tape) {
            return;
        }
        frame.evict(node);
        frame.children.erase(node);
        gslots[node->id()].clear();
        // Tape release points on the timeline: sample the tagged live
        // level so the memory-over-time track shows the backward walk
        // draining the forward tape.
        if (obs::tracingEnabled() && obs::memProfilingEnabled()) {
            obs::traceCounter("mem.live_bytes", obs::memLiveBytes());
        }
    };

    for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
        Node* node = *it;
        if (node->kind() == NodeKind::Output) {
            continue;
        }
        if (!gdef[node->id()]) {
            release_node(node); // dead branch: its activation is dead too
            continue;
        }
        // Materialize missing output slots as zeros.
        auto& slots = gslots[node->id()];
        slots.resize(node->numOutputs());
        for (int64_t i = 0; i < node->numOutputs(); ++i) {
            if (!slots[i].materialized()) {
                slots[i] = Tensor::zeros(node->shape(i));
            }
        }

        switch (node->kind()) {
          case NodeKind::Placeholder: {
            const auto phs = g.placeholders();
            for (size_t i = 0; i < phs.size(); ++i) {
                if (phs[i] == node) {
                    input_grads[i] = slots[0];
                }
            }
            break;
          }
          case NodeKind::GetParam: {
            Module* m = node->module() ? node->module() : owner;
            accumulateParamGrad(m->paramTensor(node->target()), slots[0]);
            break;
          }
          case NodeKind::CallOp: {
            OpTimer timer(opKindName(node->op()), ".bwd",
                          node->provenance().primitive);
            obs::MemNodeScope mem_scope(node->id(),
                                        &node->provenance().primitive);
            std::vector<Tensor> x;
            for (const Node* in : node->inputs()) {
                x.push_back(value(in));
            }
            std::vector<Tensor> in_grads =
                opBackward(*node, x, value(node), slots[0]);
            SLAPO_ASSERT(in_grads.size() == node->inputs().size(),
                         "backward rule arity mismatch for "
                             << opKindName(node->op()));
            for (size_t i = 0; i < in_grads.size(); ++i) {
                accumulate(node->inputs()[i], 0, in_grads[i]);
            }
            break;
          }
          case NodeKind::CallModule: {
            Module* child = node->module();
            std::vector<Tensor> ins;
            std::vector<Shape> shapes;
            for (const Node* in : node->inputs()) {
                ins.push_back(value(in));
                shapes.push_back(ins.back().shape());
            }
            auto child_graph = graphFor(*child, shapes);

            Frame* child_frame = nullptr;
            std::unique_ptr<Frame> recomputed;
            auto fit = frame.children.find(node);
            if (fit != frame.children.end()) {
                child_frame = fit->second.get();
            } else {
                // Checkpointed: recompute internals from stored boundaries.
                recomputed = std::make_unique<Frame>();
                recomputed->counted = false;
                forwardGraph(*child_graph, child, ins, recomputed.get());
                result_.recomputed_nodes +=
                    static_cast<int64_t>(child_graph->size());
                child_frame = recomputed.get();
            }
            // Note: forward syncs with all-reduce have identity backward;
            // per-spec backward syncs fire on the input gradient below.
            obs::ModuleScope scope(node->target());
            std::vector<Tensor> child_in_grads =
                backwardGraph(*child_graph, child, *child_frame, slots);
            if (!child_in_grads.empty() && !child->meta().syncs.empty() &&
                child_in_grads[0].materialized()) {
                OpTimer sync_timer("sync", ".bwd", "sync");
                child_in_grads[0] =
                    applyBackwardSyncs(child->meta().syncs, child_in_grads[0]);
            }
            for (size_t i = 0; i < child_in_grads.size(); ++i) {
                if (child_in_grads[i].materialized()) {
                    accumulate(node->inputs()[i], 0, child_in_grads[i]);
                }
            }
            break;
          }
          case NodeKind::FusedOp: {
            Frame* sub = frame.children.at(node).get();
            std::vector<Tensor> in_grads =
                backwardGraph(*node->subgraph(), owner, *sub, slots);
            for (size_t i = 0; i < in_grads.size(); ++i) {
                if (in_grads[i].materialized()) {
                    accumulate(node->inputs()[i], 0, in_grads[i]);
                }
            }
            break;
          }
          case NodeKind::TupleGet: {
            accumulate(node->inputs()[0],
                       static_cast<size_t>(node->attrInt("index")), slots[0]);
            break;
          }
          case NodeKind::Output:
            break;
        }
        release_node(node);
    }

    // Inputs that never received a gradient (e.g. integer id tensors) get
    // explicit zeros so callers can index uniformly.
    const auto phs = g.placeholders();
    for (size_t i = 0; i < phs.size(); ++i) {
        if (!input_grads[i].materialized()) {
            input_grads[i] = Tensor::zeros(phs[i]->shape());
        }
    }
    return input_grads;
}

void
AutogradEngine::accumulateParamGrad(const Tensor& param, const Tensor& grad)
{
    const void* key = param.storageKey();
    SLAPO_ASSERT(key != nullptr, "gradient for meta parameter");
    auto it = result_.param_grads.find(key);
    if (it == result_.param_grads.end()) {
        obs::MemCategoryScope mem_cat(obs::MemCategory::Gradient);
        result_.param_grads.emplace(key, grad.clone());
    } else {
        it->second.addInPlace(grad);
    }
}

GradResult
AutogradEngine::run(Module& model, const std::vector<Tensor>& inputs)
{
    // The per-node timers below account for op execution; everything
    // else inside run() — tracing, tape construction, grad-map
    // bookkeeping — would otherwise vanish into the step report's
    // "other" bucket. Measure the remainder and report it explicitly
    // so attribution covers the engine's own cost too.
    obs::OpProfiler* prof = obs::OpProfiler::current();
    const int64_t recorded_before = obs::OpProfiler::threadRecordedNs();
    const auto run_start = std::chrono::steady_clock::now();

    result_ = GradResult{};
    std::vector<Shape> shapes;
    for (const Tensor& t : inputs) shapes.push_back(t.shape());
    std::shared_ptr<Graph> g;
    {
        // First call traces the module (expensive); later calls hit the
        // cache, so this span shows the one-time tracing cost distinctly.
        obs::TraceSpan trace_span("autograd.trace", "autograd");
        g = graphFor(model, shapes);
    }

    Frame frame;
    {
        obs::TraceSpan fwd_span("autograd.forward", "autograd");
        result_.outputs = forwardGraph(*g, &model, inputs, &frame);
    }
    SLAPO_CHECK(result_.outputs.size() == 1 &&
                    result_.outputs[0].numel() == 1,
                "autograd: model must produce a single scalar loss");
    {
        obs::TraceSpan bwd_span("autograd.backward", "autograd");
        result_.input_grads =
            backwardGraph(*g, &model, frame, {Tensor::full({1}, 1.0f)});
    }
    if (prof != nullptr) {
        const int64_t wall = std::chrono::duration_cast<
                                 std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - run_start)
                                 .count();
        const int64_t attributed =
            obs::OpProfiler::threadRecordedNs() - recorded_before;
        // Nested CallModule timers can double-count their inner ops, so
        // the remainder may come out negative; only a positive gap is a
        // real unattributed cost.
        if (wall > attributed) {
            prof->record("engine.overhead", "", "baseline",
                         wall - attributed);
        }
    }
    return result_;
}

Tensor
AutogradEngine::gradFor(const GradResult& result, const Tensor& param)
{
    auto it = result.param_grads.find(param.storageKey());
    if (it == result.param_grads.end()) {
        return Tensor::zeros(param.shape());
    }
    return it->second;
}

namespace {

/** Wraps a model with a loss head: inputs = model inputs + target. */
class LossWrapper : public Module
{
  public:
    enum class Loss { CrossEntropy, Mse };

    LossWrapper(nn::ModulePtr model, Loss loss)
        : Module(loss == Loss::CrossEntropy ? "CrossEntropyLoss" : "MseLoss"),
          loss_(loss)
    {
        registerChild("model", std::move(model));
    }

    std::vector<Value>
    forward(const std::vector<Value>& inputs) override
    {
        std::vector<Value> model_inputs(inputs.begin(), inputs.end() - 1);
        Value out = callChildOne("model", model_inputs);
        const Value& target = inputs.back();
        if (loss_ == Loss::CrossEntropy) {
            return {nn::F::crossEntropy(out, target)};
        }
        return {nn::F::mseLoss(out, target)};
    }

    nn::ModulePtr
    clone() const override
    {
        auto m = std::make_shared<LossWrapper>(child("model")->clone(), loss_);
        cloneInto(m.get());
        return m;
    }

  private:
    Loss loss_;
};

} // namespace

nn::ModulePtr
withCrossEntropyLoss(nn::ModulePtr model)
{
    return std::make_shared<LossWrapper>(std::move(model),
                                         LossWrapper::Loss::CrossEntropy);
}

nn::ModulePtr
withMseLoss(nn::ModulePtr model)
{
    return std::make_shared<LossWrapper>(std::move(model),
                                         LossWrapper::Loss::Mse);
}

} // namespace runtime
} // namespace slapo
