#include "runtime/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "obs/metrics.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "support/crc32.h"

namespace slapo {
namespace runtime {

namespace {

namespace fs = std::filesystem;

/** RAII stdio handle so error paths can't leak the descriptor. */
struct File
{
    std::FILE* f = nullptr;
    ~File()
    {
        if (f) std::fclose(f);
    }
};

void
writeBytes(std::FILE* f, const void* data, size_t len, const std::string& path)
{
    if (std::fwrite(data, 1, len, f) != len) {
        throw CheckpointError(path, "short write");
    }
}

template <typename T>
void
writeScalar(std::FILE* f, T value, const std::string& path)
{
    writeBytes(f, &value, sizeof(T), path);
}

void
readBytes(std::FILE* f, void* data, size_t len, const std::string& path)
{
    if (std::fread(data, 1, len, f) != len) {
        throw CheckpointError(path, "truncated file");
    }
}

template <typename T>
T
readScalar(std::FILE* f, const std::string& path)
{
    T value;
    readBytes(f, &value, sizeof(T), path);
    return value;
}

} // namespace

std::string
checkpointFileName(int64_t step)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "ckpt-%06lld.slpc",
                  static_cast<long long>(step));
    return buf;
}

std::vector<std::pair<int64_t, std::string>>
listCheckpoints(const std::string& dir)
{
    std::vector<std::pair<int64_t, std::string>> found;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        long long step = -1;
        if (std::sscanf(name.c_str(), "ckpt-%lld.slpc", &step) == 1 &&
            step >= 0) {
            found.emplace_back(step, entry.path().string());
        }
    }
    std::sort(found.begin(), found.end());
    return found;
}

void
saveCheckpoint(const std::string& path, const CheckpointState& state)
{
    obs::TraceSpan span("checkpoint.save", "checkpoint");
    const auto t0 = std::chrono::steady_clock::now();
    int64_t payload_bytes = 0;
    const std::string tmp = path + ".tmp";
    {
        File file;
        file.f = std::fopen(tmp.c_str(), "wb");
        if (!file.f) {
            throw CheckpointError(tmp, "cannot open for writing");
        }
        writeScalar<uint32_t>(file.f, kCheckpointMagic, tmp);
        writeScalar<uint32_t>(file.f, kCheckpointVersion, tmp);
        writeScalar<int64_t>(file.f, state.step, tmp);
        writeScalar<int64_t>(file.f, state.optimizer_steps, tmp);
        writeScalar<int64_t>(file.f, state.world_size, tmp);
        writeScalar<uint64_t>(file.f, state.tensors.size(), tmp);
        for (const CheckpointEntry& entry : state.tensors) {
            if (!entry.tensor.materialized()) {
                throw CheckpointError(
                    tmp, "tensor '" + entry.name + "' is meta (no storage)");
            }
            writeScalar<uint32_t>(
                file.f, static_cast<uint32_t>(entry.name.size()), tmp);
            writeBytes(file.f, entry.name.data(), entry.name.size(), tmp);
            const Shape& shape = entry.tensor.shape();
            writeScalar<uint32_t>(file.f, static_cast<uint32_t>(shape.size()),
                                  tmp);
            for (int64_t dim : shape) {
                writeScalar<int64_t>(file.f, dim, tmp);
            }
            const size_t bytes =
                static_cast<size_t>(entry.tensor.numel()) * sizeof(float);
            writeScalar<uint32_t>(
                file.f, support::crc32(entry.tensor.data(), bytes), tmp);
            writeBytes(file.f, entry.tensor.data(), bytes, tmp);
            payload_bytes += static_cast<int64_t>(bytes);
        }
        if (std::fflush(file.f) != 0) {
            throw CheckpointError(tmp, "flush failed");
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        throw CheckpointError(path, "atomic rename failed: " + ec.message());
    }
    const int64_t write_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    obs::metrics().checkpoint_write_bytes.add(payload_bytes);
    obs::metrics().checkpoint_write_ns.add(write_ns);
    if (span.live()) {
        span.arg("bytes", payload_bytes);
        span.arg("tensors", static_cast<int64_t>(state.tensors.size()));
    }
    if (obs::RunLog* log = obs::runLog()) {
        obs::RunLogRecord record("checkpoint.save");
        record.num("step", state.step)
            .str("path", path)
            .num("bytes", payload_bytes)
            .num("world_size", state.world_size)
            .num("write_ms", static_cast<double>(write_ns) / 1e6);
        log->write(record);
    }
}

CheckpointState
loadCheckpoint(const std::string& path)
{
    obs::TraceSpan span("checkpoint.load", "checkpoint");
    const auto t0 = std::chrono::steady_clock::now();
    int64_t payload_bytes = 0;
    File file;
    file.f = std::fopen(path.c_str(), "rb");
    if (!file.f) {
        throw CheckpointError(path, "cannot open for reading");
    }
    if (readScalar<uint32_t>(file.f, path) != kCheckpointMagic) {
        throw CheckpointError(path, "bad magic (not a slapo checkpoint)");
    }
    const uint32_t version = readScalar<uint32_t>(file.f, path);
    if (version < 1 || version > kCheckpointVersion) {
        throw CheckpointError(
            path, "unsupported version " + std::to_string(version) +
                      " (this build reads versions 1.." +
                      std::to_string(kCheckpointVersion) + ")");
    }
    CheckpointState state;
    state.step = readScalar<int64_t>(file.f, path);
    state.optimizer_steps = readScalar<int64_t>(file.f, path);
    // v1 predates the world_size field; report 0 = unknown.
    state.world_size =
        version >= 2 ? readScalar<int64_t>(file.f, path) : 0;
    const uint64_t count = readScalar<uint64_t>(file.f, path);
    state.tensors.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        CheckpointEntry entry;
        const uint32_t name_len = readScalar<uint32_t>(file.f, path);
        entry.name.resize(name_len);
        readBytes(file.f, entry.name.data(), name_len, path);
        const uint32_t ndim = readScalar<uint32_t>(file.f, path);
        Shape shape(ndim);
        for (uint32_t d = 0; d < ndim; ++d) {
            shape[d] = readScalar<int64_t>(file.f, path);
            if (shape[d] < 0) {
                throw CheckpointError(path, "negative extent in tensor '" +
                                                entry.name + "'");
            }
        }
        const uint32_t expected_crc = readScalar<uint32_t>(file.f, path);
        entry.tensor = Tensor::zeros(shape);
        const size_t bytes =
            static_cast<size_t>(entry.tensor.numel()) * sizeof(float);
        readBytes(file.f, entry.tensor.data(), bytes, path);
        payload_bytes += static_cast<int64_t>(bytes);
        const uint32_t actual_crc = support::crc32(entry.tensor.data(), bytes);
        if (actual_crc != expected_crc) {
            throw CheckpointError(
                path, "CRC mismatch in tensor '" + entry.name +
                          "' (corrupt checkpoint; stored " +
                          std::to_string(expected_crc) + ", computed " +
                          std::to_string(actual_crc) + ")");
        }
        state.tensors.push_back(std::move(entry));
    }
    const int64_t read_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    obs::metrics().checkpoint_read_bytes.add(payload_bytes);
    obs::metrics().checkpoint_read_ns.add(read_ns);
    if (span.live()) {
        span.arg("bytes", payload_bytes);
        span.arg("tensors", static_cast<int64_t>(state.tensors.size()));
    }
    if (obs::RunLog* log = obs::runLog()) {
        obs::RunLogRecord record("checkpoint.restore");
        record.num("step", state.step)
            .str("path", path)
            .num("bytes", payload_bytes)
            .num("world_size", state.world_size)
            .num("read_ms", static_cast<double>(read_ns) / 1e6);
        log->write(record);
    }
    return state;
}

CheckpointState
captureTrainerState(int64_t step,
                    const std::vector<std::pair<std::string, Tensor*>>& params,
                    AdamW& optimizer, int64_t world_size)
{
    SLAPO_CHECK(params.size() == optimizer.numParams(),
                "captureTrainerState: " << params.size() << " params but "
                                        << optimizer.numParams()
                                        << " optimizer slots");
    CheckpointState state;
    state.step = step;
    state.optimizer_steps = optimizer.stepCount();
    state.world_size = world_size;
    state.tensors.reserve(params.size() * 3);
    for (size_t i = 0; i < params.size(); ++i) {
        const std::string& name = params[i].first;
        state.tensors.push_back({name, *params[i].second});
        state.tensors.push_back({name + ".m", optimizer.moment1(i)});
        state.tensors.push_back({name + ".v", optimizer.moment2(i)});
    }
    return state;
}

void
restoreTrainerState(const CheckpointState& state,
                    const std::vector<std::pair<std::string, Tensor*>>& params,
                    AdamW& optimizer)
{
    const std::string where = "<in-memory checkpoint>";
    if (state.tensors.size() != params.size() * 3 ||
        params.size() != optimizer.numParams()) {
        throw CheckpointError(
            where, "layout mismatch: checkpoint has " +
                       std::to_string(state.tensors.size()) +
                       " tensors, trainer expects " +
                       std::to_string(params.size() * 3));
    }
    for (size_t i = 0; i < params.size(); ++i) {
        const CheckpointEntry& p = state.tensors[3 * i];
        const CheckpointEntry& m = state.tensors[3 * i + 1];
        const CheckpointEntry& v = state.tensors[3 * i + 2];
        if (p.name != params[i].first ||
            p.tensor.shape() != params[i].second->shape()) {
            throw CheckpointError(
                where, "parameter mismatch at slot " + std::to_string(i) +
                           ": checkpoint '" + p.name + "' " +
                           shapeToString(p.tensor.shape()) + " vs trainer '" +
                           params[i].first + "' " +
                           shapeToString(params[i].second->shape()));
        }
        params[i].second->copyFrom(p.tensor);
        optimizer.moment1(i).copyFrom(m.tensor);
        optimizer.moment2(i).copyFrom(v.tensor);
    }
    optimizer.restoreStepCount(state.optimizer_steps);
}

} // namespace runtime
} // namespace slapo
