/**
 * @file
 * Reverse-mode autodiff over traced graphs — the reproduction of
 * PyTorch's autograd for the transformer op set.
 *
 * The engine traces the model hierarchically (reusing any graph a
 * schedule already installed), runs the forward storing intermediate
 * activations, then walks the graph backwards applying per-op gradient
 * rules. Two schedule features change its behaviour:
 *
 *  - **Activation checkpointing** (`.checkpoint()`): a checkpointed
 *    CallModule stores only its boundary inputs; its internals are
 *    recomputed during backward. The engine reports stored-activation
 *    bytes so tests can observe the memory/compute trade (§2.1, §3.2.1).
 *  - **Tensor parallelism** (`.shard()` + `.sync()`): forward collectives
 *    replay through the ProcessGroup; `.sync("backward")` points issue
 *    the conjugate all-reduce on input gradients (Megatron's f/g pair).
 */
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "nn/module.h"

namespace slapo {
namespace runtime {

/** Result of one forward+backward pass. */
struct GradResult
{
    /** Model outputs (typically a scalar loss). */
    std::vector<Tensor> outputs;
    /** Gradients keyed by parameter storage identity (Tensor::storageKey). */
    std::map<const void*, Tensor> param_grads;
    /** Gradients w.r.t. the model inputs (zero tensors for integer ids). */
    std::vector<Tensor> input_grads;
    /**
     * Bytes of intermediate activations retained between forward and
     * backward (the quantity activation checkpointing shrinks).
     */
    int64_t stored_activation_bytes = 0;
    /** Extra forward FLOPs-proxy recomputed due to checkpointing: number
     * of recomputed graph nodes. */
    int64_t recomputed_nodes = 0;
};

/**
 * Run forward+backward of `model` on `inputs`. The model must end in a
 * scalar output (shape [1]); seed the backward with d(out)/d(out) = 1.
 */
class AutogradEngine
{
  public:
    AutogradEngine() = default;

    GradResult run(nn::Module& model, const std::vector<Tensor>& inputs);

    /** Gradient lookup helper for optimizers. */
    static Tensor gradFor(const GradResult& result, const Tensor& param);

  private:
    struct Frame; // per-graph activation store

    std::shared_ptr<graph::Graph> graphFor(nn::Module& module,
                                           const std::vector<Shape>& shapes);

    std::vector<Tensor> forwardGraph(const graph::Graph& g, nn::Module* owner,
                                     const std::vector<Tensor>& inputs,
                                     Frame* frame);

    std::vector<Tensor> backwardGraph(const graph::Graph& g, nn::Module* owner,
                                      Frame& frame,
                                      const std::vector<Tensor>& grad_outputs);

    void accumulateParamGrad(const Tensor& param, const Tensor& grad);

    std::map<const nn::Module*, std::shared_ptr<graph::Graph>> graph_cache_;
    GradResult result_;
};

/**
 * Convenience loss heads: wrap a single-output model into a model whose
 * output is a scalar training loss (inputs: model inputs + target).
 */
nn::ModulePtr withCrossEntropyLoss(nn::ModulePtr model);
nn::ModulePtr withMseLoss(nn::ModulePtr model);

} // namespace runtime
} // namespace slapo
