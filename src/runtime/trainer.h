/**
 * @file
 * A complete training loop over scheduled models — the harness a Slapo
 * user runs after scheduling (§5 setups: AdamW, mixed data-parallel /
 * tensor-parallel execution, gradient accumulation).
 *
 * Single-process mode drives the autograd engine + AdamW directly;
 * distributed mode runs one replica per rank on the DistExecutor,
 * all-reducing data-parallel gradients through the ProcessGroup before
 * every optimizer step — so a data-parallel run is *bitwise comparable*
 * to a single-process run on the concatenated batch (tests assert this).
 */
#pragma once

#include <functional>

#include "nn/module.h"
#include "obs/dist_metrics.h"
#include "obs/step_report.h"
#include "runtime/autograd.h"
#include "runtime/dist_executor.h"
#include "tensor/optim.h"

namespace slapo {
namespace runtime {

/** Statistics of one optimizer step. */
struct TrainStepStats
{
    double loss = 0;               ///< mean loss over micro-batches/ranks
    /**
     * Global L2 norm of the averaged gradients, accumulated
     * sequentially in double over the bit-identical float grads — so it
     * is itself bitwise identical across kernel thread counts
     * (tests/test_parallel.cc asserts this).
     */
    double grad_norm = 0;
    int64_t micro_batches = 0;     ///< gradient-accumulation count
    int64_t tokens = 0;            ///< input elements consumed this step
    int64_t stored_activation_bytes = 0;
    int64_t recomputed_nodes = 0;
};

/** Checkpoint/retry policy of the recovering train loops. */
struct RecoveryOptions
{
    /**
     * Save a checkpoint every N steps (including step 0, so the initial
     * state is always recoverable). 0 disables periodic saving; restore
     * from existing checkpoints in `checkpoint_dir` still works.
     */
    int64_t checkpoint_every = 0;
    /** Directory for "ckpt-<step>.slpc" files. Empty disables recovery. */
    std::string checkpoint_dir;
    /** Failed steps tolerated across one trainSteps call before the
     * original error is rethrown. */
    int max_retries = 2;
    /**
     * Elastic world-size recovery (DataParallelTrainer only): when a
     * rank is *permanently* lost (failpoint `die` mode →
     * ProcessGroup::declareLost), rebuild the group over the survivors,
     * rebalance the data-parallel shard assignment, restore the last
     * checkpoint into the shrunken world, and keep training. Off by
     * default: a lost rank then fails the run like any other error once
     * retries are exhausted.
     */
    bool elastic = false;
    /**
     * Liveness deadline (ms) distinguishing "slow" from "gone": when a
     * step fails with a collective error but no rank is declared lost
     * yet, the elastic handler waits up to this long for a loss
     * declaration before deciding on a same-world replay.
     */
    int64_t liveness_deadline_ms = 2000;
    /**
     * Restore sweeps attempted per failure before giving up (each sweep
     * walks the checkpoint directory newest→oldest, skipping corrupt
     * files). Exhaustion emits a "recovery.giveup" run-log record and
     * rethrows the step's error.
     */
    int max_restore_attempts = 3;
    /**
     * Delay before restore sweep k (k >= 2): restore_backoff_ms <<
     * (k - 2) — exponential, jitter-free, so recovery timing is as
     * deterministic as the training math.
     */
    int64_t restore_backoff_ms = 50;
};

/** Outcome of a recovering train loop. */
struct TrainRunStats
{
    TrainStepStats last;     ///< stats of the final successful step
    int64_t steps_run = 0;   ///< successful steps, including replayed ones
    int recoveries = 0;      ///< times a failure was recovered from
    int elastic_rebuilds = 0; ///< world-shrinking rebuilds performed
};

/**
 * Deterministic batch source for the recovering train loops: must return
 * the same batches for the same step index, or replayed steps after a
 * restore would diverge from the uninterrupted run.
 * For Trainer: micro-batch input tuples. For DataParallelTrainer: one
 * input tuple per *data shard* — always baseWorldSize() tuples, even
 * after an elastic shrink, so the global batch is invariant across
 * world-size changes (survivors pick up orphaned shards by gradient
 * accumulation).
 */
using BatchProvider =
    std::function<std::vector<std::vector<Tensor>>(int64_t step)>;

/** Single-process trainer: model must end in a scalar loss. */
class Trainer
{
  public:
    /** @param model a loss-headed model (see withCrossEntropyLoss). */
    Trainer(nn::ModulePtr model, AdamWConfig config = {},
            RecoveryOptions recovery = {});

    /**
     * One optimizer step over `micro_batches` input tuples (gradients
     * are accumulated and averaged across them).
     */
    TrainStepStats step(const std::vector<std::vector<Tensor>>& micro_batches);

    /**
     * Run `num_steps` optimizer steps with checkpoint/restore recovery:
     * checkpoints are written every `recovery.checkpoint_every` steps;
     * when a step throws, the newest loadable checkpoint is restored
     * (corrupt files are skipped) and training replays from there —
     * bit-exactly, because parameters, AdamW moments, and both step
     * counters round-trip through the checkpoint. Rethrows the step's
     * error once `recovery.max_retries` is exhausted, or if no
     * checkpoint can be restored.
     */
    TrainRunStats trainSteps(const BatchProvider& batches, int64_t num_steps);

    nn::Module& model() { return *model_; }

    /**
     * The attributed breakdown of the most recent step
     * (obs/step_report.h). Only populated while
     * `obs::stepReportsEnabled()` — `step` stays -1 otherwise.
     */
    const obs::StepReport& lastStepReport() const { return last_report_; }

  private:
    nn::ModulePtr model_;
    AdamW optimizer_;
    RecoveryOptions recovery_;
    std::vector<std::pair<std::string, Tensor*>> params_;
    obs::StepReport last_report_;
};

/**
 * Data-parallel trainer: replicates the scheduled model across
 * `world_size` rank threads, partitions the global batch into
 * `world_size` fixed data shards (initially one per rank), all-reduces
 * (averages) gradients, and steps every rank's optimizer identically —
 * the replicas stay synchronized by construction.
 *
 * The shard partition, not the rank count, defines the math: with
 * RecoveryOptions::elastic the trainer survives *permanent* rank loss
 * by rebuilding the group over the survivors and handing the lost
 * ranks' shards to the least-loaded survivors (gradient accumulation
 * keeps the global batch intact), so post-shrink training is
 * deterministic and the loss trajectory continues from the restored
 * checkpoint.
 */
class DataParallelTrainer
{
  public:
    DataParallelTrainer(const nn::Module& model, int world_size,
                        AdamWConfig config = {}, RecoveryOptions recovery = {});

    /**
     * One step over `per_shard_inputs[s]` for every data shard s (always
     * baseWorldSize() tuples). Rank r executes its assigned shards
     * (`shardAssignment()[r]`, ascending) sequentially with gradient
     * accumulation, then all ranks average gradients with a single
     * bucketed all-reduce scaled by 1/baseWorldSize() — so the update
     * (and the mean loss, summed in shard order) is a function of the
     * shard set only, bitwise reproducible at any world size.
     * @return mean loss across shards.
     */
    TrainStepStats step(
        const std::vector<std::vector<Tensor>>& per_shard_inputs);

    /**
     * Recovering train loop (see Trainer::trainSteps); `batches(step)`
     * returns the per-shard input tuples of that step. Recovery covers
     * rank failures too: a killed/throwing rank aborts the collective
     * group (peers fail fast with CollectiveError), all rank threads are
     * joined, rank 0's checkpoint is restored into *every* replica —
     * re-synchronizing ranks that had already stepped their optimizer —
     * and the step is replayed.
     *
     * With `recovery.elastic` set, a *permanently lost* rank (failpoint
     * `die` mode) additionally triggers the elastic state machine
     * (docs/ROBUSTNESS.md): abort → drain → agree-on-survivors →
     * rebuild → rebalance → resume. The group is rebuilt over the
     * survivors (membership generation bumped), the lost ranks' shards
     * are redistributed to the least-loaded survivors, the last
     * checkpoint is restored into the shrunken world, and the run-log
     * gains an "elastic.rebuild" record naming the lost ranks.
     */
    TrainRunStats trainSteps(const BatchProvider& batches, int64_t num_steps);

    /** Rank r's replica (for inspection/tests). */
    nn::Module& replica(int rank) { return *replicas_[rank]; }
    /** Current world size (shrinks on elastic rebuilds). */
    int worldSize() const { return executor_.worldSize(); }
    /** World size the trainer was built with = the fixed shard count. */
    int baseWorldSize() const { return base_world_; }
    /** Current rank → data shards it executes (each list ascending). */
    const std::vector<std::vector<int>>& shardAssignment() const
    {
        return shard_map_;
    }
    /** Current rank → the rank id it was *born* with (pre-shrink). */
    const std::vector<int>& origRanks() const { return orig_rank_; }

    /** The executor's collective group (e.g. to tune its timeout). */
    ProcessGroup& group() { return executor_.group(); }

    /**
     * Cross-rank metric aggregation (obs/dist_metrics.h): every rank
     * packs its per-rank counters (collective count/wait/copy plus the
     * process-wide tensor/pipeline numbers), the group all-gathers the
     * packed snapshots — exercising the same collectives it reports on —
     * and rank 0 unpacks them into a min/max/mean/spread skew report.
     * Also appended to the run log (kind "dist_metrics") at the end of
     * every trainSteps call when a run log is open.
     */
    obs::DistMetricsReport gatherMetrics();

    /**
     * The attributed breakdown of the most recent step (per-rank means;
     * includes the cross-rank spread block). Only populated while
     * `obs::stepReportsEnabled()` — `step` stays -1 otherwise.
     */
    const obs::StepReport& lastStepReport() const { return last_report_; }

  private:
    /**
     * Elastic handler invoked by the recovery loop on a failed step.
     * Decides "gone" vs "slow" (ProcessGroup::confirmLost under the
     * liveness deadline) and runs the shrink state machine when ranks
     * are lost. Returns true if the world was rebuilt.
     */
    bool handleRankLoss(const std::exception_ptr& failure);
    /** abort → drain → rebuild → rebalance → survivor rendezvous. */
    void elasticShrink();
    /** Drop per-rank state of non-survivors; renumber the rest. */
    void remapSurvivors(const std::vector<int>& survivors);
    /** Assign every orphaned shard to the least-loaded survivor
     * (ties → lowest rank); idempotent, so a half-finished shrink can
     * be repaired by calling it again. */
    void rebalanceShards();

    DistExecutor executor_;
    RecoveryOptions recovery_;
    std::vector<nn::ModulePtr> replicas_;
    std::vector<std::unique_ptr<AdamW>> optimizers_;
    std::vector<std::vector<std::pair<std::string, Tensor*>>> params_;
    int base_world_ = 1;                     ///< shard count, never shrinks
    std::vector<std::vector<int>> shard_map_; ///< rank → shards (ascending)
    std::vector<int> orig_rank_;              ///< rank → original rank id
    obs::StepReport last_report_;
};

} // namespace runtime
} // namespace slapo
