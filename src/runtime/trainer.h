/**
 * @file
 * A complete training loop over scheduled models — the harness a Slapo
 * user runs after scheduling (§5 setups: AdamW, mixed data-parallel /
 * tensor-parallel execution, gradient accumulation).
 *
 * Single-process mode drives the autograd engine + AdamW directly;
 * distributed mode runs one replica per rank on the DistExecutor,
 * all-reducing data-parallel gradients through the ProcessGroup before
 * every optimizer step — so a data-parallel run is *bitwise comparable*
 * to a single-process run on the concatenated batch (tests assert this).
 */
#pragma once

#include <functional>

#include "nn/module.h"
#include "obs/dist_metrics.h"
#include "runtime/autograd.h"
#include "runtime/dist_executor.h"
#include "tensor/optim.h"

namespace slapo {
namespace runtime {

/** Statistics of one optimizer step. */
struct TrainStepStats
{
    double loss = 0;               ///< mean loss over micro-batches/ranks
    /**
     * Global L2 norm of the averaged gradients, accumulated
     * sequentially in double over the bit-identical float grads — so it
     * is itself bitwise identical across kernel thread counts
     * (tests/test_parallel.cc asserts this).
     */
    double grad_norm = 0;
    int64_t micro_batches = 0;     ///< gradient-accumulation count
    int64_t tokens = 0;            ///< input elements consumed this step
    int64_t stored_activation_bytes = 0;
    int64_t recomputed_nodes = 0;
};

/** Checkpoint/retry policy of the recovering train loops. */
struct RecoveryOptions
{
    /**
     * Save a checkpoint every N steps (including step 0, so the initial
     * state is always recoverable). 0 disables periodic saving; restore
     * from existing checkpoints in `checkpoint_dir` still works.
     */
    int64_t checkpoint_every = 0;
    /** Directory for "ckpt-<step>.slpc" files. Empty disables recovery. */
    std::string checkpoint_dir;
    /** Failed steps tolerated across one trainSteps call before the
     * original error is rethrown. */
    int max_retries = 2;
};

/** Outcome of a recovering train loop. */
struct TrainRunStats
{
    TrainStepStats last;     ///< stats of the final successful step
    int64_t steps_run = 0;   ///< successful steps, including replayed ones
    int recoveries = 0;      ///< times a failure was recovered from
};

/**
 * Deterministic batch source for the recovering train loops: must return
 * the same batches for the same step index, or replayed steps after a
 * restore would diverge from the uninterrupted run.
 * For Trainer: micro-batch input tuples. For DataParallelTrainer:
 * per-rank input tuples.
 */
using BatchProvider =
    std::function<std::vector<std::vector<Tensor>>(int64_t step)>;

/** Single-process trainer: model must end in a scalar loss. */
class Trainer
{
  public:
    /** @param model a loss-headed model (see withCrossEntropyLoss). */
    Trainer(nn::ModulePtr model, AdamWConfig config = {},
            RecoveryOptions recovery = {});

    /**
     * One optimizer step over `micro_batches` input tuples (gradients
     * are accumulated and averaged across them).
     */
    TrainStepStats step(const std::vector<std::vector<Tensor>>& micro_batches);

    /**
     * Run `num_steps` optimizer steps with checkpoint/restore recovery:
     * checkpoints are written every `recovery.checkpoint_every` steps;
     * when a step throws, the newest loadable checkpoint is restored
     * (corrupt files are skipped) and training replays from there —
     * bit-exactly, because parameters, AdamW moments, and both step
     * counters round-trip through the checkpoint. Rethrows the step's
     * error once `recovery.max_retries` is exhausted, or if no
     * checkpoint can be restored.
     */
    TrainRunStats trainSteps(const BatchProvider& batches, int64_t num_steps);

    nn::Module& model() { return *model_; }

  private:
    nn::ModulePtr model_;
    AdamW optimizer_;
    RecoveryOptions recovery_;
    std::vector<std::pair<std::string, Tensor*>> params_;
};

/**
 * Data-parallel trainer: replicates the scheduled model across
 * `world_size` rank threads, feeds each rank its own micro-batch,
 * all-reduces (averages) gradients, and steps every rank's optimizer
 * identically — the replicas stay synchronized by construction.
 */
class DataParallelTrainer
{
  public:
    DataParallelTrainer(const nn::Module& model, int world_size,
                        AdamWConfig config = {}, RecoveryOptions recovery = {});

    /**
     * One step; `per_rank_inputs[r]` is rank r's input tuple.
     * @return mean loss across ranks.
     */
    TrainStepStats step(
        const std::vector<std::vector<Tensor>>& per_rank_inputs);

    /**
     * Recovering train loop (see Trainer::trainSteps); `batches(step)`
     * returns the per-rank input tuples of that step. Recovery covers
     * rank failures too: a killed/throwing rank aborts the collective
     * group (peers fail fast with CollectiveError), all rank threads are
     * joined, rank 0's checkpoint is restored into *every* replica —
     * re-synchronizing ranks that had already stepped their optimizer —
     * and the step is replayed.
     */
    TrainRunStats trainSteps(const BatchProvider& batches, int64_t num_steps);

    /** Rank r's replica (for inspection/tests). */
    nn::Module& replica(int rank) { return *replicas_[rank]; }
    int worldSize() const { return executor_.worldSize(); }

    /** The executor's collective group (e.g. to tune its timeout). */
    ProcessGroup& group() { return executor_.group(); }

    /**
     * Cross-rank metric aggregation (obs/dist_metrics.h): every rank
     * packs its per-rank counters (collective count/wait/copy plus the
     * process-wide tensor/pipeline numbers), the group all-gathers the
     * packed snapshots — exercising the same collectives it reports on —
     * and rank 0 unpacks them into a min/max/mean/spread skew report.
     * Also appended to the run log (kind "dist_metrics") at the end of
     * every trainSteps call when a run log is open.
     */
    obs::DistMetricsReport gatherMetrics();

  private:
    DistExecutor executor_;
    RecoveryOptions recovery_;
    std::vector<nn::ModulePtr> replicas_;
    std::vector<std::unique_ptr<AdamW>> optimizers_;
    std::vector<std::vector<std::pair<std::string, Tensor*>>> params_;
};

} // namespace runtime
} // namespace slapo
