/**
 * @file
 * A complete training loop over scheduled models — the harness a Slapo
 * user runs after scheduling (§5 setups: AdamW, mixed data-parallel /
 * tensor-parallel execution, gradient accumulation).
 *
 * Single-process mode drives the autograd engine + AdamW directly;
 * distributed mode runs one replica per rank on the DistExecutor,
 * all-reducing data-parallel gradients through the ProcessGroup before
 * every optimizer step — so a data-parallel run is *bitwise comparable*
 * to a single-process run on the concatenated batch (tests assert this).
 */
#pragma once

#include <functional>

#include "nn/module.h"
#include "runtime/autograd.h"
#include "runtime/dist_executor.h"
#include "tensor/optim.h"

namespace slapo {
namespace runtime {

/** Statistics of one optimizer step. */
struct TrainStepStats
{
    double loss = 0;               ///< mean loss over micro-batches/ranks
    int64_t micro_batches = 0;     ///< gradient-accumulation count
    int64_t stored_activation_bytes = 0;
    int64_t recomputed_nodes = 0;
};

/** Single-process trainer: model must end in a scalar loss. */
class Trainer
{
  public:
    /** @param model a loss-headed model (see withCrossEntropyLoss). */
    Trainer(nn::ModulePtr model, AdamWConfig config = {});

    /**
     * One optimizer step over `micro_batches` input tuples (gradients
     * are accumulated and averaged across them).
     */
    TrainStepStats step(const std::vector<std::vector<Tensor>>& micro_batches);

    nn::Module& model() { return *model_; }

  private:
    nn::ModulePtr model_;
    AdamW optimizer_;
    std::vector<std::pair<std::string, Tensor*>> params_;
};

/**
 * Data-parallel trainer: replicates the scheduled model across
 * `world_size` rank threads, feeds each rank its own micro-batch,
 * all-reduces (averages) gradients, and steps every rank's optimizer
 * identically — the replicas stay synchronized by construction.
 */
class DataParallelTrainer
{
  public:
    DataParallelTrainer(const nn::Module& model, int world_size,
                        AdamWConfig config = {});

    /**
     * One step; `per_rank_inputs[r]` is rank r's input tuple.
     * @return mean loss across ranks.
     */
    TrainStepStats step(
        const std::vector<std::vector<Tensor>>& per_rank_inputs);

    /** Rank r's replica (for inspection/tests). */
    nn::Module& replica(int rank) { return *replicas_[rank]; }
    int worldSize() const { return executor_.worldSize(); }

  private:
    DistExecutor executor_;
    std::vector<nn::ModulePtr> replicas_;
    std::vector<std::unique_ptr<AdamW>> optimizers_;
    std::vector<std::vector<std::pair<std::string, Tensor*>>> params_;
};

} // namespace runtime
} // namespace slapo
