#include "runtime/process_group.h"

#include "tensor/ops.h"

namespace slapo {
namespace runtime {

ProcessGroup::ProcessGroup(int world_size)
    : world_size_(world_size), slots_(world_size), results_(world_size)
{
    SLAPO_CHECK(world_size >= 1, "ProcessGroup: world size must be >= 1");
}

Tensor
ProcessGroup::rendezvous(int rank, const Tensor& tensor,
                         const ComputeFn& compute)
{
    SLAPO_CHECK(rank >= 0 && rank < world_size_,
                "ProcessGroup: bad rank " << rank);
    if (world_size_ == 1) {
        return compute({tensor})[0];
    }
    std::unique_lock<std::mutex> lock(mutex_);
    slots_[rank] = tensor;
    const int64_t my_generation = generation_;
    if (++arrived_ == world_size_) {
        results_ = compute(slots_);
        arrived_ = 0;
        ++generation_;
        cv_.notify_all();
    } else {
        cv_.wait(lock, [&] { return generation_ != my_generation; });
    }
    // Read under the lock: the next collective cannot overwrite results_
    // until every rank of this one has re-entered rendezvous, which
    // requires having returned from here first. Clone so ranks never
    // share storage — an in-place update on one rank's result must not
    // leak into (or race with) another rank's copy, exactly as separate
    // processes behave.
    return results_[rank].clone();
}

Tensor
ProcessGroup::allReduce(int rank, const Tensor& tensor)
{
    return rendezvous(rank, tensor, [this](const std::vector<Tensor>& slots) {
        Tensor sum = slots[0].clone();
        for (int r = 1; r < world_size_; ++r) {
            sum.addInPlace(slots[r]);
        }
        return std::vector<Tensor>(world_size_, sum);
    });
}

Tensor
ProcessGroup::allGather(int rank, const Tensor& tensor, int64_t axis)
{
    return rendezvous(rank, tensor,
                      [this, axis](const std::vector<Tensor>& slots) {
                          Tensor gathered = ops::concat(slots, axis);
                          return std::vector<Tensor>(world_size_, gathered);
                      });
}

Tensor
ProcessGroup::reduceScatter(int rank, const Tensor& tensor, int64_t axis)
{
    return rendezvous(rank, tensor,
                      [this, axis](const std::vector<Tensor>& slots) {
                          Tensor sum = slots[0].clone();
                          for (int r = 1; r < world_size_; ++r) {
                              sum.addInPlace(slots[r]);
                          }
                          return ops::chunk(sum, world_size_, axis);
                      });
}

Tensor
ProcessGroup::broadcast(int rank, const Tensor& tensor, int root)
{
    return rendezvous(rank, tensor,
                      [this, root](const std::vector<Tensor>& slots) {
                          return std::vector<Tensor>(world_size_, slots[root]);
                      });
}

void
ProcessGroup::barrier()
{
    rendezvous(0 /*unused*/, Tensor::zeros({1}),
               [this](const std::vector<Tensor>&) {
                   return std::vector<Tensor>(world_size_, Tensor::zeros({1}));
               });
}

} // namespace runtime
} // namespace slapo
