#include "runtime/process_group.h"

#include <chrono>

#include "nn/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/failpoint.h"
#include "tensor/ops.h"

namespace slapo {
namespace runtime {

namespace {

/** allReduce / broadcast / barrier: deposits must match exactly. */
std::string
validateSameShape(const Tensor& ref, const Tensor& mine)
{
    if (mine.shape() != ref.shape()) {
        return (detail::MessageBuilder()
                << "tensor shape " << shapeToString(mine.shape())
                << " does not match the group's shape "
                << shapeToString(ref.shape()))
            .str();
    }
    return {};
}

/** allGather(axis): extents must agree everywhere except `axis`. */
std::string
validateGatherShape(const Tensor& ref, const Tensor& mine, int64_t axis)
{
    const Shape& a = ref.shape();
    const Shape& b = mine.shape();
    const int64_t resolved =
        axis < 0 ? axis + static_cast<int64_t>(a.size()) : axis;
    if (a.size() != b.size()) {
        return (detail::MessageBuilder()
                << "tensor rank " << b.size() << " does not match the group's "
                << a.size())
            .str();
    }
    for (size_t d = 0; d < a.size(); ++d) {
        if (static_cast<int64_t>(d) != resolved && a[d] != b[d]) {
            return (detail::MessageBuilder()
                    << "non-concat extent mismatch at dim " << d << ": "
                    << shapeToString(b) << " vs " << shapeToString(a)
                    << " (concat axis " << axis << ")")
                .str();
        }
    }
    return {};
}

/** Marks the flight-recorder exit on every path out of a rendezvous:
 * normal return → completed, exception unwind → aborted. */
struct FlightGuard
{
    obs::FlightRecorder& recorder;
    int rank;
    int64_t token;
    bool ok = false;

    ~FlightGuard() { recorder.end(rank, token, !ok); }
};

} // namespace

ProcessGroup::ProcessGroup(int world_size, ProcessGroupOptions options)
    : world_size_(world_size), timeout_ms_(options.timeout_ms),
      slots_(world_size), results_(world_size),
      lost_(static_cast<size_t>(world_size < 1 ? 1 : world_size), 0),
      rank_counters_(new RankCounters[static_cast<size_t>(
          world_size < 1 ? 1 : world_size)])
{
    SLAPO_CHECK(world_size >= 1, "ProcessGroup: world size must be >= 1");
    makeFlightRecorder();
}

void
ProcessGroup::makeFlightRecorder()
{
    // Generation 1 keeps the historical plain "pg" label; rebuilt worlds
    // are tagged so a dump names the generation it died in.
    flight_ = std::make_unique<obs::FlightRecorder>(world_size_);
    if (membership_generation_ > 1) {
        flight_->setLabel("pg.gen" +
                          std::to_string(membership_generation_));
    }
}

RankPgStats
ProcessGroup::rankStats(int rank) const
{
    RankPgStats out;
    if (rank < 0 || rank >= world_size_) {
        return out;
    }
    const RankCounters& c = rank_counters_[static_cast<size_t>(rank)];
    out.count = c.count.load(std::memory_order_relaxed);
    out.wait_ns = c.wait_ns.load(std::memory_order_relaxed);
    out.copy_ns = c.copy_ns.load(std::memory_order_relaxed);
    return out;
}

void
ProcessGroup::setTimeout(int64_t timeout_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    timeout_ms_ = timeout_ms;
}

void
ProcessGroup::abortLocked(const std::string& site, int rank,
                          const std::string& reason)
{
    if (aborted_) {
        return; // first failure wins; later ones are echoes
    }
    aborted_ = true;
    abort_site_ = site;
    abort_rank_ = rank;
    abort_generation_ = generation_;
    abort_member_generation_ = membership_generation_;
    abort_reason_ = reason;
    // Capture the flight-recorder dump *now*, before any blocked rank
    // unwinds: the dump must show who was still inside the collective
    // and who never arrived (docs/OBSERVABILITY.md). The recorder's
    // label carries the membership generation, so the dump is tagged
    // with the generation that is dying.
    flight_->autoDumpOnError();
    // And the trace collected so far, for the same reason: a run that
    // dies here would otherwise lose its SLAPO_TRACE output, which is
    // exactly the timeline you want next to the hang dump.
    obs::flushTrace();
    cv_.notify_all();
}

void
ProcessGroup::abort(const std::string& site, int rank,
                    const std::string& reason)
{
    std::lock_guard<std::mutex> lock(mutex_);
    abortLocked(site, rank, reason);
}

bool
ProcessGroup::aborted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return aborted_;
}

int
ProcessGroup::abortRank() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return aborted_ ? abort_rank_ : -1;
}

void
ProcessGroup::declareLost(int rank, const std::string& reason)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (rank < 0 || rank >= world_size_ || lost_[static_cast<size_t>(rank)]) {
        return;
    }
    lost_[static_cast<size_t>(rank)] = 1;
    abortLocked("elastic.lost", rank, reason);
    // abortLocked only notifies on the *first* abort; a later loss
    // declaration must still wake confirmLost waiters.
    cv_.notify_all();
}

std::vector<int>
ProcessGroup::lostRanks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<int> lost;
    for (int r = 0; r < world_size_; ++r) {
        if (lost_[static_cast<size_t>(r)]) {
            lost.push_back(r);
        }
    }
    return lost;
}

bool
ProcessGroup::confirmLost(int rank, int64_t deadline_ms) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (rank < 0 || rank >= world_size_) {
        return false;
    }
    auto declared = [&] { return lost_[static_cast<size_t>(rank)] != 0; };
    if (deadline_ms <= 0) {
        return declared();
    }
    cv_.wait_for(lock, std::chrono::milliseconds(deadline_ms), declared);
    return declared();
}

int64_t
ProcessGroup::membershipGeneration() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return membership_generation_;
}

void
ProcessGroup::rebuild(const std::vector<int>& survivors)
{
    std::lock_guard<std::mutex> lock(mutex_);
    SLAPO_CHECK(!survivors.empty(),
                "ProcessGroup::rebuild: no survivors to rebuild over");
    SLAPO_CHECK(static_cast<int>(survivors.size()) <= world_size_,
                "ProcessGroup::rebuild: more survivors ("
                    << survivors.size() << ") than current ranks ("
                    << world_size_ << ")");
    int prev = -1;
    for (int r : survivors) {
        SLAPO_CHECK(r > prev && r < world_size_,
                    "ProcessGroup::rebuild: survivor ranks must be "
                    "ascending, unique, and in [0, "
                        << world_size_ << "); got rank " << r);
        SLAPO_CHECK(!lost_[static_cast<size_t>(r)],
                    "ProcessGroup::rebuild: rank "
                        << r << " was declared lost but listed as survivor");
        prev = r;
    }
    const int new_world = static_cast<int>(survivors.size());
    // Carry the survivors' counters into their new rank slots, minus the
    // wait they burned hanging in the aborted step (same policy as
    // reset()). Dead ranks' counters go with them.
    std::unique_ptr<RankCounters[]> counters(
        new RankCounters[static_cast<size_t>(new_world)]);
    for (int nr = 0; nr < new_world; ++nr) {
        const RankCounters& old =
            rank_counters_[static_cast<size_t>(survivors[nr])];
        RankCounters& fresh = counters[static_cast<size_t>(nr)];
        fresh.count.store(old.count.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
        fresh.wait_ns.store(
            old.wait_ns.load(std::memory_order_relaxed) -
                old.aborted_wait_ns.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        fresh.copy_ns.store(old.copy_ns.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    rank_counters_ = std::move(counters);
    world_size_ = new_world;
    slots_.assign(static_cast<size_t>(new_world), Tensor());
    results_.assign(static_cast<size_t>(new_world), Tensor());
    lost_.assign(static_cast<size_t>(new_world), 0);
    arrived_ = 0;
    first_rank_ = -1;
    aborted_ = false;
    abort_site_.clear();
    abort_rank_ = -1;
    abort_reason_.clear();
    ++generation_;
    ++membership_generation_;
    makeFlightRecorder();
    cv_.notify_all();
}

void
ProcessGroup::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = false;
    abort_site_.clear();
    abort_rank_ = -1;
    abort_reason_.clear();
    arrived_ = 0;
    first_rank_ = -1;
    // Advance the generation so a stale waiter (there should be none —
    // reset() requires all rank threads joined) can never confuse a
    // pre-abort collective with a post-reset one.
    ++generation_;
    for (Tensor& slot : slots_) {
        slot = Tensor();
    }
    // Drop the wait time ranks burned blocked in the aborted collective:
    // it measures the failure, not rank skew, and would otherwise
    // dominate every post-recovery skew report.
    for (int r = 0; r < world_size_; ++r) {
        RankCounters& rc = rank_counters_[static_cast<size_t>(r)];
        const int64_t polluted =
            rc.aborted_wait_ns.exchange(0, std::memory_order_relaxed);
        if (polluted != 0) {
            rc.wait_ns.fetch_sub(polluted, std::memory_order_relaxed);
        }
    }
    flight_->rearmAutoDump();
}

void
ProcessGroup::throwAborted(int64_t waited_ms) const
{
    throw CollectiveError(abort_site_, abort_rank_, abort_generation_,
                          abort_reason_, waited_ms,
                          abort_member_generation_);
}

Tensor
ProcessGroup::rendezvous(const char* site, int rank, const Tensor& tensor,
                         const ValidateFn& validate, const ComputeFn& compute)
{
    SLAPO_CHECK(rank >= 0 && rank < world_size_,
                "ProcessGroup: bad rank " << rank);
    support::failpoint::hit(site, rank);
    // Observability: one span per collective entry, with the rendezvous
    // wait (blocked on peers) separated from data movement (reduction
    // compute + result copy) both as child spans and as the always-on
    // pg.wait_ns / pg.copy_ns counters (docs/OBSERVABILITY.md).
    using Clock = std::chrono::steady_clock;
    auto ns_since = [](Clock::time_point t0) {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - t0)
            .count();
    };
    obs::TraceSpan span(site, "pg");
    span.arg("rank", static_cast<int64_t>(rank));
    obs::metrics().pg_count.add(1);
    RankCounters& rc = rank_counters_[static_cast<size_t>(rank)];
    rc.count.fetch_add(1, std::memory_order_relaxed);
    const Shape& dims = tensor.shape();
    FlightGuard flight{*flight_, rank,
                       flight_->begin(rank, site, dims.data(),
                                      static_cast<int>(dims.size()))};
    // Elastic membership: a thread spawned into an older world (its
    // DistContext pins the membership generation it joined) must not
    // deposit into a rebuilt group — its rank id means something else
    // now. Reject the stale deposit with an error naming both epochs.
    // Checked before the single-rank fast path: a group rebuilt down to
    // one survivor still rejects stragglers from the old world.
    if (const nn::DistContext* ctx = nn::DistContext::current()) {
        std::lock_guard<std::mutex> stale_lock(mutex_);
        if (ctx->group == this && ctx->membership_generation != 0 &&
            ctx->membership_generation != membership_generation_) {
            throw CollectiveError(
                site, rank, generation_,
                "deposit from stale membership generation " +
                    std::to_string(ctx->membership_generation) +
                    " rejected (group was rebuilt; current generation " +
                    std::to_string(membership_generation_) + ")",
                -1, ctx->membership_generation);
        }
    }
    if (world_size_ == 1) {
        const auto t0 = Clock::now();
        Tensor out = compute({tensor})[0];
        const int64_t copy_ns = ns_since(t0);
        obs::metrics().pg_copy_ns.add(copy_ns);
        rc.copy_ns.fetch_add(copy_ns, std::memory_order_relaxed);
        flight.ok = true;
        return out;
    }
    const auto entry_time = Clock::now();
    std::unique_lock<std::mutex> lock(mutex_);
    if (aborted_) {
        throwAborted();
    }
    if (!tensor.materialized()) {
        abortLocked(site, rank, "rank deposited a meta (storage-less) tensor");
        throwAborted();
    }
    if (arrived_ > 0 && validate) {
        std::string mismatch = validate(slots_[first_rank_], tensor);
        if (!mismatch.empty()) {
            // Name the offending rank and unblock the peers: they cannot
            // complete this collective anymore.
            abortLocked(site, rank,
                        "rank " + std::to_string(rank) + ": " + mismatch +
                            " (reference deposit from rank " +
                            std::to_string(first_rank_) + ")");
            throwAborted();
        }
    }
    slots_[rank] = tensor;
    if (arrived_ == 0) {
        first_rank_ = rank;
    }
    const int64_t my_generation = generation_;
    if (++arrived_ == world_size_) {
        obs::TraceSpan compute_span("pg.compute", "pg");
        const auto t0 = Clock::now();
        try {
            results_ = compute(slots_);
        } catch (const std::exception& e) {
            arrived_ = 0;
            abortLocked(site, rank, e.what());
            throwAborted();
        }
        const int64_t compute_ns = ns_since(t0);
        obs::metrics().pg_copy_ns.add(compute_ns);
        rc.copy_ns.fetch_add(compute_ns, std::memory_order_relaxed);
        arrived_ = 0;
        first_rank_ = -1;
        ++generation_;
        cv_.notify_all();
    } else {
        obs::TraceSpan wait_span("pg.wait", "pg");
        auto ready = [&] { return generation_ != my_generation || aborted_; };
        auto elapsed_ms = [&] {
            return std::chrono::duration_cast<std::chrono::milliseconds>(
                       Clock::now() - entry_time)
                .count();
        };
        if (timeout_ms_ > 0) {
            if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms_),
                              ready)) {
                const int64_t waited = elapsed_ms();
                const int64_t waited_ns = ns_since(entry_time);
                obs::metrics().pg_wait_ns.add(waited_ns);
                rc.wait_ns.fetch_add(waited_ns, std::memory_order_relaxed);
                // Staged for reset()/rebuild(): this wait measures the
                // hang, not rank skew.
                rc.aborted_wait_ns.fetch_add(waited_ns,
                                             std::memory_order_relaxed);
                abortLocked(site, rank,
                            "rank " + std::to_string(rank) +
                                " timed out after waiting " +
                                std::to_string(waited) +
                                "ms for peers (timeout " +
                                std::to_string(timeout_ms_) + "ms)");
                throwAborted(waited);
            }
        } else {
            cv_.wait(lock, ready);
        }
        const int64_t waited_ns = ns_since(entry_time);
        obs::metrics().pg_wait_ns.add(waited_ns);
        rc.wait_ns.fetch_add(waited_ns, std::memory_order_relaxed);
        // A completed collective beats a later abort: if the generation
        // advanced, this rank's result is valid even if the group was
        // aborted afterwards.
        if (generation_ == my_generation) {
            rc.aborted_wait_ns.fetch_add(waited_ns,
                                         std::memory_order_relaxed);
            throwAborted(elapsed_ms());
        }
    }
    // Read under the lock: the next collective cannot overwrite results_
    // until every rank of this one has re-entered rendezvous, which
    // requires having returned from here first. Clone so ranks never
    // share storage — an in-place update on one rank's result must not
    // leak into (or race with) another rank's copy, exactly as separate
    // processes behave.
    obs::TraceSpan copy_span("pg.copy", "pg");
    const auto t1 = Clock::now();
    Tensor result = results_[rank].clone();
    const int64_t clone_ns = ns_since(t1);
    obs::metrics().pg_copy_ns.add(clone_ns);
    rc.copy_ns.fetch_add(clone_ns, std::memory_order_relaxed);
    flight.ok = true;
    return result;
}

Tensor
ProcessGroup::allReduce(int rank, const Tensor& tensor)
{
    return rendezvous("pg.allreduce", rank, tensor, validateSameShape,
                      [this](const std::vector<Tensor>& slots) {
                          Tensor sum = slots[0].clone();
                          for (int r = 1; r < world_size_; ++r) {
                              sum.addInPlace(slots[r]);
                          }
                          return std::vector<Tensor>(world_size_, sum);
                      });
}

Tensor
ProcessGroup::allReduceBucket(int rank, const Tensor& tensor)
{
    return rendezvous("pg.allreduce.bucket", rank, tensor, validateSameShape,
                      [this](const std::vector<Tensor>& slots) {
                          Tensor sum = slots[0].clone();
                          for (int r = 1; r < world_size_; ++r) {
                              sum.addInPlace(slots[r]);
                          }
                          return std::vector<Tensor>(world_size_, sum);
                      });
}

Tensor
ProcessGroup::allGather(int rank, const Tensor& tensor, int64_t axis)
{
    return rendezvous("pg.allgather", rank, tensor,
                      [axis](const Tensor& ref, const Tensor& mine) {
                          return validateGatherShape(ref, mine, axis);
                      },
                      [this, axis](const std::vector<Tensor>& slots) {
                          Tensor gathered = ops::concat(slots, axis);
                          return std::vector<Tensor>(world_size_, gathered);
                      });
}

Tensor
ProcessGroup::reduceScatter(int rank, const Tensor& tensor, int64_t axis)
{
    return rendezvous("pg.reducescatter", rank, tensor, validateSameShape,
                      [this, axis](const std::vector<Tensor>& slots) {
                          Tensor sum = slots[0].clone();
                          for (int r = 1; r < world_size_; ++r) {
                              sum.addInPlace(slots[r]);
                          }
                          return ops::chunk(sum, world_size_, axis);
                      });
}

Tensor
ProcessGroup::broadcast(int rank, const Tensor& tensor, int root)
{
    return rendezvous("pg.broadcast", rank, tensor, validateSameShape,
                      [this, root](const std::vector<Tensor>& slots) {
                          return std::vector<Tensor>(world_size_, slots[root]);
                      });
}

void
ProcessGroup::barrier()
{
    rendezvous("pg.barrier", 0 /*unused*/, Tensor::zeros({1}), nullptr,
               [this](const std::vector<Tensor>&) {
                   return std::vector<Tensor>(world_size_, Tensor::zeros({1}));
               });
}

} // namespace runtime
} // namespace slapo
