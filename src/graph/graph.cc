#include "graph/graph.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace slapo {
namespace graph {

Node*
Graph::createNode(NodeKind kind, const std::string& base_name)
{
    auto node = std::make_unique<Node>(
        kind, base_name + "_" + std::to_string(next_id_));
    node->setId(next_id_++);
    Node* raw = node.get();
    nodes_.push_back(std::move(node));
    ++version_;
    return raw;
}

Node*
Graph::createNodeBefore(NodeKind kind, const std::string& base_name,
                        Node* anchor)
{
    auto node = std::make_unique<Node>(
        kind, base_name + "_" + std::to_string(next_id_));
    node->setId(next_id_++);
    Node* raw = node.get();
    auto it = std::find_if(nodes_.begin(), nodes_.end(),
                           [&](const auto& n) { return n.get() == anchor; });
    SLAPO_ASSERT(it != nodes_.end(), "anchor node not in graph");
    nodes_.insert(it, std::move(node));
    ++version_;
    return raw;
}

std::vector<Node*>
Graph::nodes() const
{
    std::vector<Node*> out;
    out.reserve(nodes_.size());
    for (const auto& n : nodes_) {
        out.push_back(n.get());
    }
    return out;
}

std::vector<Node*>
Graph::placeholders() const
{
    std::vector<Node*> out;
    for (const auto& n : nodes_) {
        if (n->kind() == NodeKind::Placeholder) {
            out.push_back(n.get());
        }
    }
    return out;
}

std::vector<Node*>
Graph::usersOf(const Node* node) const
{
    std::vector<Node*> users;
    for (const auto& n : nodes_) {
        const auto& ins = n->inputs();
        if (std::find(ins.begin(), ins.end(), node) != ins.end()) {
            users.push_back(n.get());
        }
    }
    return users;
}

void
Graph::replaceAllUses(Node* from, Node* to)
{
    for (const auto& n : nodes_) {
        if (n.get() != to) {
            n->replaceInput(from, to);
        }
    }
    ++version_;
    eraseNode(from);
}

void
Graph::eraseNode(Node* node)
{
    SLAPO_ASSERT(usersOf(node).empty(),
                 "cannot erase node " << node->name() << " with live users");
    if (output_ == node) {
        output_ = nullptr;
    }
    nodes_.erase(std::find_if(nodes_.begin(), nodes_.end(),
                              [&](const auto& n) { return n.get() == node; }));
    ++version_;
}

void
Graph::eliminateDeadNodes()
{
    if (!output_) {
        return;
    }
    std::set<const Node*> live;
    std::vector<const Node*> stack = {output_};
    while (!stack.empty()) {
        const Node* n = stack.back();
        stack.pop_back();
        if (!live.insert(n).second) {
            continue;
        }
        for (Node* in : n->inputs()) {
            stack.push_back(in);
        }
    }
    // Keep placeholders: they define the graph's calling convention.
    for (auto it = nodes_.begin(); it != nodes_.end();) {
        if (!live.count(it->get()) &&
            (*it)->kind() != NodeKind::Placeholder) {
            it = nodes_.erase(it);
            ++version_;
        } else {
            ++it;
        }
    }
}

namespace {

/** External inputs of `body` in first-use order, and the single external
 * output node of the set. */
struct SubgraphBoundary
{
    std::vector<Node*> inputs;
    Node* output = nullptr;
};

SubgraphBoundary
analyzeBoundary(const Graph& g, const std::vector<Node*>& body)
{
    SLAPO_CHECK(!body.empty(), "subgraph rewrite: empty body");
    std::set<const Node*> in_body(body.begin(), body.end());
    SubgraphBoundary boundary;
    std::set<const Node*> seen_inputs;
    for (Node* n : body) {
        for (Node* in : n->inputs()) {
            if (!in_body.count(in) && seen_inputs.insert(in).second) {
                boundary.inputs.push_back(in);
            }
        }
    }
    for (Node* n : body) {
        for (Node* user : g.usersOf(n)) {
            if (!in_body.count(user)) {
                SLAPO_CHECK(boundary.output == nullptr || boundary.output == n,
                            "subgraph rewrite: body has multiple external "
                            "outputs (" << boundary.output->name() << " and "
                                        << n->name() << ")");
                boundary.output = n;
            }
        }
    }
    // A body feeding nothing (e.g. ending at output node) is invalid here.
    SLAPO_CHECK(boundary.output != nullptr,
                "subgraph rewrite: body has no external output");
    return boundary;
}

} // namespace

Node*
Graph::replaceSubgraph(const std::vector<Node*>& body, NodeKind kind,
                       const std::string& name)
{
    SubgraphBoundary boundary = analyzeBoundary(*this, body);
    Node* repl = createNodeBefore(kind, name, body.front());
    for (Node* in : boundary.inputs) {
        repl->addInput(in);
    }
    repl->setShapes({boundary.output->shape()});

    // Rewire external users of the body output to the replacement.
    std::set<const Node*> in_body(body.begin(), body.end());
    for (const auto& n : nodes_) {
        if (!in_body.count(n.get()) && n.get() != repl) {
            n->replaceInput(boundary.output, repl);
        }
    }
    // Erase body nodes in reverse topological order.
    for (auto it = body.rbegin(); it != body.rend(); ++it) {
        eraseNode(*it);
    }
    return repl;
}

Node*
Graph::fuseSubgraph(const std::vector<Node*>& body, const std::string& name)
{
    for (Node* n : body) {
        SLAPO_CHECK(n->kind() == NodeKind::CallOp ||
                        n->kind() == NodeKind::GetParam,
                    "fuse: body node " << n->name()
                                       << " is not a primitive op; only op-level "
                                          "subgraphs can be fused");
    }
    SubgraphBoundary boundary = analyzeBoundary(*this, body);

    // Build the inner graph: placeholders for the boundary inputs, clones
    // of the body nodes, then an output node.
    auto inner = std::make_shared<Graph>();
    std::map<const Node*, Node*> remap;
    for (Node* in : boundary.inputs) {
        Node* ph = inner->createNode(NodeKind::Placeholder, in->name());
        ph->setShapes({in->shape()});
        remap[in] = ph;
    }
    for (Node* n : body) {
        Node* c = inner->createNode(n->kind(), n->name());
        c->setOp(n->op());
        c->setTarget(n->target());
        c->setModule(n->module());
        c->setShapes(n->shapes());
        c->setProvenance(n->provenance());
        for (const auto& [k, v] : n->attrs()) {
            c->setAttr(k, v);
        }
        for (Node* in : n->inputs()) {
            auto it = remap.find(in);
            SLAPO_ASSERT(it != remap.end(), "fuse: dangling input");
            c->addInput(it->second);
        }
        remap[n] = c;
    }
    Node* out = inner->createNode(NodeKind::Output, "output");
    out->addInput(remap[boundary.output]);
    out->setShapes({boundary.output->shape()});
    inner->setOutputNode(out);

    Node* fused = replaceSubgraph(body, NodeKind::FusedOp, name);
    fused->setSubgraph(std::move(inner));
    return fused;
}

void
Graph::validate() const
{
    std::set<const Node*> seen;
    const Node* output = nullptr;
    for (const auto& n : nodes_) {
        SLAPO_CHECK(output == nullptr,
                    "graph validate: node '" << n->name()
                                             << "' appears after the output");
        for (const Node* in : n->inputs()) {
            SLAPO_CHECK(seen.count(in),
                        "graph validate: node '"
                            << n->name() << "' uses '" << in->name()
                            << "' before (or without) its definition");
        }
        SLAPO_CHECK(!n->shapes().empty() || n->kind() == NodeKind::Output,
                    "graph validate: node '" << n->name()
                                             << "' has no output shapes");
        if (n->kind() == NodeKind::Output) {
            output = n.get();
        }
        if (n->kind() == NodeKind::FusedOp) {
            SLAPO_CHECK(n->subgraph() != nullptr,
                        "graph validate: fused node '" << n->name()
                                                       << "' has no subgraph");
            n->subgraph()->validate();
        }
        seen.insert(n.get());
    }
    SLAPO_CHECK(output != nullptr, "graph validate: no output node");
    SLAPO_CHECK(output == output_,
                "graph validate: output pointer out of sync");
}

std::string
Graph::toString() const
{
    std::ostringstream os;
    for (const auto& n : nodes_) {
        os << "  " << n->toString() << "\n";
    }
    return os.str();
}

std::shared_ptr<Graph>
Graph::clone() const
{
    auto copy = std::make_shared<Graph>();
    std::map<const Node*, Node*> remap;
    for (const auto& n : nodes_) {
        Node* c = copy->createNode(n->kind(), n->name());
        c->setName(n->name()); // keep names stable across clones
        c->setOp(n->op());
        c->setTarget(n->target());
        c->setModule(n->module());
        c->setShapes(n->shapes());
        c->setCheckpointed(n->checkpointed());
        c->setProvenance(n->provenance());
        for (const auto& [k, v] : n->attrs()) {
            c->setAttr(k, v);
        }
        if (n->subgraph()) {
            c->setSubgraph(n->subgraph()->clone());
        }
        for (Node* in : n->inputs()) {
            auto it = remap.find(in);
            SLAPO_ASSERT(it != remap.end(), "clone: dangling input");
            c->addInput(it->second);
        }
        remap[n.get()] = c;
    }
    if (output_) {
        copy->setOutputNode(remap.at(output_));
    }
    return copy;
}

} // namespace graph
} // namespace slapo
