#include "graph/memplan.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string_view>

namespace slapo {
namespace graph {

namespace {

std::atomic<int> g_enabled_override{-1}; // -1 = unset, else 0/1

bool
envEnabled()
{
    static const bool resolved = [] {
        const char* env = std::getenv("SLAPO_MEMPLAN");
        if (env != nullptr) {
            const std::string_view v(env);
            if (v == "0" || v == "off" || v == "false") {
                return false;
            }
        }
        return true;
    }();
    return resolved;
}

std::string
shapeSignature(const std::vector<Shape>& input_shapes)
{
    std::ostringstream os;
    for (const Shape& s : input_shapes) {
        for (int64_t d : s) {
            os << d << "x";
        }
        os << ";";
    }
    return os.str();
}

} // namespace

bool
memPlanEnabled()
{
    const int forced = g_enabled_override.load(std::memory_order_relaxed);
    if (forced >= 0) {
        return forced != 0;
    }
    return envEnabled();
}

void
setMemPlanEnabled(bool enabled)
{
    g_enabled_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool
inplaceEligible(OpKind op)
{
    switch (op) {
      // Elementwise maps: per-element arithmetic is index-local, so
      // writing over the input is bit-identical to a fresh output.
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div:
      case OpKind::Scale:
      case OpKind::AddScalar:
      case OpKind::Gelu:
      case OpKind::Relu:
      case OpKind::Tanh:
      case OpKind::Clamp:
      case OpKind::RangeMask:
      case OpKind::CausalMask:
      // Row-local: softmax reads each element before overwriting it
      // within a sequential per-row pass.
      case OpKind::Softmax:
        return true;
      default:
        return false;
    }
}

std::shared_ptr<const MemPlan>
buildMemPlan(const Graph& g, const std::vector<Shape>& input_shapes)
{
    (void)input_shapes; // liveness and eligibility are structural; the
                        // signature only partitions the cache.
    auto plan = std::make_shared<MemPlan>();
    plan->graph_version = g.version();
    plan->actions.resize(static_cast<size_t>(g.idBound()));

    const std::vector<Node*> nodes = g.nodes();

    // Last use of each producer, as a position in program order. A node
    // with no users "dies" at its own position (dead code still executes;
    // its value is dropped immediately).
    std::vector<int64_t> last_use(static_cast<size_t>(g.idBound()), -1);
    for (size_t pos = 0; pos < nodes.size(); ++pos) {
        const Node* n = nodes[pos];
        if (n->id() >= 0) {
            last_use[n->id()] = static_cast<int64_t>(pos);
        }
        for (const Node* in : n->inputs()) {
            last_use[in->id()] = static_cast<int64_t>(pos);
        }
    }

    const Node* output = g.outputNode();
    for (size_t pos = 0; pos < nodes.size(); ++pos) {
        const Node* n = nodes[pos];
        if (n == output) {
            continue; // outputs are returned, never released
        }
        // Collect producers whose last use is this position. The output
        // node's operands are excluded above because their last_use is
        // the output's position, not an interior one.
        for (const Node* in : n->inputs()) {
            if (last_use[in->id()] == static_cast<int64_t>(pos) &&
                nodes[last_use[in->id()]] != output) {
                auto& ra = plan->actions[n->id()].release_after;
                if (std::find(ra.begin(), ra.end(), in->id()) == ra.end()) {
                    ra.push_back(in->id());
                }
            }
        }
        // Unused values die right after their own execution.
        if (last_use[n->id()] == static_cast<int64_t>(pos)) {
            plan->actions[n->id()].release_after.push_back(n->id());
        }

        // In-place eligibility: elementwise CallOp whose first input
        //  - dies at this node (so the move below is its last read),
        //  - appears exactly once in the input list (add(x, x) must not
        //    move x out from under its second read),
        //  - has a single output and the same declared shape as ours.
        if (n->kind() != NodeKind::CallOp || n->inputs().empty() ||
            !inplaceEligible(n->op())) {
            continue;
        }
        const Node* src = n->inputs()[0];
        const bool sole_use =
            std::count(n->inputs().begin(), n->inputs().end(), src) == 1;
        bool shapes_ok = src->numOutputs() == 1 && !n->shapes().empty() &&
                         n->shape() == src->shape();
        // Binary elementwise: in-place only without broadcasting.
        if (shapes_ok && n->inputs().size() > 1) {
            for (size_t i = 1; i < n->inputs().size(); ++i) {
                shapes_ok &= n->inputs()[i]->numOutputs() == 1 &&
                             n->inputs()[i]->shape() == n->shape();
            }
        }
        if (sole_use && shapes_ok &&
            last_use[src->id()] == static_cast<int64_t>(pos)) {
            plan->actions[n->id()].inplace = true;
        }
    }
    for (const MemPlan::NodeActions& act : plan->actions) {
        plan->release_count +=
            static_cast<int64_t>(act.release_after.size());
        plan->inplace_count += act.inplace ? 1 : 0;
    }
    return plan;
}

std::shared_ptr<const MemPlan>
memPlanFor(const Graph& g, const std::vector<Shape>& input_shapes)
{
    MemPlanCache& cache = g.memPlanCache();
    const std::string sig = shapeSignature(input_shapes);
    {
        std::lock_guard<std::mutex> lock(cache.mu);
        if (cache.version == g.version()) {
            auto it = cache.plans.find(sig);
            if (it != cache.plans.end()) {
                return it->second;
            }
        }
    }
    std::shared_ptr<const MemPlan> plan = buildMemPlan(g, input_shapes);
    {
        std::lock_guard<std::mutex> lock(cache.mu);
        if (cache.version != g.version()) {
            // Schedule mutation since the entries were built (or first
            // fill): drop the stale generation.
            cache.plans.clear();
            cache.version = g.version();
        }
        cache.plans[sig] = plan;
    }
    return plan;
}

} // namespace graph
} // namespace slapo
