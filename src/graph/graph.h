/**
 * @file
 * Container for the static graph IR (see node.h) plus the structural
 * rewrites the schedule primitives need: node insertion relative to an
 * anchor, subgraph replacement (for `.replace(new_mod, subgraph)`), and
 * subgraph fusion (for `.fuse(compiler, subgraph)`).
 */
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/node.h"

namespace slapo {
namespace graph {

struct MemPlan; // liveness/buffer-reuse plan; defined in memplan.h

/**
 * Per-graph cache of memory plans (memplan.h), keyed by input-shape
 * signature and invalidated wholesale when the owning graph's version
 * changes. Lives inside Graph so plan lifetime tracks graph lifetime.
 */
struct MemPlanCache
{
    std::mutex mu;
    uint64_t version = ~uint64_t{0}; ///< graph version the entries reflect
    std::map<std::string, std::shared_ptr<const MemPlan>> plans;
};

/**
 * A static dataflow graph: an ordered list of nodes in topological
 * (construction) order. The graph owns its nodes; all Node* handed out
 * remain valid until the node is erased.
 */
class Graph
{
  public:
    Graph() = default;
    Graph(const Graph&) = delete;
    Graph& operator=(const Graph&) = delete;

    /** Append a new node with a unique name derived from `base_name`. */
    Node* createNode(NodeKind kind, const std::string& base_name);

    /** Insert a new node immediately before `anchor` in program order. */
    Node* createNodeBefore(NodeKind kind, const std::string& base_name,
                           Node* anchor);

    /** All nodes in topological order. */
    std::vector<Node*> nodes() const;

    /** Placeholder (input) nodes in declaration order. */
    std::vector<Node*> placeholders() const;

    /** The unique Output node (null until sealed). */
    Node* outputNode() const { return output_; }
    void
    setOutputNode(Node* node)
    {
        output_ = node;
        ++version_;
    }

    /** Users of `node` within this graph. */
    std::vector<Node*> usersOf(const Node* node) const;

    /**
     * Redirect every use of `from` to `to` (excluding `to` itself), then
     * erase `from`. `from` must not be the output node.
     */
    void replaceAllUses(Node* from, Node* to);

    /** Erase a node with no users. */
    void eraseNode(Node* node);

    /** Remove all nodes that no longer (transitively) feed the output. */
    void eliminateDeadNodes();

    /**
     * Replace a connected set of nodes with a single replacement node.
     * `body` is given in topological order; external inputs of the set
     * become the replacement's inputs (in first-use order) and the set's
     * sole external output is rewired to the replacement. Used by both
     * fusion and partial-computation replacement.
     *
     * @return the replacement node (already inserted before the first
     *         body node), with its inputs and shape populated.
     */
    Node* replaceSubgraph(const std::vector<Node*>& body, NodeKind kind,
                          const std::string& name);

    /**
     * Fuse `body` into a single FusedOp node whose subgraph re-expresses
     * the body over placeholder inputs, so the fused kernel stays
     * numerically executable and cost-model analyzable.
     */
    Node* fuseSubgraph(const std::vector<Node*>& body, const std::string& name);

    /** Number of live nodes. */
    size_t size() const { return nodes_.size(); }

    /**
     * Exclusive upper bound on node ids in this graph: every live node
     * has 0 <= id() < idBound(). Sized for dense per-node executor state.
     */
    int64_t idBound() const { return next_id_; }

    /**
     * Structure version: bumped by every mutation (node creation/erasure,
     * output rewiring, subgraph rewrites). Cached analyses — notably the
     * memory planner's buffer-reuse plan — key on this and rebuild when a
     * schedule primitive touches the graph.
     */
    uint64_t version() const { return version_; }

    /** Memory-plan cache slot for this graph (used by memplan.cc). */
    MemPlanCache& memPlanCache() const { return plan_cache_; }

    /** Multi-line textual dump (fx-style) for debugging and tests. */
    std::string toString() const;

    /**
     * Structural well-formedness check: inputs precede their users in
     * program order, all inputs belong to this graph, a single Output
     * node exists and is last, and every node has its expected shape
     * count. Used by the verifier's pre-flight stage and after graph
     * rewrites in tests.
     *
     * @throws SlapoError describing the first violation.
     */
    void validate() const;

    /** Deep-copy this graph; module pointers are shared, nodes are cloned. */
    std::shared_ptr<Graph> clone() const;

  private:
    std::vector<std::unique_ptr<Node>> nodes_;
    Node* output_ = nullptr;
    int64_t next_id_ = 0;
    uint64_t version_ = 0;
    mutable MemPlanCache plan_cache_;
};

} // namespace graph
} // namespace slapo
