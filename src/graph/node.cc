#include "graph/node.h"

#include <algorithm>
#include <sstream>

namespace slapo {
namespace graph {

const char*
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Add: return "add";
      case OpKind::Sub: return "sub";
      case OpKind::Mul: return "mul";
      case OpKind::Div: return "div";
      case OpKind::Scale: return "scale";
      case OpKind::AddScalar: return "add_scalar";
      case OpKind::Gelu: return "gelu";
      case OpKind::Relu: return "relu";
      case OpKind::Tanh: return "tanh";
      case OpKind::Clamp: return "clamp";
      case OpKind::RangeMask: return "range_mask";
      case OpKind::CausalMask: return "causal_mask";
      case OpKind::RelPosBias: return "rel_pos_bias";
      case OpKind::Softmax: return "softmax";
      case OpKind::LayerNormOp: return "layer_norm";
      case OpKind::Dropout: return "dropout";
      case OpKind::Matmul: return "matmul";
      case OpKind::LinearOp: return "linear";
      case OpKind::TransposeLast2: return "transpose";
      case OpKind::Reshape: return "reshape";
      case OpKind::Permute: return "permute";
      case OpKind::Concat: return "concat";
      case OpKind::Narrow: return "narrow";
      case OpKind::EmbeddingOp: return "embedding";
      case OpKind::CrossEntropyOp: return "cross_entropy";
      case OpKind::MseLossOp: return "mse_loss";
      case OpKind::Conv2dOp: return "conv2d";
      case OpKind::BatchNormOp: return "batch_norm";
      case OpKind::GlobalAvgPoolOp: return "global_avg_pool";
      case OpKind::AllReduce: return "all_reduce";
      case OpKind::AllGather: return "all_gather";
      case OpKind::ReduceScatter: return "reduce_scatter";
      case OpKind::Identity: return "identity";
    }
    return "unknown";
}

void
Node::replaceInput(Node* from, Node* to)
{
    for (Node*& in : inputs_) {
        if (in == from) {
            in = to;
        }
    }
}

const Shape&
Node::shape(size_t i) const
{
    SLAPO_ASSERT(i < shapes_.size(),
                 "node " << name_ << " has no output " << i);
    return shapes_[i];
}

int64_t
Node::attrInt(const std::string& key) const
{
    auto it = attrs_.find(key);
    SLAPO_CHECK(it != attrs_.end(), "node " << name_ << ": missing attr " << key);
    if (const auto* v = std::get_if<int64_t>(&it->second)) return *v;
    return static_cast<int64_t>(std::get<double>(it->second));
}

double
Node::attrFloat(const std::string& key) const
{
    auto it = attrs_.find(key);
    SLAPO_CHECK(it != attrs_.end(), "node " << name_ << ": missing attr " << key);
    if (const auto* v = std::get_if<double>(&it->second)) return *v;
    return static_cast<double>(std::get<int64_t>(it->second));
}

const std::string&
Node::attrStr(const std::string& key) const
{
    auto it = attrs_.find(key);
    SLAPO_CHECK(it != attrs_.end(), "node " << name_ << ": missing attr " << key);
    return std::get<std::string>(it->second);
}

const std::vector<int64_t>&
Node::attrInts(const std::string& key) const
{
    auto it = attrs_.find(key);
    SLAPO_CHECK(it != attrs_.end(), "node " << name_ << ": missing attr " << key);
    return std::get<std::vector<int64_t>>(it->second);
}

std::string
Node::signature() const
{
    switch (kind_) {
      case NodeKind::CallOp:
        return opKindName(op_);
      case NodeKind::CallModule:
        return target_;
      case NodeKind::Placeholder:
        return "placeholder";
      case NodeKind::GetParam:
        return "get_param";
      case NodeKind::FusedOp:
        return "fused";
      case NodeKind::TupleGet:
        return "tuple_get";
      case NodeKind::Output:
        return "output";
    }
    return "?";
}

std::string
Node::toString() const
{
    std::ostringstream os;
    os << "%" << name_ << " = ";
    switch (kind_) {
      case NodeKind::Placeholder: os << "placeholder"; break;
      case NodeKind::GetParam: os << "get_param[" << target_ << "]"; break;
      case NodeKind::CallOp: os << "call_op[" << opKindName(op_) << "]"; break;
      case NodeKind::CallModule: os << "call_module[" << target_ << "]"; break;
      case NodeKind::FusedOp: os << "fused_op"; break;
      case NodeKind::TupleGet: os << "tuple_get[" << attrInt("index") << "]"; break;
      case NodeKind::Output: os << "output"; break;
    }
    os << "(";
    for (size_t i = 0; i < inputs_.size(); ++i) {
        if (i) os << ", ";
        os << "%" << inputs_[i]->name();
    }
    os << ")";
    if (!shapes_.empty()) {
        os << " : ";
        for (size_t i = 0; i < shapes_.size(); ++i) {
            if (i) os << ", ";
            os << shapeToString(shapes_[i]);
        }
    }
    if (checkpointed_) os << " [ckpt]";
    return os.str();
}

} // namespace graph
} // namespace slapo
