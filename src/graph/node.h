/**
 * @file
 * Nodes of the slapo-cc static graph IR.
 *
 * The IR mirrors torch.fx's design (§4 of the paper): a small instruction
 * set — placeholder / get_param / call_op / call_module / tuple_get /
 * output — over a flat, topologically-ordered node list. Unlike stock
 * torch.fx (which flattens the model), graphs here are *hierarchical*:
 * a CallModule node keeps a reference to the live module, which may carry
 * its own traced sub-graph, preserving the model structure the schedule
 * language navigates.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "tensor/tensor.h"

namespace slapo {

namespace nn {
class Module; // graph IR only holds references; defined in nn/module.h
} // namespace nn

namespace graph {

/** Primitive tensor operations representable as CallOp nodes. */
enum class OpKind
{
    // elementwise / broadcast
    Add,
    Sub,
    Mul,
    Div,
    Scale,      // attr "factor"
    AddScalar,  // attr "value"
    Gelu,
    Relu,
    Tanh,
    Clamp,     // attrs "lo", "hi"
    RangeMask, // attrs "lo", "hi"
    CausalMask,
    RelPosBias, // inputs: scores, table

    // reductions / normalization
    Softmax,
    LayerNormOp, // inputs: x, gamma, beta; attr "eps"
    // regularization
    Dropout, // attrs "p", "seed"
    // linear algebra
    Matmul,
    LinearOp, // inputs: x, weight[, bias]
    TransposeLast2,
    Reshape, // attr "shape"
    Permute, // attr "perm"
    Concat,  // attr "axis"
    Narrow,  // attrs "axis", "start", "length"
    // lookup / loss
    EmbeddingOp, // inputs: ids, table
    CrossEntropyOp,
    MseLossOp,
    // vision
    Conv2dOp,    // inputs: x, w; attrs "stride", "pad"
    BatchNormOp, // inputs: x, gamma, beta; attr "eps"
    GlobalAvgPoolOp,
    // collectives inserted by .sync() — executed by the distributed runtime
    AllReduce,     // attr "group" (unused placeholder), sums across ranks
    AllGather,     // attr "axis"
    ReduceScatter, // attr "axis"
    Identity,
};

/** Human-readable op name (used by pattern regexes and dumps). */
const char* opKindName(OpKind kind);

/** Node categories of the IR. */
enum class NodeKind
{
    Placeholder, // graph input; attr-free, named
    GetParam,    // parameter of `module` named `target`
    CallOp,      // primitive op on value inputs
    CallModule,  // invoke a (possibly untraced) submodule
    FusedOp,     // a fused kernel holding a sub-graph of CallOps
    TupleGet,    // select output `index` of a multi-output producer
    Output,      // graph result(s): inputs are the returned values
};

/** Attribute value attached to a node. */
using Attr = std::variant<int64_t, double, std::string, std::vector<int64_t>>;

/**
 * Which schedule decision produced a node. Stamped by the schedule
 * primitives that create or rewrite graph nodes (.fuse(), .replace(),
 * .checkpoint(subgraph), …) and preserved across every graph mutation —
 * clone(), fuseSubgraph(), replaceSubgraph() — so a rewritten node still
 * answers "which primitive is responsible for this kernel" at execution
 * time (docs/OBSERVABILITY.md, "Attribution & step reports"). An empty
 * `primitive` means the node is untouched baseline computation.
 */
struct Provenance
{
    std::string primitive;   ///< "fuse", "replace", "checkpoint", … ("" = baseline)
    std::string module_path; ///< schedule path the primitive was applied at
    int64_t apply_seq = -1;  ///< process-wide application order (obs/provenance.h)
};

class Graph;

/**
 * One IR instruction. Nodes are owned by their Graph; inputs are
 * non-owning pointers to earlier nodes in the same graph.
 */
class Node
{
  public:
    Node(NodeKind kind, std::string name) : kind_(kind), name_(std::move(name)) {}

    NodeKind kind() const { return kind_; }
    const std::string& name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /**
     * Graph-unique dense id, assigned at creation and stable for the
     * node's lifetime. Executors index per-node state with flat vectors
     * sized by Graph::idBound() instead of std::map lookups.
     */
    int64_t id() const { return id_; }
    void setId(int64_t id) { id_ = id; }

    /** CallOp only: the primitive operation. */
    OpKind op() const { return op_; }
    void setOp(OpKind op) { op_ = op; }

    /**
     * CallModule/GetParam: dotted path of the target relative to the graph
     * owner (e.g. "attention.self.query" or parameter name "weight").
     */
    const std::string& target() const { return target_; }
    void setTarget(std::string target) { target_ = std::move(target); }

    /** CallModule/GetParam: the live module the node refers to. */
    nn::Module* module() const { return module_; }
    void setModule(nn::Module* module) { module_ = module; }

    const std::vector<Node*>& inputs() const { return inputs_; }
    std::vector<Node*>& inputs() { return inputs_; }
    void addInput(Node* node) { inputs_.push_back(node); }

    /** Replace every occurrence of `from` in inputs with `to`. */
    void replaceInput(Node* from, Node* to);

    /** Output shape(s). Most nodes have exactly one. */
    const std::vector<Shape>& shapes() const { return shapes_; }
    void setShapes(std::vector<Shape> shapes) { shapes_ = std::move(shapes); }
    const Shape& shape(size_t i = 0) const;
    int64_t numOutputs() const { return static_cast<int64_t>(shapes_.size()); }

    // Attributes.
    void setAttr(const std::string& key, Attr value) { attrs_[key] = std::move(value); }
    bool hasAttr(const std::string& key) const { return attrs_.count(key) > 0; }
    int64_t attrInt(const std::string& key) const;
    double attrFloat(const std::string& key) const;
    const std::string& attrStr(const std::string& key) const;
    const std::vector<int64_t>& attrInts(const std::string& key) const;
    const std::map<std::string, Attr>& attrs() const { return attrs_; }

    /** FusedOp only: the encapsulated sub-graph of primitive ops. */
    Graph* subgraph() const { return subgraph_.get(); }
    void setSubgraph(std::shared_ptr<Graph> g) { subgraph_ = std::move(g); }

    /**
     * Scheduling flag: this node's activation is checkpointed (recomputed
     * in backward). Set by the `.checkpoint(subgraph)` primitive.
     */
    bool checkpointed() const { return checkpointed_; }
    void setCheckpointed(bool v) { checkpointed_ = v; }

    /**
     * The schedule decision responsible for this node; baseline (empty
     * primitive) unless a primitive stamped it.
     */
    const Provenance& provenance() const { return provenance_; }
    void setProvenance(Provenance p) { provenance_ = std::move(p); }
    bool hasProvenance() const { return !provenance_.primitive.empty(); }

    /**
     * A short signature used by the pattern matcher and dumps: the op name
     * for CallOp, the module type for CallModule, the kind otherwise.
     */
    std::string signature() const;

    std::string toString() const;

  private:
    NodeKind kind_;
    std::string name_;
    int64_t id_ = -1;
    OpKind op_ = OpKind::Identity;
    std::string target_;
    nn::Module* module_ = nullptr;
    std::vector<Node*> inputs_;
    std::vector<Shape> shapes_;
    std::map<std::string, Attr> attrs_;
    std::shared_ptr<Graph> subgraph_;
    bool checkpointed_ = false;
    Provenance provenance_;
};

} // namespace graph
} // namespace slapo
