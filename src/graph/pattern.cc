#include "graph/pattern.h"

#include <algorithm>
#include <map>
#include <regex>
#include <set>

namespace slapo {
namespace graph {

std::string
matchSignature(const Node& node)
{
    switch (node.kind()) {
      case NodeKind::CallOp:
        return opKindName(node.op());
      case NodeKind::CallModule:
        return node.hasAttr("type") ? node.attrStr("type") : node.target();
      case NodeKind::FusedOp:
        return "fused";
      case NodeKind::Placeholder:
        return "placeholder";
      case NodeKind::GetParam:
        return "get_param";
      case NodeKind::TupleGet:
        return "tuple_get";
      case NodeKind::Output:
        return "output";
    }
    return "?";
}

Pattern
Pattern::chain(const std::vector<std::string>& signatures)
{
    Pattern p;
    for (size_t i = 0; i < signatures.size(); ++i) {
        PatternNode n;
        n.signature = signatures[i];
        n.inputs.push_back(i == 0 ? -1 : static_cast<int>(i - 1));
        p.nodes.push_back(std::move(n));
    }
    return p;
}

namespace {

/** Try to complete an embedding starting from pattern node `pi`. */
bool
tryMatch(const Graph& g, const Pattern& pattern, size_t pi,
         std::vector<Node*>& assignment, std::set<Node*>& used)
{
    if (pi == pattern.nodes.size()) {
        // Every non-output pattern node's match must have all users inside
        // the match (otherwise extraction would duplicate computation).
        for (size_t i = 0; i + 1 < assignment.size(); ++i) {
            for (Node* user : g.usersOf(assignment[i])) {
                if (!used.count(user)) {
                    return false;
                }
            }
        }
        return true;
    }

    const PatternNode& pn = pattern.nodes[pi];
    for (Node* candidate : g.nodes()) {
        if (used.count(candidate)) continue;
        if (matchSignature(*candidate) != pn.signature) continue;

        // Structural check: pattern inputs that point at earlier pattern
        // nodes must correspond to the candidate's inputs.
        if (!pn.inputs.empty() &&
            candidate->inputs().size() < pn.inputs.size()) {
            continue;
        }
        bool ok = true;
        for (size_t k = 0; k < pn.inputs.size(); ++k) {
            const int ref = pn.inputs[k];
            if (ref < 0) continue; // wildcard
            // The referenced assignment must appear among candidate inputs.
            const auto& ins = candidate->inputs();
            if (std::find(ins.begin(), ins.end(), assignment[ref]) ==
                ins.end()) {
                ok = false;
                break;
            }
        }
        if (!ok) continue;

        assignment.push_back(candidate);
        used.insert(candidate);
        if (tryMatch(g, pattern, pi + 1, assignment, used)) {
            return true;
        }
        used.erase(candidate);
        assignment.pop_back();
    }
    return false;
}

} // namespace

std::vector<Match>
findPattern(const Graph& g, const Pattern& pattern, bool non_overlapping)
{
    SLAPO_CHECK(!pattern.nodes.empty(), "findPattern: empty pattern");
    std::vector<Match> matches;
    std::set<Node*> claimed;

    for (Node* anchor : g.nodes()) {
        if (matchSignature(*anchor) != pattern.nodes.front().signature) {
            continue;
        }
        if (claimed.count(anchor)) continue;

        std::vector<Node*> assignment = {anchor};
        std::set<Node*> used = {anchor};
        if (tryMatch(g, pattern, 1, assignment, used)) {
            bool overlaps = false;
            if (non_overlapping) {
                for (Node* n : assignment) {
                    if (claimed.count(n)) {
                        overlaps = true;
                        break;
                    }
                }
            }
            if (!overlaps) {
                if (non_overlapping) {
                    claimed.insert(assignment.begin(), assignment.end());
                }
                matches.push_back(std::move(assignment));
            }
        }
    }
    return matches;
}

std::vector<Match>
findByRegex(const Graph& g, const std::string& regex)
{
    const std::regex re(regex);
    std::vector<Match> matches;
    for (Node* n : g.nodes()) {
        if (n->kind() == NodeKind::Output ||
            n->kind() == NodeKind::Placeholder) {
            continue;
        }
        if (std::regex_search(n->name(), re) ||
            std::regex_search(matchSignature(*n), re) ||
            (!n->target().empty() && std::regex_search(n->target(), re))) {
            matches.push_back({n});
        }
    }
    return matches;
}

} // namespace graph
} // namespace slapo
