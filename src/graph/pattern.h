/**
 * @file
 * Subgraph pattern matching backing the `.find()` schedule primitive.
 *
 * The paper (§3.3.1) supports two query forms: a regular expression over
 * node names/signatures, and a "function with an identical subgraph" —
 * here a declarative Pattern describing a small dataflow DAG. Matching is
 * anchored subgraph isomorphism with backtracking; matches are returned
 * in program order and can be requested non-overlapping so repetitive
 * transformer layers are all captured at once.
 */
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace slapo {
namespace graph {

/**
 * Matching signature of a node: the op name for CallOp ("add",
 * "layer_norm", ...), the module type for CallModule (set by the tracer
 * as attr "type", e.g. "Linear"), the node kind otherwise.
 */
std::string matchSignature(const Node& node);

/** One node of a pattern DAG. */
struct PatternNode
{
    /** Required matching signature (see matchSignature). */
    std::string signature;
    /**
     * Indices into the pattern's node list for each input; -1 denotes a
     * wildcard input (matches any producer, treated as external).
     */
    std::vector<int> inputs;
};

/**
 * A pattern: nodes in topological order; the last node is the pattern
 * output (the only node whose match may have users outside the match).
 */
struct Pattern
{
    std::vector<PatternNode> nodes;

    /** Convenience: a straight-line chain of signatures, each consuming
     * the previous one (first consumes a wildcard). */
    static Pattern chain(const std::vector<std::string>& signatures);
};

/** A successful embedding: graph nodes in pattern-node order. */
using Match = std::vector<Node*>;

/**
 * Find embeddings of `pattern` in `g`.
 *
 * @param non_overlapping when true (default), later matches sharing any
 *        node with an earlier match are discarded — the behaviour
 *        `.find()` needs to schedule all N identical layers exactly once.
 */
std::vector<Match> findPattern(const Graph& g, const Pattern& pattern,
                               bool non_overlapping = true);

/**
 * Find single-node matches whose signature or node name matches the ECMA
 * regular expression `regex` (the `.find("regex")` form).
 */
std::vector<Match> findByRegex(const Graph& g, const std::string& regex);

} // namespace graph
} // namespace slapo
