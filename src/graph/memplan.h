/**
 * @file
 * Static memory planner for graph execution.
 *
 * A liveness pass over a traced graph produces a per-node plan the
 * executors consult on the hot path:
 *  - `release_after`: environment entries whose producing node saw its
 *    last use at this node — the executor drops them immediately, so a
 *    value's storage returns to the caching allocator (tensor/alloc.h)
 *    as soon as dataflow allows instead of at end of graph;
 *  - `inplace`: this CallOp is an elementwise/row-local op whose output
 *    matches input 0's shape and whose input 0 dies here, so the kernel
 *    may overwrite input 0's buffer in place. The executor still guards
 *    with a runtime storage-unique check (Tensor::storageUseCount), so
 *    aliases — reshape views, caller-held inputs, parameters — are
 *    never mutated; when the guard fails the op simply runs
 *    out-of-place.
 *
 * Plans are cached inside the Graph (Graph::memPlanCache), keyed by the
 * input-shape signature and invalidated when a schedule primitive
 * mutates the graph (Graph::version). `SLAPO_MEMPLAN=0` (or `off`)
 * disables planning globally; results are bit-identical either way —
 * in-place kernels run the exact same per-element arithmetic as their
 * out-of-place twins.
 */
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.h"

namespace slapo {
namespace graph {

/** Per-node executor actions computed by the liveness pass. */
struct MemPlan
{
    struct NodeActions
    {
        /** Node ids whose env entry dies once this node has executed. */
        std::vector<int64_t> release_after;
        /** Output may reuse input 0's storage (see file comment). */
        bool inplace = false;
    };

    /** Dense, indexed by node id (size == Graph::idBound() at build). */
    std::vector<NodeActions> actions;

    /** Graph::version() this plan was built against. */
    uint64_t graph_version = 0;

    /** Total mid-graph release points (Σ |release_after|) — how many env
     * entries the plan returns to the pool before end of graph. Summary
     * statistic for trace/report consumers (obs/mem_profiler.h). */
    int64_t release_count = 0;

    /** Nodes marked for in-place reuse of input 0's storage. */
    int64_t inplace_count = 0;

    const NodeActions*
    at(int64_t node_id) const
    {
        if (node_id < 0 || node_id >= static_cast<int64_t>(actions.size())) {
            return nullptr;
        }
        return &actions[node_id];
    }
};

/** Planner enablement: SLAPO_MEMPLAN env (default on) unless overridden. */
bool memPlanEnabled();

/** Programmatic override of SLAPO_MEMPLAN (tests; thread-safe). */
void setMemPlanEnabled(bool enabled);

/** True if `op` has an in-place twin the executor can dispatch to. */
bool inplaceEligible(OpKind op);

/** Build a plan for `g` (uncached). `input_shapes` are the runtime
 * placeholder shapes; statically ineligible nodes are never marked
 * in-place, the executor re-guards the rest. */
std::shared_ptr<const MemPlan>
buildMemPlan(const Graph& g, const std::vector<Shape>& input_shapes);

/** Cached lookup: serves from Graph::memPlanCache when the graph version
 * and input-shape signature match, rebuilding otherwise. */
std::shared_ptr<const MemPlan>
memPlanFor(const Graph& g, const std::vector<Shape>& input_shapes);

} // namespace graph
} // namespace slapo
