#include "tensor/optim.h"

#include <cmath>

#include "obs/mem_profiler.h"

namespace slapo {

size_t
AdamW::addParam(Tensor param)
{
    SLAPO_CHECK(param.materialized(), "AdamW: cannot optimize meta tensors");
    params_.push_back(param);
    obs::MemCategoryScope mem_cat(obs::MemCategory::OptimizerState);
    m_.push_back(Tensor::zeros(param.shape()));
    v_.push_back(Tensor::zeros(param.shape()));
    return params_.size() - 1;
}

void
AdamW::step(const std::vector<Tensor>& grads)
{
    SLAPO_CHECK(grads.size() == params_.size(),
                "AdamW: expected " << params_.size() << " gradients, got "
                                   << grads.size());
    ++step_count_;
    const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(step_count_));
    const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(step_count_));

    for (size_t i = 0; i < params_.size(); ++i) {
        Tensor& p = params_[i];
        const Tensor& g = grads[i];
        SLAPO_CHECK(g.shape() == p.shape(),
                    "AdamW: gradient shape mismatch at param " << i);
        float* pp = p.data();
        const float* pg = g.data();
        float* pm = m_[i].data();
        float* pv = v_[i].data();
        for (int64_t j = 0; j < p.numel(); ++j) {
            pm[j] = config_.beta1 * pm[j] + (1.0f - config_.beta1) * pg[j];
            pv[j] = config_.beta2 * pv[j] + (1.0f - config_.beta2) * pg[j] * pg[j];
            const float m_hat = pm[j] / bc1;
            const float v_hat = pv[j] / bc2;
            pp[j] -= config_.lr *
                     (m_hat / (std::sqrt(v_hat) + config_.eps) +
                      config_.weight_decay * pp[j]);
        }
    }
}

} // namespace slapo
