/**
 * @file
 * Caching size-class allocator for tensor storage (docs/PERFORMANCE.md).
 *
 * Every materialized Tensor draws its element buffer from here. In the
 * default `pool` mode, freed buffers are parked on per-size-class free
 * lists instead of going back to the heap, so a steady-state training
 * step — which allocates and frees the same set of intermediate shapes
 * every iteration — performs zero heap allocations after the first
 * (warm-up) step. `SLAPO_ALLOC=malloc` (or setMode) restores plain
 * heap alloc/free as an escape hatch and as the A/B baseline the
 * allocator tests and benches compare against.
 *
 * Requests are rounded up to a size class: powers of two in elements,
 * with a minimum class of 64 elements (256 B). The rounded capacity is
 * what the obs byte counters account, so alloc/live/peak stay exact
 * with respect to real memory held. Free lists are guarded by one mutex
 * per size class; the numeric kernels allocate from the main thread and
 * the DistExecutor / pipeline rank threads, never from inside
 * parallelFor chunks, so contention is negligible.
 *
 * Observability (obs/metrics.h):
 *   alloc.pool_hits    requests served from a free list
 *   alloc.pool_misses  requests that had to touch the heap
 *   alloc.reuse_bytes  cumulative bytes served from free lists
 *   alloc.pooled_bytes bytes currently parked on free lists (gauge+peak)
 */
#pragma once

#include <cstdint>

#include "obs/mem_profiler.h"

namespace slapo {
namespace alloc {

/** Allocation backend selection. */
enum class Mode
{
    Pool,   ///< size-class free lists (default)
    Malloc, ///< plain heap allocation (SLAPO_ALLOC=malloc)
};

/** Effective mode: setMode() override, else SLAPO_ALLOC, else Pool. */
Mode mode();

/**
 * Programmatic override (tests, benches). Switching away from Pool
 * drains the free lists so held memory is returned to the heap.
 */
void setMode(Mode m);

/** Smallest capacity (in floats) any request is rounded up to. */
constexpr int64_t kMinClassElems = 64;

/** Size-class capacity for a request of `numel` floats: the smallest
 * power of two >= max(numel, kMinClassElems). */
int64_t sizeClassFor(int64_t numel);

/**
 * Acquire a buffer of at least `numel` floats. The contents are
 * UNINITIALIZED (possibly stale data from a previous tensor) — callers
 * that need zeros must clear it. Returns the buffer and writes the
 * rounded size-class capacity (in floats) to `capacity_out`; that
 * capacity must be passed back to release().
 */
float* acquire(int64_t numel, int64_t* capacity_out);

/** Return a buffer obtained from acquire(). In pool mode it is parked
 * on the matching free list; in malloc mode it is freed. */
void release(float* data, int64_t capacity);

/** Drain every free list back to the heap (tests / memory trim).
 * Buffers currently owned by live tensors are unaffected. */
void clearPool();

/** Bytes currently parked on the free lists. */
int64_t pooledBytes();

/**
 * RAII scratch buffer for kernel-internal temporaries (transpose packs,
 * partial-sum arrays) that previously went through std::vector: drawn
 * from the same pool, so steady-state kernels stop hitting the heap for
 * scratch too. Not zero-initialized.
 */
class Scratch
{
  public:
    explicit Scratch(int64_t numel)
    {
        data_ = acquire(numel, &capacity_);
        // Scratch bypasses TensorStorage, so it carries its own memory
        // profiler hook (category `scratch`; never throws — a budget
        // throw out of a kernel temporary would leak the buffer).
        if (obs::memProfilingEnabled()) {
            obs::memRecordScratch(
                data_, capacity_ * static_cast<int64_t>(sizeof(float)));
        }
    }

    ~Scratch()
    {
        if (obs::memProfilingEnabled()) {
            obs::memRecordFree(data_);
        }
        release(data_, capacity_);
    }
    Scratch(const Scratch&) = delete;
    Scratch& operator=(const Scratch&) = delete;

    float* data() { return data_; }
    const float* data() const { return data_; }

  private:
    float* data_ = nullptr;
    int64_t capacity_ = 0;
};

} // namespace alloc
} // namespace slapo
