#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/mem_profiler.h"
#include "obs/metrics.h"
#include "support/parallel.h"
#include "tensor/alloc.h"

namespace slapo {

namespace detail {

/**
 * Element buffer of a materialized tensor, drawn from the caching
 * size-class allocator (tensor/alloc.h). Construction and destruction
 * carry the byte accounting: cumulative allocated bytes, live bytes,
 * and the live high watermark feed the obs metrics registry (a couple
 * of relaxed atomic adds — noise next to the allocation itself). The
 * destructor observes the free, so live_bytes tracks exactly the
 * storage still reachable from tensors; bytes parked on the pool's
 * free lists are accounted separately (alloc.pooled_bytes).
 */
class TensorStorage
{
  public:
    explicit TensorStorage(int64_t numel)
    {
        data_ = alloc::acquire(numel, &capacity_);
        const int64_t bytes = capacity_ * static_cast<int64_t>(sizeof(float));
        obs::metrics().tensor_allocated_bytes.add(bytes);
        obs::metrics().tensor_live_bytes.add(bytes);
        // Memory profiler hook (one relaxed atomic load when disabled).
        // `this` is the registry key — the same identity storageKey()
        // exposes. A budget crossing under action `throw` raises here;
        // roll the accounting back so the buffer is not leaked (the
        // destructor of a throwing constructor never runs).
        if (obs::memProfilingEnabled()) {
            try {
                obs::memRecordAlloc(this, bytes);
            } catch (...) {
                obs::metrics().tensor_live_bytes.add(-bytes);
                alloc::release(data_, capacity_);
                throw;
            }
        }
    }

    ~TensorStorage()
    {
        if (obs::memProfilingEnabled()) {
            obs::memRecordFree(this);
        }
        obs::metrics().tensor_live_bytes.add(
            -capacity_ * static_cast<int64_t>(sizeof(float)));
        alloc::release(data_, capacity_);
    }

    TensorStorage(const TensorStorage&) = delete;
    TensorStorage& operator=(const TensorStorage&) = delete;

    float* data() { return data_; }
    const float* data() const { return data_; }

  private:
    float* data_ = nullptr;
    int64_t capacity_ = 0; ///< size-class capacity, in floats
};

} // namespace detail

namespace {

using detail::TensorStorage;

/** Fresh storage with UNINITIALIZED contents. */
std::shared_ptr<TensorStorage>
makeStorage(int64_t numel)
{
    return std::make_shared<TensorStorage>(numel);
}

/** Fresh storage filled with `value`. */
std::shared_ptr<TensorStorage>
makeStorageFilled(int64_t numel, float value)
{
    auto storage = makeStorage(numel);
    std::fill(storage->data(), storage->data() + numel, value);
    return storage;
}

/** Fresh storage copied from `src`. */
std::shared_ptr<TensorStorage>
makeStorageCopy(const float* src, int64_t numel)
{
    auto storage = makeStorage(numel);
    std::copy(src, src + numel, storage->data());
    return storage;
}

} // namespace

int64_t
numelOf(const Shape& shape)
{
    int64_t n = 1;
    for (int64_t d : shape) {
        n *= d;
    }
    return n;
}

std::string
shapeToString(const Shape& shape)
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < shape.size(); ++i) {
        if (i) os << ", ";
        os << shape[i];
    }
    os << "]";
    return os.str();
}

Shape
broadcastShapes(const Shape& a, const Shape& b)
{
    const size_t rank = std::max(a.size(), b.size());
    Shape out(rank, 1);
    for (size_t i = 0; i < rank; ++i) {
        const int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
        const int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
        SLAPO_CHECK(da == db || da == 1 || db == 1,
                    "cannot broadcast shapes " << shapeToString(a) << " and "
                                               << shapeToString(b));
        out[i] = std::max(da, db);
    }
    return out;
}

Tensor
Tensor::meta(Shape shape)
{
    return Tensor(std::move(shape), nullptr);
}

Tensor
Tensor::zeros(Shape shape)
{
    auto storage = makeStorageFilled(numelOf(shape), 0.0f);
    return Tensor(std::move(shape), std::move(storage));
}

Tensor
Tensor::empty(Shape shape)
{
    auto storage = makeStorage(numelOf(shape));
    return Tensor(std::move(shape), std::move(storage));
}

Tensor
Tensor::full(Shape shape, float value)
{
    auto storage = makeStorageFilled(numelOf(shape), value);
    return Tensor(std::move(shape), std::move(storage));
}

Tensor
Tensor::fromValues(Shape shape, std::vector<float> values)
{
    SLAPO_CHECK(numelOf(shape) == static_cast<int64_t>(values.size()),
                "fromValues: shape " << shapeToString(shape) << " needs "
                                     << numelOf(shape) << " values, got "
                                     << values.size());
    auto storage =
        makeStorageCopy(values.data(), static_cast<int64_t>(values.size()));
    return Tensor(std::move(shape), std::move(storage));
}

Tensor
Tensor::uniform(Shape shape, float bound, uint64_t seed)
{
    Tensor t = empty(std::move(shape));
    Rng rng(seed);
    float* p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
        p[i] = rng.uniform(-bound, bound);
    }
    return t;
}

Tensor
Tensor::randn(Shape shape, float std_dev, uint64_t seed)
{
    Tensor t = empty(std::move(shape));
    Rng rng(seed);
    float* p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
        p[i] = rng.normal() * std_dev;
    }
    return t;
}

Tensor
Tensor::randint(Shape shape, int64_t high, uint64_t seed)
{
    SLAPO_CHECK(high > 0, "randint: high must be positive, got " << high);
    Tensor t = empty(std::move(shape));
    Rng rng(seed);
    float* p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
        p[i] = static_cast<float>(rng.next() % static_cast<uint64_t>(high));
    }
    return t;
}

int64_t
Tensor::size(int64_t axis) const
{
    if (axis < 0) axis += dim();
    SLAPO_CHECK(axis >= 0 && axis < dim(),
                "size: axis " << axis << " out of range for shape "
                              << shapeToString(shape_));
    return shape_[axis];
}

float*
Tensor::data()
{
    SLAPO_CHECK(materialized(), "data() called on meta tensor "
                                    << shapeToString(shape_));
    return storage_->data();
}

const float*
Tensor::data() const
{
    SLAPO_CHECK(materialized(), "data() called on meta tensor "
                                    << shapeToString(shape_));
    return storage_->data();
}

float
Tensor::at(int64_t flat_index) const
{
    SLAPO_ASSERT(flat_index >= 0 && flat_index < numel(),
                 "at: index " << flat_index << " out of range");
    return data()[flat_index];
}

void
Tensor::set(int64_t flat_index, float value)
{
    SLAPO_ASSERT(flat_index >= 0 && flat_index < numel(),
                 "set: index " << flat_index << " out of range");
    data()[flat_index] = value;
}

Tensor
Tensor::reshape(Shape new_shape) const
{
    SLAPO_CHECK(numelOf(new_shape) == numel(),
                "reshape: cannot view " << shapeToString(shape_) << " as "
                                        << shapeToString(new_shape));
    return Tensor(std::move(new_shape), storage_);
}

Tensor
Tensor::clone() const
{
    if (isMeta()) {
        return meta(shape_);
    }
    auto storage = makeStorageCopy(storage_->data(), numel());
    return Tensor(shape_, std::move(storage));
}

void
Tensor::materializeZeros()
{
    if (!storage_) {
        storage_ = makeStorageFilled(numel(), 0.0f);
    }
}

void
Tensor::fill_(float value)
{
    float* p = data();
    std::fill(p, p + numel(), value);
}

void
Tensor::addInPlace(const Tensor& other)
{
    SLAPO_CHECK(shape_ == other.shape_,
                "addInPlace: shape mismatch " << shapeToString(shape_) << " vs "
                                              << shapeToString(other.shape_));
    float* dst = data();
    const float* src = other.data();
    support::parallelFor(0, numel(), 1 << 15, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            dst[i] += src[i];
        }
    });
}

void
Tensor::copyFrom(const Tensor& other)
{
    SLAPO_CHECK(shape_ == other.shape_,
                "copyFrom: shape mismatch " << shapeToString(shape_) << " vs "
                                            << shapeToString(other.shape_));
    float* dst = data();
    const float* src = other.data();
    std::copy(src, src + numel(), dst);
}

void
Tensor::scaleInPlace(float factor)
{
    float* dst = data();
    support::parallelFor(0, numel(), 1 << 15, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            dst[i] *= factor;
        }
    });
}

float
Tensor::maxAbsDiff(const Tensor& a, const Tensor& b)
{
    SLAPO_CHECK(a.shape() == b.shape(),
                "maxAbsDiff: shape mismatch " << shapeToString(a.shape())
                                              << " vs " << shapeToString(b.shape()));
    float max_diff = 0.0f;
    const float* pa = a.data();
    const float* pb = b.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        max_diff = std::max(max_diff, std::fabs(pa[i] - pb[i]));
    }
    return max_diff;
}

bool
Tensor::allClose(const Tensor& a, const Tensor& b, float tol)
{
    if (a.shape() != b.shape()) {
        return false;
    }
    return maxAbsDiff(a, b) <= tol;
}

std::string
Tensor::toString(int64_t max_elems) const
{
    std::ostringstream os;
    os << "Tensor" << shapeToString(shape_);
    if (isMeta()) {
        os << " (meta)";
        return os.str();
    }
    os << " {";
    const int64_t n = std::min(numel(), max_elems);
    for (int64_t i = 0; i < n; ++i) {
        if (i) os << ", ";
        os << at(i);
    }
    if (numel() > n) os << ", ...";
    os << "}";
    return os.str();
}

uint64_t
Rng::next()
{
    // xorshift64*
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
}

float
Rng::uniform()
{
    return static_cast<float>((next() >> 40) / 16777216.0); // 24-bit mantissa
}

float
Rng::uniform(float lo, float hi)
{
    return lo + (hi - lo) * uniform();
}

float
Rng::normal()
{
    // Box-Muller; avoid log(0).
    float u1 = uniform();
    if (u1 < 1e-9f) u1 = 1e-9f;
    const float u2 = uniform();
    return std::sqrt(-2.0f * std::log(u1)) *
           std::cos(2.0f * static_cast<float>(M_PI) * u2);
}

} // namespace slapo
