/**
 * @file
 * Numeric CPU kernels over materialized tensors.
 *
 * These are the "CUDA kernels" of the reproduction: every graph op and
 * leaf module executes through one of these when running numerically
 * (verifier, distributed runtime, training examples). Shapes follow
 * PyTorch conventions; `linear` uses a (out_features, in_features)
 * weight, matching the paper's Fig. 3 note that sharding weight axis 0
 * partitions the *output* dimension.
 *
 * Backward kernels for the transformer op set live here too so the graph
 * executor can run true backprop for training and gradient-sync checks.
 */
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace slapo {
namespace ops {

// --- elementwise / broadcast -------------------------------------------

/** Elementwise a + b with numpy broadcasting. */
Tensor add(const Tensor& a, const Tensor& b);
/** Elementwise a - b with numpy broadcasting. */
Tensor sub(const Tensor& a, const Tensor& b);
/** Elementwise a * b with numpy broadcasting. */
Tensor mul(const Tensor& a, const Tensor& b);
/** Elementwise a / b with numpy broadcasting. */
Tensor div(const Tensor& a, const Tensor& b);
/** a * scalar. */
Tensor scale(const Tensor& a, float factor);
/** a + scalar. */
Tensor addScalar(const Tensor& a, float value);

// In-place twins used by the memory planner's buffer-reuse rewrite
// (graph/memplan.h). Each runs the exact same per-element arithmetic as
// its out-of-place version (shared kernel cores), writing the result
// over the first operand — so planner-on and planner-off execution are
// bit-identical. The binary forms require identical shapes (no
// broadcasting); the planner only marks such nodes.
void addInPlace(Tensor& a, const Tensor& b);
void subInPlace(Tensor& a, const Tensor& b);
void mulInPlace(Tensor& a, const Tensor& b);
void divInPlace(Tensor& a, const Tensor& b);
void scaleInPlace(Tensor& a, float factor);
void addScalarInPlace(Tensor& a, float value);
void geluInPlace(Tensor& a);
void reluInPlace(Tensor& a);
void tanhInPlace(Tensor& a);
void clampScalarInPlace(Tensor& a, float lo, float hi);
void rangeMaskInPlace(Tensor& a, float lo, float hi);
void causalMaskInPlace(Tensor& scores);
void softmaxInPlace(Tensor& a);

/** tanh-approximated GeLU (the variant BERT/GPT use). */
Tensor gelu(const Tensor& a);
/** Derivative of gelu at `a`, multiplied by upstream `grad`. */
Tensor geluBackward(const Tensor& grad, const Tensor& a);

Tensor relu(const Tensor& a);
Tensor reluBackward(const Tensor& grad, const Tensor& a);

Tensor tanhOp(const Tensor& a);
/** d/dx tanh given the forward *output* y: grad * (1 - y^2). */
Tensor tanhBackward(const Tensor& grad, const Tensor& y);

/** Clamp every element into [lo, hi]. */
Tensor clampScalar(const Tensor& a, float lo, float hi);

/** 1.0 where lo <= a < hi, else 0.0 (vocab-parallel embedding mask). */
Tensor rangeMask(const Tensor& a, float lo, float hi);

/**
 * Additive causal mask over the last two (query, key) axes: positions
 * with key index > query index get -1e9 added (pre-softmax).
 */
Tensor causalMask(const Tensor& scores);

/**
 * T5-style relative position bias: scores[b, h, i, j] +=
 * table[h, clip(j - i) + buckets - 1] with the relative distance clipped
 * to [-(buckets-1), buckets-1]. `table` has shape (heads, 2*buckets - 1).
 */
Tensor relPosBias(const Tensor& scores, const Tensor& table);

/** Scatter-add the upstream gradient into a zero table gradient. */
Tensor relPosBiasTableBackward(const Tensor& grad, const Shape& table_shape);

// --- reductions ---------------------------------------------------------

/** Sum of all elements (returns scalar-shaped tensor [1]). */
Tensor sumAll(const Tensor& a);
/** Mean of all elements (returns scalar-shaped tensor [1]). */
Tensor meanAll(const Tensor& a);
/**
 * Reduce `grad_out` (shaped like the broadcast result) back to `shape` by
 * summing over broadcast dimensions. Used by binary-op backward.
 */
Tensor reduceToShape(const Tensor& grad_out, const Shape& shape);

// --- linear algebra ------------------------------------------------------

/**
 * Batched matrix multiply: a[..., m, k] @ b[..., k, n] -> [..., m, n].
 * Leading (batch) dimensions broadcast.
 */
Tensor matmul(const Tensor& a, const Tensor& b);

/** Swap the last two axes (copying). */
Tensor transposeLast2(const Tensor& a);

/**
 * x[..., in] @ weight[out, in]^T + bias[out]. `bias` may be an empty
 * tensor (numel 0) to skip the addition (used after bias-fusion).
 */
Tensor linear(const Tensor& x, const Tensor& weight, const Tensor& bias);

/** Gradients of linear wrt x, weight, bias. */
struct LinearGrads
{
    Tensor grad_x;
    Tensor grad_weight;
    Tensor grad_bias;
};
LinearGrads linearBackward(const Tensor& grad_out, const Tensor& x,
                           const Tensor& weight, bool has_bias);

// --- normalization / softmax ---------------------------------------------

/** Softmax over the last axis. */
Tensor softmax(const Tensor& a);
/** Backward of softmax given forward output y. */
Tensor softmaxBackward(const Tensor& grad, const Tensor& y);

/** LayerNorm over the last axis with affine gamma/beta. */
Tensor layerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps);
struct LayerNormGrads
{
    Tensor grad_x;
    Tensor grad_gamma;
    Tensor grad_beta;
};
LayerNormGrads layerNormBackward(const Tensor& grad_out, const Tensor& x,
                                 const Tensor& gamma, float eps);

// --- regularization -------------------------------------------------------

/**
 * Inverted dropout with a deterministic mask derived from `seed`. With
 * p == 0 this is the identity, which the verifier relies on for exact
 * equivalence checks.
 */
Tensor dropout(const Tensor& a, float p, uint64_t seed);
/** Backward replays the identical mask from `seed`. */
Tensor dropoutBackward(const Tensor& grad, float p, uint64_t seed);

// --- shape manipulation ----------------------------------------------------

/** Concatenate along `axis` (negative axes allowed). */
Tensor concat(const std::vector<Tensor>& parts, int64_t axis);
/** Split into `n` equal chunks along `axis`. */
std::vector<Tensor> chunk(const Tensor& a, int64_t n, int64_t axis);
/** Narrow: slice [start, start+length) along `axis` (copying). */
Tensor narrow(const Tensor& a, int64_t axis, int64_t start, int64_t length);
/** Scatter `grad` back into a zeros(in_shape) at the narrowed region. */
Tensor narrowBackward(const Tensor& grad, const Shape& in_shape, int64_t axis,
                      int64_t start);
/**
 * Permute axes by `perm` (a permutation of 0..rank-1), copying. Used for
 * the attention head reshuffles [B,S,H] <-> [B,heads,S,dh].
 */
Tensor permute(const Tensor& a, const std::vector<int64_t>& perm);

// --- embedding / loss -------------------------------------------------------

/** Row-gather: ids[...], table[vocab, dim] -> [..., dim]. */
Tensor embedding(const Tensor& ids, const Tensor& table);
/** Scatter-add of grad rows back into a zero table gradient. */
Tensor embeddingBackward(const Tensor& grad_out, const Tensor& ids,
                         int64_t vocab);

/** Mean squared error (scalar [1]). */
Tensor mseLoss(const Tensor& pred, const Tensor& target);
/** Gradient of mseLoss wrt pred. */
Tensor mseLossBackward(const Tensor& pred, const Tensor& target);

/**
 * Mean cross-entropy between logits[..., vocab] and integer targets[...].
 * Returns scalar [1].
 */
Tensor crossEntropy(const Tensor& logits, const Tensor& targets);
Tensor crossEntropyBackward(const Tensor& logits, const Tensor& targets);

// --- convolution (WideResNet substrate; forward only) ------------------------

/**
 * Naive NCHW conv2d: x[B,Cin,H,W], w[Cout,Cin,kh,kw], stride, same-style
 * zero padding `pad`. Forward-only: the image-classification model is
 * exercised by the simulator and the forward verifier, not by training.
 */
Tensor conv2d(const Tensor& x, const Tensor& w, int64_t stride, int64_t pad);

/** Per-channel batch norm using batch statistics (training mode). */
Tensor batchNorm2d(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps);

/** Global average pool NCHW -> [B, C]. */
Tensor globalAvgPool(const Tensor& x);

} // namespace ops
} // namespace slapo
