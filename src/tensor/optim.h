/**
 * @file
 * AdamW optimizer over raw tensors.
 *
 * The paper trains every model with AdamW in mixed precision (§5); the
 * numeric substrate implements the fp32 reference update, and the
 * performance simulator separately accounts for the mixed-precision
 * optimizer-state memory (see sim/memory_model.h).
 */
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace slapo {

/** Hyper-parameters of the AdamW update. */
struct AdamWConfig
{
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.01f;
};

/**
 * Decoupled-weight-decay Adam (Loshchilov & Hutter). Parameters are
 * registered once; each step consumes one gradient tensor per parameter
 * in registration order.
 */
class AdamW
{
  public:
    explicit AdamW(AdamWConfig config = {}) : config_(config) {}

    /** Register a parameter; returns its slot index. */
    size_t addParam(Tensor param);

    /** Number of registered parameters. */
    size_t numParams() const { return params_.size(); }

    /** Access a registered parameter tensor (shared storage). */
    Tensor& param(size_t i) { return params_[i]; }

    /** Apply one AdamW step given per-parameter gradients. */
    void step(const std::vector<Tensor>& grads);

    /** Steps taken so far (bias-correction counter). */
    int64_t stepCount() const { return step_count_; }

    /** First-moment (momentum) state of parameter `i` (shared storage).
     * Exposed so checkpoint/restore can serialize the exact optimizer
     * state — resuming is bitwise identical only if m, v, and the step
     * counter all round-trip. */
    Tensor& moment1(size_t i) { return m_.at(i); }

    /** Second-moment state of parameter `i` (shared storage). */
    Tensor& moment2(size_t i) { return v_.at(i); }

    /** Restore the bias-correction counter from a checkpoint. */
    void restoreStepCount(int64_t step_count) { step_count_ = step_count; }

  private:
    AdamWConfig config_;
    std::vector<Tensor> params_;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
    int64_t step_count_ = 0;
};

} // namespace slapo
