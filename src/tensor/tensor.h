/**
 * @file
 * Minimal dense CPU tensor used by the slapo-cc numeric substrate.
 *
 * Tensors are row-major, contiguous, float32. Two flavours exist:
 *  - *materialized* tensors own storage and support arithmetic; they back
 *    the verifier, the distributed numeric runtime, and small-scale
 *    training in the examples/tests.
 *  - *meta* tensors carry only a shape. Model-zoo models at paper scale
 *    (up to 10B parameters) are built on meta tensors so the performance
 *    simulator can reason about shapes and byte counts without allocating
 *    tens of gigabytes.
 *
 * This mirrors the PyTorch "meta device" trick the paper's tooling relies
 * on for deferred initialization of large models.
 */
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "support/error.h"

namespace slapo {

namespace detail {
class TensorStorage; // pooled element buffer; defined in tensor.cc
} // namespace detail

/** Tensor shape: a list of non-negative extents. */
using Shape = std::vector<int64_t>;

/** Number of elements described by a shape. */
int64_t numelOf(const Shape& shape);

/** Render a shape as "[2, 3, 4]" for error messages and dumps. */
std::string shapeToString(const Shape& shape);

/** Numpy-style broadcast of two shapes; throws SlapoError on mismatch. */
Shape broadcastShapes(const Shape& a, const Shape& b);

/**
 * Dense float32 CPU tensor with optional (meta) storage.
 *
 * Copying a Tensor is cheap: storage is shared. Mutating ops are explicit
 * (fill_, addInPlace, ...); all functional ops in ops.h allocate fresh
 * outputs.
 */
class Tensor
{
  public:
    /** Default: empty 0-d meta tensor. */
    Tensor() = default;

    /** Construct a meta tensor (shape only, no storage). */
    static Tensor meta(Shape shape);

    /** Construct a zero-filled materialized tensor. */
    static Tensor zeros(Shape shape);

    /**
     * Construct a materialized tensor with UNINITIALIZED contents (the
     * zero-init-elision path). Only for outputs every element of which
     * is overwritten before being read — the kernels in ops.cc that
     * fully write their output use this; scatter/accumulate kernels
     * must keep zeros().
     */
    static Tensor empty(Shape shape);

    /** Construct a materialized tensor filled with `value`. */
    static Tensor full(Shape shape, float value);

    /** Construct from explicit values (row-major); sizes must agree. */
    static Tensor fromValues(Shape shape, std::vector<float> values);

    /** Uniform(-bound, bound) init with a deterministic seed. */
    static Tensor uniform(Shape shape, float bound, uint64_t seed);

    /** Normal(0, std) init with a deterministic seed. */
    static Tensor randn(Shape shape, float std_dev, uint64_t seed);

    /** Integer-valued tensor with entries in [0, high). */
    static Tensor randint(Shape shape, int64_t high, uint64_t seed);

    const Shape& shape() const { return shape_; }
    int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
    int64_t size(int64_t axis) const;
    int64_t numel() const { return numelOf(shape_); }

    /** True when this tensor has no storage (shape-only). */
    bool isMeta() const { return storage_ == nullptr; }

    /** True when the tensor owns element storage. */
    bool materialized() const { return storage_ != nullptr; }

    /** Raw element access; requires materialized(). */
    float* data();
    const float* data() const;

    float at(int64_t flat_index) const;
    void set(int64_t flat_index, float value);

    /** View with a different shape over the same storage. */
    Tensor reshape(Shape new_shape) const;

    /** Deep copy (meta stays meta). */
    Tensor clone() const;

    /** Materialize a meta tensor as zeros in place; no-op if materialized. */
    void materializeZeros();

    /** In-place fill; requires materialized(). */
    void fill_(float value);

    /** In-place elementwise add of an identically-shaped tensor. */
    void addInPlace(const Tensor& other);

    /** Overwrite this tensor's elements with `other`'s (same shape; both
     * materialized). Used by checkpoint restore to rewind parameters and
     * optimizer state in place, preserving storage identity. */
    void copyFrom(const Tensor& other);

    /** In-place multiply by scalar. */
    void scaleInPlace(float factor);

    /** Max |a - b| over all elements; both must be materialized. */
    static float maxAbsDiff(const Tensor& a, const Tensor& b);

    /** True if shapes match and elements agree within `tol`. */
    static bool allClose(const Tensor& a, const Tensor& b, float tol = 1e-5f);

    /** Bytes this tensor would occupy at the given element width. */
    int64_t bytes(int64_t element_size = 4) const { return numel() * element_size; }

    /**
     * Stable identity of the underlying storage (null for meta tensors).
     * Used to key per-parameter gradients across module-tree views.
     */
    const void* storageKey() const { return storage_.get(); }

    /**
     * Number of Tensor views sharing this storage (shared_ptr
     * use_count). The memory planner's in-place rewrite only fires when
     * the executing value is the sole owner, so aliases (reshapes,
     * caller-held inputs, parameters) are never mutated.
     */
    int64_t storageUseCount() const { return storage_.use_count(); }

    std::string toString(int64_t max_elems = 16) const;

  private:
    Tensor(Shape shape, std::shared_ptr<detail::TensorStorage> storage)
        : shape_(std::move(shape)), storage_(std::move(storage)) {}

    Shape shape_;
    std::shared_ptr<detail::TensorStorage> storage_;
};

/**
 * Deterministic xorshift RNG used for all stochastic numerics (init,
 * dropout masks, verifier inputs) so every test and example is exactly
 * reproducible.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform float in [0, 1). */
    float uniform();

    /** Uniform float in [lo, hi). */
    float uniform(float lo, float hi);

    /** Standard normal via Box-Muller. */
    float normal();

  private:
    uint64_t state_;
};

} // namespace slapo
