#include "tensor/alloc.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "support/error.h"

namespace slapo {
namespace alloc {

namespace {

/** 2^6 (= kMinClassElems) .. 2^40 elements: covers every tensor the
 * substrate can realistically materialize. */
constexpr int kMinClassLog2 = 6;
constexpr int kNumClasses = 35;

static_assert((int64_t{1} << kMinClassLog2) == kMinClassElems,
              "kMinClassLog2 must match kMinClassElems");

/** One free list per size class. The mutex is per-class so concurrent
 * rank threads releasing different shapes never serialize on each
 * other; buffers within a class are LIFO for cache warmth. */
struct FreeList
{
    std::mutex mu;
    std::vector<float*> buffers;
};

struct Pool
{
    FreeList classes[kNumClasses];
};

Pool&
pool()
{
    static Pool* p = new Pool(); // leaked: tensor dtors may run at exit
    return *p;
}

/** Mode override + env resolution, read once. */
std::atomic<int> g_mode_override{-1}; // -1 = unset, else Mode value

Mode
envMode()
{
    static const Mode resolved = [] {
        const char* env = std::getenv("SLAPO_ALLOC");
        if (env != nullptr && std::string_view(env) == "malloc") {
            return Mode::Malloc;
        }
        return Mode::Pool;
    }();
    return resolved;
}

/** Largest capacity the free lists manage; bigger requests go straight
 * to the heap so a class never mixes buffer sizes. */
constexpr int64_t kMaxClassElems = kMinClassElems
                                   << (kNumClasses - 1); // 2^40 floats

/** Class index for a rounded capacity (power of two >= min class). */
int
classIndexFor(int64_t capacity)
{
    int idx = 0;
    int64_t c = kMinClassElems;
    while (c < capacity) {
        c <<= 1;
        ++idx;
    }
    SLAPO_ASSERT(idx < kNumClasses, "alloc: capacity beyond largest class");
    return idx;
}

} // namespace

Mode
mode()
{
    const int forced = g_mode_override.load(std::memory_order_relaxed);
    if (forced >= 0) {
        return static_cast<Mode>(forced);
    }
    return envMode();
}

void
setMode(Mode m)
{
    g_mode_override.store(static_cast<int>(m), std::memory_order_relaxed);
    if (m != Mode::Pool) {
        clearPool();
    }
}

int64_t
sizeClassFor(int64_t numel)
{
    int64_t c = kMinClassElems;
    while (c < numel) {
        c <<= 1;
    }
    return c;
}

float*
acquire(int64_t numel, int64_t* capacity_out)
{
    SLAPO_ASSERT(numel >= 0, "alloc: negative element count " << numel);
    const int64_t capacity = sizeClassFor(numel);
    *capacity_out = capacity;
    obs::Metrics& m = obs::metrics();
    if (mode() == Mode::Pool && capacity <= kMaxClassElems) {
        FreeList& fl = pool().classes[classIndexFor(capacity)];
        float* reused = nullptr;
        {
            std::lock_guard<std::mutex> lock(fl.mu);
            if (!fl.buffers.empty()) {
                reused = fl.buffers.back();
                fl.buffers.pop_back();
            }
        }
        if (reused != nullptr) {
            const int64_t bytes =
                capacity * static_cast<int64_t>(sizeof(float));
            m.alloc_pool_hits.add(1);
            m.alloc_reuse_bytes.add(bytes);
            m.alloc_pooled_bytes.add(-bytes);
            return reused;
        }
    }
    m.alloc_pool_misses.add(1);
    return new float[static_cast<size_t>(capacity)];
}

void
release(float* data, int64_t capacity)
{
    if (data == nullptr) {
        return;
    }
    if (mode() == Mode::Pool && capacity <= kMaxClassElems) {
        FreeList& fl = pool().classes[classIndexFor(capacity)];
        {
            std::lock_guard<std::mutex> lock(fl.mu);
            fl.buffers.push_back(data);
        }
        obs::metrics().alloc_pooled_bytes.add(
            capacity * static_cast<int64_t>(sizeof(float)));
        return;
    }
    delete[] data;
}

void
clearPool()
{
    int64_t drained_bytes = 0;
    for (int i = 0; i < kNumClasses; ++i) {
        FreeList& fl = pool().classes[i];
        std::vector<float*> taken;
        {
            std::lock_guard<std::mutex> lock(fl.mu);
            taken.swap(fl.buffers);
        }
        const int64_t capacity = kMinClassElems << i;
        drained_bytes +=
            static_cast<int64_t>(taken.size()) * capacity *
            static_cast<int64_t>(sizeof(float));
        for (float* p : taken) {
            delete[] p;
        }
    }
    obs::metrics().alloc_pooled_bytes.add(-drained_bytes);
}

int64_t
pooledBytes()
{
    return obs::metrics().alloc_pooled_bytes.get();
}

} // namespace alloc
} // namespace slapo
