#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace slapo {
namespace ops {

namespace {

/** Strides (in elements) of a row-major contiguous shape. */
std::vector<int64_t>
stridesOf(const Shape& shape)
{
    std::vector<int64_t> strides(shape.size(), 1);
    for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i) {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    return strides;
}

/** Apply an elementwise binary functor with numpy broadcasting. */
template <typename F>
Tensor
broadcastBinary(const Tensor& a, const Tensor& b, F&& f)
{
    const Shape out_shape = broadcastShapes(a.shape(), b.shape());
    Tensor out = Tensor::zeros(out_shape);

    const size_t rank = out_shape.size();
    // Right-align input shapes against the output rank.
    auto aligned = [&](const Shape& s) {
        Shape r(rank, 1);
        std::copy(s.begin(), s.end(), r.begin() + (rank - s.size()));
        return r;
    };
    const Shape sa = aligned(a.shape());
    const Shape sb = aligned(b.shape());
    const auto stra = stridesOf(sa);
    const auto strb = stridesOf(sb);
    const auto stro = stridesOf(out_shape);

    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();

    const int64_t n = out.numel();
    for (int64_t flat = 0; flat < n; ++flat) {
        int64_t rem = flat;
        int64_t ia = 0;
        int64_t ib = 0;
        for (size_t d = 0; d < rank; ++d) {
            const int64_t idx = rem / stro[d];
            rem %= stro[d];
            if (sa[d] != 1) ia += idx * stra[d];
            if (sb[d] != 1) ib += idx * strb[d];
        }
        po[flat] = f(pa[ia], pb[ib]);
    }
    return out;
}

template <typename F>
Tensor
unary(const Tensor& a, F&& f)
{
    Tensor out = Tensor::zeros(a.shape());
    const float* pa = a.data();
    float* po = out.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        po[i] = f(pa[i]);
    }
    return out;
}

constexpr float kGeluC = 0.7978845608028654f; // sqrt(2/pi)

} // namespace

Tensor
add(const Tensor& a, const Tensor& b)
{
    return broadcastBinary(a, b, [](float x, float y) { return x + y; });
}

Tensor
sub(const Tensor& a, const Tensor& b)
{
    return broadcastBinary(a, b, [](float x, float y) { return x - y; });
}

Tensor
mul(const Tensor& a, const Tensor& b)
{
    return broadcastBinary(a, b, [](float x, float y) { return x * y; });
}

Tensor
div(const Tensor& a, const Tensor& b)
{
    return broadcastBinary(a, b, [](float x, float y) { return x / y; });
}

Tensor
scale(const Tensor& a, float factor)
{
    return unary(a, [factor](float x) { return x * factor; });
}

Tensor
addScalar(const Tensor& a, float value)
{
    return unary(a, [value](float x) { return x + value; });
}

Tensor
gelu(const Tensor& a)
{
    return unary(a, [](float x) {
        return 0.5f * x * (1.0f + std::tanh(kGeluC * (x + 0.044715f * x * x * x)));
    });
}

Tensor
geluBackward(const Tensor& grad, const Tensor& a)
{
    SLAPO_CHECK(grad.shape() == a.shape(), "geluBackward: shape mismatch");
    Tensor out = Tensor::zeros(a.shape());
    const float* pg = grad.data();
    const float* pa = a.data();
    float* po = out.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        const float x = pa[i];
        const float inner = kGeluC * (x + 0.044715f * x * x * x);
        const float t = std::tanh(inner);
        const float dinner = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
        const float d = 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
        po[i] = pg[i] * d;
    }
    return out;
}

Tensor
relu(const Tensor& a)
{
    return unary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor
reluBackward(const Tensor& grad, const Tensor& a)
{
    SLAPO_CHECK(grad.shape() == a.shape(), "reluBackward: shape mismatch");
    return broadcastBinary(grad, a,
                           [](float g, float x) { return x > 0.0f ? g : 0.0f; });
}

Tensor
tanhOp(const Tensor& a)
{
    return unary(a, [](float x) { return std::tanh(x); });
}

Tensor
tanhBackward(const Tensor& grad, const Tensor& y)
{
    return broadcastBinary(grad, y,
                           [](float g, float t) { return g * (1.0f - t * t); });
}

Tensor
clampScalar(const Tensor& a, float lo, float hi)
{
    return unary(a, [lo, hi](float x) { return std::min(std::max(x, lo), hi); });
}

Tensor
rangeMask(const Tensor& a, float lo, float hi)
{
    return unary(a, [lo, hi](float x) { return x >= lo && x < hi ? 1.0f : 0.0f; });
}

Tensor
causalMask(const Tensor& scores)
{
    SLAPO_CHECK(scores.dim() >= 2, "causalMask: needs at least 2-D");
    const int64_t sq = scores.size(-2);
    const int64_t sk = scores.size(-1);
    Tensor out = scores.clone();
    float* po = out.data();
    const int64_t batch = scores.numel() / (sq * sk);
    for (int64_t b = 0; b < batch; ++b) {
        for (int64_t i = 0; i < sq; ++i) {
            for (int64_t j = i + 1; j < sk; ++j) {
                po[(b * sq + i) * sk + j] += -1e9f;
            }
        }
    }
    return out;
}

namespace {

/** Clipped-relative-distance bucket index for relPosBias. */
int64_t
relBucket(int64_t i, int64_t j, int64_t buckets)
{
    int64_t rel = j - i;
    rel = std::min(std::max(rel, -(buckets - 1)), buckets - 1);
    return rel + buckets - 1;
}

} // namespace

Tensor
relPosBias(const Tensor& scores, const Tensor& table)
{
    SLAPO_CHECK(scores.dim() == 4 && table.dim() == 2,
                "relPosBias: expects [B,h,Sq,Sk] scores and [h, 2b-1] table");
    const int64_t B = scores.size(0), H = scores.size(1);
    const int64_t Sq = scores.size(2), Sk = scores.size(3);
    SLAPO_CHECK(table.size(0) == H,
                "relPosBias: table heads " << table.size(0) << " != scores "
                                           << H);
    SLAPO_CHECK(table.size(1) % 2 == 1, "relPosBias: table width must be odd");
    const int64_t buckets = (table.size(1) + 1) / 2;

    Tensor out = scores.clone();
    float* po = out.data();
    const float* pt = table.data();
    for (int64_t b = 0; b < B; ++b) {
        for (int64_t h = 0; h < H; ++h) {
            for (int64_t i = 0; i < Sq; ++i) {
                for (int64_t j = 0; j < Sk; ++j) {
                    po[((b * H + h) * Sq + i) * Sk + j] +=
                        pt[h * table.size(1) + relBucket(i, j, buckets)];
                }
            }
        }
    }
    return out;
}

Tensor
relPosBiasTableBackward(const Tensor& grad, const Shape& table_shape)
{
    SLAPO_CHECK(grad.dim() == 4 && table_shape.size() == 2,
                "relPosBiasTableBackward: bad shapes");
    Tensor table_grad = Tensor::zeros(table_shape);
    const int64_t B = grad.size(0), H = grad.size(1);
    const int64_t Sq = grad.size(2), Sk = grad.size(3);
    const int64_t buckets = (table_shape[1] + 1) / 2;
    const float* pg = grad.data();
    float* pt = table_grad.data();
    for (int64_t b = 0; b < B; ++b) {
        for (int64_t h = 0; h < H; ++h) {
            for (int64_t i = 0; i < Sq; ++i) {
                for (int64_t j = 0; j < Sk; ++j) {
                    pt[h * table_shape[1] + relBucket(i, j, buckets)] +=
                        pg[((b * H + h) * Sq + i) * Sk + j];
                }
            }
        }
    }
    return table_grad;
}

Tensor
sumAll(const Tensor& a)
{
    double acc = 0.0;
    const float* pa = a.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        acc += pa[i];
    }
    return Tensor::fromValues({1}, {static_cast<float>(acc)});
}

Tensor
meanAll(const Tensor& a)
{
    Tensor s = sumAll(a);
    s.scaleInPlace(1.0f / static_cast<float>(a.numel()));
    return s;
}

Tensor
reduceToShape(const Tensor& grad_out, const Shape& shape)
{
    if (grad_out.shape() == shape) {
        return grad_out.clone();
    }
    const size_t rank = grad_out.dim();
    Shape aligned(rank, 1);
    std::copy(shape.begin(), shape.end(), aligned.begin() + (rank - shape.size()));

    Tensor out = Tensor::zeros(aligned);
    const auto stro = stridesOf(grad_out.shape());
    const auto stra = stridesOf(aligned);
    const float* pg = grad_out.data();
    float* po = out.data();
    for (int64_t flat = 0; flat < grad_out.numel(); ++flat) {
        int64_t rem = flat;
        int64_t ia = 0;
        for (size_t d = 0; d < rank; ++d) {
            const int64_t idx = rem / stro[d];
            rem %= stro[d];
            if (aligned[d] != 1) ia += idx * stra[d];
        }
        po[ia] += pg[flat];
    }
    return out.reshape(shape);
}

Tensor
matmul(const Tensor& a, const Tensor& b)
{
    SLAPO_CHECK(a.dim() >= 2 && b.dim() >= 2,
                "matmul: operands must be at least 2-D, got "
                    << shapeToString(a.shape()) << " @ " << shapeToString(b.shape()));
    const int64_t m = a.size(-2);
    const int64_t k = a.size(-1);
    const int64_t k2 = b.size(-2);
    const int64_t n = b.size(-1);
    SLAPO_CHECK(k == k2, "matmul: inner dims mismatch "
                             << shapeToString(a.shape()) << " @ "
                             << shapeToString(b.shape()));

    Shape batch_a(a.shape().begin(), a.shape().end() - 2);
    Shape batch_b(b.shape().begin(), b.shape().end() - 2);
    Shape batch = broadcastShapes(batch_a, batch_b);
    const int64_t n_batch = numelOf(batch);

    Shape out_shape = batch;
    out_shape.push_back(m);
    out_shape.push_back(n);
    Tensor out = Tensor::zeros(out_shape);

    // Per-batch flat offsets honoring broadcast on batch dims.
    const size_t rank = batch.size();
    auto aligned = [&](const Shape& s) {
        Shape r(rank, 1);
        std::copy(s.begin(), s.end(), r.begin() + (rank - s.size()));
        return r;
    };
    const Shape ba = aligned(batch_a);
    const Shape bb = aligned(batch_b);
    const auto stra = stridesOf(ba);
    const auto strb = stridesOf(bb);
    const auto strc = stridesOf(batch);

    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();

    for (int64_t bi = 0; bi < n_batch; ++bi) {
        int64_t rem = bi;
        int64_t off_a = 0;
        int64_t off_b = 0;
        for (size_t d = 0; d < rank; ++d) {
            const int64_t idx = rem / strc[d];
            rem %= strc[d];
            if (ba[d] != 1) off_a += idx * stra[d];
            if (bb[d] != 1) off_b += idx * strb[d];
        }
        const float* A = pa + off_a * m * k;
        const float* B = pb + off_b * k * n;
        float* C = po + bi * m * n;
        for (int64_t i = 0; i < m; ++i) {
            for (int64_t kk = 0; kk < k; ++kk) {
                const float av = A[i * k + kk];
                if (av == 0.0f) continue;
                const float* Brow = B + kk * n;
                float* Crow = C + i * n;
                for (int64_t j = 0; j < n; ++j) {
                    Crow[j] += av * Brow[j];
                }
            }
        }
    }
    return out;
}

Tensor
transposeLast2(const Tensor& a)
{
    SLAPO_CHECK(a.dim() >= 2, "transposeLast2: needs at least 2-D");
    std::vector<int64_t> perm(a.dim());
    for (int64_t i = 0; i < a.dim(); ++i) perm[i] = i;
    std::swap(perm[a.dim() - 1], perm[a.dim() - 2]);
    return permute(a, perm);
}

Tensor
linear(const Tensor& x, const Tensor& weight, const Tensor& bias)
{
    SLAPO_CHECK(weight.dim() == 2, "linear: weight must be 2-D");
    const int64_t in = weight.size(1);
    const int64_t out_f = weight.size(0);
    SLAPO_CHECK(x.size(-1) == in,
                "linear: input features " << x.size(-1) << " != weight in "
                                          << in);
    const int64_t rows = x.numel() / in;
    Tensor x2 = x.reshape({rows, in});

    Tensor out = Tensor::zeros({rows, out_f});
    const float* px = x2.data();
    const float* pw = weight.data();
    float* po = out.data();
    for (int64_t r = 0; r < rows; ++r) {
        const float* xr = px + r * in;
        float* orow = po + r * out_f;
        for (int64_t o = 0; o < out_f; ++o) {
            const float* wrow = pw + o * in;
            double acc = 0.0;
            for (int64_t i = 0; i < in; ++i) {
                acc += xr[i] * wrow[i];
            }
            orow[o] = static_cast<float>(acc);
        }
    }
    if (bias.numel() > 0) {
        SLAPO_CHECK(bias.numel() == out_f, "linear: bias size mismatch");
        const float* pb = bias.data();
        for (int64_t r = 0; r < rows; ++r) {
            float* orow = po + r * out_f;
            for (int64_t o = 0; o < out_f; ++o) {
                orow[o] += pb[o];
            }
        }
    }
    Shape out_shape = x.shape();
    out_shape.back() = out_f;
    return out.reshape(out_shape);
}

LinearGrads
linearBackward(const Tensor& grad_out, const Tensor& x, const Tensor& weight,
               bool has_bias)
{
    const int64_t in = weight.size(1);
    const int64_t out_f = weight.size(0);
    const int64_t rows = x.numel() / in;
    Tensor g2 = grad_out.reshape({rows, out_f});
    Tensor x2 = x.reshape({rows, in});

    LinearGrads grads;
    grads.grad_x = matmul(g2, weight).reshape(x.shape());
    grads.grad_weight = matmul(transposeLast2(g2), x2);
    if (has_bias) {
        Tensor gb = Tensor::zeros({out_f});
        const float* pg = g2.data();
        float* pb = gb.data();
        for (int64_t r = 0; r < rows; ++r) {
            for (int64_t o = 0; o < out_f; ++o) {
                pb[o] += pg[r * out_f + o];
            }
        }
        grads.grad_bias = gb;
    }
    return grads;
}

Tensor
softmax(const Tensor& a)
{
    const int64_t d = a.size(-1);
    const int64_t rows = a.numel() / d;
    Tensor out = Tensor::zeros(a.shape());
    const float* pa = a.data();
    float* po = out.data();
    for (int64_t r = 0; r < rows; ++r) {
        const float* row = pa + r * d;
        float* orow = po + r * d;
        float max_v = row[0];
        for (int64_t i = 1; i < d; ++i) max_v = std::max(max_v, row[i]);
        double sum = 0.0;
        for (int64_t i = 0; i < d; ++i) {
            orow[i] = std::exp(row[i] - max_v);
            sum += orow[i];
        }
        const float inv = static_cast<float>(1.0 / sum);
        for (int64_t i = 0; i < d; ++i) orow[i] *= inv;
    }
    return out;
}

Tensor
softmaxBackward(const Tensor& grad, const Tensor& y)
{
    const int64_t d = y.size(-1);
    const int64_t rows = y.numel() / d;
    Tensor out = Tensor::zeros(y.shape());
    const float* pg = grad.data();
    const float* py = y.data();
    float* po = out.data();
    for (int64_t r = 0; r < rows; ++r) {
        const float* gr = pg + r * d;
        const float* yr = py + r * d;
        float* orow = po + r * d;
        double dot = 0.0;
        for (int64_t i = 0; i < d; ++i) dot += gr[i] * yr[i];
        for (int64_t i = 0; i < d; ++i) {
            orow[i] = yr[i] * (gr[i] - static_cast<float>(dot));
        }
    }
    return out;
}

Tensor
layerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta, float eps)
{
    const int64_t d = x.size(-1);
    SLAPO_CHECK(gamma.numel() == d && beta.numel() == d,
                "layerNorm: affine param size mismatch");
    const int64_t rows = x.numel() / d;
    Tensor out = Tensor::zeros(x.shape());
    const float* px = x.data();
    const float* pg = gamma.data();
    const float* pb = beta.data();
    float* po = out.data();
    for (int64_t r = 0; r < rows; ++r) {
        const float* row = px + r * d;
        float* orow = po + r * d;
        double mean = 0.0;
        for (int64_t i = 0; i < d; ++i) mean += row[i];
        mean /= d;
        double var = 0.0;
        for (int64_t i = 0; i < d; ++i) {
            const double c = row[i] - mean;
            var += c * c;
        }
        var /= d;
        const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps));
        for (int64_t i = 0; i < d; ++i) {
            orow[i] = (row[i] - static_cast<float>(mean)) * inv_std * pg[i] + pb[i];
        }
    }
    return out;
}

LayerNormGrads
layerNormBackward(const Tensor& grad_out, const Tensor& x, const Tensor& gamma,
                  float eps)
{
    const int64_t d = x.size(-1);
    const int64_t rows = x.numel() / d;
    LayerNormGrads grads;
    grads.grad_x = Tensor::zeros(x.shape());
    grads.grad_gamma = Tensor::zeros({d});
    grads.grad_beta = Tensor::zeros({d});

    const float* px = x.data();
    const float* pgo = grad_out.data();
    const float* pg = gamma.data();
    float* pdx = grads.grad_x.data();
    float* pdg = grads.grad_gamma.data();
    float* pdb = grads.grad_beta.data();

    for (int64_t r = 0; r < rows; ++r) {
        const float* row = px + r * d;
        const float* go = pgo + r * d;
        float* dx = pdx + r * d;
        double mean = 0.0;
        for (int64_t i = 0; i < d; ++i) mean += row[i];
        mean /= d;
        double var = 0.0;
        for (int64_t i = 0; i < d; ++i) {
            const double c = row[i] - mean;
            var += c * c;
        }
        var /= d;
        const double inv_std = 1.0 / std::sqrt(var + eps);

        double sum_gxhat = 0.0;
        double sum_g = 0.0;
        for (int64_t i = 0; i < d; ++i) {
            const double xhat = (row[i] - mean) * inv_std;
            const double g = go[i] * pg[i];
            sum_gxhat += g * xhat;
            sum_g += g;
            pdg[i] += static_cast<float>(go[i] * xhat);
            pdb[i] += go[i];
        }
        for (int64_t i = 0; i < d; ++i) {
            const double xhat = (row[i] - mean) * inv_std;
            const double g = go[i] * pg[i];
            dx[i] = static_cast<float>(
                inv_std * (g - sum_g / d - xhat * sum_gxhat / d));
        }
    }
    return grads;
}

Tensor
dropout(const Tensor& a, float p, uint64_t seed)
{
    if (p <= 0.0f) {
        return a.clone();
    }
    SLAPO_CHECK(p < 1.0f, "dropout: p must be in [0, 1), got " << p);
    Tensor out = Tensor::zeros(a.shape());
    Rng rng(seed);
    const float inv_keep = 1.0f / (1.0f - p);
    const float* pa = a.data();
    float* po = out.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        po[i] = rng.uniform() < p ? 0.0f : pa[i] * inv_keep;
    }
    return out;
}

Tensor
dropoutBackward(const Tensor& grad, float p, uint64_t seed)
{
    // The mask is a deterministic function of the seed, so backward simply
    // reapplies the forward transformation to the upstream gradient.
    return dropout(grad, p, seed);
}

Tensor
concat(const std::vector<Tensor>& parts, int64_t axis)
{
    SLAPO_CHECK(!parts.empty(), "concat: no inputs");
    const Tensor& first = parts.front();
    int64_t ax = axis < 0 ? axis + first.dim() : axis;
    SLAPO_CHECK(ax >= 0 && ax < first.dim(), "concat: bad axis " << axis);

    Shape out_shape = first.shape();
    int64_t total = 0;
    for (const Tensor& t : parts) {
        SLAPO_CHECK(t.dim() == first.dim(), "concat: rank mismatch");
        for (int64_t d = 0; d < t.dim(); ++d) {
            if (d != ax) {
                SLAPO_CHECK(t.size(d) == first.size(d),
                            "concat: shape mismatch on axis " << d);
            }
        }
        total += t.size(ax);
    }
    out_shape[ax] = total;
    Tensor out = Tensor::zeros(out_shape);

    // outer = product of dims before axis; inner = product after.
    int64_t outer = 1;
    for (int64_t d = 0; d < ax; ++d) outer *= first.size(d);
    int64_t inner = 1;
    for (int64_t d = ax + 1; d < first.dim(); ++d) inner *= first.size(d);

    float* po = out.data();
    int64_t axis_offset = 0;
    for (const Tensor& t : parts) {
        const int64_t a_len = t.size(ax);
        const float* pt = t.data();
        for (int64_t o = 0; o < outer; ++o) {
            std::copy(pt + o * a_len * inner, pt + (o + 1) * a_len * inner,
                      po + (o * total + axis_offset) * inner);
        }
        axis_offset += a_len;
    }
    return out;
}

std::vector<Tensor>
chunk(const Tensor& a, int64_t n, int64_t axis)
{
    int64_t ax = axis < 0 ? axis + a.dim() : axis;
    SLAPO_CHECK(ax >= 0 && ax < a.dim(), "chunk: bad axis " << axis);
    SLAPO_CHECK(a.size(ax) % n == 0,
                "chunk: axis extent " << a.size(ax) << " not divisible by " << n);
    const int64_t step = a.size(ax) / n;
    std::vector<Tensor> out;
    out.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
        out.push_back(narrow(a, ax, i * step, step));
    }
    return out;
}

Tensor
narrow(const Tensor& a, int64_t axis, int64_t start, int64_t length)
{
    int64_t ax = axis < 0 ? axis + a.dim() : axis;
    SLAPO_CHECK(ax >= 0 && ax < a.dim(), "narrow: bad axis " << axis);
    SLAPO_CHECK(start >= 0 && start + length <= a.size(ax),
                "narrow: slice [" << start << ", " << start + length
                                  << ") out of range for axis extent "
                                  << a.size(ax));
    Shape out_shape = a.shape();
    out_shape[ax] = length;
    Tensor out = Tensor::zeros(out_shape);

    int64_t outer = 1;
    for (int64_t d = 0; d < ax; ++d) outer *= a.size(d);
    int64_t inner = 1;
    for (int64_t d = ax + 1; d < a.dim(); ++d) inner *= a.size(d);

    const float* pa = a.data();
    float* po = out.data();
    const int64_t full = a.size(ax);
    for (int64_t o = 0; o < outer; ++o) {
        std::copy(pa + (o * full + start) * inner,
                  pa + (o * full + start + length) * inner,
                  po + o * length * inner);
    }
    return out;
}

Tensor
narrowBackward(const Tensor& grad, const Shape& in_shape, int64_t axis,
               int64_t start)
{
    int64_t ax = axis < 0 ? axis + static_cast<int64_t>(in_shape.size()) : axis;
    Tensor out = Tensor::zeros(in_shape);
    const int64_t length = grad.size(ax);

    int64_t outer = 1;
    for (int64_t d = 0; d < ax; ++d) outer *= in_shape[d];
    int64_t inner = 1;
    for (size_t d = ax + 1; d < in_shape.size(); ++d) inner *= in_shape[d];

    const float* pg = grad.data();
    float* po = out.data();
    const int64_t full = in_shape[ax];
    for (int64_t o = 0; o < outer; ++o) {
        std::copy(pg + o * length * inner, pg + (o + 1) * length * inner,
                  po + (o * full + start) * inner);
    }
    return out;
}

Tensor
permute(const Tensor& a, const std::vector<int64_t>& perm)
{
    SLAPO_CHECK(static_cast<int64_t>(perm.size()) == a.dim(),
                "permute: perm rank mismatch");
    Shape out_shape(a.dim());
    for (int64_t d = 0; d < a.dim(); ++d) {
        out_shape[d] = a.size(perm[d]);
    }
    Tensor out = Tensor::zeros(out_shape);
    const auto in_strides = stridesOf(a.shape());
    const auto out_strides = stridesOf(out_shape);
    const float* pa = a.data();
    float* po = out.data();
    for (int64_t flat = 0; flat < a.numel(); ++flat) {
        int64_t rem = flat;
        int64_t src = 0;
        for (int64_t d = 0; d < a.dim(); ++d) {
            const int64_t idx = rem / out_strides[d];
            rem %= out_strides[d];
            src += idx * in_strides[perm[d]];
        }
        po[flat] = pa[src];
    }
    return out;
}

Tensor
embedding(const Tensor& ids, const Tensor& table)
{
    SLAPO_CHECK(table.dim() == 2, "embedding: table must be 2-D");
    const int64_t vocab = table.size(0);
    const int64_t dim = table.size(1);
    Shape out_shape = ids.shape();
    out_shape.push_back(dim);
    Tensor out = Tensor::zeros(out_shape);
    const float* pi = ids.data();
    const float* pt = table.data();
    float* po = out.data();
    for (int64_t i = 0; i < ids.numel(); ++i) {
        const int64_t id = static_cast<int64_t>(pi[i]);
        SLAPO_CHECK(id >= 0 && id < vocab,
                    "embedding: id " << id << " out of vocab " << vocab);
        std::copy(pt + id * dim, pt + (id + 1) * dim, po + i * dim);
    }
    return out;
}

Tensor
embeddingBackward(const Tensor& grad_out, const Tensor& ids, int64_t vocab)
{
    const int64_t dim = grad_out.size(-1);
    Tensor grad_table = Tensor::zeros({vocab, dim});
    const float* pg = grad_out.data();
    const float* pi = ids.data();
    float* pt = grad_table.data();
    for (int64_t i = 0; i < ids.numel(); ++i) {
        const int64_t id = static_cast<int64_t>(pi[i]);
        for (int64_t d = 0; d < dim; ++d) {
            pt[id * dim + d] += pg[i * dim + d];
        }
    }
    return grad_table;
}

Tensor
mseLoss(const Tensor& pred, const Tensor& target)
{
    SLAPO_CHECK(pred.shape() == target.shape(), "mseLoss: shape mismatch");
    double acc = 0.0;
    const float* pp = pred.data();
    const float* pt = target.data();
    for (int64_t i = 0; i < pred.numel(); ++i) {
        const double d = pp[i] - pt[i];
        acc += d * d;
    }
    return Tensor::fromValues({1}, {static_cast<float>(acc / pred.numel())});
}

Tensor
mseLossBackward(const Tensor& pred, const Tensor& target)
{
    Tensor out = Tensor::zeros(pred.shape());
    const float* pp = pred.data();
    const float* pt = target.data();
    float* po = out.data();
    const float s = 2.0f / static_cast<float>(pred.numel());
    for (int64_t i = 0; i < pred.numel(); ++i) {
        po[i] = s * (pp[i] - pt[i]);
    }
    return out;
}

Tensor
crossEntropy(const Tensor& logits, const Tensor& targets)
{
    const int64_t vocab = logits.size(-1);
    const int64_t rows = logits.numel() / vocab;
    SLAPO_CHECK(targets.numel() == rows, "crossEntropy: target count mismatch");
    Tensor probs = softmax(logits);
    const float* pp = probs.data();
    const float* pt = targets.data();
    double acc = 0.0;
    for (int64_t r = 0; r < rows; ++r) {
        const int64_t t = static_cast<int64_t>(pt[r]);
        SLAPO_CHECK(t >= 0 && t < vocab, "crossEntropy: bad target " << t);
        acc -= std::log(std::max(pp[r * vocab + t], 1e-12f));
    }
    return Tensor::fromValues({1}, {static_cast<float>(acc / rows)});
}

Tensor
crossEntropyBackward(const Tensor& logits, const Tensor& targets)
{
    const int64_t vocab = logits.size(-1);
    const int64_t rows = logits.numel() / vocab;
    Tensor grad = softmax(logits);
    float* pg = grad.data();
    const float* pt = targets.data();
    const float inv = 1.0f / static_cast<float>(rows);
    for (int64_t r = 0; r < rows; ++r) {
        const int64_t t = static_cast<int64_t>(pt[r]);
        pg[r * vocab + t] -= 1.0f;
    }
    for (int64_t i = 0; i < grad.numel(); ++i) {
        pg[i] *= inv;
    }
    return grad;
}

Tensor
conv2d(const Tensor& x, const Tensor& w, int64_t stride, int64_t pad)
{
    SLAPO_CHECK(x.dim() == 4 && w.dim() == 4, "conv2d: expects NCHW x and OIHW w");
    const int64_t B = x.size(0), Cin = x.size(1), H = x.size(2), W = x.size(3);
    const int64_t Cout = w.size(0), kh = w.size(2), kw = w.size(3);
    SLAPO_CHECK(w.size(1) == Cin, "conv2d: channel mismatch");
    const int64_t Ho = (H + 2 * pad - kh) / stride + 1;
    const int64_t Wo = (W + 2 * pad - kw) / stride + 1;
    Tensor out = Tensor::zeros({B, Cout, Ho, Wo});
    const float* px = x.data();
    const float* pw = w.data();
    float* po = out.data();
    for (int64_t b = 0; b < B; ++b) {
        for (int64_t co = 0; co < Cout; ++co) {
            for (int64_t ho = 0; ho < Ho; ++ho) {
                for (int64_t wo = 0; wo < Wo; ++wo) {
                    double acc = 0.0;
                    for (int64_t ci = 0; ci < Cin; ++ci) {
                        for (int64_t i = 0; i < kh; ++i) {
                            const int64_t hi = ho * stride + i - pad;
                            if (hi < 0 || hi >= H) continue;
                            for (int64_t j = 0; j < kw; ++j) {
                                const int64_t wi = wo * stride + j - pad;
                                if (wi < 0 || wi >= W) continue;
                                acc += px[((b * Cin + ci) * H + hi) * W + wi] *
                                       pw[((co * Cin + ci) * kh + i) * kw + j];
                            }
                        }
                    }
                    po[((b * Cout + co) * Ho + ho) * Wo + wo] =
                        static_cast<float>(acc);
                }
            }
        }
    }
    return out;
}

Tensor
batchNorm2d(const Tensor& x, const Tensor& gamma, const Tensor& beta, float eps)
{
    SLAPO_CHECK(x.dim() == 4, "batchNorm2d: expects NCHW");
    const int64_t B = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
    SLAPO_CHECK(gamma.numel() == C && beta.numel() == C,
                "batchNorm2d: affine size mismatch");
    Tensor out = Tensor::zeros(x.shape());
    const float* px = x.data();
    const float* pg = gamma.data();
    const float* pb = beta.data();
    float* po = out.data();
    const int64_t per_c = B * H * W;
    for (int64_t c = 0; c < C; ++c) {
        double mean = 0.0;
        for (int64_t b = 0; b < B; ++b) {
            for (int64_t i = 0; i < H * W; ++i) {
                mean += px[(b * C + c) * H * W + i];
            }
        }
        mean /= per_c;
        double var = 0.0;
        for (int64_t b = 0; b < B; ++b) {
            for (int64_t i = 0; i < H * W; ++i) {
                const double d = px[(b * C + c) * H * W + i] - mean;
                var += d * d;
            }
        }
        var /= per_c;
        const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps));
        for (int64_t b = 0; b < B; ++b) {
            for (int64_t i = 0; i < H * W; ++i) {
                const int64_t idx = (b * C + c) * H * W + i;
                po[idx] = (px[idx] - static_cast<float>(mean)) * inv_std * pg[c] +
                          pb[c];
            }
        }
    }
    return out;
}

Tensor
globalAvgPool(const Tensor& x)
{
    SLAPO_CHECK(x.dim() == 4, "globalAvgPool: expects NCHW");
    const int64_t B = x.size(0), C = x.size(1), HW = x.size(2) * x.size(3);
    Tensor out = Tensor::zeros({B, C});
    const float* px = x.data();
    float* po = out.data();
    for (int64_t b = 0; b < B; ++b) {
        for (int64_t c = 0; c < C; ++c) {
            double acc = 0.0;
            for (int64_t i = 0; i < HW; ++i) {
                acc += px[(b * C + c) * HW + i];
            }
            po[b * C + c] = static_cast<float>(acc / HW);
        }
    }
    return out;
}

} // namespace ops
} // namespace slapo
